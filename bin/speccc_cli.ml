(* SpecCC — Specification Consistency Checking.

   Subcommands:
     translate   requirements -> LTL (stage 1)
     tree        print the syntax tree of one sentence (Fig. 2)
     lint        exact per-requirement sanity checks (SCR-style)
     check       full pipeline: translate, abstract, partition, check
     watch       incremental re-checking for a live document
     localize    locate the inconsistent requirements (Sec. V-B)
     synth       extract the controller / counterstrategy
     testgen     conformance test suite from the controller
     patterns    Dwyer-pattern classification of the requirements
     table       reproduce Table I *)

open Cmdliner
open Speccc_logic
open Speccc_core
open Speccc_synthesis
open Speccc_casestudies

(* ---------- shared helpers ---------- *)

let builtin_spec = function
  | "cara" ->
    Some
      (List.mapi
         (fun line (id, text) -> { Document.id; text; line = line + 1 })
         Cara.working_modes)
  | "cara:modes" ->
    Some
      (List.mapi
         (fun line (id, text) -> { Document.id; text; line = line + 1 })
         Cara.mode_description)
  | name ->
    (match String.index_opt name ':' with
     | Some i ->
       let group = String.sub name 0 i in
       let row = String.sub name (i + 1) (String.length name - i - 1) in
       (match group with
        | "cara" ->
          List.find_opt (fun c -> c.Cara.row = row) Cara.components
          |> Option.map (fun c -> Document.of_texts (Cara.component_sentences c))
        | "tele" ->
          List.find_opt (fun a -> a.Telepromise.row = row)
            Telepromise.applications
          |> Option.map (fun a ->
              Document.of_texts (Telepromise.application_sentences a))
        | "arbiter" ->
          (match int_of_string_opt row with
           | Some masters when masters >= 1 && masters <= 4 ->
             Some
               (List.mapi
                  (fun line (id, text) -> { Document.id; text; line = line + 1 })
                  (Arbiter.instance ~masters).Arbiter.document)
           | Some _ | None -> None)
        | _ -> None)
     | None -> None)

(* Formal built-ins ("robot:RxK"): specifications produced directly in
   LTL with their partition, so they bypass translation. *)
let robot_spec name =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "robot" ->
    let rest = String.sub name (i + 1) (String.length name - i - 1) in
    (match String.split_on_char 'x' rest with
     | [ robots; rooms ] ->
       (match int_of_string_opt robots, int_of_string_opt rooms with
        | Some robots, Some rooms -> Some (Robot.scenario ~robots ~rooms)
        | _ -> None)
     | _ -> None)
  | _ -> None

let load_document source =
  match builtin_spec source with
  | Some document -> document
  | None ->
    if Sys.file_exists source then Document.of_file source
    else
      failwith
        (Printf.sprintf
           "unknown specification %S (expected a file, \"cara\", \
            \"cara:ROW\", \"tele:ROW\" or \"robot:RxK\")"
           source)

let load_spec source = Document.texts (load_document source)

let spec_arg =
  let doc =
    "Specification: a file with one requirement sentence per line \
     ('#' comments allowed), or a built-in: $(b,cara), $(b,cara:2.1.1), \
     $(b,tele:4), $(b,robot:2x5), ..."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

let engine_arg =
  let parse = function
    | "auto" -> Ok Realizability.Auto
    | "explicit" -> Ok Realizability.Explicit
    | "symbolic" -> Ok Realizability.Symbolic
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
       | Realizability.Auto -> "auto"
       | Realizability.Explicit -> "explicit"
       | Realizability.Symbolic -> "symbolic")
  in
  Arg.(value & opt (conv (parse, print)) Realizability.Auto
       & info [ "engine" ] ~doc:"Synthesis engine: auto, explicit, symbolic.")

let lookahead_arg =
  Arg.(value & opt int 6
       & info [ "lookahead" ]
         ~doc:"Bounded-eventuality depth for the symbolic engine.")

let time_budget_arg =
  Arg.(value & opt (some int) (Some 5)
       & info [ "time-budget" ]
         ~doc:"Arrival-error budget B for time abstraction (Sec. IV-E).")

let fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "budget" ]
         ~doc:"Deterministic step budget (fuel) for the synthesis \
               stage.  Exhaustion degrades down the engine fallback \
               ladder (symbolic, explicit, SAT, lint) instead of \
               hanging; the degradation steps are reported.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ]
         ~doc:"Wall-clock seconds allowed for the synthesis stage.")

let options_of ?fuel ?deadline ~engine ~lookahead ~time_budget () =
  (match time_budget with
   | Some b when b < 0 ->
     failwith (Printf.sprintf "--time-budget must be >= 0 (got %d)" b)
   | _ -> ());
  (match fuel with
   | Some f when f <= 0 ->
     failwith (Printf.sprintf "--budget must be positive (got %d)" f)
   | _ -> ());
  (match deadline with
   | Some d when d <= 0.0 ->
     failwith (Printf.sprintf "--deadline must be positive (got %g)" d)
   | _ -> ());
  let defaults = Pipeline.default_options () in
  { defaults with
    Pipeline.engine; lookahead; time_budget; fuel; deadline }

(* ---------- translate ---------- *)

let translate_cmd =
  let syntax_arg =
    Arg.(value & flag & info [ "paper" ] ~doc:"Print in the appendix style.")
  in
  let run source paper =
    let document = load_document source in
    let config = Speccc_translate.Translate.default_config () in
    let result =
      Speccc_translate.Translate.specification config
        (Document.texts document)
    in
    let syntax =
      if paper then Ltl_print.Paper else Ltl_print.Ascii
    in
    List.iteri
      (fun i r ->
         Format.printf "%% %s: %s@.%s@.@."
           (Document.id_at document i)
           r.Speccc_translate.Translate.text
           (Ltl_print.to_string ~syntax r.Speccc_translate.Translate.formula))
      result.Speccc_translate.Translate.requirements
  in
  Cmd.v (Cmd.info "translate" ~doc:"Translate requirements to LTL")
    Term.(const run $ spec_arg $ syntax_arg)

(* ---------- tree ---------- *)

let tree_cmd =
  let sentence_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SENTENCE")
  in
  let run text =
    let lexicon = Speccc_nlp.Lexicon.default () in
    let tree = Speccc_nlp.Parser.sentence lexicon text in
    Format.printf "%a@." Speccc_nlp.Syntax.pp_sentence tree
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Print the syntax tree of one sentence (Fig. 2)")
    Term.(const run $ sentence_arg)

(* ---------- check ---------- *)

let exit_of_verdict = function
  | Realizability.Consistent -> ()
  | Realizability.Inconsistent -> exit 1
  | Realizability.Inconclusive _ -> exit 2

(* Rendered via [canonical_degradation]: deduplicated and stably
   sorted by ladder position, so a given report always prints the same
   lines in the same order regardless of which path assembled it. *)
let print_degradation report =
  List.iter
    (fun rung ->
       Format.printf "degraded: %s — %s (%.3fs)@."
         rung.Realizability.rung_engine rung.Realizability.rung_outcome
         rung.Realizability.rung_wall)
    (Realizability.canonical_degradation report)

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
         ~doc:"After the run, print hash-consing and memoization \
               cache counters (hits, misses, evictions, sizes).")

(* Printed to stderr so piped verdict output stays clean. *)
let print_stats () =
  let h = Ltl.hashcons_stats () in
  Format.eprintf "== caches ==@.";
  Format.eprintf "ltl.unique-table  nodes=%d hits=%d misses=%d@."
    h.Ltl.nodes h.Ltl.hc_hits h.Ltl.hc_misses;
  Format.eprintf "%a" Speccc_cache.Cache.pp_stats
    (Speccc_cache.Cache.stats ());
  let b = Speccc_bdd.Bdd.counters () in
  Format.eprintf
    "== bdd ==@.bdd               nodes=%d op_hits=%d op_misses=%d \
     reorders=%d@."
    b.Speccc_bdd.Bdd.nodes b.Speccc_bdd.Bdd.op_hits
    b.Speccc_bdd.Bdd.op_misses b.Speccc_bdd.Bdd.reorders;
  let module Memwatch = Speccc_runtime.Memwatch in
  let m = Memwatch.stats () in
  Format.eprintf
    "== memory ==@.gc                major_words=%.0f heap_words=%d \
     compactions=%d@.watermark         level=%s soft_trips=%d hard_trips=%d \
     sheds=%d@.@?"
    m.Memwatch.major_words m.Memwatch.heap_words m.Memwatch.compactions
    (Memwatch.level_name m.Memwatch.watermark)
    m.Memwatch.soft_trips m.Memwatch.hard_trips m.Memwatch.sheds

let print_store_stats store =
  let module Store = Speccc_store.Store in
  let s = Store.stats store in
  Format.eprintf
    "== store ==@.verdict-store     live=%d snapshots=%d appends=%d hits=%d \
     misses=%d compactions=%d recovered_bytes=%d crc_failures=%d \
     file_bytes=%d@."
    s.Store.live s.Store.snapshots s.Store.appends s.Store.hits s.Store.misses
    s.Store.compactions s.Store.recovered_bytes s.Store.crc_failures
    s.Store.file_bytes

(* --mem-soft / --mem-hard arm the Gc-alarm watermark monitor: soft
   sheds the memo caches (entries only; the counters survive), hard
   makes the fallback ladder collapse to its last rung with a typed
   Degraded("memory", _).  Off by default: fuel determinism must not
   depend on allocator behaviour. *)
let mem_soft_arg =
  Arg.(value & opt (some int) None
       & info [ "mem-soft" ] ~docv:"MB"
         ~doc:"Soft memory watermark in MB of major heap: crossing it \
               sheds the memoization caches (entries only) so memory \
               comes back before the OS takes it.")

let mem_hard_arg =
  Arg.(value & opt (some int) None
       & info [ "mem-hard" ] ~docv:"MB"
         ~doc:"Hard memory watermark in MB of major heap: while above \
               it the engine fallback ladder skips straight to its \
               cheapest rung, reporting the skipped rungs as \
               $(i,Degraded(memory, ...)).")

let setup_memwatch soft hard =
  let module Memwatch = Speccc_runtime.Memwatch in
  (match soft, hard with
   | Some s, _ when s <= 0 ->
     failwith (Printf.sprintf "--mem-soft must be positive (got %d)" s)
   | _, Some h when h <= 0 ->
     failwith (Printf.sprintf "--mem-hard must be positive (got %d)" h)
   | Some s, Some h when h < s ->
     failwith
       (Printf.sprintf "--mem-hard (%d) must be >= --mem-soft (%d)" h s)
   | _ -> ());
  if soft <> None || hard <> None then begin
    Memwatch.on_soft Speccc_cache.Cache.shed;
    Memwatch.configure ?soft_mb:soft ?hard_mb:hard ()
  end

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"PATH"
         ~doc:"Persistent content-addressed verdict store.  Definite \
               verdicts (consistent/inconsistent) are looked up before \
               any engine runs and appended after; the file survives \
               crashes (checksummed records, torn tails truncated on \
               open), so repeated specs are answered without burning \
               engine fuel in any later run.")

let fsync_arg =
  Arg.(value & flag
       & info [ "fsync" ]
         ~doc:"fsync journal and verdict-store appends, so records \
               survive the machine dying, not just the process.")

(* Wire the verdict store into the harness hooks (the serve mode does
   this itself through its config; batch wires it here). *)
let harness_with_store harness store =
  let module Store = Speccc_store.Store in
  let module Harness = Speccc_harness.Harness in
  match store with
  | None -> harness
  | Some st ->
    let salt = Store.salt_of_options harness.Harness.options in
    { harness with
      Harness.store_find =
        Some (fun doc -> Store.find st (Store.key ~salt doc));
      store_put =
        Some (fun doc result -> Store.put st ~key:(Store.key ~salt doc) result) }

(* --inject CHECKPOINT[@AFTER]=ACTION[:ARG] — install a deterministic
   fault plan before the run (chaos drills from the command line).
   Examples: engine.symbolic=fail:boom, sat.solve@2=exhaust,
   server.request@1=delay:0.5, witness.controller=corrupt. *)
let inject_arg =
  Arg.(value & opt_all string []
       & info [ "inject" ] ~docv:"TRIGGER"
         ~doc:"Install a deterministic fault trigger before the run: \
               $(b,CHECKPOINT[@AFTER]=ACTION[:ARG]) with actions \
               $(b,fail[:msg]), $(b,timeout), $(b,exhaust), \
               $(b,delay:seconds), $(b,corrupt).  Repeatable; see \
               $(b,--list-faults) for checkpoint names.")

let seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ]
         ~doc:"Seed resolving negative $(b,--inject) hit counts.")

let parse_inject spec =
  let module Fault = Speccc_runtime.Fault in
  match String.index_opt spec '=' with
  | None ->
    failwith
      (Printf.sprintf
         "--inject %S: expected CHECKPOINT[@AFTER]=ACTION[:ARG]" spec)
  | Some eq ->
    let target = String.sub spec 0 eq in
    let action = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    let checkpoint, after =
      match String.index_opt target '@' with
      | None -> (target, 0)
      | Some at ->
        let name = String.sub target 0 at in
        let count = String.sub target (at + 1) (String.length target - at - 1) in
        (match int_of_string_opt count with
         | Some n -> (name, n)
         | None ->
           failwith
             (Printf.sprintf "--inject %S: bad hit count %S" spec count))
    in
    if not (Fault.Checkpoint.mem checkpoint) then
      failwith
        (Printf.sprintf
           "--inject %S: unknown checkpoint %S (see --list-faults)" spec
           checkpoint);
    let action =
      let arg_of s =
        match String.index_opt s ':' with
        | None -> (s, None)
        | Some i ->
          (String.sub s 0 i,
           Some (String.sub s (i + 1) (String.length s - i - 1)))
      in
      match arg_of action with
      | "fail", message -> Fault.Fail (Option.value message ~default:"injected")
      | "timeout", None -> Fault.Timeout_now
      | "exhaust", None -> Fault.Exhaust
      | "delay", Some seconds ->
        (match float_of_string_opt seconds with
         | Some s when s >= 0. -> Fault.Delay s
         | _ ->
           failwith
             (Printf.sprintf "--inject %S: bad delay %S" spec seconds))
      | "corrupt", None -> Fault.Corrupt
      | _ ->
        failwith
          (Printf.sprintf
             "--inject %S: unknown action %S (fail[:msg], timeout, \
              exhaust, delay:seconds, corrupt)"
             spec action)
    in
    { Fault.checkpoint; after; action }

let install_faults specs seed =
  if specs <> [] then
    Speccc_runtime.Fault.install ~seed (List.map parse_inject specs)

let certify_arg =
  Arg.(value & flag
       & info [ "certify" ]
         ~doc:"Validate the verdict's witness (controller, \
               counterstrategy or unsat core) with independent \
               machinery before reporting; a rejected certificate \
               downgrades the verdict to unknown.")

let recover_arg =
  Arg.(value & flag
       & info [ "recover" ]
         ~doc:"Keep going past ungrammatical requirements: each one \
               is reported with its line and column span and the \
               remaining requirements are checked.")

let print_certificate outcome =
  match outcome.Pipeline.certificate with
  | None -> ()
  | Some certificate ->
    Format.printf "certificate: %a@." Speccc_certify.Certify.pp_outcome
      certificate

let check_cmd =
  let run source engine lookahead time_budget fuel deadline certify recover
      mem_soft mem_hard stats =
    setup_memwatch mem_soft mem_hard;
    let options =
      options_of ?fuel ?deadline ~engine ~lookahead ~time_budget ()
    in
    let options = { options with Pipeline.certify; recover } in
    match robot_spec source with
    | Some scenario ->
      (* formal built-in: already LTL, with a fixed partition *)
      let partition =
        {
          Speccc_partition.Partition.inputs = scenario.Robot.inputs;
          outputs = scenario.Robot.outputs;
        }
      in
      Format.printf "formal built-in: %d robot(s), %d room(s), %d formulas@."
        scenario.Robot.robots scenario.Robot.rooms
        (List.length scenario.Robot.formulas);
      let _, report =
        Pipeline.check_formulas ~options ~partition scenario.Robot.formulas
      in
      let report, certificate =
        if not certify then (report, None)
        else
          let report, outcome =
            Speccc_certify.Certify.apply ~assumptions:[]
              scenario.Robot.formulas report
          in
          (report, Some outcome)
      in
      let verdict =
        match report.Realizability.verdict with
        | Realizability.Consistent -> "CONSISTENT (realizable)"
        | Realizability.Inconsistent -> "INCONSISTENT (unrealizable)"
        | Realizability.Inconclusive why -> "INCONCLUSIVE: " ^ why
      in
      Format.printf "verdict: %s (engine: %s, %.3fs)@." verdict
        report.Realizability.engine_used report.Realizability.wall_time;
      print_degradation report;
      Option.iter
        (fun c ->
           Format.printf "certificate: %a@."
             Speccc_certify.Certify.pp_outcome c)
        certificate;
      if stats then print_stats ();
      exit_of_verdict report.Realizability.verdict
    | None ->
      let document = load_document source in
      let outcome = Pipeline.run_document ~options document in
      let num_assumptions =
        List.length (fst (Document.split document))
      in
      if num_assumptions > 0 then
        Format.printf "environment assumptions: %d@." num_assumptions;
      Format.printf "%a@." Pipeline.pp_outcome outcome;
      print_certificate outcome;
      if stats then print_stats ();
      exit_of_verdict outcome.Pipeline.report.Realizability.verdict
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the full consistency pipeline (Fig. 1)")
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg
          $ time_budget_arg $ fuel_arg $ deadline_arg $ certify_arg
          $ recover_arg $ mem_soft_arg $ mem_hard_arg $ stats_arg)

(* ---------- batch ---------- *)

let batch_cmd =
  let files_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"FILE"
           ~doc:"Requirement documents (one sentence per line).")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
           ~doc:"JSON-Lines run journal, appended and flushed after \
                 every document so an interrupted run loses at most \
                 the document in flight.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
           ~doc:"Skip documents whose verdict is already in the \
                 journal (requires $(b,--journal)).")
  in
  let retries_arg =
    Arg.(value & opt int 2
         & info [ "retries" ]
           ~doc:"Extra attempts per document after the first, each \
                 under half the previous budget with exponential \
                 backoff in between.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains checking documents in parallel \
                 (default 1 = sequential).  Results and journal lines \
                 are merged in input order, so verdict output matches \
                 the sequential run.")
  in
  let run files engine lookahead time_budget fuel deadline certify recover
      journal resume retries jobs stats inject seed store_path fsync
      mem_soft mem_hard =
    if resume && journal = None then
      failwith "--resume requires --journal PATH";
    install_faults inject seed;
    setup_memwatch mem_soft mem_hard;
    if retries < 0 then
      failwith (Printf.sprintf "--retries must be >= 0 (got %d)" retries);
    if jobs < 1 then
      failwith (Printf.sprintf "--jobs must be >= 1 (got %d)" jobs);
    let options =
      options_of ?fuel ?deadline ~engine ~lookahead ~time_budget ()
    in
    let options = { options with Pipeline.certify; recover } in
    (* SIGINT requests a clean stop: the document in flight finishes
       (its journal line is flushed), the rest are skipped, and the
       run exits 130 over a resumable journal prefix. *)
    let interrupted = Atomic.make false in
    let previous =
      try
        Some
          (Sys.signal Sys.sigint
             (Sys.Signal_handle (fun _ -> Atomic.set interrupted true)))
      with Invalid_argument _ | Sys_error _ -> None
    in
    let store =
      Option.map (fun path -> Speccc_store.Store.open_ ~fsync path) store_path
    in
    let config =
      { (Speccc_harness.Harness.default_config ()) with
        Speccc_harness.Harness.options; retries; journal; resume; jobs;
        journal_fsync = fsync;
        stop = (fun () -> Atomic.get interrupted) }
    in
    let config = harness_with_store config store in
    let summary = Speccc_harness.Harness.run_files config files in
    Option.iter (Sys.set_signal Sys.sigint) previous;
    Format.printf "%a@." Speccc_harness.Harness.pp_summary summary;
    if stats then begin
      print_stats ();
      Option.iter print_store_stats store
    end;
    Option.iter Speccc_store.Store.close store;
    if summary.Speccc_harness.Harness.interrupted then exit 130
    else if summary.Speccc_harness.Harness.exit_code <> 0 then
      exit summary.Speccc_harness.Harness.exit_code
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Check many requirement documents under one crash-safe \
             supervisor: per-document error confinement, degraded-\
             budget retries, a resumable run journal, and an optional \
             parallel worker pool")
    Term.(const run $ files_arg $ engine_arg $ lookahead_arg
          $ time_budget_arg $ fuel_arg $ deadline_arg $ certify_arg
          $ recover_arg $ journal_arg $ resume_arg $ retries_arg
          $ jobs_arg $ stats_arg $ inject_arg $ seed_arg $ store_arg
          $ fsync_arg $ mem_soft_arg $ mem_hard_arg)

(* ---------- serve ---------- *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve over a Unix-domain socket at $(docv) instead of \
                 stdin/stdout.")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains checking requests concurrently.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
           ~doc:"Bounded request queue capacity; the reader blocks \
                 (backpressure) when it is full.")
  in
  let high_water_arg =
    Arg.(value & opt (some int) None
         & info [ "high-water" ] ~docv:"N"
           ~doc:"Shed load with a typed $(i,overloaded) response once \
                 the queue holds $(docv) requests (default: the queue \
                 capacity).  Pass 0 to never shed and rely on \
                 backpressure only.")
  in
  let serve_deadline_arg =
    Arg.(value & opt float 5.0
         & info [ "request-deadline" ] ~docv:"SECONDS"
           ~doc:"Default wall-clock deadline per request (a request \
                 may lower or raise its own via \
                 $(i,options.deadline)).")
  in
  let grace_arg =
    Arg.(value & opt float 1.0
         & info [ "grace" ] ~docv:"SECONDS"
           ~doc:"Extra seconds after a request's deadline before the \
                 watchdog hard-preempts the worker (clamped to the \
                 deadline, so a stuck request is answered within 2x \
                 its deadline).")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
           ~doc:"JSON-Lines verdict journal, appended and flushed per \
                 response.")
  in
  let breaker_threshold_arg =
    Arg.(value & opt int 3
         & info [ "breaker-threshold" ] ~docv:"K"
           ~doc:"Consecutive engine failures that open a ladder \
                 rung's circuit breaker.")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt float 5.0
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
           ~doc:"How long an open breaker skips its rung before a \
                 half-open probe is admitted.")
  in
  let retries_arg =
    Arg.(value & opt int 2
         & info [ "retries" ]
           ~doc:"Extra attempts per request after the first, each \
                 under half the previous budget (abandoned once the \
                 request's watchdog trips).")
  in
  let run socket workers queue high_water deadline grace journal
      breaker_threshold breaker_cooldown engine lookahead time_budget fuel
      certify recover retries stats inject seed store_path fsync
      mem_soft mem_hard =
    install_faults inject seed;
    setup_memwatch mem_soft mem_hard;
    if workers < 1 then
      failwith (Printf.sprintf "--workers must be >= 1 (got %d)" workers);
    if queue < 1 then
      failwith (Printf.sprintf "--queue must be >= 1 (got %d)" queue);
    if deadline <= 0. then
      failwith
        (Printf.sprintf "--request-deadline must be positive (got %g)"
           deadline);
    if grace < 0. then
      failwith (Printf.sprintf "--grace must be >= 0 (got %g)" grace);
    if retries < 0 then
      failwith (Printf.sprintf "--retries must be >= 0 (got %d)" retries);
    let options = options_of ?fuel ~engine ~lookahead ~time_budget () in
    let options = { options with Pipeline.certify; recover } in
    let store =
      Option.map (fun path -> Speccc_store.Store.open_ ~fsync path) store_path
    in
    let harness =
      { (Speccc_harness.Harness.default_config ()) with
        Speccc_harness.Harness.options; retries; journal;
        journal_fsync = fsync }
    in
    let config =
      { (Speccc_server.Server.default_config ()) with
        Speccc_server.Server.harness; workers; queue_capacity = queue;
        high_water =
          (match high_water with
           | Some 0 -> None
           | Some n -> Some n
           | None -> Some queue);
        deadline; grace;
        breaker_threshold; breaker_cooldown; store }
    in
    (* SIGTERM/SIGINT request a graceful drain: finish in-flight
       requests, flush the journal, exit 0. *)
    let stopping = Atomic.make false in
    let handler = Sys.Signal_handle (fun _ -> Atomic.set stopping true) in
    (try Sys.set_signal Sys.sigterm handler
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint handler
     with Invalid_argument _ | Sys_error _ -> ());
    let stop () = Atomic.get stopping in
    let server_stats =
      match socket with
      | Some path -> Speccc_server.Server.run_socket ~stop config ~path
      | None ->
        Speccc_server.Server.run ~stop config ~input:Unix.stdin
          ~output:stdout
    in
    if stats then begin
      Format.eprintf "%a@." Speccc_server.Server.pp_stats server_stats;
      print_stats ();
      Option.iter print_store_stats store
    end;
    Option.iter Speccc_store.Store.close store
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running supervised checking service: JSONL requests \
             on stdin or a Unix socket, a pool of worker domains with \
             wall-clock watchdog preemption, bounded-queue \
             backpressure and load shedding, per-engine circuit \
             breakers, and graceful drain on SIGTERM/SIGINT")
    Term.(const run $ socket_arg $ workers_arg $ queue_arg $ high_water_arg
          $ serve_deadline_arg $ grace_arg $ journal_arg
          $ breaker_threshold_arg $ breaker_cooldown_arg $ engine_arg
          $ lookahead_arg $ time_budget_arg $ fuel_arg $ certify_arg
          $ recover_arg $ retries_arg $ stats_arg $ inject_arg $ seed_arg
          $ store_arg $ fsync_arg $ mem_soft_arg $ mem_hard_arg)

(* ---------- route ---------- *)

let route_cmd =
  let shards_arg =
    Arg.(value & opt int 3
         & info [ "shards" ] ~docv:"N"
           ~doc:"Worker processes to spawn and route across.")
  in
  let replicas_arg =
    Arg.(value & opt int 32
         & info [ "replicas" ] ~docv:"N"
           ~doc:"Virtual ring points per shard (more points smooth \
                 the load split).")
  in
  let route_retries_arg =
    Arg.(value & opt int 2
         & info [ "failover-retries" ] ~docv:"N"
           ~doc:"Extra shards a request is re-dispatched to after its \
                 home shard fails.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "request-timeout" ] ~docv:"SECONDS"
           ~doc:"Seconds to wait for a worker's response before \
                 declaring it wedged, killing it and failing over; \
                 keep it above the workers' watchdog ceiling \
                 (request deadline + grace), which answers first in \
                 every non-crash case.")
  in
  let socket_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "socket-dir" ] ~docv:"DIR"
           ~doc:"Directory for the per-shard Unix sockets (default: a \
                 fresh directory under the system temp dir).")
  in
  let store_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "store-dir" ] ~docv:"DIR"
           ~doc:"Directory for per-shard verdict stores \
                 ($(b,shard-<i>.store)).  Workers warm-start from \
                 them: a respawned or restarted worker replays its \
                 store and answers repeated specs without re-running \
                 any engine.")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains inside each shard process.")
  in
  let route_deadline_arg =
    Arg.(value & opt float 5.0
         & info [ "request-deadline" ] ~docv:"SECONDS"
           ~doc:"Per-request wall-clock deadline forwarded to the \
                 workers.")
  in
  let grace_arg =
    Arg.(value & opt float 1.0
         & info [ "grace" ] ~docv:"SECONDS"
           ~doc:"Watchdog grace forwarded to the workers.")
  in
  let worker_args_arg =
    Arg.(value & opt_all string []
         & info [ "worker-arg" ] ~docv:"ARG"
           ~doc:"Extra argument appended verbatim to every worker's \
                 $(b,speccc serve) command line (repeatable) — e.g. \
                 $(b,--worker-arg=--inject) \
                 $(b,--worker-arg=server.request\\@0=delay:1.5) for \
                 crash drills.")
  in
  let run shards replicas retries timeout socket_dir store_dir fsync workers
      deadline grace worker_args stats mem_soft mem_hard =
    if shards < 1 then
      failwith (Printf.sprintf "--shards must be >= 1 (got %d)" shards);
    if retries < 0 then
      failwith
        (Printf.sprintf "--failover-retries must be >= 0 (got %d)" retries);
    if timeout <= 0. then
      failwith
        (Printf.sprintf "--request-timeout must be positive (got %g)" timeout);
    let socket_dir =
      match socket_dir with
      | Some dir -> dir
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "speccc-route-%d" (Unix.getpid ()))
    in
    (match store_dir with
     | Some dir when not (Sys.file_exists dir) ->
       (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
     | _ -> ());
    let worker_argv ~shard ~socket =
      Array.of_list
        ([ Sys.executable_name; "serve"; "--socket"; socket;
           "--workers"; string_of_int workers;
           "--request-deadline"; Printf.sprintf "%g" deadline;
           "--grace"; Printf.sprintf "%g" grace ]
         @ (match store_dir with
            | Some dir ->
              [ "--store";
                Filename.concat dir (Printf.sprintf "shard-%d.store" shard) ]
            | None -> [])
         @ (if fsync then [ "--fsync" ] else [])
         (* watermarks apply inside the engine processes, not the router *)
         @ (match mem_soft with
            | Some mb -> [ "--mem-soft"; string_of_int mb ]
            | None -> [])
         @ (match mem_hard with
            | Some mb -> [ "--mem-hard"; string_of_int mb ]
            | None -> [])
         @ worker_args)
    in
    let config =
      { (Speccc_shard.Shard.default_config ~socket_dir ~worker_argv) with
        Speccc_shard.Shard.shards; replicas; request_retries = retries;
        request_timeout = timeout }
    in
    (* SIGTERM/SIGINT drain the router: in-flight requests finish,
       workers are shut down and reaped. *)
    let stopping = Atomic.make false in
    let handler = Sys.Signal_handle (fun _ -> Atomic.set stopping true) in
    (try Sys.set_signal Sys.sigterm handler
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint handler
     with Invalid_argument _ | Sys_error _ -> ());
    let stop () = Atomic.get stopping in
    let route_stats =
      Speccc_shard.Shard.run ~stop config ~input:Unix.stdin ~output:stdout
    in
    if stats then Format.eprintf "%a@." Speccc_shard.Shard.pp_stats route_stats
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Crash-recoverable sharded checking service: consistent-\
             hash routing of JSONL requests across a pool of spawned \
             $(b,speccc serve) worker processes, with per-shard health \
             and circuit breakers, bounded retry-with-failover, \
             automatic respawn of crashed workers, and per-shard \
             persistent verdict stores that survive both worker \
             crashes and full restarts")
    Term.(const run $ shards_arg $ replicas_arg $ route_retries_arg
          $ timeout_arg $ socket_dir_arg $ store_dir_arg $ fsync_arg
          $ workers_arg $ route_deadline_arg $ grace_arg $ worker_args_arg
          $ stats_arg $ mem_soft_arg $ mem_hard_arg)

(* ---------- localize ---------- *)

let localize_cmd =
  let run source engine lookahead time_budget =
    let texts = load_spec source in
    let options = options_of ~engine ~lookahead ~time_budget () in
    let outcome = Pipeline.run ~options texts in
    match outcome.Pipeline.report.Realizability.verdict with
    | Realizability.Consistent ->
      Format.printf "specification is consistent; nothing to localize@."
    | Realizability.Inconsistent | Realizability.Inconclusive _ ->
      let check_subset formulas =
        let _, report = Pipeline.check_formulas ~options formulas in
        report.Realizability.verdict = Realizability.Consistent
      in
      let check_partition partition =
        let _, report =
          Pipeline.check_formulas ~options ~partition outcome.Pipeline.formulas
        in
        report.Realizability.verdict = Realizability.Consistent
      in
      let suggestion =
        Refine.suggest ~check_subset ~check_partition
          ~partition:outcome.Pipeline.partition.Speccc_partition.Partition.partition
          outcome.Pipeline.formulas
      in
      (match suggestion.Refine.localization with
       | Some localization ->
         Format.printf "%a@." Localize.pp localization;
         let document = load_document source in
         List.iteri
           (fun i r ->
              if i = localization.Localize.culprit
              || List.mem i localization.Localize.partners then
                Format.printf "  [%d = %s] %s@." i
                  (Document.id_at document i)
                  r.Speccc_translate.Translate.text)
           outcome.Pipeline.requirements
       | None -> ());
      Format.printf "advice: %s@." suggestion.Refine.advice
  in
  Cmd.v
    (Cmd.info "localize"
       ~doc:"Locate inconsistent requirements and suggest refinements")
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg $ time_budget_arg)

(* ---------- synth ---------- *)

let synth_cmd =
  let dot_arg =
    Arg.(value & flag
         & info [ "dot" ] ~doc:"Print the controller as a Graphviz digraph.")
  in
  let st_arg =
    Arg.(value & flag
         & info [ "st" ]
           ~doc:"Print the controller as an IEC 61131-3 Structured Text \
                 function block (the G4LTL-ST output format).")
  in
  let verilog_arg =
    Arg.(value & flag
         & info [ "verilog" ]
           ~doc:"Print the controller as a synthesizable Verilog module.")
  in
  let run source engine lookahead time_budget dot st verilog =
    let texts = load_spec source in
    let options = options_of ~engine ~lookahead ~time_budget () in
    let outcome = Pipeline.run ~options texts in
    match outcome.Pipeline.report.Realizability.verdict with
    | Realizability.Consistent ->
      (match outcome.Pipeline.report.Realizability.controller with
       | Some machine ->
         Format.printf
           "consistent: controller with %d state(s), %d input(s), %d \
            output(s)@."
           machine.Mealy.num_states
           (List.length machine.Mealy.inputs)
           (List.length machine.Mealy.outputs);
         if dot then Format.printf "%a@." Mealy.pp_dot machine;
         if st then
           Format.printf "%s@." (Codegen.to_structured_text machine);
         if verilog then Format.printf "%s@." (Codegen.to_verilog machine)
       | None ->
         Format.printf
           "consistent (symbolic strategy; controller too large to \
            enumerate)@.")
    | Realizability.Inconsistent ->
      Format.printf "INCONSISTENT@.";
      (match outcome.Pipeline.report.Realizability.counterstrategy with
       | Some cs ->
         (* demonstrate against a trivial candidate *)
         let machine = {
           Mealy.inputs = cs.Bounded.cs_inputs;
           outputs = cs.Bounded.cs_outputs;
           num_states = 1;
           initial = 0;
           step = (fun _ _ -> (0, 0));
         }
         in
         let word = Bounded.refute cs machine in
         Format.printf
           "environment counterstrategy found; e.g. against the \
            all-low implementation it forces:@.  %a@."
           Speccc_logic.Trace.pp word
       | None -> ());
      exit 1
    | Realizability.Inconclusive why ->
      Format.printf "inconclusive: %s@." why;
      exit 2
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize a controller (or a counterstrategy) from the \
             specification")
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg $ time_budget_arg
          $ dot_arg $ st_arg $ verilog_arg)

(* ---------- testgen ---------- *)

let testgen_cmd =
  let run source engine lookahead time_budget =
    let texts = load_spec source in
    let options = options_of ~engine ~lookahead ~time_budget () in
    let outcome = Pipeline.run ~options texts in
    match outcome.Pipeline.report.Realizability.controller with
    | None ->
      Format.printf
        "no controller available (verdict: %s); cannot generate tests@."
        (match outcome.Pipeline.report.Realizability.verdict with
         | Realizability.Consistent -> "consistent, strategy not enumerable"
         | Realizability.Inconsistent -> "inconsistent"
         | Realizability.Inconclusive why -> why);
      exit 2
    | Some machine ->
      let suite = Testgen.transition_cover machine in
      let covered, total = Testgen.coverage machine suite in
      Format.printf
        "reference controller: %d state(s); %d test case(s) covering \
         %d/%d transitions@.@."
        machine.Mealy.num_states (List.length suite) covered total;
      List.iteri
        (fun i test ->
           Format.printf "test %d:@.%a@." i Testgen.pp_test_case test)
        suite
  in
  Cmd.v
    (Cmd.info "testgen"
       ~doc:"Derive a conformance test suite from the synthesized \
             controller")
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg $ time_budget_arg)

(* ---------- patterns ---------- *)

let patterns_cmd =
  let run source =
    let document = load_document source in
    let texts = Document.texts document in
    let config = Speccc_translate.Translate.default_config () in
    let result = Speccc_translate.Translate.specification config texts in
    let formulas =
      List.map
        (fun r -> r.Speccc_translate.Translate.formula)
        result.Speccc_translate.Translate.requirements
    in
    List.iter
      (fun (i, instance) ->
         let text = List.nth texts i in
         match instance with
         | Some instance ->
           Format.printf "[%d] %a@.    %s@." i
             Speccc_patterns.Patterns.pp_instance instance text
         | None -> Format.printf "[%d] (no pattern) %s@." i text)
      (Speccc_patterns.Patterns.classify formulas)
  in
  Cmd.v
    (Cmd.info "patterns"
       ~doc:"Classify each requirement by its specification pattern \
             (Dwyer et al.)")
    Term.(const run $ spec_arg)

(* ---------- lint ---------- *)

(* Lint runs after time abstraction: the tableau-based checks degrade
   on hundreds-deep X chains, exactly the chains Sec. IV-E removes.
   A sound compression (θ' ≥ 1) cannot shorten a chain below
   θ / θ_min, so a spec mixing a 3 s and a 180 s deadline keeps X^60
   chains — intractable for the tableau.  Lint is a pre-filter
   producing findings, not a consistency verdict, so here (and only
   here) the legacy θ' = 0 collapse is acceptable: it keeps the
   checks fast at the cost of approximating relative timing.  The
   verdict-bearing pipeline never sets [allow_zero_theta]. *)
let lintable_formulas formulas =
  match Speccc_timeabs.Timeabs.thetas_of_formulas formulas with
  | [] -> formulas
  | thetas ->
    let solution =
      Speccc_timeabs.Timeabs.solve_analytic ~allow_zero_theta:true
        (Speccc_timeabs.Timeabs.problem ~budget:5 thetas)
    in
    List.map (Speccc_timeabs.Timeabs.apply solution) formulas

let lint_cmd =
  let run source =
    let document = load_document source in
    let texts = Document.texts document in
    let config = Speccc_translate.Translate.default_config () in
    let result = Speccc_translate.Translate.specification config texts in
    let formulas =
      List.map
        (fun r -> r.Speccc_translate.Translate.formula)
        result.Speccc_translate.Translate.requirements
    in
    let findings = Speccc_lint.Lint.check (lintable_formulas formulas) in
    if findings = [] then
      Format.printf "no findings: every requirement is satisfiable, \
                     non-trivial, pairwise compatible and fireable@."
    else begin
      List.iter
        (fun finding ->
           Format.printf "%a@."
             (Speccc_lint.Lint.pp_finding ~requirement_text:(fun i ->
                  Some (Document.id_at document i)))
             finding)
        findings;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Cheap exact checks before synthesis: unsatisfiable or \
             tautological requirements, pairwise conflicts, guards \
             that can never fire")
    Term.(const run $ spec_arg)

(* ---------- report ---------- *)

let report_cmd =
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the markdown report to $(docv) instead of stdout.")
  in
  let run source engine lookahead time_budget output =
    let document = load_document source in
    let options = options_of ~engine ~lookahead ~time_budget () in
    let outcome = Pipeline.run_document ~options document in
    let buffer = Buffer.create 8192 in
    let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
    add "# Consistency report: %s\n\n" source;
    (* 1. requirements and their translations *)
    add "## Requirements and translations\n\n";
    add "| id | kind | requirement | LTL |\n|---|---|---|---|\n";
    List.iteri
      (fun i r ->
         let item = List.nth document i in
         add "| %s | %s | %s | `%s` |\n" item.Document.id
           (if Document.is_assumption item then "assumption" else "guarantee")
           r.Speccc_translate.Translate.text
           (Ltl_print.to_string r.Speccc_translate.Translate.formula))
      outcome.Pipeline.requirements;
    (* 2. patterns *)
    add "\n## Specification patterns\n\n";
    List.iteri
      (fun i (_, instance) ->
         match instance with
         | Some instance ->
           add "- %s: %s\n" (Document.id_at document i)
             (Format.asprintf "%a" Speccc_patterns.Patterns.pp_instance
                instance)
         | None -> add "- %s: (no pattern template)\n"
                     (Document.id_at document i))
      (Speccc_patterns.Patterns.classify outcome.Pipeline.formulas);
    (* 3. lint findings — from the raw translations re-compressed with
       the tableau-friendly legacy abstraction (see [lintable_formulas]);
       the pipeline's own formulas keep sound θ' ≥ 1 chains that the
       tableau cannot afford. *)
    add "\n## Lint findings\n\n";
    let findings =
      Speccc_lint.Lint.check
        (lintable_formulas
           (List.map
              (fun r -> r.Speccc_translate.Translate.formula)
              outcome.Pipeline.requirements))
    in
    if findings = [] then add "None.\n"
    else
      List.iter
        (fun finding ->
           add "- %s\n"
             (Format.asprintf "%a"
                (Speccc_lint.Lint.pp_finding ~requirement_text:(fun i ->
                     Some (Document.id_at document i)))
                finding))
        findings;
    (* 4. time abstraction *)
    add "\n## Time abstraction\n\n";
    (match outcome.Pipeline.time_solution with
     | Some solution ->
       add "```\n%s```\n"
         (Format.asprintf "%a" Speccc_timeabs.Timeabs.pp_solution solution)
     | None -> add "No timing constraints.\n");
    (* 5. partition *)
    add "\n## Input/output partition\n\n```\n%s\n```\n"
      (Format.asprintf "%a" Speccc_partition.Partition.pp
         outcome.Pipeline.partition.Speccc_partition.Partition.partition);
    (match outcome.Pipeline.partition.Speccc_partition.Partition.conflicts with
     | [] -> ()
     | conflicts ->
       add "\nConflicting classifications resolved to output: %s\n"
         (String.concat ", "
            (List.map
               (fun c -> c.Speccc_partition.Partition.prop)
               conflicts)));
    (* 6. verdict *)
    add "\n## Consistency verdict\n\n";
    (match outcome.Pipeline.report.Realizability.verdict with
     | Realizability.Consistent ->
       add "**CONSISTENT** — a controller exists (engine: %s, %.3fs).\n"
         outcome.Pipeline.report.Realizability.engine_used
         outcome.Pipeline.report.Realizability.wall_time;
       (match outcome.Pipeline.report.Realizability.controller with
        | Some machine ->
          add "Controller: %d state(s).\n" machine.Mealy.num_states
        | None -> ())
     | Realizability.Inconsistent ->
       add "**INCONSISTENT** — provably unrealizable (engine: %s).\n"
         outcome.Pipeline.report.Realizability.engine_used
     | Realizability.Inconclusive why -> add "**INCONCLUSIVE** — %s.\n" why);
    (* 7. localization on failure *)
    (match outcome.Pipeline.report.Realizability.verdict with
     | Realizability.Consistent -> ()
     | Realizability.Inconsistent | Realizability.Inconclusive _ ->
       let check_subset formulas =
         let _, r = Pipeline.check_formulas ~options formulas in
         r.Realizability.verdict = Realizability.Consistent
       in
       let check_partition p =
         let _, r =
           Pipeline.check_formulas ~options ~partition:p
             outcome.Pipeline.formulas
         in
         r.Realizability.verdict = Realizability.Consistent
       in
       let suggestion =
         Refine.suggest ~check_subset ~check_partition
           ~partition:outcome.Pipeline.partition
               .Speccc_partition.Partition.partition
           outcome.Pipeline.formulas
       in
       add "\n## Refinement (stage 3)\n\n";
       (match suggestion.Refine.localization with
        | Some localization ->
          add "- culprit: %s\n"
            (Document.id_at document localization.Localize.culprit);
          (match localization.Localize.partners with
           | [] -> ()
           | partners ->
             add "- conflicting with: %s\n"
               (String.concat ", "
                  (List.map (Document.id_at document) partners)))
        | None -> ());
       add "- advice: %s\n" suggestion.Refine.advice);
    let text = Buffer.contents buffer in
    match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "report written to %s@." path
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Produce a full markdown consistency report (translations, \
             patterns, lint, abstraction, partition, verdict, \
             refinement advice)")
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg $ time_budget_arg
          $ output_arg)

(* ---------- monitor ---------- *)

let monitor_cmd =
  let trace_arg =
    let doc =
      "Trace file: one letter per line as comma-separated true \
       propositions (empty line = all false)."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let parse_trace path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line ->
        let line = String.trim line in
        if line <> "" && line.[0] = '#' then go acc
        else
          let letter =
            String.split_on_char ',' line
            |> List.map String.trim
            |> List.filter (( <> ) "")
            |> List.map (fun p -> (p, true))
          in
          go (letter :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let run source trace_path =
    let document = load_document source in
    let config = Speccc_translate.Translate.default_config () in
    let result =
      Speccc_translate.Translate.specification config
        (Document.texts document)
    in
    let letters = parse_trace trace_path in
    Format.printf "trace: %d letters@.@." (List.length letters);
    let any_violation = ref false in
    List.iteri
      (fun i r ->
         let monitor =
           Speccc_monitor.Monitor.create r.Speccc_translate.Translate.formula
         in
         let verdict = Speccc_monitor.Monitor.run monitor letters in
         let id = Document.id_at document i in
         match verdict with
         | Speccc_monitor.Monitor.Violated at ->
           any_violation := true;
           Format.printf "%-10s VIOLATED at letter %d  (%s)@." id at
             r.Speccc_translate.Translate.text
         | Speccc_monitor.Monitor.Satisfied at ->
           Format.printf "%-10s satisfied from letter %d@." id at
         | Speccc_monitor.Monitor.Running residual ->
           Format.printf "%-10s pending: %s@." id
             (Ltl_print.to_string residual))
      result.Speccc_translate.Translate.requirements;
    if !any_violation then exit 1
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay a recorded execution trace against every \
             requirement (runtime verification)")
    Term.(const run $ spec_arg $ trace_arg)

(* ---------- table ---------- *)

let row_sources row =
  match row.Table1.source with
  | Table1.Sentences texts -> `Nl texts
  | Table1.Formulas (formulas, inputs, outputs) ->
    `Formal (formulas, inputs, outputs)

let run_row ?(lookahead = 6) row =
  let start = Unix.gettimeofday () in
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Symbolic;
      lookahead }
  in
  let formulas, partition, report =
    match row_sources row with
    | `Nl texts ->
      let outcome = Pipeline.run ~options texts in
      ( outcome.Pipeline.formulas,
        outcome.Pipeline.partition.Speccc_partition.Partition.partition,
        outcome.Pipeline.report )
    | `Formal (formulas, inputs, outputs) ->
      let partition =
        { Speccc_partition.Partition.inputs; outputs }
      in
      let _, report = Pipeline.check_formulas ~options ~partition formulas in
      (formulas, partition, report)
  in
  let elapsed = Unix.gettimeofday () -. start in
  (formulas, partition, report, elapsed)

let verdict_string = function
  | Realizability.Consistent -> "consistent"
  | Realizability.Inconsistent -> "INCONSISTENT"
  | Realizability.Inconclusive why -> "inconclusive: " ^ why

let table_cmd =
  let rows_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ]
           ~doc:"Run a single row, e.g. $(b,CARA:0) or $(b,Robot:3).")
  in
  let lookahead_arg =
    Arg.(value & opt int 6 & info [ "lookahead" ] ~doc:"Symbolic lookahead.")
  in
  let run only lookahead =
    let selected =
      match only with
      | None -> Table1.rows
      | Some key ->
        List.filter
          (fun r ->
             String.lowercase_ascii
               (r.Table1.group ^ ":" ^ r.Table1.row_id)
             = String.lowercase_ascii key)
          Table1.rows
    in
    Format.printf "%-6s %-5s %-35s %8s %4s %4s %8s  %s@." "Group" "No."
      "Specification" "formulas" "in" "out" "time(s)" "verdict";
    List.iter
      (fun row ->
         let formulas, partition, report, elapsed = run_row ~lookahead row in
         let fixed_note =
           match row.Table1.expected, report.Realizability.verdict with
           | Table1.Inconsistent_until_partition_fix prop,
             (Realizability.Inconsistent | Realizability.Inconclusive _) ->
             (* stage 3: adjust the partition and re-check *)
             let adjusted =
               Speccc_partition.Partition.adjust partition
                 ~to_output:[ prop ] ()
             in
             let options =
               { (Pipeline.default_options ()) with
                 Pipeline.engine = Realizability.Symbolic;
                 lookahead }
             in
             let _, report' =
               Pipeline.check_formulas ~options ~partition:adjusted formulas
             in
             Printf.sprintf " -> after partition fix (%s): %s" prop
               (verdict_string report'.Realizability.verdict)
           | _ -> ""
         in
         Format.printf "%-6s %-5s %-35s %8d %4d %4d %8.2f  %s%s@."
           row.Table1.group row.Table1.row_id row.Table1.name
           (List.length formulas)
           (List.length partition.Speccc_partition.Partition.inputs)
           (List.length partition.Speccc_partition.Partition.outputs)
           elapsed
           (verdict_string report.Realizability.verdict)
           fixed_note)
      selected
  in
  Cmd.v (Cmd.info "table" ~doc:"Reproduce Table I")
    Term.(const run $ rows_arg $ lookahead_arg)

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let n_arg =
    Arg.(value & opt int 200
         & info [ "n" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
           ~doc:"Generator seed; the whole campaign is deterministic in \
                 it (fuel-bounded engines, no wall-clock dependence).")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Persist every shrunk divergence as a replayable \
                 $(b,.corpus) entry under $(docv).")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
           ~doc:"Also write the summary (cases, findings, shrunk \
                 reproducers) to $(docv).")
  in
  let buggy_arg =
    Arg.(value & flag
         & info [ "buggy-timeabs" ]
           ~doc:"Re-enable the historical θ'=0 collapse in the \
                 time-abstraction solvers without relaxing the oracle — \
                 demonstrates that the metamorphic oracle catches the \
                 pre-fix bug.  Expect divergences.")
  in
  let run n seed corpus report buggy =
    let module D = Speccc_diffcheck.Diffcheck in
    let trace = Sys.getenv_opt "SPECCC_FUZZ_TRACE" <> None in
    let progress index case =
      if trace then
        Format.eprintf "fuzz: case %d/%d (%s)@.%a@." (index + 1) n
          (D.kind_name case) Speccc_diffcheck.Case.pp case
      else if (index + 1) mod 50 = 0 || index + 1 = n then
        Format.eprintf "fuzz: case %d/%d (%s)@." (index + 1) n
          (D.kind_name case)
    in
    let summary =
      D.run ~buggy_timeabs:buggy ?corpus_dir:corpus ~progress ~n ~seed ()
    in
    Format.printf "%a@." D.pp_summary summary;
    (match report with
     | Some file ->
       let oc = open_out file in
       let ppf = Format.formatter_of_out_channel oc in
       Format.fprintf ppf "%a@." D.pp_summary summary;
       close_out oc
     | None -> ());
    if summary.D.findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential/metamorphic fuzzing of the checking pipeline"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generates random LTL specifications, structured-English \
              documents, time-abstraction problems and partition \
              adjustments; cross-checks every realizability engine \
              against the others, against certificate replay and \
              against exact references; and checks the metamorphic \
              laws (NNF/hash-consing invariance, the antonym-merge \
              law, the time-abstraction constraint system, partition \
              disjointness).  Divergences are shrunk to minimal \
              reproducers.  Exit code 1 when any divergence is found.";
         ])
    Term.(const run $ n_arg $ seed_arg $ corpus_arg $ report_arg $ buggy_arg)

let chaos_cmd =
  let module C = Speccc_chaos.Chaos in
  let module W = Speccc_chaos.Workload in
  let workload_arg =
    Arg.(value & opt string "batch"
         & info [ "workload" ] ~docv:"KIND"
           ~doc:"Workload to explore: $(b,batch) (journalled batch run \
                 with a persistent store), $(b,serve) (closed-loop \
                 single-worker soak) or $(b,route) (2-shard routed soak \
                 with real worker processes).")
  in
  let trace_arg =
    Arg.(value & flag
         & info [ "trace" ]
           ~doc:"Phase 1 only: run the workload clean and print the \
                 ordered fault-checkpoint trace with occurrence counts.")
  in
  let explore_arg =
    Arg.(value & flag
         & info [ "explore" ]
           ~doc:"Phase 2: enumerate single-site perturbations (and \
                 seeded pairs) over the clean trace, replay each \
                 schedule, check the recovery invariants, and \
                 delta-debug minimize any failure.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the paired-perturbation sampler; the whole \
                 exploration is deterministic in it.")
  in
  let pairs_arg =
    Arg.(value & opt int 5
         & info [ "pairs" ] ~docv:"N"
           ~doc:"Number of seeded two-perturbation schedules to add on \
                 top of the single-site sweep.")
  in
  let occ_arg =
    Arg.(value & opt int 3
         & info [ "max-occ" ] ~docv:"N"
           ~doc:"Explore at most the first $(docv) occurrences of each \
                 site (capped sites are reported, not silently dropped).")
  in
  let sites_arg =
    Arg.(value & opt_all string []
         & info [ "site" ] ~docv:"CHECKPOINT"
           ~doc:"Restrict the sweep to this checkpoint (repeatable); \
                 see $(b,speccc --list-faults).")
  in
  let max_schedules_arg =
    Arg.(value & opt int 0
         & info [ "max-schedules" ] ~docv:"N"
           ~doc:"Replay at most $(docv) schedules (0 = no cap); the \
                 truncation is reported.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Persist every minimized failing schedule as a \
                 replayable $(b,.chaos) entry under $(docv).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay one $(b,.chaos) corpus entry: clean oracle run, \
                 perturbed run, invariant suite and counter \
                 requirements.  Exit 0 when the entry's expectation \
                 holds.")
  in
  let run workload trace explore seed pairs occ sites max_schedules corpus
      replay =
    let binary = Sys.executable_name in
    let log s = Format.eprintf "%s@." s in
    match replay with
    | Some file -> (
        match C.load_entry file with
        | Error e ->
            Format.eprintf "chaos: %s: %s@." file e;
            exit 3
        | Ok entry -> (
            match C.replay ~binary entry with
            | Ok notes ->
                List.iter (fun n -> Format.printf "  %s@." n) notes;
                Format.printf "chaos: %s holds@." (Filename.basename file)
            | Error problems ->
                List.iter
                  (fun p -> Format.eprintf "chaos: %s: %s@." file p)
                  problems;
                exit 1))
    | None -> (
        let w =
          match W.kind_of_string workload with
          | Some kind -> W.seed ~kind ()
          | None ->
              Format.eprintf "chaos: unknown workload %S@." workload;
              exit 3
        in
        if trace then begin
          let clean, tr = C.run_clean ~binary w in
          (match clean.W.crashed with
           | Some e ->
               Format.eprintf "chaos: clean run crashed: %s@." e;
               exit 1
           | None -> ());
          Format.printf "clean %s trace (%d checkpoint hits):@." workload
            (List.length tr);
          List.iteri
            (fun i site -> Format.printf "  %4d  %s@." i site)
            tr;
          Format.printf "per-site occurrence counts:@.";
          List.iter
            (fun (site, n) -> Format.printf "  %-24s x%d@." site n)
            (C.site_counts tr)
        end
        else if explore then begin
          let report =
            C.explore ~binary ~sites ~occ_cap:occ ~pairs ~max_schedules
              ?corpus_dir:corpus ~seed ~log w
          in
          Format.printf "%a" C.pp_report report;
          if report.C.violations <> [] then exit 1
        end
        else begin
          Format.eprintf
            "chaos: nothing to do (pass --trace, --explore or --replay)@.";
          exit 3
        end)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Deterministic trace-and-perturb fault-schedule exploration"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs a workload clean while recording the ordered stream \
              of fault checkpoints it announces, then enumerates \
              perturbations of that trace (crash, stall, torn write at \
              each site occurrence; SIGKILL of route workers; seeded \
              pairs), replays each through the seeded fault plans, and \
              asserts end-to-end recovery invariants: definite verdicts \
              match the clean run, no acknowledged journal/store write \
              is lost after recovery, responses are exactly-once and \
              within the watchdog bound, and recovery counters are \
              booked consistently with the injections.  Failing \
              schedules are minimized and persisted as replayable \
              $(b,.chaos) corpus entries.  Exit code 1 when an \
              invariant is violated.";
         ])
    Term.(const run $ workload_arg $ trace_arg $ explore_arg $ seed_arg
          $ pairs_arg $ occ_arg $ sites_arg $ max_schedules_arg
          $ corpus_arg $ replay_arg)

(* ---------- watch ---------- *)

(* A long-lived incremental session over one document: re-check on
   file change (mtime polling) or on JSONL edit commands from stdin,
   answering one JSONL verdict event per check.  The heavy lifting —
   per-sentence parse caching, arena-block reuse, warm-started joint
   fixpoints, localization memoization — lives in
   [Speccc_core.Watch]. *)
let watch_cmd =
  let module J = Speccc_server.Jsonl in
  let poll_arg =
    Arg.(value & opt float 0.5
         & info [ "poll" ]
           ~doc:"Seconds between file modification-time polls (ignored \
                 for built-in specifications).")
  in
  let emit json =
    print_string (J.to_string json);
    print_newline ();
    flush stdout
  in
  let error_event seq message =
    emit (J.Obj [ ("event", J.Str "error"); ("seq", J.Num (float_of_int seq));
                  ("message", J.Str message) ])
  in
  let verdict_event (checked : Watch.checked) =
    let report = checked.Watch.outcome.Pipeline.report in
    let verdict, detail =
      match report.Realizability.verdict with
      | Realizability.Consistent -> ("consistent", None)
      | Realizability.Inconsistent -> ("inconsistent", None)
      | Realizability.Inconclusive why -> ("inconclusive", Some why)
    in
    let reuse = checked.Watch.reuse in
    emit
      (J.Obj
         ([ ("event", J.Str "verdict");
            ("seq", J.Num (float_of_int checked.Watch.seq));
            ("verdict", J.Str verdict) ]
          @ (match detail with
             | Some why -> [ ("detail", J.Str why) ]
             | None -> [])
          @ [ ("engine", J.Str report.Realizability.engine_used);
              ("wall_ms", J.Num (checked.Watch.wall_s *. 1000.)) ]
          @ (match checked.Watch.culprit_id with
             | Some id ->
               [ ("culprit", J.Str id);
                 ("partners",
                  J.Arr
                    (List.map (fun p -> J.Str p) checked.Watch.partner_ids)) ]
             | None -> [])
          @ [ ("reused",
               J.Obj
                 [ ("verdict_cached", J.Bool reuse.Watch.verdict_cached);
                   ("parse_hits", J.Num (float_of_int reuse.Watch.parse_hits));
                   ("blocks", J.Num (float_of_int reuse.Watch.blocks_reused));
                   ("solo", J.Num (float_of_int reuse.Watch.solo_reused));
                   ("invalidated",
                    J.Num (float_of_int reuse.Watch.invalidated)) ]) ]))
  in
  let stats_event session =
    let c = Watch.counters session in
    let engine = c.Watch.engine in
    let num n = J.Num (float_of_int n) in
    emit
      (J.Obj
         [ ("event", J.Str "stats");
           ("checks", num c.Watch.checks);
           ("verdict_hits", num c.Watch.verdict_hits);
           ("blocks_built", num engine.Bounded.built_blocks);
           ("blocks_reused", num engine.Bounded.reused_blocks);
           ("solo_solved", num engine.Bounded.solved_solo);
           ("solo_reused", num engine.Bounded.reused_solo);
           ("localize_entries", num c.Watch.localize_entries);
           ("invalidated", num c.Watch.invalidated_total) ])
  in
  let run source engine lookahead time_budget poll stats =
    let options = options_of ~engine ~lookahead ~time_budget () in
    let session = Watch.create ~options (load_document source) in
    let is_file = Sys.file_exists source in
    let mtime () = if is_file then (Unix.stat source).Unix.st_mtime else 0. in
    let last_mtime = ref (mtime ()) in
    let seq = ref 0 in
    let check () =
      incr seq;
      match Watch.check session with
      | checked -> verdict_event checked
      | exception Speccc_nlp.Parser.Error message ->
        error_event !seq ("parse error: " ^ message)
    in
    (* Stdin is a line protocol; buffer reads ourselves so several
       commands arriving in one burst are all drained before the next
       select. *)
    let pending = Buffer.create 256 in
    let eof = ref false in
    let next_line () =
      let contents = Buffer.contents pending in
      match String.index_opt contents '\n' with
      | Some i ->
        Buffer.clear pending;
        Buffer.add_string pending
          (String.sub contents (i + 1) (String.length contents - i - 1));
        Some (String.sub contents 0 i)
      | None -> None
    in
    let fill () =
      let chunk = Bytes.create 4096 in
      match Unix.read Unix.stdin chunk 0 4096 with
      | 0 -> eof := true
      | n -> Buffer.add_subbytes pending chunk 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let quit = ref false in
    let on_command line =
      let trimmed = String.trim line in
      if trimmed <> "" then
        match J.parse trimmed with
        | Error message -> error_event !seq ("bad command: " ^ message)
        | Ok json ->
          let id () = J.str_member "id" json in
          let text () = J.str_member "text" json in
          (match J.str_member "cmd" json with
           | Some "edit" ->
             (match (id (), text ()) with
              | Some id, Some text ->
                (match Watch.edit session ~id ~text with
                 | Ok () -> check ()
                 | Error message -> error_event !seq message)
              | _ -> error_event !seq "edit needs \"id\" and \"text\"")
           | Some "insert" ->
             (match (id (), text ()) with
              | Some id, Some text ->
                let at = J.int_member "at" json in
                (match Watch.insert ?at session ~id ~text with
                 | Ok () -> check ()
                 | Error message -> error_event !seq message)
              | _ -> error_event !seq "insert needs \"id\" and \"text\"")
           | Some "delete" ->
             (match id () with
              | Some id ->
                (match Watch.delete session ~id with
                 | Ok () -> check ()
                 | Error message -> error_event !seq message)
              | None -> error_event !seq "delete needs \"id\"")
           | Some "check" -> check ()
           | Some "reload" ->
             if is_file then begin
               Watch.set_document session (Document.of_file source);
               last_mtime := mtime ();
               check ()
             end
             else error_event !seq "reload: not watching a file"
           | Some "stats" -> stats_event session
           | Some "quit" -> quit := true
           | Some other -> error_event !seq ("unknown command " ^ other)
           | None -> error_event !seq "missing \"cmd\"")
    in
    check ();
    while not (!quit || !eof) do
      (match next_line () with
       | Some line -> on_command line
       | None ->
         let timeout = if is_file then poll else -1. in
         (match Unix.select [ Unix.stdin ] [] [] timeout with
          | [ _ ], _, _ -> fill ()
          | _ ->
            if is_file then begin
              let now = mtime () in
              if now <> !last_mtime then begin
                last_mtime := now;
                match Document.of_file source with
                | document -> Watch.set_document session document; check ()
                | exception Sys_error message -> error_event !seq message
              end
            end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
    done;
    if stats then stats_event session
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Incrementally re-check a live document"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Keeps a long-lived checking session over one \
              specification and re-checks it when it changes — on \
              file modification (polled), or on JSONL commands from \
              stdin: {\"cmd\":\"edit\",\"id\":\"R3\",\"text\":\"...\"}, \
              insert (optional \"at\"), delete, check, reload, stats, \
              quit.  Each re-check reuses everything an edit did not \
              touch: sentence parses, the explicit engine's arena \
              blocks and solo game frontiers (the joint fixpoint \
              warm-starts next to its previous solution), localization \
              subset verdicts and whole-document verdicts.  Verdicts \
              are bit-identical to a cold $(b,speccc check) run.  One \
              JSONL event per check on stdout.";
         ])
    Term.(const run $ spec_arg $ engine_arg $ lookahead_arg
          $ time_budget_arg $ poll_arg $ stats_arg)

(* Exit codes: 0 consistent / success, 1 inconsistent (or lint /
   monitor findings), 2 unknown or degraded verdict, 3 usage or parse
   error.  Cmdliner reports its own CLI errors as 124; fold them into
   3, and confine user-input exceptions (unknown spec, malformed
   sentence, bad flag value) to 3 as well. *)
let () =
  let list_faults_arg =
    Arg.(value & flag
         & info [ "list-faults" ]
           ~doc:"List the registered fault-injection checkpoint names \
                 (the targets $(b,Speccc_runtime.Fault.install) trigger \
                 plans name) and exit.")
  in
  let default =
    let run list_faults =
      if list_faults then begin
        List.iter
          (fun (name, description) ->
             Format.printf "%-28s %s@." name description)
          (Speccc_runtime.Fault.Checkpoint.all ());
        `Ok ()
      end
      else `Help (`Pager, None)
    in
    Term.(ret (const run $ list_faults_arg))
  in
  let info =
    Cmd.info "speccc" ~version:"1.0.0"
      ~doc:"Formal consistency checking over specifications in natural \
            languages (SpecCC)"
  in
  let group =
    Cmd.group ~default info
      [ translate_cmd; tree_cmd; check_cmd; batch_cmd; serve_cmd;
        route_cmd; localize_cmd; synth_cmd; lint_cmd; monitor_cmd;
        report_cmd; testgen_cmd; patterns_cmd; table_cmd; fuzz_cmd;
        chaos_cmd; watch_cmd ]
  in
  (* cmdliner reserves the double dash for long names; accept the
     documented "--n" spelling anyway. *)
  let argv =
    Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv
  in
  let code =
    try Cmd.eval ~catch:false ~argv group with
    | Failure message | Sys_error message ->
      Format.eprintf "speccc: %s@." message;
      3
    | Invalid_argument message ->
      Format.eprintf "speccc: invalid argument: %s@." message;
      3
    | Speccc_nlp.Parser.Error message ->
      Format.eprintf "speccc: parse error: %s@." message;
      3
    | exn ->
      Format.eprintf "speccc: internal error: %s@." (Printexc.to_string exn);
      Cmd.Exit.internal_error
  in
  exit (if code = Cmd.Exit.cli_error then 3 else code)
