(* A hardware-flavoured case study: a two-master bus arbiter specified
   in structured English (AMBA-style request/grant with a sticky-
   request environment assumption), synthesized, minimized, and emitted
   as both IEC 61131-3 Structured Text and Verilog.

   Run with:  dune exec examples/bus_arbiter.exe *)

open Speccc_core
open Speccc_synthesis
open Speccc_casestudies

let () =
  let inst = Arbiter.instance ~masters:2 in
  Format.printf "=== bus arbiter (%d masters) ===@." inst.Arbiter.masters;
  List.iter
    (fun (id, text) -> Format.printf "  %s: %s@." id text)
    inst.Arbiter.document;

  let document =
    List.mapi
      (fun line (id, text) -> { Document.id; text; line = line + 1 })
      inst.Arbiter.document
  in
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let outcome = Pipeline.run_document ~options document in
  Format.printf "@.%a@.@." Pipeline.pp_outcome outcome;

  match outcome.Pipeline.report.Realizability.controller with
  | None -> Format.printf "no controller extracted@."
  | Some machine ->
    Format.printf "arbiter controller: %d state(s) after minimization@.@."
      machine.Mealy.num_states;
    (* both requesters held high: grants must alternate (mutual
       exclusion + response) *)
    let both = [ ("request_one", true); ("request_two", true) ] in
    let letters = Mealy.run machine (List.init 12 (fun _ -> both)) in
    List.iteri
      (fun step letter ->
         let grants =
           List.filter
             (fun (p, b) ->
                b && String.length p >= 5 && String.sub p 0 5 = "grant")
             letter
         in
         Format.printf "  step %d grants: {%s}@." step
           (String.concat ", " (List.map fst grants)))
      letters;
    Format.printf
      "  (bounded synthesis procrastinates: grants appear as the \
       counting bound forces them, then the pattern repeats)@.";

    Format.printf "@.--- IEC 61131-3 Structured Text ---@.%s@."
      (Codegen.to_structured_text ~name:"bus_arbiter" machine);
    Format.printf "--- Verilog ---@.%s@."
      (Codegen.to_verilog ~name:"bus_arbiter" machine)
