#!/usr/bin/env bash
# Bounded chaos exploration for CI: a full single-site sweep over the
# seed batch workload (journal + store + recovery invariants) and a
# kill/failover pass over the 2-shard routed soak, both with a fixed
# seed so the schedule set and every verdict are reproducible bit for
# bit.  Any invariant violation is delta-debug minimized and written
# to the corpus directory (uploaded as a CI artifact) — the gate is
# zero unminimized reports.  Finishes by replaying the pinned .chaos
# corpus entries.
#
# Usage: scripts/chaos_smoke.sh [path/to/speccc_cli.exe] [corpus-out-dir]
set -euo pipefail

BIN="${1:-_build/default/bin/speccc_cli.exe}"
OUT="${2:-/tmp/chaos-findings}"
test -x "$BIN" || { echo "no binary at $BIN (run dune build first)"; exit 3; }
mkdir -p "$OUT"

echo "== chaos: single-site sweep over the batch workload"
"$BIN" chaos --workload batch --explore --seed 42 --pairs 3 \
  --corpus "$OUT" | tee "$OUT/batch-report.txt"

echo "== chaos: kill/failover sweep over the 2-shard route workload"
# the in-process single-site sweep is covered by the batch pass above;
# here the budget goes to the real-process kills and a pair sample
"$BIN" chaos --workload route --explore --seed 42 --pairs 2 \
  --max-occ 2 --corpus "$OUT" | tee "$OUT/route-report.txt"

echo "== chaos: replaying the pinned corpus entries"
for entry in test/corpus/*.chaos; do
  echo "-- $entry"
  "$BIN" chaos --replay "$entry"
done

echo "chaos smoke: all invariants held"
