#!/usr/bin/env python3
"""Bench-smoke regression gate.

Compares a freshly generated BENCH_speccc.json against a baseline (the
committed snapshot) and fails when any matching table1 row or localize
point got more than TOLERANCE times slower.  Only keys present in both
files are compared, so the reduced smoke quota (fewer rows, fewer
localize sizes) diffs cleanly against a full baseline.

Environment:
  SPECCC_BENCH_TOLERANCE  slowdown factor that fails the gate
                          (default 2.0)
  SPECCC_BENCH_MIN_DELTA  absolute slowdown floor in seconds; smaller
                          deltas never fail, whatever the ratio
                          (default 0.1) -- sub-millisecond rows would
                          otherwise trip on scheduler noise

Usage: bench_regression.py BASELINE CURRENT [REPORT]
Exit:  0 ok, 1 regression found, 2 usage/parse error.
"""

import json
import os
import sys


def die(message):
    print(f"bench_regression: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        die(f"cannot read {path}: {exc}")


def entries(snapshot):
    """(kind, key) -> seconds for every comparable point."""
    points = {}
    for row in snapshot.get("table1", []):
        points[("table1", row["row"])] = float(row["seconds"])
    for point in snapshot.get("localize", []):
        points[("localize", f"n={point['n']}")] = float(point["seconds"])
    edit = snapshot.get("edit_latency", {})
    for field in ("incr_p50_ms", "incr_p95_ms", "cold_p50_ms", "cold_p95_ms"):
        if field in edit:
            # per-edit walls are milliseconds; compare in seconds like
            # every other point so the absolute floor keeps meaning
            points[("edit_latency", field)] = float(edit[field]) / 1000.0
    return points


def main():
    if len(sys.argv) not in (3, 4):
        die("usage: bench_regression.py BASELINE CURRENT [REPORT]")
    tolerance = float(os.environ.get("SPECCC_BENCH_TOLERANCE", "2.0"))
    min_delta = float(os.environ.get("SPECCC_BENCH_MIN_DELTA", "0.1"))
    baseline = entries(load(sys.argv[1]))
    current = entries(load(sys.argv[2]))

    lines = [
        f"bench regression gate: tolerance {tolerance:.2f}x, "
        f"absolute floor {min_delta:.3f}s",
        f"{'point':<28} {'baseline':>10} {'current':>10} {'ratio':>8}",
    ]
    regressions = []
    compared = 0
    for key in sorted(current):
        if key not in baseline:
            continue
        compared += 1
        base, now = baseline[key], current[key]
        ratio = now / base if base > 0 else float("inf")
        bad = now - base > min_delta and ratio > tolerance
        if bad:
            regressions.append(key)
        lines.append(
            f"{key[0] + ' ' + key[1]:<28} {base:>9.4f}s {now:>9.4f}s "
            f"{ratio:>7.2f}x{'  << REGRESSION' if bad else ''}"
        )
    if compared == 0:
        lines.append("no comparable points (baseline/current key mismatch)")
    lines.append(
        f"{compared} points compared, {len(regressions)} regression(s)"
    )

    report = "\n".join(lines) + "\n"
    print(report, end="")
    if len(sys.argv) == 4:
        with open(sys.argv[3], "w") as handle:
            handle.write(report)
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
