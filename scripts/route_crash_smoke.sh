#!/usr/bin/env bash
# Crash-recovery smoke for `speccc route`: a 2-shard routed pool with
# per-shard verdict stores; one worker is SIGKILLed mid-soak.  Every
# request must still be answered with the oracle verdict (failover),
# the victim must be respawned, and a warm restart over the same
# stores must answer the repeated specs from disk (attempts: 0).
#
# Usage: scripts/route_crash_smoke.sh [path/to/speccc_cli.exe]
set -euo pipefail

BIN="${1:-_build/default/bin/speccc_cli.exe}"
test -x "$BIN" || { echo "no binary at $BIN (run dune build first)"; exit 3; }

dir=$(mktemp -d)
cleanup() {
  exec 3>&- 2>/dev/null || true
  [ -n "${ROUTER:-}" ] && kill "$ROUTER" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

CONS='If the start button is pressed, the pump is started.'
INCO='If the pump is lost, the alarm is triggered.\nIf the pump is lost, the alarm is not triggered.'

start_router() { # $1 = output file
  mkfifo "$dir/in"
  "$BIN" route --shards 2 --workers 1 --request-deadline 5 --grace 1 \
    --request-timeout 15 --socket-dir "$dir/socks" --store-dir "$dir/store" \
    --stats < "$dir/in" > "$1" 2>> "$dir/route.log" &
  ROUTER=$!
  exec 3> "$dir/in"
}

send() { printf '%s\n' "$1" >&3; }

check() { # $1 = id, $2 = doc
  send "{\"id\":$1,\"doc\":\"$2\"}"
}

await() { # $1 = id pattern, $2 = file — wait until a response line lands
  for _ in $(seq 150); do
    grep -q "\"id\":$1[,}]" "$2" && return 0
    sleep 0.2
  done
  echo "timed out waiting for response id=$1"; cat "$2"; exit 1
}

soak() { # send requests 1..10, odd = consistent, even = inconsistent
  for i in 1 2 3 4 5 6 7 8 9 10; do
    if [ $((i % 2)) -eq 1 ]; then check "$i" "$CONS"; else check "$i" "$INCO"; fi
  done
}

oracle() { # $1 = output file — every id answered with the right verdict
  for i in 1 2 3 4 5 6 7 8 9 10; do
    if [ $((i % 2)) -eq 1 ]; then want=consistent; else want=inconsistent; fi
    grep -q "\"id\":$i,.*\"verdict\":\"$want\"" "$1" \
      || { echo "id $i: expected $want"; cat "$1"; exit 1; }
  done
  if grep -q '"error":"unavailable"' "$1"; then
    echo "a request went unanswered"; cat "$1"; exit 1
  fi
}

# ---- run 1: cold pool, SIGKILL one worker mid-soak ----
out1="$dir/out1.jsonl"
start_router "$out1"

# first wave, then learn a victim pid from the aggregated health
for i in 1 2 3 4 5; do
  if [ $((i % 2)) -eq 1 ]; then check "$i" "$CONS"; else check "$i" "$INCO"; fi
done
send '{"id":100,"cmd":"health"}'
await 100 "$out1"
victim=$(grep '"id":100' "$out1" | grep -o '"pid":[0-9]*' | head -1 | cut -d: -f2)
test -n "$victim" || { echo "no worker pid in health"; cat "$out1"; exit 1; }
kill -9 "$victim"
echo "SIGKILLed worker $victim mid-soak"

# second wave lands on a pool with a corpse in it
for i in 6 7 8 9 10; do
  if [ $((i % 2)) -eq 1 ]; then check "$i" "$CONS"; else check "$i" "$INCO"; fi
done
# a health fan-out probes every shard, forcing the victim's respawn
# even if no check happened to route to it
send '{"id":102,"cmd":"health"}'
await 102 "$out1"
send '{"id":103,"cmd":"shutdown"}'
exec 3>&-
rm -f "$dir/in"
wait "$ROUTER"; ROUTER=

oracle "$out1"
grep -Eq 'respawns: [1-9]' "$dir/route.log" \
  || { echo "victim was not respawned"; cat "$dir/route.log"; exit 1; }
grep -q 'unavailable: 0' "$dir/route.log" \
  || { echo "requests went unavailable"; cat "$dir/route.log"; exit 1; }
echo "run 1 OK: every request answered through the crash"

# ---- run 2: warm restart over the same stores ----
out2="$dir/out2.jsonl"
start_router "$out2"
soak
send '{"id":103,"cmd":"shutdown"}'
exec 3>&-
wait "$ROUTER"; ROUTER=

oracle "$out2"
hits=$(grep -c '"attempts":0' "$out2" || true)
test "$hits" -ge 9 \
  || { echo "only $hits/10 repeats served from the store"; cat "$out2"; exit 1; }
echo "run 2 OK: $hits/10 repeats answered from the verdict store"
echo "route crash-recovery smoke passed"
