#!/usr/bin/env bash
# Watch-mode smoke: drive one `speccc watch` session through a 10-edit
# JSONL script (consistency-preserving single-sentence edits on a
# CARA-sized document) and assert that
#   - every edit produced a verdict event, all of them consistent,
#   - the session actually reused engine state (arena blocks),
#   - the p95 per-edit wall stays under the latency budget.
#
# Usage: scripts/watch_smoke.sh [path/to/speccc_cli.exe]
# Env:   SPECCC_WATCH_BUDGET_MS  p95 budget in milliseconds (default 1000)
set -euo pipefail

BIN="${1:-_build/default/bin/speccc_cli.exe}"
test -x "$BIN" || { echo "no binary at $BIN (run dune build first)"; exit 3; }
BUDGET_MS="${SPECCC_WATCH_BUDGET_MS:-1000}"

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

doc="$dir/live.spec"
cat > "$doc" <<'EOF'
R1: If the button is pressed, the pump is started.
R2: If the occlusion is present, the alarm is triggered.
R3: If the pressure is high, the valve is opened.
R4: If the signal is low, the monitor is enabled.
R5: If the button is pressed, the monitor is enabled.
R6: If the occlusion is present, the valve is opened.
R7: If the pressure is high, the alarm is triggered.
R8: If the signal is low, the pump is started.
R9: If the button is pressed, the alarm is triggered.
R10: If the occlusion is present, the pump is started.
R11: If the pressure is high, the monitor is enabled.
R12: If the signal is low, the valve is opened.
R13: When the pump is started, eventually the cuff is inflated.
R14: When the valve is opened, eventually the cuff is inflated.
EOF

out="$dir/out.jsonl"
{
  printf '%s\n' \
    '{"cmd":"edit","id":"R5","text":"If the button is pressed, the valve is opened."}' \
    '{"cmd":"edit","id":"R9","text":"If the button is pressed, the cuff is inflated."}' \
    '{"cmd":"edit","id":"R11","text":"If the pressure is high, the pump is started."}' \
    '{"cmd":"edit","id":"R12","text":"If the signal is low, the alarm is triggered."}' \
    '{"cmd":"edit","id":"R2","text":"If the occlusion is present, the monitor is enabled."}' \
    '{"cmd":"edit","id":"R7","text":"If the pressure is high, the cuff is inflated."}' \
    '{"cmd":"edit","id":"R4","text":"If the signal is low, the pump is started."}' \
    '{"cmd":"edit","id":"R14","text":"When the monitor is enabled, eventually the cuff is inflated."}' \
    '{"cmd":"edit","id":"R6","text":"If the occlusion is present, the alarm is triggered."}' \
    '{"cmd":"edit","id":"R1","text":"If the button is pressed, the monitor is enabled."}' \
    '{"cmd":"stats"}' \
    '{"cmd":"quit"}'
} | "$BIN" watch "$doc" --engine explicit > "$out"

echo "--- session events"
cat "$out"
echo "---"

python3 - "$out" "$BUDGET_MS" <<'PY'
import json, math, sys

events = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
budget_ms = float(sys.argv[2])

verdicts = [e for e in events if e.get("event") == "verdict"]
# seq 1 is the initial (cold) check; the 10 edits follow
assert len(verdicts) == 11, f"expected 11 verdict events, got {len(verdicts)}"
bad = [v for v in verdicts if v["verdict"] != "consistent"]
assert not bad, f"non-consistent verdicts: {bad}"

edits = verdicts[1:]
assert all(v["reused"]["blocks"] > 0 for v in edits), \
    "an edit re-check reused no arena blocks"
assert all(not v["reused"]["verdict_cached"] for v in edits), \
    "an edit unexpectedly hit the whole-document verdict cache"

walls = sorted(v["wall_ms"] for v in edits)
p95 = walls[max(0, min(len(walls) - 1, math.ceil(0.95 * len(walls)) - 1))]
print(f"p95 edit latency: {p95:.3f}ms (budget {budget_ms:.0f}ms)")
assert p95 < budget_ms, f"p95 {p95:.3f}ms over budget {budget_ms:.0f}ms"

stats = [e for e in events if e.get("event") == "stats"]
assert stats and stats[0]["blocks_reused"] > 0, "session reused no blocks"
print("watch smoke: OK")
PY
