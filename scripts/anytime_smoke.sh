#!/usr/bin/env bash
# Anytime-verdict smoke for `speccc serve`: a worker is wedged by an
# injected delay *after* the symbolic engine has published its first
# fixpoint-layer snapshot, so the watchdog's partial verdict must
# carry a `progress` object (the frontier, not a bare timeout).  A
# retry of the same document must warm-replay that snapshot (health
# reports the preemption and the resume) and complete with the real
# verdict.
#
# Usage: scripts/anytime_smoke.sh [path/to/speccc_cli.exe]
set -euo pipefail

BIN="${1:-_build/default/bin/speccc_cli.exe}"
test -x "$BIN" || { echo "no binary at $BIN (run dune build first)"; exit 3; }

dir=$(mktemp -d)
cleanup() {
  exec 3>&- 2>/dev/null || true
  [ -n "${SERVER:-}" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

# Unrealizable on purpose: the winning region must actually shrink,
# so the symbolic fixpoint needs a second round — which is where the
# injected delay wedges it (a one-round spec never reaches hit #1).
DOC='If the pump is lost, the alarm is triggered.\nIf the pump is lost, the alarm is not triggered.'

out="$dir/out.jsonl"
mkfifo "$dir/in"
# bdd.fixpoint fires at the top of every symbolic fixpoint round,
# *after* the previous round published its layer snapshot — so a
# delay on the second hit wedges the engine with a frontier already
# in the slot.  Deadline 0.5 + grace 0.5 < delay 3: the watchdog
# must hard-preempt.
"$BIN" serve --workers 1 --request-deadline 0.5 --grace 0.5 \
  --store "$dir/anytime.store" --stats \
  --inject 'bdd.fixpoint@1=delay:3' \
  < "$dir/in" > "$out" 2> "$dir/serve.log" &
SERVER=$!
exec 3> "$dir/in"

send() { printf '%s\n' "$1" >&3; }

await() { # $1 = id — wait until a response line lands
  for _ in $(seq 150); do
    grep -q "\"id\":$1[,}]" "$out" && return 0
    sleep 0.2
  done
  echo "timed out waiting for response id=$1"; cat "$out" "$dir/serve.log"; exit 1
}

fail() { echo "$1"; cat "$out" "$dir/serve.log"; exit 1; }

# ---- preemption: the partial verdict must carry the frontier ----
send "{\"id\":1,\"doc\":\"$DOC\"}"
await 1
line1=$(grep '"id":1[,}]' "$out")
echo "$line1" | grep -q '"verdict":"unknown"' \
  || fail "preempted request did not answer unknown"
echo "$line1" | grep -q '"engine":"watchdog"' \
  || fail "the watchdog did not answer the wedged request"
echo "$line1" | grep -q '"progress":{"engine":"symbolic"' \
  || fail "partial verdict has no progress object"
echo "$line1" | grep -q '"round":"' \
  || fail "symbolic progress has no fixpoint round"
echo "preemption OK: $(echo "$line1" | grep -o '"progress":{[^}]*}')"

# ---- retry: warm-replay the snapshot, complete for real ----
send "{\"id\":2,\"doc\":\"$DOC\"}"
await 2
line2=$(grep '"id":2[,}]' "$out")
echo "$line2" | grep -q '"verdict":"inconsistent"' \
  || fail "retry did not complete with the real verdict"
echo "$line2" | grep -q '"progress"' \
  && fail "a definite verdict must not carry a progress object"
echo "retry OK: resumed check completed with the real verdict"

# ---- health: the preemption and the resume are both on the books ----
send '{"id":3,"cmd":"health"}'
await 3
line3=$(grep '"id":3[,}]' "$out")
echo "$line3" | grep -q '"anytime":{' \
  || fail "health has no anytime object"
echo "$line3" | grep -Eq '"preempted":[1-9]' \
  || fail "health does not report the preemption"
echo "$line3" | grep -Eq '"resumed":[1-9]' \
  || fail "health does not report the resume"
echo "health OK: $(echo "$line3" | grep -o '"anytime":{[^]]*"workers":\[[^]]*\]')"

send '{"id":4,"cmd":"shutdown"}'
exec 3>&-
rm -f "$dir/in"
wait "$SERVER"; SERVER=

grep -Eq 'preempted: [1-9]' "$dir/serve.log" \
  || fail "--stats did not report the preemption"
grep -Eq 'resumed: [1-9]' "$dir/serve.log" \
  || fail "--stats did not report the resume"
echo "anytime smoke passed"
