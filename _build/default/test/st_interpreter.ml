(* A small interpreter for the IEC 61131-3 Structured Text subset that
   Codegen.to_structured_text emits, used as an independent oracle: the
   generated program must behave exactly like the Mealy machine it was
   compiled from.

   Recognized shape:

     FUNCTION_BLOCK <name>
     VAR_INPUT  <id> : BOOL; ...  END_VAR
     VAR_OUTPUT <id> : BOOL; ...  END_VAR
     VAR state : INT := <k>; END_VAR
     CASE state OF
       <k>:
         IF <guard> THEN <assigns> state := <k>;
         ELSIF <guard> THEN ... END_IF;
     END_CASE;
     END_FUNCTION_BLOCK

   where <guard> is a conjunction of possibly negated input names and
   <assigns> sets every output to TRUE/FALSE. *)

type literal = { var : string; positive : bool }

type branch = {
  guard : literal list;
  sets : (string * bool) list;
  next_state : int;
}

type program = {
  inputs : string list;
  outputs : string list;
  initial : int;
  branches_of_state : (int * branch list) list;
}

let tokens_of text =
  (* split on whitespace, keeping ':' ';' '=' glued tokens split *)
  text
  |> String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c)
  |> String.split_on_char ' '
  |> List.concat_map (fun raw ->
      (* split trailing punctuation like "state:" / "x;" *)
      let raw = String.trim raw in
      if raw = "" then []
      else
        let rec peel acc s =
          let n = String.length s in
          if n = 0 then acc
          else
            let last = s.[n - 1] in
            if last = ';' || last = ':' then
              peel ((String.make 1 last) :: acc) (String.sub s 0 (n - 1))
            else s :: acc
        in
        peel [] raw)
  |> List.filter (( <> ) "")

let parse text =
  let tokens = ref (tokens_of text) in
  let peek () = match !tokens with t :: _ -> Some t | [] -> None in
  let next () =
    match !tokens with
    | t :: rest ->
      tokens := rest;
      t
    | [] -> failwith "st: unexpected end"
  in
  let expect t =
    let got = next () in
    if got <> t then failwith (Printf.sprintf "st: expected %s got %s" t got)
  in
  let skip_until t =
    while peek () <> Some t do ignore (next ()) done;
    expect t
  in
  expect "FUNCTION_BLOCK";
  ignore (next ());  (* name *)
  (* VAR_INPUT *)
  expect "VAR_INPUT";
  let rec read_decls acc =
    match peek () with
    | Some "END_VAR" ->
      ignore (next ());
      List.rev acc
    | Some id ->
      ignore (next ());
      expect ":";
      expect "BOOL";
      expect ";";
      read_decls (id :: acc)
    | None -> failwith "st: eof in declarations"
  in
  let inputs = read_decls [] in
  expect "VAR_OUTPUT";
  let outputs = read_decls [] in
  expect "VAR";
  expect "state";
  expect ":";
  expect "INT";
  expect ":=";
  let initial =
    let t = next () in
    int_of_string (String.sub t 0 (String.length t))
  in
  expect ";";
  expect "END_VAR";
  expect "CASE";
  expect "state";
  expect "OF";
  (* states *)
  let branches_of_state = ref [] in
  let parse_guard () =
    (* literals joined by AND until THEN *)
    let rec go acc =
      match next () with
      | "THEN" -> List.rev acc
      | "AND" -> go acc
      | "NOT" ->
        let var = next () in
        go ({ var; positive = false } :: acc)
      | "TRUE" -> go acc
      | var -> go ({ var; positive = true } :: acc)
    in
    go []
  in
  let parse_branch_body () =
    (* assignments until "state := n ;" *)
    let sets = ref [] in
    let rec go () =
      let t = next () in
      if t = "state" then begin
        expect ":=";
        let n = int_of_string (next ()) in
        expect ";";
        n
      end
      else begin
        expect ":=";
        let value =
          match next () with
          | "TRUE" -> true
          | "FALSE" -> false
          | other -> failwith ("st: bad rhs " ^ other)
        in
        expect ";";
        sets := (t, value) :: !sets;
        go ()
      end
    in
    let next_state = go () in
    (List.rev !sets, next_state)
  in
  let rec parse_states () =
    match peek () with
    | Some "END_CASE" ->
      ignore (next ());
      expect ";";
      skip_until "END_FUNCTION_BLOCK"
    | Some state_token ->
      let state = int_of_string state_token in
      ignore (next ());
      expect ":";
      let branches = ref [] in
      let rec parse_ifs () =
        match peek () with
        | Some ("IF" | "ELSIF") ->
          ignore (next ());
          let guard = parse_guard () in
          let sets, next_state = parse_branch_body () in
          branches := { guard; sets; next_state } :: !branches;
          parse_ifs ()
        | Some "END_IF" ->
          ignore (next ());
          expect ";"
        | _ -> ()
      in
      parse_ifs ();
      branches_of_state := (state, List.rev !branches) :: !branches_of_state;
      parse_states ()
    | None -> failwith "st: eof in case"
  in
  parse_states ();
  {
    inputs;
    outputs;
    initial;
    branches_of_state = List.rev !branches_of_state;
  }

type instance = {
  program : program;
  mutable state : int;
}

let start program = { program; state = program.initial }

(* One scan cycle: evaluate the active state's branches in order. *)
let scan instance (input_values : (string * bool) list) =
  let value var =
    match List.assoc_opt var input_values with
    | Some b -> b
    | None -> false
  in
  let branches =
    match List.assoc_opt instance.state instance.program.branches_of_state with
    | Some b -> b
    | None -> []
  in
  let taken =
    List.find_opt
      (fun branch ->
         List.for_all
           (fun { var; positive } -> value var = positive)
           branch.guard)
      branches
  in
  match taken with
  | None -> None
  | Some branch ->
    instance.state <- branch.next_state;
    Some
      (List.map
         (fun out ->
            ( out,
              match List.assoc_opt out branch.sets with
              | Some b -> b
              | None -> false ))
         instance.program.outputs)
