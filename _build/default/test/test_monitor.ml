(* Tests for the progression-based runtime monitor: verdict soundness
   against the exact lasso semantics, progression correctness as a
   pure function, and verdict latching. *)

open Speccc_logic
open Speccc_monitor

let parse = Ltl_parse.formula

let prop_names = [ "a"; "b"; "c" ]
let letter trues = List.map (fun p -> (p, List.mem p trues)) prop_names

let test_safety_violation () =
  let monitor = Monitor.create (parse "G (a -> b)") in
  (match Monitor.step monitor (letter [ "a"; "b" ]) with
   | Monitor.Running _ -> ()
   | _ -> Alcotest.fail "still running after a compliant letter");
  (match Monitor.step monitor (letter []) with
   | Monitor.Running _ -> ()
   | _ -> Alcotest.fail "still running");
  (match Monitor.step monitor (letter [ "a" ]) with
   | Monitor.Violated 2 -> ()
   | Monitor.Violated i ->
     Alcotest.fail (Printf.sprintf "violation at wrong index %d" i)
   | _ -> Alcotest.fail "violation expected")

let test_satisfaction () =
  let monitor = Monitor.create (parse "F a") in
  (match Monitor.step monitor (letter [ "b" ]) with
   | Monitor.Running _ -> ()
   | _ -> Alcotest.fail "eventuality still pending");
  (match Monitor.step monitor (letter [ "a" ]) with
   | Monitor.Satisfied 1 -> ()
   | _ -> Alcotest.fail "satisfied expected at index 1")

let test_verdicts_latch () =
  let monitor = Monitor.create (parse "F a") in
  ignore (Monitor.step monitor (letter [ "a" ]));
  (match Monitor.step monitor (letter []) with
   | Monitor.Satisfied 0 -> ()
   | _ -> Alcotest.fail "verdict must latch");
  Monitor.reset monitor;
  (match Monitor.status monitor with
   | Monitor.Running _ -> ()
   | _ -> Alcotest.fail "reset must rearm")

let test_bounded_response () =
  (* G (a -> X X b): violation detected exactly two steps after the
     un-answered trigger. *)
  let monitor = Monitor.create (parse "G (a -> X X b)") in
  ignore (Monitor.step monitor (letter [ "a" ]));
  ignore (Monitor.step monitor (letter []));
  (match Monitor.step monitor (letter []) with
   | Monitor.Violated 2 -> ()
   | _ -> Alcotest.fail "deadline miss must be flagged at index 2")

let test_until () =
  let monitor = Monitor.create (parse "a U b") in
  ignore (Monitor.step monitor (letter [ "a" ]));
  (match Monitor.step monitor (letter []) with
   | Monitor.Violated 1 -> ()
   | _ -> Alcotest.fail "neither a nor b breaks the until");
  let monitor2 = Monitor.create (parse "a U b") in
  ignore (Monitor.step monitor2 (letter [ "a" ]));
  (match Monitor.step monitor2 (letter [ "b" ]) with
   | Monitor.Satisfied 1 -> ()
   | _ -> Alcotest.fail "b discharges the until")

(* progression is exact: φ holds at position i iff prog(φ, w_i) holds
   at position i+1 *)
let formula_gen =
  let open QCheck2.Gen in
  int_range 0 10 >>= fix (fun self size ->
      if size <= 1 then
        oneof [ return Ltl.True; return Ltl.False;
                map Ltl.prop (oneofl prop_names) ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Weak_until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Release (f, g)) sub sub;
          ])

let letter_gen =
  let open QCheck2.Gen in
  flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) prop_names)

let trace_gen =
  let open QCheck2.Gen in
  map2
    (fun prefix loop -> Trace.make ~prefix ~loop)
    (list_size (int_range 0 3) letter_gen)
    (list_size (int_range 1 3) letter_gen)

let prop_progression_exact =
  QCheck2.Test.make ~count:400
    ~name:"w,i ⊨ φ iff w,i+1 ⊨ prog(φ, w_i)"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, word) ->
       let first = Trace.letter_at word 0 in
       Trace.holds word f
       = Trace.holds_at word 1 (Monitor.progress f first))

let prop_verdicts_sound =
  QCheck2.Test.make ~count:400
    ~name:"monitor verdicts are sound on the word they came from"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, word) ->
       let monitor = Monitor.create f in
       let steps = Trace.length word + 4 in
       let rec feed i =
         if i >= steps then Monitor.status monitor
         else
           match Monitor.step monitor (Trace.letter_at word i) with
           | Monitor.Running _ -> feed (i + 1)
           | final -> final
       in
       match feed 0 with
       | Monitor.Violated _ -> not (Trace.holds word f)
       | Monitor.Satisfied _ -> Trace.holds word f
       | Monitor.Running _ -> true)

let () =
  Alcotest.run "monitor"
    [
      ( "verdicts",
        [
          Alcotest.test_case "safety violation" `Quick test_safety_violation;
          Alcotest.test_case "satisfaction" `Quick test_satisfaction;
          Alcotest.test_case "latching and reset" `Quick test_verdicts_latch;
          Alcotest.test_case "bounded response" `Quick test_bounded_response;
          Alcotest.test_case "until" `Quick test_until;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_progression_exact;
          QCheck_alcotest.to_alcotest prop_verdicts_sound;
        ] );
    ]
