(* Tests for the Dwyer pattern catalogue: golden LTL templates,
   semantic checks on lasso words, recognition, and the connection to
   the translator's output. *)

open Speccc_logic
open Speccc_patterns.Patterns

let parse = Ltl_parse.formula
let ltl = Alcotest.testable (Ltl_print.pp ~syntax:Ltl_print.Ascii) Ltl.equal

let p = Ltl.prop "p"
let s = Ltl.prop "s"
let q = Ltl.prop "q"
let r = Ltl.prop "r"

(* --- golden templates --- *)

let test_absence_templates () =
  Alcotest.check ltl "globally" (parse "G (!p)")
    (instantiate Absence ~p Globally);
  Alcotest.check ltl "before r" (parse "F r -> (!p U r)")
    (instantiate Absence ~p (Before r));
  Alcotest.check ltl "after q" (parse "G (q -> G (!p))")
    (instantiate Absence ~p (After q));
  Alcotest.check ltl "between" (parse "G (q && !r && F r -> (!p U r))")
    (instantiate Absence ~p (Between (q, r)));
  Alcotest.check ltl "after-until" (parse "G (q && !r -> (!p W r))")
    (instantiate Absence ~p (After_until (q, r)))

let test_universality_templates () =
  Alcotest.check ltl "globally" (parse "G p")
    (instantiate Universality ~p Globally);
  Alcotest.check ltl "before r" (parse "F r -> (p U r)")
    (instantiate Universality ~p (Before r));
  Alcotest.check ltl "after q" (parse "G (q -> G p)")
    (instantiate Universality ~p (After q))

let test_existence_templates () =
  Alcotest.check ltl "globally" (parse "F p")
    (instantiate Existence ~p Globally);
  Alcotest.check ltl "before r" (parse "!r W (p && !r)")
    (instantiate Existence ~p (Before r));
  Alcotest.check ltl "after q" (parse "G (!q) || F (q && F p)")
    (instantiate Existence ~p (After q))

let test_response_templates () =
  Alcotest.check ltl "globally" (parse "G (p -> F s)")
    (instantiate Response ~p ~s Globally);
  Alcotest.check ltl "after q" (parse "G (q -> G (p -> F s))")
    (instantiate Response ~p ~s (After q))

let test_precedence_templates () =
  Alcotest.check ltl "globally" (parse "!p W s")
    (instantiate Precedence ~p ~s Globally);
  Alcotest.check ltl "before r" (parse "F r -> (!p U (s || r))")
    (instantiate Precedence ~p ~s (Before r))

let test_missing_s_rejected () =
  (match instantiate Response ~p Globally with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "Response without s must be rejected");
  match instantiate Precedence ~p Globally with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Precedence without s must be rejected"

(* --- semantic checks on lassos --- *)

let letter trues =
  List.map (fun name -> (name, List.mem name trues)) [ "p"; "s"; "q"; "r" ]

let test_semantics_between () =
  let formula = instantiate Absence ~p (Between (q, r)) in
  (* q, then p before r: violated *)
  let bad =
    Trace.make
      ~prefix:[ letter [ "q" ]; letter [ "p" ]; letter [ "r" ] ]
      ~loop:[ letter [] ]
  in
  Alcotest.(check bool) "violation detected" false (Trace.holds bad formula);
  (* q, then clean interval to r, p afterwards: fine *)
  let good =
    Trace.make
      ~prefix:[ letter [ "q" ]; letter []; letter [ "r" ]; letter [ "p" ] ]
      ~loop:[ letter [] ]
  in
  Alcotest.(check bool) "outside the scope is free" true
    (Trace.holds good formula);
  (* q never closed by r: the between scope never applies *)
  let open_interval =
    Trace.make ~prefix:[ letter [ "q" ]; letter [ "p" ] ] ~loop:[ letter [] ]
  in
  Alcotest.(check bool) "open interval not constrained" true
    (Trace.holds open_interval formula)

let test_semantics_after_until () =
  let formula = instantiate Absence ~p (After_until (q, r)) in
  (* the open interval IS constrained for after-until *)
  let open_interval =
    Trace.make ~prefix:[ letter [ "q" ]; letter [ "p" ] ] ~loop:[ letter [] ]
  in
  Alcotest.(check bool) "open interval constrained" false
    (Trace.holds open_interval formula)

let test_semantics_precedence () =
  let formula = instantiate Precedence ~p ~s Globally in
  let s_first =
    Trace.make ~prefix:[ letter [ "s" ]; letter [ "p" ] ] ~loop:[ letter [] ]
  in
  let p_first =
    Trace.make ~prefix:[ letter [ "p" ]; letter [ "s" ] ] ~loop:[ letter [] ]
  in
  let neither = Trace.constant (letter []) in
  Alcotest.(check bool) "s then p ok" true (Trace.holds s_first formula);
  Alcotest.(check bool) "p before s violates" false
    (Trace.holds p_first formula);
  Alcotest.(check bool) "neither ever: ok (weak)" true
    (Trace.holds neither formula)

(* Scope monotonicity: the Globally scope implies every narrower
   scope's obligation on the same word. *)
let prop_globally_strongest =
  let letter_gen =
    let open QCheck2.Gen in
    flatten_l
      (List.map (fun name -> map (fun b -> (name, b)) bool)
         [ "p"; "s"; "q"; "r" ])
  in
  let trace_gen =
    let open QCheck2.Gen in
    map2
      (fun prefix loop -> Trace.make ~prefix ~loop)
      (list_size (int_range 0 3) letter_gen)
      (list_size (int_range 1 3) letter_gen)
  in
  QCheck2.Test.make ~count:200
    ~name:"globally-scoped absence implies every other scope"
    trace_gen
    (fun word ->
       let global = instantiate Absence ~p Globally in
       if not (Trace.holds word global) then true
       else
         List.for_all
           (fun scope -> Trace.holds word (instantiate Absence ~p scope))
           [ Before r; After q; Between (q, r); After_until (q, r) ])

(* --- recognition --- *)

let test_recognize () =
  (match recognize (parse "G (a -> F b)") with
   | Some { pattern = Response; s = Some _; _ } -> ()
   | _ -> Alcotest.fail "response not recognized");
  (match recognize (parse "G (!bad)") with
   | Some { pattern = Absence; _ } -> ()
   | _ -> Alcotest.fail "absence not recognized");
  (match recognize (parse "G (a -> b)") with
   | Some { pattern = Universality; _ } -> ()
   | _ -> Alcotest.fail "guarded universality not recognized");
  (match recognize (parse "F done_") with
   | Some { pattern = Existence; _ } -> ()
   | _ -> Alcotest.fail "existence not recognized");
  (match recognize (parse "!p W s") with
   | Some { pattern = Precedence; _ } -> ()
   | _ -> Alcotest.fail "precedence not recognized");
  Alcotest.(check bool) "non-template shapes are not classified" true
    (recognize (parse "a U b") = None)

let test_classify_cara () =
  (* The translated CARA requirements are all recognizable templates. *)
  let config = Speccc_translate.Translate.default_config () in
  let result =
    Speccc_translate.Translate.specification config
      Speccc_casestudies.Cara.working_mode_texts
  in
  let formulas =
    List.map
      (fun r -> r.Speccc_translate.Translate.formula)
      result.Speccc_translate.Translate.requirements
  in
  let classified = classify formulas in
  let recognized =
    List.filter (fun (_, instance) -> instance <> None) classified
  in
  Alcotest.(check int) "every CARA requirement instantiates a pattern"
    (List.length formulas) (List.length recognized);
  (* the paper's two families dominate *)
  let count pat =
    List.length
      (List.filter
         (fun (_, instance) ->
            match instance with
            | Some { pattern; _ } -> pattern = pat
            | None -> false)
         classified)
  in
  Alcotest.(check bool) "universality and response dominate" true
    (count Universality + count Response >= 27)

let () =
  Alcotest.run "patterns"
    [
      ( "templates",
        [
          Alcotest.test_case "absence" `Quick test_absence_templates;
          Alcotest.test_case "universality" `Quick
            test_universality_templates;
          Alcotest.test_case "existence" `Quick test_existence_templates;
          Alcotest.test_case "response" `Quick test_response_templates;
          Alcotest.test_case "precedence" `Quick test_precedence_templates;
          Alcotest.test_case "missing s" `Quick test_missing_s_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "between scope" `Quick test_semantics_between;
          Alcotest.test_case "after-until scope" `Quick
            test_semantics_after_until;
          Alcotest.test_case "precedence" `Quick test_semantics_precedence;
          QCheck_alcotest.to_alcotest prop_globally_strongest;
        ] );
      ( "recognition",
        [
          Alcotest.test_case "shapes" `Quick test_recognize;
          Alcotest.test_case "CARA classification" `Quick test_classify_cara;
        ] );
    ]
