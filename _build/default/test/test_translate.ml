(* Golden tests for the full translation pipeline (parser → semantic
   reasoning → LTL templates) against the paper's appendix.

   The expected formulas are the appendix formulas *before* time
   abstraction (the appendix prints them after the Sec. IV-E rewriting;
   time abstraction is tested separately in test_timeabs).  Where the
   appendix is internally inconsistent we use the consistent form and
   say so:
   - Req-07: appendix writes "terminate_auto_control"; Req-08/54 use
     "terminate_auto_control_mode(l)"; we keep the subject intact.
   - Req-42: appendix writes "run_mode"; we keep
     "run_auto_control_mode" as in every other requirement. *)

open Speccc_logic
open Speccc_translate
open Speccc_reasoning

let config = Translate.default_config ()

let ltl = Alcotest.testable (Ltl_print.pp ~syntax:Ltl_print.Ascii) Ltl.equal

(* The CARA appendix corpus: (id, sentence, expected LTL in our ASCII
   syntax).  Translation happens over the whole list at once so that
   Algorithm 1 sees all antonym candidates. *)
let corpus = [
  ( "Req-01",
    "The CARA will be operational whenever the LSTAT is powered on.",
    "G (power_lstat -> F operational_cara)" );
  ( "Req-07",
    "If an occlusion is detected, and auto control mode is running, auto \
     control mode will be terminated.",
    "G (detect_occlusion && run_auto_control_mode -> F \
     terminate_auto_control_mode)" );
  ( "Req-08",
    "If Air Ok signal remains low, auto control mode is terminated in 3 \
     seconds.",
    "G (!air_ok_signal -> X X X terminate_auto_control_mode)" );
  ( "Req-13.1",
    "If arterial line and pulse wave are corroborated, and cuff is \
     available, next arterial line is selected.",
    "G (corroborate_arterial_line && corroborate_pulse_wave && cuff -> \
     select_arterial_line)" );
  ( "Req-13.2",
    "If pulse wave is corroborated, and cuff is available, and arterial \
     line is not corroborated, next pulse wave is selected.",
    "G (corroborate_pulse_wave && cuff && !corroborate_arterial_line -> \
     select_pulse_wave)" );
  ( "Req-13.3",
    "If arterial line is not corroborated, and pulse wave is not \
     corroborated, and cuff is available, then cuff is selected.",
    "G (!corroborate_arterial_line && !corroborate_pulse_wave && cuff -> \
     select_cuff)" );
  ( "Req-16",
    "If a pump is plugged in, and an infusate is ready, and the occlusion \
     line is clear, auto control mode can be started.",
    "G (plug_pump && ready_infusate && clear_occlusion_line -> \
     start_auto_control_mode)" );
  ( "Req-17.1",
    "When auto control mode is running, eventually the cuff will be \
     inflated.",
    "G (run_auto_control_mode -> F inflate_cuff)" );
  ( "Req-17.2",
    "If start auto control button is pressed, and cuff is not available, \
     an alarm is issued and override selection is provided.",
    "G (press_start_auto_control_button && !cuff -> issue_alarm && \
     provide_override_selection)" );
  ( "Req-17.3",
    "If alarm reset button is pressed, the alarm is disabled.",
    "G (press_alarm_reset_button -> !alarm)" );
  ( "Req-17.4",
    "If override selection is provided, if override yes is pressed, and \
     arterial line is not corroborated, next arterial line is selected.",
    "G (provide_override_selection -> (press_override_yes && \
     !corroborate_arterial_line -> select_arterial_line))" );
  ( "Req-17.5",
    "If override selection is provided, if override yes is pressed, and \
     arterial line is corroborated, and pulse wave is not corroborated, \
     next pulse wave is selected.",
    "G (provide_override_selection -> (press_override_yes && \
     corroborate_arterial_line && !corroborate_pulse_wave -> \
     select_pulse_wave))" );
  ( "Req-17.6",
    "If override selection is provided, if override no is pressed, next \
     manual mode is started.",
    "G (provide_override_selection -> (press_override_no -> \
     start_manual_mode))" );
  ( "Req-17.7",
    "If cuff and arterial line and pulse wave are not available, next \
     manual mode is started.",
    "G (!cuff && !arterial_line && !pulse_wave -> start_manual_mode)" );
  ( "Req-20",
    "If manual mode is running and start auto control button is pressed, \
     next corroboration is triggered.",
    "G (run_manual_mode && press_start_auto_control_button -> \
     trigger_corroboration)" );
  ( "Req-32.1",
    "If pulse wave or arterial line is available, and cuff is selected, \
     corroboration is triggered.",
    "G ((pulse_wave || arterial_line) && select_cuff -> \
     trigger_corroboration)" );
  ( "Req-32.2",
    "If pulse wave is selected, and arterial line is available, \
     corroboration is triggered.",
    "G (select_pulse_wave && arterial_line -> trigger_corroboration)" );
  ( "Req-34",
    "When auto control mode is running, terminate auto control button \
     should be available.",
    "G (run_auto_control_mode -> terminate_auto_control_button)" );
  ( "Req-42",
    "When auto control mode is running, and the arterial line, or pulse \
     wave or cuff is lost, an alarm should sound in 60 seconds.",
    "G (run_auto_control_mode && (!arterial_line || !pulse_wave || !cuff) \
     -> "
    ^ String.concat " " (List.init 60 (fun _ -> "X"))
    ^ " sound_alarm)" );
  ( "Req-44",
    "If pulse wave and arterial line are unavailable, and cuff is \
     selected, and blood pressure is not valid, next manual mode is \
     started.",
    "G (!pulse_wave && !arterial_line && select_cuff && !blood_pressure -> \
     start_manual_mode)" );
  ( "Req-48.1",
    "Whenever termiante auto control button is selected, a confirmation \
     button is available.",
    "G (select_termiante_auto_control_button -> confirmation_button)" );
  ( "Req-48.2",
    "If a confirmation button is available, and confirmation yes is \
     pressed, manual mode is started.",
    "G (confirmation_button && press_confirmation_yes -> \
     start_manual_mode)" );
  ( "Req-48.3",
    "If a confirmation button is available, and confirmation no is \
     pressed, auto control mode is running.",
    "G (confirmation_button && press_confirmation_no -> \
     run_auto_control_mode)" );
  ( "Req-48.4",
    "If a confirmation button is available, and confirmation yes is \
     pressed, next confirmation yes is disabled.",
    "G (confirmation_button && press_confirmation_yes -> \
     !confirmation_yes)" );
  ( "Req-48.5",
    "If a confirmation button is available, and confirmation no is \
     pressed, next confirmation no is disabled.",
    "G (confirmation_button && press_confirmation_no -> !confirmation_no)" );
  ( "Req-48.6",
    "If a confirmation button is available, and terminating auto control \
     button is pressed, next terminating auto control button is disabled.",
    "G (confirmation_button && press_terminating_auto_control_button -> \
     !terminating_auto_control_button)" );
  ( "Req-49",
    "When a start auto control button is enabled, the start auto control \
     button is enabled until it is pressed.",
    "G (start_auto_control_button -> (!press_start_auto_control_button -> \
     (start_auto_control_button W press_start_auto_control_button)))" );
  ( "Req-54",
    "If auto control mode is running, and impedance reading is \
     unavailable, next auto control model is terminated.",
    "G (run_auto_control_mode && !impedance_reading -> \
     terminate_auto_control_model)" );
]

let translated =
  lazy (Translate.specification config (List.map (fun (_, t, _) -> t) corpus))

let test_requirement (id, _, expected) () =
  let result = Lazy.force translated in
  let requirement =
    List.nth result.Translate.requirements
      (let rec index i = function
         | [] -> Alcotest.fail "id not found"
         | (rid, _, _) :: rest -> if rid = id then i else index (i + 1) rest
       in
       index 0 corpus)
  in
  Alcotest.check ltl id (Ltl_parse.formula expected)
    requirement.Translate.formula

let test_req28_shape () =
  (* 180 consecutive X's is unwieldy as text; check structurally. *)
  let result = Lazy.force translated in
  let formula =
    Translate.formula_of_sentence config
      "If a valid blood pressure is unavailable in 180 seconds, manual \
       mode should be triggered."
  in
  ignore result;
  Alcotest.(check (list int)) "one X-chain of 180" [ 180 ]
    (Ltl.next_chains formula);
  Alcotest.(check (list string)) "propositions"
    [ "blood_pressure"; "trigger_manual_mode" ]
    (Ltl.props formula)

let test_semantic_reasoning_example () =
  (* The Sec. IV-D example: Req-32 and Req-44 share the subject
     pulse_wave with dependents available/unavailable; the pair must be
     discovered (blue) and reduce to one proposition. *)
  let texts = [
    "If pulse wave or arterial line is available, and cuff is selected, \
     corroboration is triggered.";
    "If pulse wave and arterial line are unavailable, and cuff is \
     selected, and blood pressure is not valid, next manual mode is \
     started.";
  ]
  in
  let result = Translate.specification config texts in
  let analysis =
    List.find
      (fun a -> a.Semantic.subject = "pulse_wave")
      result.Translate.analyses
  in
  let coloring word =
    (List.find (fun c -> c.Semantic.word = word) analysis.Semantic.words)
      .Semantic.color
  in
  Alcotest.(check bool) "available is blue" true
    (coloring "available" = Semantic.Blue);
  Alcotest.(check bool) "unavailable is blue" true
    (coloring "unavailable" = Semantic.Blue);
  (* both requirements use the same proposition *)
  let props =
    List.concat_map
      (fun r -> Ltl.props r.Translate.formula)
      result.Translate.requirements
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "single pulse_wave proposition" true
    (List.mem "pulse_wave" props
     && not (List.exists (fun p -> p = "available_pulse_wave"
                                   || p = "unavailable_pulse_wave") props))

let test_reduction_count () =
  let texts = [
    "If pulse wave or arterial line is available, and cuff is selected, \
     corroboration is triggered.";
    "If pulse wave and arterial line are unavailable, and cuff is \
     selected, and blood pressure is not valid, next manual mode is \
     started.";
  ]
  in
  let result = Translate.specification config texts in
  let without, with_reasoning =
    Semantic.reduction_count config.Translate.dictionary
      result.Translate.relations
  in
  Alcotest.(check bool) "reasoning reduces propositions" true
    (with_reasoning < without)

let test_next_as_x_option () =
  let config_x = { config with Translate.next_as_x = true } in
  let formula =
    Translate.formula_of_sentence config_x
      "If cuff is selected, next manual mode is started."
  in
  Alcotest.check ltl "next becomes X"
    (Ltl_parse.formula "G (select_cuff -> X start_manual_mode)")
    formula

let test_never_adverb () =
  Alcotest.check ltl "never before the verb"
    (Ltl_parse.formula "G (!sound_alarm)")
    (Translate.formula_of_sentence config "The alarm never sounds.");
  Alcotest.check ltl "never after the copula"
    (Ltl_parse.formula "G (!trigger_alarm)")
    (Translate.formula_of_sentence config "The alarm is never triggered.");
  (* "no" keeps belonging to button names *)
  Alcotest.check ltl "confirmation no unaffected"
    (Ltl_parse.formula "G (press_confirmation_no -> start_manual_mode)")
    (Translate.formula_of_sentence config
       "If confirmation no is pressed, manual mode is started.")

let test_always_modifier () =
  let formula =
    Translate.formula_of_sentence config "The system is always operational."
  in
  Alcotest.check ltl "always"
    (Ltl_parse.formula "G (G operational_system)")
    formula

let () =
  let corpus_cases =
    List.map
      (fun ((id, _, _) as case) ->
         Alcotest.test_case id `Quick (test_requirement case))
      corpus
  in
  Alcotest.run "translate"
    [
      ("appendix corpus", corpus_cases);
      ( "extras",
        [
          Alcotest.test_case "req-28 shape" `Quick test_req28_shape;
          Alcotest.test_case "semantic reasoning (IV-D)" `Quick
            test_semantic_reasoning_example;
          Alcotest.test_case "reduction count" `Quick test_reduction_count;
          Alcotest.test_case "next_as_x option" `Quick test_next_as_x_option;
          Alcotest.test_case "always modifier" `Quick test_always_modifier;
          Alcotest.test_case "never adverb" `Quick test_never_adverb;
        ] );
    ]
