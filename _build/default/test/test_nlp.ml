(* Tests for the NLP substrate: tokenizer, morphology, the structured
   English parser (including the paper's Figure 2 tree for Req-17), and
   dependency extraction. *)

open Speccc_nlp

let lexicon = Lexicon.default ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* --- tokenizer --- *)

let test_tokenizer_basics () =
  Alcotest.(check int) "word count" 7
    (List.length (Tokenizer.tokenize "When auto-control mode is entered, eventually"));
  (match Tokenizer.tokenize "A, b." with
   | [ Tokenizer.Word "a"; Tokenizer.Comma; Tokenizer.Word "b";
       Tokenizer.Period ] -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check int) "sentences split" 3
    (List.length
       (Tokenizer.split_sentences "First one. Second one. Third one."))

let test_tokenizer_preserves_compounds () =
  match Tokenizer.tokenize "auto-control auto_control" with
  | [ Tokenizer.Word "auto-control"; Tokenizer.Word "auto_control" ] -> ()
  | _ -> Alcotest.fail "compound words must stay single tokens"

(* --- morphology --- *)

let check_lemma word expected_lemma =
  match Morphology.analyze_verb lexicon word with
  | Some (lemma, _) ->
    Alcotest.(check string) (word ^ " lemma") expected_lemma lemma
  | None -> Alcotest.fail (word ^ " should be recognized as a verb form")

let test_morphology_regular () =
  check_lemma "entered" "enter";
  check_lemma "terminated" "terminate";
  check_lemma "pressed" "press";
  check_lemma "inflated" "inflate";
  check_lemma "triggered" "trigger";
  check_lemma "issued" "issue";
  check_lemma "corroborated" "corroborate";
  check_lemma "detects" "detect";
  check_lemma "starts" "start";
  check_lemma "carries" "carry"

let test_morphology_irregular () =
  check_lemma "running" "run";
  check_lemma "lost" "lose";
  check_lemma "plugged" "plug";
  check_lemma "found" "find";
  check_lemma "sent" "send"

let test_morphology_non_verbs () =
  Alcotest.(check bool) "mode is not a verb" true
    (Morphology.analyze_verb lexicon "mode" = None);
  Alcotest.(check bool) "available is not a verb" true
    (Morphology.analyze_verb lexicon "available" = None)

(* --- parser: Figure 2 (Req-17) --- *)

let test_figure2_tree () =
  let s =
    Parser.sentence lexicon
      "When auto-control mode is entered, eventually the cuff will be \
       inflated."
  in
  (* one leading subclause with subordinator "when" *)
  (match s.Syntax.leading with
   | [ { Syntax.subordinator = "when"; body } ] ->
     (match body.Syntax.clauses with
      | [ clause ] ->
        Alcotest.(check (list (list string))) "subordinate subject"
          [ [ "auto-control"; "mode" ] ]
          clause.Syntax.subject.Syntax.nouns;
        Alcotest.(check string) "subordinate verb (tense removed)" "enter"
          clause.Syntax.predicate.Syntax.verb;
        Alcotest.(check bool) "passive" true
          clause.Syntax.predicate.Syntax.passive
      | _ -> Alcotest.fail "expected one subordinate clause")
   | _ -> Alcotest.fail "expected one leading subclause");
  (* main clause: modifier eventually, subject cuff, predicate inflate *)
  (match s.Syntax.main.Syntax.clauses with
   | [ clause ] ->
     Alcotest.(check (option string)) "modifier" (Some "eventually")
       clause.Syntax.modifier;
     Alcotest.(check (list (list string))) "main subject" [ [ "cuff" ] ]
       clause.Syntax.subject.Syntax.nouns;
     Alcotest.(check string) "main verb" "inflate"
       clause.Syntax.predicate.Syntax.verb;
     Alcotest.(check (option string)) "modality" (Some "will")
       clause.Syntax.predicate.Syntax.modality
   | _ -> Alcotest.fail "expected one main clause");
  Alcotest.(check int) "no trailing subclauses" 0
    (List.length s.Syntax.trailing)

let test_compound_subjects () =
  let s =
    Parser.sentence lexicon
      "If pulse wave and arterial line are unavailable, and cuff is \
       selected, and blood pressure is not valid, next manual mode is \
       started."
  in
  (match s.Syntax.leading with
   | [ { Syntax.subordinator = "if"; body } ] ->
     Alcotest.(check int) "three clauses in the condition" 3
       (List.length body.Syntax.clauses);
     (match body.Syntax.clauses with
      | first :: _ ->
        Alcotest.(check (list (list string))) "two substantives"
          [ [ "pulse"; "wave" ]; [ "arterial"; "line" ] ]
          first.Syntax.subject.Syntax.nouns;
        Alcotest.(check bool) "and-joined" true
          (first.Syntax.subject.Syntax.noun_conj = Syntax.And)
      | [] -> Alcotest.fail "empty clause group")
   | _ -> Alcotest.fail "expected one leading subclause");
  (match s.Syntax.main.Syntax.clauses with
   | [ clause ] ->
     Alcotest.(check (option string)) "next recorded as modifier"
       (Some "next") clause.Syntax.modifier;
     Alcotest.(check string) "verb start" "start"
       clause.Syntax.predicate.Syntax.verb
   | _ -> Alcotest.fail "expected one main clause")

let test_or_subjects () =
  let s =
    Parser.sentence lexicon
      "When auto control mode is running, and the arterial line, or pulse \
       wave or cuff is lost, an alarm should sound in 60 seconds."
  in
  (match s.Syntax.leading with
   | [ { Syntax.body; _ } ] ->
     (match body.Syntax.clauses with
      | [ _running; lost ] ->
        Alcotest.(check int) "three or-substantives" 3
          (List.length lost.Syntax.subject.Syntax.nouns);
        Alcotest.(check bool) "or-joined" true
          (lost.Syntax.subject.Syntax.noun_conj = Syntax.Or);
        Alcotest.(check (option string)) "complement lost" (Some "lost")
          lost.Syntax.predicate.Syntax.complement
      | _ -> Alcotest.fail "expected two clauses in condition")
   | _ -> Alcotest.fail "expected one leading subclause");
  (match s.Syntax.main.Syntax.clauses with
   | [ clause ] ->
     Alcotest.(check (option int)) "time bound" (Some 60)
       clause.Syntax.time_bound;
     Alcotest.(check string) "verb sound" "sound"
       clause.Syntax.predicate.Syntax.verb
   | _ -> Alcotest.fail "expected one main clause")

let test_trailing_until () =
  let s =
    Parser.sentence lexicon
      "When a start auto control button is enabled, the start auto control \
       button is enabled until it is pressed."
  in
  Alcotest.(check int) "one leading" 1 (List.length s.Syntax.leading);
  (match s.Syntax.trailing with
   | [ { Syntax.subordinator = "until"; body } ] ->
     (match body.Syntax.clauses with
      | [ clause ] ->
        Alcotest.(check (list (list string))) "pronoun subject"
          [ [ "it" ] ] clause.Syntax.subject.Syntax.nouns;
        Alcotest.(check string) "press" "press"
          clause.Syntax.predicate.Syntax.verb
      | _ -> Alcotest.fail "expected one clause")
   | _ -> Alcotest.fail "expected a trailing until subclause")

let test_trailing_condition_without_comma () =
  let s =
    Parser.sentence lexicon
      "The CARA will be operational whenever the LSTAT is powered on."
  in
  Alcotest.(check int) "no leading" 0 (List.length s.Syntax.leading);
  (match s.Syntax.trailing with
   | [ { Syntax.subordinator = "whenever"; body } ] ->
     (match body.Syntax.clauses with
      | [ clause ] ->
        Alcotest.(check string) "verb power (particle dropped)" "power"
          clause.Syntax.predicate.Syntax.verb
      | _ -> Alcotest.fail "expected one clause")
   | _ -> Alcotest.fail "expected trailing whenever subclause")

let test_shared_subject_across_conjunction () =
  let s =
    Parser.sentence lexicon
      "If the power supply is lost, the control goes to a backup battery \
       and triggers an alarm."
  in
  match s.Syntax.main.Syntax.clauses with
  | [ goes; triggers ] ->
    Alcotest.(check (list (list string))) "subject inherited"
      goes.Syntax.subject.Syntax.nouns triggers.Syntax.subject.Syntax.nouns;
    Alcotest.(check string) "second verb" "trigger"
      triggers.Syntax.predicate.Syntax.verb
  | _ -> Alcotest.fail "expected two main clauses"

let test_negation_and_modality () =
  let s =
    Parser.sentence lexicon "The cuff is not available."
  in
  (match s.Syntax.main.Syntax.clauses with
   | [ clause ] ->
     Alcotest.(check bool) "negated" true
       clause.Syntax.predicate.Syntax.negated;
     Alcotest.(check (option string)) "complement" (Some "available")
       clause.Syntax.predicate.Syntax.complement
   | _ -> Alcotest.fail "one clause expected");
  let s2 = Parser.sentence lexicon "The pump cannot be started." in
  (match s2.Syntax.main.Syntax.clauses with
   | [ clause ] ->
     Alcotest.(check bool) "cannot negates" true
       clause.Syntax.predicate.Syntax.negated;
     Alcotest.(check (option string)) "cannot carries can" (Some "can")
       clause.Syntax.predicate.Syntax.modality
   | _ -> Alcotest.fail "one clause expected")

let test_parse_errors () =
  (match Parser.sentence_opt lexicon "" with
   | None -> ()
   | Some _ -> Alcotest.fail "empty sentence must fail");
  (match Parser.sentence_opt lexicon "the the the" with
   | None -> ()
   | Some _ -> Alcotest.fail "no predicate must fail")

let test_full_corpus_parses () =
  (* Every appendix requirement must parse. *)
  let corpus = [
    "The CARA will be operational whenever the LSTAT is powered on.";
    "If an occlusion is detected, and auto control mode is running, auto \
     control mode will be terminated.";
    "If Air Ok signal remains low, auto control mode is terminated in 3 \
     seconds.";
    "If arterial line and pulse wave are corroborated, and cuff is \
     available, next arterial line is selected.";
    "If pulse wave is corroborated, and cuff is available, and arterial \
     line is not corroborated, next pulse wave is selected.";
    "If arterial line is not corroborated, and pulse wave is not \
     corroborated, and cuff is available, then cuff is selected.";
    "If a pump is plugged in, and an infusate is ready, and the occlusion \
     line is clear, auto control mode can be started.";
    "When auto control mode is running, eventually the cuff will be \
     inflated.";
    "If start auto control button is pressed, and cuff is not available, \
     an alarm is issued and override selection is provided.";
    "If alarm reset button is pressed, the alarm is disabled.";
    "If override selection is provided, if override yes is pressed, and \
     arterial line is not corroborated, next arterial line is selected.";
    "If override selection is provided, if override yes is pressed, and \
     arterial line is corroborated, and pulse wave is not corroborated, \
     next pulse wave is selected.";
    "If override selection is provided, if override no is pressed, next \
     manual mode is started.";
    "If cuff and arterial line and pulse wave are not available, next \
     manual mode is started.";
    "If manual mode is running and start auto control button is pressed, \
     next corroboration is triggered.";
    "If a valid blood pressure is unavailable in 180 seconds, manual mode \
     should be triggered.";
    "If pulse wave or arterial line is available, and cuff is selected, \
     corroboration is triggered.";
    "If pulse wave is selected, and arterial line is available, \
     corroboration is triggered.";
    "When auto control mode is running, terminate auto control button \
     should be available.";
    "When auto control mode is running, and the arterial line, or pulse \
     wave or cuff is lost, an alarm should sound in 60 seconds.";
    "If pulse wave and arterial line are unavailable, and cuff is \
     selected, and blood pressure is not valid, next manual mode is \
     started.";
    "Whenever termiante auto control button is selected, a confirmation \
     button is available.";
    "If a confirmation button is available, and confirmation yes is \
     pressed, manual mode is started.";
    "If a confirmation button is available, and confirmation no is \
     pressed, auto control mode is running.";
    "If a confirmation button is available, and confirmation yes is \
     pressed, next confirmation yes is disabled.";
    "If a confirmation button is available, and confirmation no is \
     pressed, next confirmation no is disabled.";
    "If a confirmation button is available, and terminating auto control \
     button is pressed, next terminating auto control button is disabled.";
    "When a start auto control button is enabled, the start auto control \
     button is enabled until it is pressed.";
    "If auto control mode is running, and impedance reading is \
     unavailable, next auto control model is terminated.";
  ]
  in
  List.iteri
    (fun i text ->
       match Parser.sentence_opt lexicon text with
       | Some _ -> ()
       | None ->
         Alcotest.fail (Printf.sprintf "corpus sentence %d failed: %s" i text))
    corpus

(* --- dependency extraction --- *)

let test_dependencies () =
  let sentences =
    List.map (Parser.sentence lexicon)
      [
        "If pulse wave or arterial line is available, and cuff is \
         selected, corroboration is triggered.";
        "If pulse wave and arterial line are unavailable, and cuff is \
         selected, and blood pressure is not valid, next manual mode is \
         started.";
      ]
  in
  let relations = Dependency.of_sentences sentences in
  let find subject =
    match List.find_opt (fun r -> r.Dependency.subject = subject) relations with
    | Some r -> r.Dependency.dependents
    | None -> Alcotest.fail ("no relation for " ^ subject)
  in
  Alcotest.(check (list string)) "pulse_wave deps"
    [ "available"; "unavailable" ]
    (find "pulse_wave");
  Alcotest.(check (list string)) "blood_pressure deps" [ "valid" ]
    (find "blood_pressure")

let test_syntax_pp () =
  let s =
    Parser.sentence lexicon
      "When auto-control mode is entered, eventually the cuff will be \
       inflated."
  in
  let rendering = Format.asprintf "%a" Syntax.pp_sentence s in
  List.iter
    (fun fragment ->
       if not (contains rendering fragment) then
         Alcotest.fail (Printf.sprintf "rendering misses %S" fragment))
    [ "subclause"; "when"; "eventually"; "cuff"; "inflate" ]

let () =
  Alcotest.run "nlp"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basics" `Quick test_tokenizer_basics;
          Alcotest.test_case "compounds" `Quick
            test_tokenizer_preserves_compounds;
        ] );
      ( "morphology",
        [
          Alcotest.test_case "regular" `Quick test_morphology_regular;
          Alcotest.test_case "irregular" `Quick test_morphology_irregular;
          Alcotest.test_case "non-verbs" `Quick test_morphology_non_verbs;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure 2 tree" `Quick test_figure2_tree;
          Alcotest.test_case "compound subjects" `Quick
            test_compound_subjects;
          Alcotest.test_case "or subjects" `Quick test_or_subjects;
          Alcotest.test_case "trailing until" `Quick test_trailing_until;
          Alcotest.test_case "trailing condition" `Quick
            test_trailing_condition_without_comma;
          Alcotest.test_case "shared subject" `Quick
            test_shared_subject_across_conjunction;
          Alcotest.test_case "negation and modality" `Quick
            test_negation_and_modality;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "full corpus parses" `Quick
            test_full_corpus_parses;
        ] );
      ( "dependency",
        [ Alcotest.test_case "relations" `Quick test_dependencies ] );
      ( "pretty",
        [ Alcotest.test_case "sentence rendering" `Quick test_syntax_pp ] );
    ]
