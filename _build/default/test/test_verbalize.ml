(* Tests for LTL → English verbalization, anchored by the round-trip
   property: re-translating a verbalized fragment formula yields the
   formula back. *)

open Speccc_logic
open Speccc_translate

let config = Verbalize.default_config ()
let parse = Ltl_parse.formula

let check_sentence formula expected =
  match Verbalize.sentence config (parse formula) with
  | Some text -> Alcotest.(check string) formula expected text
  | None -> Alcotest.fail (formula ^ " should verbalize")

let test_propositions () =
  Alcotest.(check string) "verb prop" "the start button is pressed"
    (Verbalize.proposition config ~positive:true "press_start_button");
  Alcotest.(check string) "negated verb prop"
    "the start button is not pressed"
    (Verbalize.proposition config ~positive:false "press_start_button");
  Alcotest.(check string) "bare status prop" "the pump is available"
    (Verbalize.proposition config ~positive:true "pump");
  Alcotest.(check string) "negated status prop" "the pump is lost"
    (Verbalize.proposition config ~positive:false "pump");
  Alcotest.(check string) "adjective prop" "the cara is operational"
    (Verbalize.proposition config ~positive:true "operational_cara");
  Alcotest.(check string) "irregular participle"
    "the auto control mode is running"
    (Verbalize.proposition config ~positive:true "run_auto_control_mode")

let test_sentences () =
  check_sentence "G (pump -> trigger_alarm)"
    "If the pump is available, the alarm is triggered.";
  check_sentence "G (pump -> F inflate_cuff)"
    "When the pump is available, eventually the cuff is inflated.";
  check_sentence "G (!pump -> X X trigger_alarm)"
    "If the pump is lost, the alarm is triggered in 2 seconds.";
  check_sentence "G (trigger_alarm)" "The alarm is triggered.";
  check_sentence "G ((pump || cuff) && press_start_button -> select_cuff)"
    "If the pump is available or the cuff is available and the start \
     button is pressed, the cuff is selected."

let test_out_of_fragment () =
  List.iter
    (fun text ->
       match Verbalize.sentence config (parse text) with
       | None -> ()
       | Some s -> Alcotest.fail (text ^ " should not verbalize, got " ^ s))
    [ "a U b"; "F a"; "G (a -> (b -> c))"; "G (a <-> b)"; "G (F a -> b)" ]

let test_roundtrip_examples () =
  List.iter
    (fun text ->
       let formula = parse text in
       Alcotest.(check bool) (text ^ " roundtrips") true
         (Verbalize.roundtrips config formula))
    [
      "G (pump -> trigger_alarm)";
      "G (!pump -> !trigger_alarm)";
      "G (pump && cuff -> select_cuff)";
      "G (pump || cuff -> F start_manual_mode)";
      "G (press_start_button -> X X X start_pump)";
      "G (start_pump)";
      "G (run_auto_control_mode -> F inflate_cuff)";
    ]

(* Random fragment formulas over realistic proposition names. *)
let ap_gen =
  QCheck2.Gen.oneofl
    [ "pump"; "cuff"; "blood_pressure"; "press_start_button";
      "trigger_alarm"; "select_cuff"; "start_manual_mode";
      "inflate_cuff"; "operational_cara"; "run_auto_control_mode" ]

let literal_gen =
  let open QCheck2.Gen in
  map2
    (fun ap positive ->
       if positive then Ltl.prop ap else Ltl.neg (Ltl.prop ap))
    ap_gen bool

let clause_gen =
  let open QCheck2.Gen in
  let conj l = List.fold_left Ltl.conj Ltl.tt l in
  oneof
    [
      literal_gen;
      map conj (list_size (int_range 2 3) literal_gen);
      map2 Ltl.disj literal_gen literal_gen;
    ]

let fragment_formula_gen =
  let open QCheck2.Gen in
  let guarded =
    map2 (fun g r -> Ltl.always (Ltl.implies g r)) clause_gen
      (oneof
         [
           clause_gen;
           map Ltl.eventually clause_gen;
           map2 Ltl.next_n (int_range 1 3) literal_gen;
         ])
  in
  oneof [ guarded; map Ltl.always clause_gen ]

let prop_roundtrip =
  QCheck2.Test.make ~count:200
    ~print:Ltl_print.to_string
    ~name:"verbalized fragment formulas translate back to themselves"
    fragment_formula_gen
    (fun formula ->
       (* duplicate literals can collapse under the smart constructors;
          only insist on round-tripping when verbalization succeeds *)
       match Verbalize.sentence config formula with
       | None -> true
       | Some _ -> Verbalize.roundtrips config formula)

let () =
  Alcotest.run "verbalize"
    [
      ( "rendering",
        [
          Alcotest.test_case "propositions" `Quick test_propositions;
          Alcotest.test_case "sentences" `Quick test_sentences;
          Alcotest.test_case "out of fragment" `Quick test_out_of_fragment;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "examples" `Quick test_roundtrip_examples;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
