test/test_verbalize.ml: Alcotest List Ltl Ltl_parse Ltl_print QCheck2 QCheck_alcotest Speccc_logic Speccc_translate Verbalize
