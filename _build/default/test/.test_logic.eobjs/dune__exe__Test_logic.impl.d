test/test_logic.ml: Alcotest Classify List Ltl Ltl_parse Ltl_print Nnf QCheck2 QCheck_alcotest Speccc_logic Trace
