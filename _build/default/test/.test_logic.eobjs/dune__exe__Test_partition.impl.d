test/test_partition.ml: Alcotest List Ltl Ltl_parse QCheck2 QCheck_alcotest Speccc_logic Speccc_partition
