test/test_smt.ml: Alcotest Bitvec List Printf QCheck2 QCheck_alcotest Sat Smt Speccc_sat Speccc_smt Tseitin
