test/test_bdd.ml: Alcotest Bdd List QCheck2 QCheck_alcotest Speccc_bdd
