test/test_lint.ml: Alcotest Format List Ltl Ltl_parse Nbw QCheck2 QCheck_alcotest Speccc_automata Speccc_lint Speccc_logic Speccc_translate String Trace
