test/test_automata.ml: Alcotest Array Fun List Ltl Ltl_parse Nbw QCheck2 QCheck_alcotest Speccc_automata Speccc_logic Trace
