test/test_nlp.ml: Alcotest Dependency Format Lexicon List Morphology Parser Printf Speccc_nlp String Syntax Tokenizer
