test/test_monitor.ml: Alcotest List Ltl Ltl_parse Monitor Printf QCheck2 QCheck_alcotest Speccc_logic Speccc_monitor Trace
