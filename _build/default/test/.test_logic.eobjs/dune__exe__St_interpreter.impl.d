test/st_interpreter.ml: List Printf String
