test/test_sat.ml: Alcotest Array Dimacs Format Fun List Printf QCheck2 QCheck_alcotest Sat Speccc_sat Tseitin
