test/test_translate.ml: Alcotest Lazy List Ltl Ltl_parse Ltl_print Semantic Speccc_logic Speccc_reasoning Speccc_translate String Translate
