test/test_patterns.ml: Alcotest List Ltl Ltl_parse Ltl_print QCheck2 QCheck_alcotest Speccc_casestudies Speccc_logic Speccc_patterns Speccc_translate Trace
