test/test_timeabs.mli:
