test/test_verbalize.mli:
