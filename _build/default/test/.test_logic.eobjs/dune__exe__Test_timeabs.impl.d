test/test_timeabs.ml: Alcotest Bounded List Ltl Ltl_parse Ltl_print Printf QCheck2 QCheck_alcotest Speccc_logic Speccc_synthesis Speccc_timeabs String
