(* Tests for the bit-blasting SMT layer: bit-vector arithmetic against
   machine integers, constraint solving, and optimization. *)

open Speccc_sat
open Speccc_smt

(* --- bit-vector level --- *)

let decode_const ctx vec =
  (* Evaluate a constant-only vector by solving the trivial instance. *)
  match Sat.solve (Tseitin.solver ctx) with
  | Sat.Unsat -> Alcotest.fail "constant circuit unsat"
  | Sat.Sat model -> Bitvec.decode model vec

let test_bitvec_consts () =
  let ctx = Tseitin.create (Sat.create ()) in
  List.iter
    (fun v ->
       let w = Bitvec.width_for (min v 0) (max v 0) in
       Alcotest.(check int)
         (Printf.sprintf "roundtrip %d" v)
         v
         (decode_const ctx (Bitvec.of_int ctx ~width:w v)))
    [ 0; 1; -1; 5; -8; 127; -128; 1000; -999 ]

let test_width_for () =
  Alcotest.(check int) "0..1" 2 (Bitvec.width_for 0 1);
  Alcotest.(check int) "-1..0" 1 (Bitvec.width_for (-1) 0);
  Alcotest.(check int) "0..127" 8 (Bitvec.width_for 0 127);
  Alcotest.(check int) "-128..127" 8 (Bitvec.width_for (-128) 127)

let arith_case a b =
  let ctx = Tseitin.create (Sat.create ()) in
  let wa = Bitvec.width_for (min a 0) (max a 0) in
  let wb = Bitvec.width_for (min b 0) (max b 0) in
  let va = Bitvec.of_int ctx ~width:wa a in
  let vb = Bitvec.of_int ctx ~width:wb b in
  let sum = Bitvec.add ctx va vb in
  let difference = Bitvec.sub ctx va vb in
  let product = Bitvec.mul ctx va vb in
  match Sat.solve (Tseitin.solver ctx) with
  | Sat.Unsat -> Alcotest.fail "constant arithmetic unsat"
  | Sat.Sat model ->
    Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b)
      (Bitvec.decode model sum);
    Alcotest.(check int) (Printf.sprintf "%d-%d" a b) (a - b)
      (Bitvec.decode model difference);
    Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
      (Bitvec.decode model product)

let test_bitvec_arith () =
  List.iter
    (fun (a, b) -> arith_case a b)
    [ (0, 0); (1, 1); (3, 5); (-3, 5); (3, -5); (-3, -5); (60, 3); (180, 60);
      (-17, 13); (100, 100) ]

let prop_bitvec_arith =
  QCheck2.Test.make ~count:200 ~name:"bitvec arithmetic matches ints"
    QCheck2.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
       arith_case a b;
       true)

let prop_bitvec_compare =
  QCheck2.Test.make ~count:200 ~name:"bitvec comparisons match ints"
    QCheck2.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (a, b) ->
       let ctx = Tseitin.create (Sat.create ()) in
       let wa = Bitvec.width_for (min a 0) (max a 0) in
       let wb = Bitvec.width_for (min b 0) (max b 0) in
       let va = Bitvec.of_int ctx ~width:wa a in
       let vb = Bitvec.of_int ctx ~width:wb b in
       let lt = Bitvec.lt ctx va vb in
       let le = Bitvec.le ctx va vb in
       let eq = Bitvec.eq ctx va vb in
       match Sat.solve (Tseitin.solver ctx) with
       | Sat.Unsat -> false
       | Sat.Sat model ->
         Tseitin.lit_value model lt = (a < b)
         && Tseitin.lit_value model le = (a <= b)
         && Tseitin.lit_value model eq = (a = b))

(* --- SMT level --- *)

let test_smt_basic () =
  let ctx = Smt.create () in
  let x = Smt.var ctx ~lo:0 ~hi:10 in
  let y = Smt.var ctx ~lo:0 ~hi:10 in
  Smt.assert_atom ctx (Smt.eq ctx (Smt.add ctx x y) (Smt.const ctx 7));
  Smt.assert_atom ctx (Smt.gt ctx x y);
  (match Smt.solve ctx with
   | None -> Alcotest.fail "satisfiable"
   | Some m ->
     let vx = Smt.value m x and vy = Smt.value m y in
     Alcotest.(check int) "x+y" 7 (vx + vy);
     Alcotest.(check bool) "x>y" true (vx > vy))

let test_smt_unsat () =
  let ctx = Smt.create () in
  let x = Smt.var ctx ~lo:0 ~hi:5 in
  Smt.assert_atom ctx (Smt.gt ctx x (Smt.const ctx 5));
  Alcotest.(check bool) "out of bounds" true (Smt.solve ctx = None)

let test_smt_nonlinear () =
  (* x * y = 36, x in [2,9], y in [2,9], x < y  ->  x=4,y=9 or x=6,y=6
     excluded by <; also 2*18 out of range.  Unique: (4,9). *)
  let ctx = Smt.create () in
  let x = Smt.var ctx ~lo:2 ~hi:9 in
  let y = Smt.var ctx ~lo:2 ~hi:9 in
  Smt.assert_atom ctx (Smt.eq ctx (Smt.mul ctx x y) (Smt.const ctx 36));
  Smt.assert_atom ctx (Smt.lt ctx x y);
  (match Smt.solve ctx with
   | None -> Alcotest.fail "satisfiable"
   | Some m ->
     Alcotest.(check int) "x" 4 (Smt.value m x);
     Alcotest.(check int) "y" 9 (Smt.value m y))

let test_smt_minimize () =
  let ctx = Smt.create () in
  let x = Smt.var ctx ~lo:0 ~hi:20 in
  Smt.assert_atom ctx (Smt.ge ctx (Smt.mul ctx x x) (Smt.const ctx 50));
  (match Smt.minimize ctx x with
   | None -> Alcotest.fail "satisfiable"
   | Some (best, _) -> Alcotest.(check int) "least x with x^2>=50" 8 best)

let test_smt_minimize_lex () =
  (* Minimize (x, y) lexicographically under x + y >= 5, y <= 4. *)
  let ctx = Smt.create () in
  let x = Smt.var ctx ~lo:0 ~hi:10 in
  let y = Smt.var ctx ~lo:0 ~hi:4 in
  Smt.assert_atom ctx (Smt.ge ctx (Smt.add ctx x y) (Smt.const ctx 5));
  (match Smt.minimize_lex ctx [ x; y ] with
   | None -> Alcotest.fail "satisfiable"
   | Some (values, _) ->
     Alcotest.(check (list int)) "lex optimum" [ 1; 4 ] values)

let test_smt_negative_ranges () =
  let ctx = Smt.create () in
  let delta = Smt.var ctx ~lo:(-10) ~hi:10 in
  Smt.assert_atom ctx (Smt.lt ctx delta (Smt.const ctx 0));
  (match Smt.minimize ctx (Smt.neg ctx delta) with
   | None -> Alcotest.fail "satisfiable"
   | Some (best, m) ->
     Alcotest.(check int) "max negative delta" 1 best;
     Alcotest.(check int) "delta = -1" (-1) (Smt.value m delta))

(* Brute-force cross-check of a random linear system. *)
let prop_linear_system =
  let open QCheck2.Gen in
  let coeff = int_range (-3) 3 in
  let gen = pair (pair coeff coeff) (pair coeff (int_range (-5) 5)) in
  QCheck2.Test.make ~count:100 ~name:"ax+by<=c solvable iff brute force says so"
    gen
    (fun ((a, b), (c, bound)) ->
       let ctx = Smt.create () in
       let x = Smt.var ctx ~lo:(-4) ~hi:4 in
       let y = Smt.var ctx ~lo:(-4) ~hi:4 in
       let lhs = Smt.add ctx (Smt.scale ctx a x) (Smt.scale ctx b y) in
       Smt.assert_atom ctx (Smt.le ctx lhs (Smt.const ctx c));
       Smt.assert_atom ctx
         (Smt.ge ctx (Smt.sub ctx x y) (Smt.const ctx bound));
       let smt_sat = Smt.solve ctx <> None in
       let brute =
         List.exists
           (fun vx ->
              List.exists
                (fun vy -> (a * vx) + (b * vy) <= c && vx - vy >= bound)
                (List.init 9 (fun i -> i - 4)))
           (List.init 9 (fun i -> i - 4))
       in
       smt_sat = brute)

let () =
  Alcotest.run "smt"
    [
      ( "bitvec",
        [
          Alcotest.test_case "constants" `Quick test_bitvec_consts;
          Alcotest.test_case "width_for" `Quick test_width_for;
          Alcotest.test_case "arithmetic" `Quick test_bitvec_arith;
          QCheck_alcotest.to_alcotest prop_bitvec_arith;
          QCheck_alcotest.to_alcotest prop_bitvec_compare;
        ] );
      ( "smt",
        [
          Alcotest.test_case "basic" `Quick test_smt_basic;
          Alcotest.test_case "unsat" `Quick test_smt_unsat;
          Alcotest.test_case "nonlinear" `Quick test_smt_nonlinear;
          Alcotest.test_case "minimize" `Quick test_smt_minimize;
          Alcotest.test_case "minimize lex" `Quick test_smt_minimize_lex;
          Alcotest.test_case "negative ranges" `Quick
            test_smt_negative_ranges;
          QCheck_alcotest.to_alcotest prop_linear_system;
        ] );
    ]
