(* Tests for the LTL lint pass (satisfiability, validity, equivalence,
   pair conflicts, vacuity) and the underlying automaton emptiness /
   witness machinery. *)

open Speccc_logic
open Speccc_automata
open Speccc_lint.Lint

let parse = Ltl_parse.formula

(* --- emptiness / witnesses --- *)

let test_find_word_basic () =
  (match Nbw.find_word (Nbw.of_ltl (parse "a && X (!a)")) with
   | None -> Alcotest.fail "satisfiable"
   | Some word ->
     Alcotest.(check bool) "witness is a model" true
       (Trace.holds word (parse "a && X (!a)")));
  Alcotest.(check bool) "contradiction empty" true
    (Nbw.is_empty (Nbw.of_ltl (parse "a && !a")));
  Alcotest.(check bool) "G a && F !a empty" true
    (Nbw.is_empty (Nbw.of_ltl (parse "G a && F (!a)")))

let prop_witnesses_are_models =
  let formula_gen =
    let open QCheck2.Gen in
    let prop_names = [ "a"; "b"; "c" ] in
    int_range 0 8 >>= fix (fun self size ->
        if size <= 1 then
          oneof [ return Ltl.True; return Ltl.False;
                  map Ltl.prop (oneofl prop_names) ]
        else
          let sub = self (size / 2) in
          oneof
            [
              map Ltl.prop (oneofl prop_names);
              map (fun f -> Ltl.Not f) sub;
              map2 (fun f g -> Ltl.And (f, g)) sub sub;
              map2 (fun f g -> Ltl.Or (f, g)) sub sub;
              map (fun f -> Ltl.Next f) sub;
              map (fun f -> Ltl.Eventually f) sub;
              map (fun f -> Ltl.Always f) sub;
              map2 (fun f g -> Ltl.Until (f, g)) sub sub;
            ])
  in
  QCheck2.Test.make ~count:300
    ~name:"find_word returns models; None only for unsatisfiable"
    formula_gen
    (fun f ->
       match Nbw.find_word (Nbw.of_ltl f) with
       | Some word -> Trace.holds word f
       | None ->
         (* cross-check: the negation must then be valid *)
         (match Nbw.find_word (Nbw.of_ltl (Ltl.neg f)) with
          | Some _ -> true
          | None -> false (* f and ¬f both empty is impossible *)))

(* --- lint primitives --- *)

let test_satisfiable_valid_equivalent () =
  Alcotest.(check bool) "sat" true (satisfiable (parse "F a") <> None);
  Alcotest.(check bool) "unsat" true
    (satisfiable (parse "G a && F (!a)") = None);
  Alcotest.(check bool) "valid" true (valid (parse "a || !a"));
  Alcotest.(check bool) "not valid" false (valid (parse "F a"));
  Alcotest.(check bool) "U/W difference" false
    (equivalent (parse "a U b") (parse "a W b"));
  Alcotest.(check bool) "W expansion" true
    (equivalent (parse "a W b") (parse "(a U b) || G a"));
  Alcotest.(check bool) "F distributes over ||" true
    (equivalent (parse "F (a || b)") (parse "F a || F b"))

(* --- whole-spec checks --- *)

let test_check_unsatisfiable () =
  let findings = check [ parse "G (a && !a && b)" ] in
  Alcotest.(check bool) "unsat flagged" true
    (List.exists (function Unsatisfiable 0 -> true | _ -> false) findings)

let test_check_tautology () =
  let findings = check [ parse "G (a -> a)" ] in
  Alcotest.(check bool) "tautology flagged" true
    (List.exists (function Valid 0 -> true | _ -> false) findings)

let test_check_pair_conflict () =
  let findings =
    check [ parse "G a"; parse "G (b -> b)"; parse "F (!a)" ]
  in
  (match
     List.find_opt
       (function Pair_conflict _ -> true | _ -> false)
       findings
   with
   | Some (Pair_conflict (0, 2, witness)) ->
     Alcotest.(check bool) "witness satisfies the first member" true
       (Trace.holds witness (parse "G a"))
   | Some _ | None -> Alcotest.fail "conflict between 0 and 2 expected")

let test_check_vacuous_guard () =
  (* the guard "a && !a" can never fire *)
  let findings =
    check [ parse "G (b -> c)"; parse "G ((a && !a) -> d)" ]
  in
  Alcotest.(check bool) "vacuous guard flagged" true
    (List.exists (function Vacuous_guard 1 -> true | _ -> false) findings);
  (* requirement 0's guard does fire *)
  Alcotest.(check bool) "live guard not flagged" false
    (List.exists (function Vacuous_guard 0 -> true | _ -> false) findings)

let test_check_clean_spec () =
  let config = Speccc_translate.Translate.default_config () in
  let result =
    Speccc_translate.Translate.specification config
      [
        "If the pump is available, the alarm is disabled.";
        "If the pump is lost, the alarm is enabled.";
        "When the pump is available, eventually corroboration is \
         triggered.";
      ]
  in
  let formulas =
    List.map
      (fun r -> r.Speccc_translate.Translate.formula)
      result.Speccc_translate.Translate.requirements
  in
  Alcotest.(check (list int)) "no findings" []
    (List.map (fun _ -> 0) (check formulas))

let test_pp_finding () =
  let rendered =
    Format.asprintf "%a"
      (pp_finding ~requirement_text:(fun i ->
           if i = 0 then Some "Req-08" else None))
      (Unsatisfiable 0)
  in
  Alcotest.(check bool) "mentions the requirement id" true
    (let rec contains i =
       i + 6 <= String.length rendered
       && (String.sub rendered i 6 = "Req-08" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "lint"
    [
      ( "emptiness",
        [
          Alcotest.test_case "find_word" `Quick test_find_word_basic;
          QCheck_alcotest.to_alcotest prop_witnesses_are_models;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "sat/valid/equivalent" `Quick
            test_satisfiable_valid_equivalent;
        ] );
      ( "check",
        [
          Alcotest.test_case "unsatisfiable" `Quick test_check_unsatisfiable;
          Alcotest.test_case "tautology" `Quick test_check_tautology;
          Alcotest.test_case "pair conflict" `Quick test_check_pair_conflict;
          Alcotest.test_case "vacuous guard" `Quick test_check_vacuous_guard;
          Alcotest.test_case "clean specification" `Quick
            test_check_clean_spec;
          Alcotest.test_case "rendering" `Quick test_pp_finding;
        ] );
    ]
