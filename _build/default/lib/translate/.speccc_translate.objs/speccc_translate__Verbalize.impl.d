lib/translate/verbalize.ml: Lexicon List Ltl Option Parser Printf Speccc_logic Speccc_nlp String Translate
