lib/translate/translate.ml: Antonym Dependency Hashtbl Lexicon List Ltl Parser Semantic Speccc_logic Speccc_nlp Speccc_reasoning Syntax
