lib/translate/verbalize.mli: Speccc_logic Speccc_nlp Translate
