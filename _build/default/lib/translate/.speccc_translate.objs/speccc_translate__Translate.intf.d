lib/translate/translate.mli: Speccc_logic Speccc_nlp Speccc_reasoning
