lib/lint/lint.ml: Array Format List Ltl Nbw Printf Speccc_automata Speccc_logic Trace
