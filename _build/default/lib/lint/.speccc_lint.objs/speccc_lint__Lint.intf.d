lib/lint/lint.mli: Format Speccc_logic
