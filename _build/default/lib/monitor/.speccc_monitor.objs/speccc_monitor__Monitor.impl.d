lib/monitor/monitor.ml: List Ltl Nnf Speccc_logic
