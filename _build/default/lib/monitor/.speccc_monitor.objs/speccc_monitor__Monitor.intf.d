lib/monitor/monitor.mli: Speccc_logic
