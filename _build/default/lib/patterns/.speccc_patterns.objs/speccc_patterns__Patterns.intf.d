lib/patterns/patterns.mli: Format Speccc_logic
