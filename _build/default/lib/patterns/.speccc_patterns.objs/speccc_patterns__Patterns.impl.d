lib/patterns/patterns.ml: Format List Ltl Ltl_print Printf Speccc_logic
