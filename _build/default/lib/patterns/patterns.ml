open Speccc_logic

type pattern =
  | Absence
  | Universality
  | Existence
  | Response
  | Precedence

type scope =
  | Globally
  | Before of Ltl.t
  | After of Ltl.t
  | Between of Ltl.t * Ltl.t
  | After_until of Ltl.t * Ltl.t

let pattern_name = function
  | Absence -> "absence"
  | Universality -> "universality"
  | Existence -> "existence"
  | Response -> "response"
  | Precedence -> "precedence"

(* The standard LTL mappings from the pattern catalogue (Dwyer et al.,
   FMSP'98 / the SPIN'05 validation by Salamah et al., the paper's
   [19]). *)
let instantiate pattern ~p ?s scope =
  let s_required () =
    match s with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Patterns.instantiate: %s needs a second formula"
           (pattern_name pattern))
  in
  let open Ltl in
  match pattern, scope with
  (* --- absence --- *)
  | Absence, Globally -> always (neg p)
  | Absence, Before r -> implies (eventually r) (until (neg p) r)
  | Absence, After q -> always (implies q (always (neg p)))
  | Absence, Between (q, r) ->
    always
      (implies
         (conj_list [ q; neg r; eventually r ])
         (until (neg p) r))
  | Absence, After_until (q, r) ->
    always (implies (conj q (neg r)) (weak_until (neg p) r))
  (* --- universality --- *)
  | Universality, Globally -> always p
  | Universality, Before r -> implies (eventually r) (until p r)
  | Universality, After q -> always (implies q (always p))
  | Universality, Between (q, r) ->
    always (implies (conj_list [ q; neg r; eventually r ]) (until p r))
  | Universality, After_until (q, r) ->
    always (implies (conj q (neg r)) (weak_until p r))
  (* --- existence --- *)
  | Existence, Globally -> eventually p
  | Existence, Before r -> weak_until (neg r) (conj p (neg r))
  | Existence, After q ->
    disj (always (neg q)) (eventually (conj q (eventually p)))
  | Existence, Between (q, r) ->
    always
      (implies (conj q (neg r)) (weak_until (neg r) (conj p (neg r))))
  | Existence, After_until (q, r) ->
    always (implies (conj q (neg r)) (until (neg r) (conj p (neg r))))
  (* --- response: s responds to p --- *)
  | Response, Globally ->
    let s = s_required () in
    always (implies p (eventually s))
  | Response, Before r ->
    let s = s_required () in
    implies (eventually r)
      (until (implies p (until (neg r) (conj s (neg r)))) r)
  | Response, After q ->
    let s = s_required () in
    always (implies q (always (implies p (eventually s))))
  | Response, Between (q, r) ->
    let s = s_required () in
    always
      (implies
         (conj_list [ q; neg r; eventually r ])
         (until (implies p (until (neg r) (conj s (neg r)))) r))
  | Response, After_until (q, r) ->
    let s = s_required () in
    always
      (implies (conj q (neg r))
         (weak_until (implies p (until (neg r) (conj s (neg r)))) r))
  (* --- precedence: s precedes p --- *)
  | Precedence, Globally ->
    let s = s_required () in
    weak_until (neg p) s
  | Precedence, Before r ->
    let s = s_required () in
    implies (eventually r) (until (neg p) (disj s r))
  | Precedence, After q ->
    let s = s_required () in
    disj (always (neg q)) (eventually (conj q (weak_until (neg p) s)))
  | Precedence, Between (q, r) ->
    let s = s_required () in
    always
      (implies
         (conj_list [ q; neg r; eventually r ])
         (until (neg p) (disj s r)))
  | Precedence, After_until (q, r) ->
    let s = s_required () in
    always (implies (conj q (neg r)) (weak_until (neg p) (disj s r)))

type instance = {
  pattern : pattern;
  scope_name : string;
  p : Ltl.t;
  s : Ltl.t option;
}

(* Recognition of the Globally-scope shapes the translator emits. *)
let recognize formula =
  let globally pattern p s = Some { pattern; scope_name = "globally"; p; s } in
  match formula with
  | Ltl.Always (Ltl.Implies (guard, Ltl.Eventually response)) ->
    globally Response guard (Some response)
  | Ltl.Always (Ltl.Not p) -> globally Absence p None
  | Ltl.Always (Ltl.Implies (_, _) as body) ->
    (* the translator's guarded requirements are universality of an
       implication *)
    globally Universality body None
  | Ltl.Always p -> globally Universality p None
  | Ltl.Eventually p -> globally Existence p None
  | Ltl.Weak_until (Ltl.Not p, s) ->
    globally Precedence p (Some s)
  | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not _ | Ltl.And _ | Ltl.Or _
  | Ltl.Implies _ | Ltl.Iff _ | Ltl.Next _ | Ltl.Until _ | Ltl.Weak_until _
  | Ltl.Release _ ->
    None

let classify formulas = List.mapi (fun i f -> (i, recognize f)) formulas

let pp_instance ppf { pattern; scope_name; p; s } =
  Format.fprintf ppf "%s (%s): P = %s%s" (pattern_name pattern) scope_name
    (Ltl_print.to_string p)
    (match s with
     | Some s -> ", S = " ^ Ltl_print.to_string s
     | None -> "")
