(** The property-specification pattern system of Dwyer, Avrunin and
    Corbett — the template catalogue behind the paper's translation
    (Sec. IV-C cites the pattern/scope study [6] and the LTL templates
    of [19]; the translator instantiates the Universality and Existence
    families).

    Each pattern is parameterized by one or two state formulas and a
    scope; {!instantiate} produces the standard LTL mapping.
    {!recognize} performs the reverse analysis — which template a
    translated requirement instantiates — used for reporting which
    patterns a specification exercises. *)

type pattern =
  | Absence        (** P never holds *)
  | Universality   (** P always holds *)
  | Existence      (** P eventually holds *)
  | Response       (** S follows P *)
  | Precedence     (** S precedes P *)

type scope =
  | Globally
  | Before of Speccc_logic.Ltl.t          (** up to the first [r] *)
  | After of Speccc_logic.Ltl.t           (** from the first [q] on *)
  | Between of Speccc_logic.Ltl.t * Speccc_logic.Ltl.t
      (** in every closed [q]…[r] interval *)
  | After_until of Speccc_logic.Ltl.t * Speccc_logic.Ltl.t
      (** from every [q] until the next [r], even if [r] never comes *)

val instantiate :
  pattern ->
  p:Speccc_logic.Ltl.t ->
  ?s:Speccc_logic.Ltl.t ->
  scope ->
  Speccc_logic.Ltl.t
(** Standard LTL mapping.  [s] is required for [Response] and
    [Precedence] (raises [Invalid_argument] if missing) and ignored
    otherwise. *)

type instance = {
  pattern : pattern;
  scope_name : string;   (** "globally", "before", ... *)
  p : Speccc_logic.Ltl.t;
  s : Speccc_logic.Ltl.t option;
}

val recognize : Speccc_logic.Ltl.t -> instance option
(** Structural recognition of the Globally-scope templates (the ones
    the paper's translator emits), including the guarded-response
    shape [□(guard → ♦response)], the universality shape
    [□(guard → response)] read as Universality of an implication, and
    bare [♦]/[□]/[□¬] formulas. *)

val classify : Speccc_logic.Ltl.t list -> (int * instance option) list
(** Recognize every requirement of a specification. *)

val pattern_name : pattern -> string
val pp_instance : Format.formatter -> instance -> unit
