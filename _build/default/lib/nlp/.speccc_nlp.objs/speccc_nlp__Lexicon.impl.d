lib/nlp/lexicon.ml: Hashtbl List String
