lib/nlp/parser.mli: Lexicon Syntax
