lib/nlp/parser.ml: Array Lexicon List Morphology Printf String Syntax Tokenizer
