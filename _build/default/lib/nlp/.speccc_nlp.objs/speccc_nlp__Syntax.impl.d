lib/nlp/syntax.ml: Format List String
