lib/nlp/morphology.mli: Lexicon
