lib/nlp/lexicon.mli:
