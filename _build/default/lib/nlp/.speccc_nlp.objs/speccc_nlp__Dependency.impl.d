lib/nlp/dependency.ml: Hashtbl List String Syntax
