lib/nlp/morphology.ml: Lexicon List String
