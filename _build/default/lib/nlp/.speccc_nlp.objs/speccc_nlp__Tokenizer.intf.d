lib/nlp/tokenizer.mli: Format
