lib/nlp/tokenizer.ml: Format List Printf String
