lib/nlp/syntax.mli: Format
