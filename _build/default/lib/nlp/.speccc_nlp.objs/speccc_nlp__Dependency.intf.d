lib/nlp/dependency.mli: Syntax
