(** Part-of-speech lexicon for the structured English subset
    (Sec. IV-B).

    Closed word classes (modals, subordinators, modifiers,
    conjunctions, determiners, copulas, prepositions, negations) are
    fixed by the paper's grammar.  Open classes (nouns, verbs,
    adjectives, adverbs) ship with the vocabulary of the three case
    studies and can be extended at runtime — the analogue of feeding
    the Stanford parser a domain model. *)

type part_of_speech =
  | Noun
  | Verb
  | Adjective
  | Adverb
  | Modal
  | Subordinator
  | Modifier        (** globally / always / sometimes / eventually *)
  | Conjunction     (** and / or *)
  | Determiner
  | Copula          (** be / is / are / was / were / been / being *)
  | Preposition
  | Negation        (** not / never / no *)
  | Number of int
  | Unknown

type t

val default : unit -> t
(** Fresh lexicon preloaded with the case-study vocabulary. *)

val add : t -> string -> part_of_speech -> unit
(** Teach one word.  Later additions take priority over built-ins. *)

val lookup : t -> string -> part_of_speech list
(** All classes a (lowercase) word belongs to, most specific first;
    [[Unknown]] if the word is not known.  Numerals return
    [Number n]. *)

val has_class : t -> string -> part_of_speech -> bool

val known_verbs : t -> string list
val known_adjectives : t -> string list
