type part_of_speech =
  | Noun
  | Verb
  | Adjective
  | Adverb
  | Modal
  | Subordinator
  | Modifier
  | Conjunction
  | Determiner
  | Copula
  | Preposition
  | Negation
  | Number of int
  | Unknown

type t = {
  table : (string, part_of_speech list) Hashtbl.t;
}

let closed_classes = [
  (Modal, [ "shall"; "should"; "will"; "would"; "can"; "could"; "must";
            "may"; "might" ]);
  (Subordinator, [ "if"; "after"; "once"; "when"; "whenever"; "while";
                   "before"; "until"; "next" ]);
  (Modifier, [ "globally"; "always"; "sometimes"; "eventually" ]);
  (Conjunction, [ "and"; "or" ]);
  (Determiner, [ "the"; "a"; "an"; "this"; "that"; "its"; "their"; "some";
                 "any"; "each"; "every" ]);
  (Copula, [ "be"; "is"; "are"; "was"; "were"; "been"; "being";
             "remain"; "remains"; "remained"; "become"; "becomes";
             "stay"; "stays" ]);
  (Preposition, [ "in"; "to"; "of"; "on"; "from"; "by"; "at"; "for";
                  "with"; "into"; "within" ]);
  (Negation, [ "not"; "never"; "no" ]);
]

(* Open-class vocabulary of the CARA, TELEPROMISE and rescue-robot
   case studies. *)
let nouns = [
  (* CARA *)
  "cara"; "lstat"; "mode"; "pump"; "cuff"; "signal"; "button"; "alarm";
  "line"; "wave"; "pulse"; "pressure"; "blood"; "occlusion"; "infusate";
  "battery"; "power"; "supply"; "source"; "rate"; "infusion"; "level";
  "monitor"; "care-giver"; "patient"; "selection"; "override";
  "confirmation"; "corroboration"; "reading"; "impedance"; "air"; "reset";
  "second"; "seconds"; "auto-control"; "auto_control"; "manual";
  "wait"; "software"; "system"; "data"; "flow"; "auto"; "control";
  "terminate_auto_control";
  "start_auto_control"; "alarm_reset"; "override_yes"; "override_no";
  "confirmation_yes"; "confirmation_no";
  (* TELEPROMISE *)
  "order"; "item"; "catalog"; "customer"; "payment"; "account"; "stock";
  "article"; "review"; "reviewer"; "editor"; "submission"; "decision";
  "reservation"; "seat"; "request"; "session"; "query"; "response";
  "bulletin"; "board"; "message"; "posting"; "moderator"; "notice";
  "receipt"; "invoice"; "shipment"; "cart"; "user"; "operator";
  "database"; "record"; "page"; "menu"; "service"; "application";
  "information"; "result"; "timeout"; "login"; "password";
  (* robot *)
  "robot"; "room"; "medic"; "person"; "people"; "victim"; "exit";
  "corridor"; "location"; "search"; "mission"; "base";
]

(* Verbs are stored as lemmas; morphology maps inflected forms back. *)
let verbs = [
  "enter"; "leave"; "exit"; "run"; "start"; "stop"; "terminate"; "press";
  "push"; "turn"; "inflate"; "deflate"; "trigger"; "sound"; "issue";
  "select"; "corroborate"; "provide"; "disable"; "enable"; "plug";
  "detect"; "monitor"; "control"; "lose"; "power"; "operate"; "drive";
  "collect"; "measure"; "read"; "alarm"; "reset"; "confirm"; "switch";
  "go"; "use"; "pump"; "occlude"; "clear"; "ready"; "supply"; "backup";
  (* TELEPROMISE *)
  "place"; "ship"; "cancel"; "pay"; "charge"; "refund"; "submit";
  "review"; "accept"; "reject"; "publish"; "reserve"; "release"; "book";
  "request"; "answer"; "display"; "show"; "post"; "remove"; "moderate";
  "notify"; "send"; "receive"; "process"; "validate"; "approve";
  "deliver"; "update"; "log"; "register"; "acknowledge"; "complete";
  "retry"; "expire"; "open"; "close"; "lock"; "unlock"; "grant"; "deny";
  (* robot *)
  "move"; "carry"; "find"; "locate"; "visit"; "rescue"; "pick"; "drop";
  "return"; "explore"; "reach";
]

(* Participle-shaped words that the appendix treats as verbs
   (is pressed ↦ press_x, is running ↦ run_x) are deliberately absent:
   the parser's participle reading must win for them.  "ok" is also
   absent so that named signals like "Air Ok signal" keep their full
   subject. *)
let adjectives = [
  "available"; "unavailable"; "valid"; "invalid"; "low"; "high";
  "ready"; "unready"; "clear"; "blocked"; "operational"; "inoperative";
  "lost"; "present"; "on"; "off"; "open"; "closed"; "full"; "empty";
  "normal"; "abnormal"; "active"; "inactive"; "enabled"; "disabled";
  "occupied"; "free"; "busy"; "idle"; "late"; "early"; "successful";
  "failed"; "injured"; "healthy"; "safe"; "unsafe"; "same"; "different";
  "new"; "old";
]

let adverbs = [
  "immediately"; "promptly"; "quickly"; "slowly"; "correctly";
  "incorrectly"; "successfully"; "unsuccessfully"; "automatically";
  "manually"; "initially"; "continuously";
]

let is_numeral word =
  match int_of_string_opt word with Some _ -> true | None -> false

let number_words = [
  ("one", 1); ("two", 2); ("three", 3); ("four", 4); ("five", 5);
  ("six", 6); ("seven", 7); ("eight", 8); ("nine", 9); ("ten", 10);
]

let default () =
  let table = Hashtbl.create 1024 in
  let register pos word =
    let existing =
      match Hashtbl.find_opt table word with Some l -> l | None -> []
    in
    if not (List.mem pos existing) then
      Hashtbl.replace table word (existing @ [ pos ])
  in
  List.iter (fun (pos, words) -> List.iter (register pos) words)
    closed_classes;
  List.iter (register Noun) nouns;
  List.iter (register Verb) verbs;
  List.iter (register Adjective) adjectives;
  List.iter (register Adverb) adverbs;
  { table }

let add lexicon word pos =
  let word = String.lowercase_ascii word in
  let existing =
    match Hashtbl.find_opt lexicon.table word with Some l -> l | None -> []
  in
  Hashtbl.replace lexicon.table word (pos :: List.filter (( <> ) pos) existing)

let lookup lexicon word =
  let word = String.lowercase_ascii word in
  if is_numeral word then [ Number (int_of_string word) ]
  else
    match List.assoc_opt word number_words with
    | Some n -> [ Number n ]
    | None ->
      (match Hashtbl.find_opt lexicon.table word with
       | Some classes -> classes
       | None -> [ Unknown ])

let has_class lexicon word pos = List.mem pos (lookup lexicon word)

let words_with lexicon pos =
  Hashtbl.fold
    (fun word classes acc -> if List.mem pos classes then word :: acc else acc)
    lexicon.table []
  |> List.sort compare

let known_verbs lexicon = words_with lexicon Verb
let known_adjectives lexicon = words_with lexicon Adjective
