(** Dependency extraction: the ⟨subject, dependent⟩ relation the
    paper's Algorithm 1 consumes (Sec. IV-D).

    For every clause, the subject key is the underscore-joined
    substantive and the dependents are the adjective/adverb complements
    attached to it (the antonym candidates). *)

type relation = {
  subject : string;       (** e.g. ["pulse_wave"] *)
  dependents : string list;
      (** adjectives/adverbs seen with this subject, in first-seen
          order, without duplicates *)
}

val subject_key : string list -> string
(** Join a substantive's words with ["_"]. *)

val of_sentences : Syntax.sentence list -> relation list
(** Grouped by subject, subjects in first-seen order. *)
