(** Syntax trees of the structured English grammar (Sec. IV-B) —
    Figure 2 of the paper shows the tree for Req-17.

    A sentence is a main clause group with optional subordinate clause
    groups before and after; a clause group is one or more clauses
    joined by conjunctions; a clause has an optional modifier, a
    subject (possibly several substantives joined by a conjunction), a
    predicate, and an optional time constraint ("in t seconds"). *)

type conjunction = And | Or

type predicate = {
  verb : string;
      (** lemma, tense removed (e.g. [enter] for "is entered") *)
  negated : bool;           (** "is not valid", "cannot be started" *)
  modality : string option; (** shall / should / will / ... *)
  passive : bool;           (** "is entered" vs "enters" *)
  complement : string option;
      (** adjective/adverb complement of a copula: "remains low" *)
  objects : string list;
      (** object words of an active verb ("the control goes to a
          backup battery" -> [["backup"; "battery"]] flattened);
          ignored by proposition formation, kept for diagnostics *)
}

type noun_phrase = {
  nouns : string list list;
      (** each substantive is the list of its words, e.g.
          [[["auto-control"; "mode"]]]; several substantives when
          joined by a conjunction *)
  noun_conj : conjunction;  (** how the substantives combine *)
}

type clause = {
  modifier : string option;     (** always / eventually / next / ... *)
  subject : noun_phrase;
  predicate : predicate;
  time_bound : int option;      (** "in 3 seconds" -> [Some 3] *)
}

type clause_group = {
  clauses : clause list;        (** non-empty *)
  clause_conjs : conjunction list;
      (** length = |clauses| - 1, the glue between consecutive
          clauses *)
}

type subclause = {
  subordinator : string;        (** if / when / until / ... *)
  body : clause_group;
}

type sentence = {
  leading : subclause list;     (** subordinate clauses before the main *)
  main : clause_group;
  trailing : subclause list;    (** subordinate clauses after the main *)
}

val subject_words : clause -> string list list
(** The substantives of the clause's subject. *)

val pp_sentence : Format.formatter -> sentence -> unit
(** Indented tree rendering in the style of the paper's Figure 2. *)
