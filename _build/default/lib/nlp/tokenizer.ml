type token =
  | Word of string
  | Comma
  | Period

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '\''

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let rec scan i =
    if i >= n then ()
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | ',' ->
        tokens := Comma :: !tokens;
        scan (i + 1)
      | '.' ->
        tokens := Period :: !tokens;
        scan (i + 1)
      | ';' | ':' ->
        (* Treated as clause separators, like commas. *)
        tokens := Comma :: !tokens;
        scan (i + 1)
      | '(' | ')' | '"' -> scan (i + 1)
      | c when is_word_char c ->
        let j = ref (i + 1) in
        while !j < n && is_word_char text.[!j] do incr j done;
        let word = String.lowercase_ascii (String.sub text i (!j - i)) in
        tokens := Word word :: !tokens;
        scan !j
      | c -> failwith (Printf.sprintf "Tokenizer: unexpected character %C" c)
  in
  scan 0;
  List.rev !tokens

let split_sentences text =
  String.split_on_char '.' text
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let pp_token ppf = function
  | Word w -> Format.pp_print_string ppf w
  | Comma -> Format.pp_print_string ppf ","
  | Period -> Format.pp_print_string ppf "."
