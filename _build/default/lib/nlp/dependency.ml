type relation = {
  subject : string;
  dependents : string list;
}

let subject_key words = String.concat "_" words

let clause_pairs clause =
  match clause.Syntax.predicate.Syntax.complement with
  | None -> []
  | Some dependent ->
    List.map
      (fun substantive -> (subject_key substantive, dependent))
      clause.Syntax.subject.Syntax.nouns

let group_pairs group =
  List.concat_map clause_pairs group.Syntax.clauses

let sentence_pairs s =
  List.concat_map (fun sub -> group_pairs sub.Syntax.body) s.Syntax.leading
  @ group_pairs s.Syntax.main
  @ List.concat_map (fun sub -> group_pairs sub.Syntax.body) s.Syntax.trailing

let of_sentences sentences =
  let order = ref [] in
  let table = Hashtbl.create 32 in
  List.iter
    (fun (subject, dependent) ->
       match Hashtbl.find_opt table subject with
       | None ->
         order := subject :: !order;
         Hashtbl.add table subject [ dependent ]
       | Some dependents ->
         if not (List.mem dependent dependents) then
           Hashtbl.replace table subject (dependents @ [ dependent ]))
    (List.concat_map sentence_pairs sentences);
  List.rev_map
    (fun subject -> { subject; dependents = Hashtbl.find table subject })
    !order
