type conjunction = And | Or

type predicate = {
  verb : string;
  negated : bool;
  modality : string option;
  passive : bool;
  complement : string option;
  objects : string list;
}

type noun_phrase = {
  nouns : string list list;
  noun_conj : conjunction;
}

type clause = {
  modifier : string option;
  subject : noun_phrase;
  predicate : predicate;
  time_bound : int option;
}

type clause_group = {
  clauses : clause list;
  clause_conjs : conjunction list;
}

type subclause = {
  subordinator : string;
  body : clause_group;
}

type sentence = {
  leading : subclause list;
  main : clause_group;
  trailing : subclause list;
}

let subject_words clause = clause.subject.nouns

let pp_conj ppf = function
  | And -> Format.pp_print_string ppf "and"
  | Or -> Format.pp_print_string ppf "or"

let pp_predicate ppf p =
  Format.fprintf ppf "predicate(%s%s%s%s%s)"
    (if p.negated then "not " else "")
    p.verb
    (match p.modality with Some m -> " modality:" ^ m | None -> "")
    (if p.passive then " passive" else "")
    (match p.complement with Some c -> " complement:" ^ c | None -> "")

let pp_clause ppf c =
  Format.fprintf ppf "@[<v 2>clause@,";
  (match c.modifier with
   | Some m -> Format.fprintf ppf "modifier: %s@," m
   | None -> ());
  Format.fprintf ppf "subject: %s"
    (String.concat
       (Format.asprintf " %a " pp_conj c.subject.noun_conj)
       (List.map (String.concat " ") c.subject.nouns));
  Format.fprintf ppf "@,%a" pp_predicate c.predicate;
  (match c.time_bound with
   | Some t -> Format.fprintf ppf "@,constraint: in %d" t
   | None -> ());
  Format.fprintf ppf "@]"

let pp_clause_group ppf group =
  let rec go clauses conjs =
    match clauses, conjs with
    | [], _ -> ()
    | [ c ], _ -> pp_clause ppf c
    | c :: rest, conj :: conjs ->
      Format.fprintf ppf "%a@,%a@," pp_clause c pp_conj conj;
      go rest conjs
    | c :: rest, [] ->
      Format.fprintf ppf "%a@," pp_clause c;
      go rest []
  in
  go group.clauses group.clause_conjs

let pp_subclause ppf sub =
  Format.fprintf ppf "@[<v 2>subclause@,subordinator: %s@,%a@]"
    sub.subordinator pp_clause_group sub.body

let pp_sentence ppf s =
  Format.fprintf ppf "@[<v 2>sentence@,";
  List.iter (fun sub -> Format.fprintf ppf "%a@," pp_subclause sub) s.leading;
  Format.fprintf ppf "@[<v 2>main@,%a@]" pp_clause_group s.main;
  List.iter (fun sub -> Format.fprintf ppf "@,%a" pp_subclause sub)
    s.trailing;
  Format.fprintf ppf "@]"
