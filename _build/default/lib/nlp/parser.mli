(** Recursive-descent parser for the structured English grammar
    (Sec. IV-B), producing {!Syntax.sentence} trees and replacing the
    role the Stanford parser plays in the paper's prototype.

    Segmentation rules (derived from the appendix corpus):
    - a segment starting with a subordinator (if, when, whenever, once,
      while, after, before, until) is a subordinate clause group;
    - a comma followed by a conjunction continues the current clause
      group with a further clause;
    - a comma followed by anything else closes the current segment;
    - "until"/"before" occurring mid-segment opens a trailing
      subordinate clause even without a comma;
    - "next" is treated as a clause modifier (its use throughout the
      appendix), not as a segment opener. *)

exception Error of string

val sentence : Lexicon.t -> string -> Syntax.sentence
(** Parse one requirement sentence.  Raises {!Error} with a diagnostic
    when the text falls outside the grammar. *)

val sentence_opt : Lexicon.t -> string -> Syntax.sentence option

val specification : Lexicon.t -> string -> Syntax.sentence list
(** Parse a multi-sentence specification (split on periods). *)
