(** Tokenization of requirement sentences.

    Words are lowercased; hyphens and underscores are kept inside
    words ([auto-control] is one token); commas and periods become
    punctuation tokens; everything else splits on whitespace. *)

type token =
  | Word of string
  | Comma
  | Period

val tokenize : string -> token list
(** Raises [Failure] on characters outside the structured subset. *)

val split_sentences : string -> string list
(** Split a multi-sentence specification text on periods, dropping
    blank segments. *)

val pp_token : Format.formatter -> token -> unit
