(** English inflection analysis: map surface verb forms back to their
    lemma (the translation removes tense information, Sec. IV-C), and
    recognize participles.

    Irregular verbs of the case-study vocabulary are tabulated;
    regular forms are handled by suffix stripping with the usual
    spelling rules (doubling, final-e, y→ied). *)

type verb_form =
  | Base                (** enter *)
  | Third_singular      (** enters *)
  | Past                (** entered *)
  | Past_participle     (** entered, lost *)
  | Present_participle  (** entering *)

val analyze_verb : Lexicon.t -> string -> (string * verb_form) option
(** [analyze_verb lexicon word] = [Some (lemma, form)] when the word is
    (an inflection of) a known verb. *)

val lemma : Lexicon.t -> string -> string
(** Verb lemma if recognizable, otherwise the word itself. *)

val is_participle : Lexicon.t -> string -> bool
(** Is the word a past or present participle of a known verb? *)
