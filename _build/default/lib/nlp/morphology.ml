type verb_form =
  | Base
  | Third_singular
  | Past
  | Past_participle
  | Present_participle

(* surface ↦ (lemma, form); participles double as adjectival passives *)
let irregular = [
  ("ran", ("run", Past)); ("running", ("run", Present_participle));
  ("run", ("run", Base));
  ("lost", ("lose", Past_participle)); ("losing", ("lose", Present_participle));
  ("went", ("go", Past)); ("gone", ("go", Past_participle));
  ("going", ("go", Present_participle));
  ("left", ("leave", Past_participle)); ("leaving", ("leave", Present_participle));
  ("found", ("find", Past_participle)); ("finding", ("find", Present_participle));
  ("sent", ("send", Past_participle)); ("sending", ("send", Present_participle));
  ("read", ("read", Base));
  ("paid", ("pay", Past_participle)); ("paying", ("pay", Present_participle));
  ("shipped", ("ship", Past_participle)); ("shipping", ("ship", Present_participle));
  ("stopped", ("stop", Past_participle)); ("stopping", ("stop", Present_participle));
  ("plugged", ("plug", Past_participle)); ("plugging", ("plug", Present_participle));
  ("dropped", ("drop", Past_participle)); ("dropping", ("drop", Present_participle));
]

let ends_with suffix word =
  let ls = String.length suffix and lw = String.length word in
  lw > ls && String.sub word (lw - ls) ls = suffix

let strip n word = String.sub word 0 (String.length word - n)

let candidate_lemmas word =
  (* Possible lemmas for a regular inflection, most specific first. *)
  let candidates = ref [] in
  let push form lemma = candidates := (lemma, form) :: !candidates in
  if ends_with "ied" word then push Past (strip 3 word ^ "y");
  if ends_with "ies" word then push Third_singular (strip 3 word ^ "y");
  if ends_with "ed" word then begin
    push Past (strip 2 word);          (* pressed -> press *)
    push Past (strip 1 word);          (* issued -> issue *)
    (* consonant doubling: plugged -> plug *)
    let stem = strip 2 word in
    let n = String.length stem in
    if n >= 2 && stem.[n - 1] = stem.[n - 2] then push Past (strip 1 stem)
  end;
  if ends_with "ing" word then begin
    push Present_participle (strip 3 word);
    push Present_participle (strip 3 word ^ "e");  (* losing -> lose *)
    let stem = strip 3 word in
    let n = String.length stem in
    if n >= 2 && stem.[n - 1] = stem.[n - 2] then
      push Present_participle (strip 1 stem)
  end;
  if ends_with "es" word then push Third_singular (strip 2 word);
  if ends_with "s" word then push Third_singular (strip 1 word);
  List.rev !candidates

let analyze_verb lexicon word =
  let word = String.lowercase_ascii word in
  match List.assoc_opt word irregular with
  | Some (lemma, form) -> Some (lemma, form)
  | None ->
    if Lexicon.has_class lexicon word Lexicon.Verb then Some (word, Base)
    else
      List.find_map
        (fun (lemma, form) ->
           if Lexicon.has_class lexicon lemma Lexicon.Verb then
             Some (lemma, form)
           else None)
        (candidate_lemmas word)

let lemma lexicon word =
  match analyze_verb lexicon word with
  | Some (lemma, _) -> lemma
  | None -> String.lowercase_ascii word

let is_participle lexicon word =
  match analyze_verb lexicon word with
  | Some (_, (Past | Past_participle | Present_participle)) -> true
  | Some (_, (Base | Third_singular)) | None -> false
