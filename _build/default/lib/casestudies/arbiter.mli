(** A bus-arbiter case study in structured English — the classic
    LTL-synthesis benchmark family (AMBA-style request/grant), added on
    top of the paper's three case studies to exercise the pipeline on
    a hardware-flavoured specification.

    For [n] masters the specification says: every request is
    eventually granted; at most one grant at a time; no spurious
    grants; a granted master keeps the bus until it releases it
    (weak until). *)

type instance = {
  masters : int;
  document : (string * string) list;  (** (requirement id, sentence) *)
}

val instance : masters:int -> instance
(** Raises [Invalid_argument] when [masters < 1] or [masters > 4]
    (names are spelled out). *)

val texts : instance -> string list

val expected_inputs : instance -> string list
val expected_outputs : instance -> string list
(** The partition the Sec. IV-F heuristic is expected to derive —
    asserted in tests. *)
