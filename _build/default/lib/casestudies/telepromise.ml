type application = {
  row : string;
  name : string;
  profile : Specgen.profile;
  trap_prop : string option;
}

(* Scales from Table I: Shopping 29/11/24, Article processing 17/3/13,
   On-line reservation 6/3/4, Information 15/8/14, Local bulletin
   board 17/7/16.  The seeded trap contributes two requirement lines
   and one input, so the generated profile is reduced accordingly for
   the trapped applications. *)
let applications = [
  {
    row = "1";
    name = "Shopping";
    profile = { Specgen.prefix = "shop"; lines = 29; inputs = 11; outputs = 24 };
    trap_prop = None;
  };
  {
    row = "2";
    name = "Article processing";
    profile = { Specgen.prefix = "art"; lines = 17; inputs = 3; outputs = 13 };
    trap_prop = None;
  };
  {
    row = "3";
    name = "On-line reservation";
    profile = { Specgen.prefix = "res"; lines = 6; inputs = 3; outputs = 4 };
    trap_prop = None;
  };
  {
    row = "4";
    name = "Information";
    profile = { Specgen.prefix = "info"; lines = 13; inputs = 7; outputs = 13 };
    trap_prop = Some "info_lock";
  };
  {
    row = "5";
    name = "Local bulletin board";
    profile = { Specgen.prefix = "bb"; lines = 15; inputs = 6; outputs = 15 };
    trap_prop = Some "bb_lock";
  };
]

(* The trap: the lock appears only in antecedents, so the heuristic
   calls it an input; the environment can then raise it together with
   the first sensor and force [issue_X && !issue_X].  With the lock
   reclassified as an output the system simply holds it low.  The
   trigger reuses the application's first generated sensor so the
   input count matches Table I exactly (+1 for the lock). *)
let trap_sentences profile lock =
  let prefix = profile.Specgen.prefix in
  let sensor = Specgen.sensor_name profile 0 in
  [
    Printf.sprintf "If %s is active, %s_reply is not issued." lock prefix;
    Printf.sprintf "If %s is available, %s_reply is issued." sensor prefix;
  ]

let application_sentences app =
  let generated = Specgen.sentences app.profile in
  match app.trap_prop with
  | None -> generated
  | Some lock -> generated @ trap_sentences app.profile lock
