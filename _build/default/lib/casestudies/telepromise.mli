(** The TELEPROMISE case study: five generic applications (Shopping,
    Article processing, On-line reservation, Information, Local
    bulletin board) regenerated at Table I scale — the original
    functional specification's link is dead (see DESIGN.md).

    As in the paper, the last two applications (Information and Local
    bulletin board) are {e initially inconsistent}: each contains an
    internal lock variable that the Sec. IV-F heuristic classifies as
    an input, letting the environment raise it together with a request
    and force contradictory responses.  Reclassifying the lock as an
    output (the paper's "modifying the input/output variable
    partition") restores consistency; {!trap_prop} names the variable
    so tests and benchmarks can exercise the refinement loop. *)

type application = {
  row : string;
  name : string;
  profile : Specgen.profile;
  trap_prop : string option;
      (** the misclassified lock variable, when seeded *)
}

val applications : application list
val application_sentences : application -> string list
