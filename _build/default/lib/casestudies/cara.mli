(** The CARA infusion-pump case study (Sec. III, Sec. VI, appendix).

    {!working_modes} is the appendix requirement list verbatim
    (Req-01 … Req-54, 29 sentences) — the paper's Table I row 0.
    {!components} are the 13 component specifications (Pump Monitor,
    nine BPM components, two Polling-Algorithm components) regenerated
    at the scale reported in Table I (see DESIGN.md for the
    substitution rationale). *)

val working_modes : (string * string) list
(** [(requirement id, sentence)] pairs, in appendix order. *)

val working_mode_texts : string list

val mode_description : (string * string) list
(** The prose system description of Sec. III (three modes, battery
    fallback, blood-pressure source priority) written in the
    structured English subset. *)

val mode_description_texts : string list

type component = {
  row : string;          (** Table I row id, e.g. "2.1.1" *)
  name : string;
  profile : Specgen.profile;
}

val components : component list

val component_sentences : component -> string list
