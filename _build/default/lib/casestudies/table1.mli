(** Descriptors for every row of the paper's Table I, binding each
    specification to the pipeline stages that reproduce it. *)

type source =
  | Sentences of string list   (** goes through the full NL pipeline *)
  | Formulas of Speccc_logic.Ltl.t list * string list * string list
      (** already formal: (formulas, inputs, outputs) *)

type expected =
  | Consistent
  | Inconsistent_until_partition_fix of string
      (** the misclassified proposition to move to the outputs *)

type row = {
  group : string;    (** CARA / TELE / Robot *)
  row_id : string;
  name : string;
  source : source;
  expected : expected;
}

val rows : row list
(** All 22 rows, in Table I order. *)
