open Speccc_logic

type scenario = {
  robots : int;
  rooms : int;
  formulas : Ltl.t list;
  inputs : string list;
  outputs : string list;
}

let room_prop robot room = Printf.sprintf "r%d_room_%d" robot room

let scenario ~robots ~rooms =
  if robots < 1 then invalid_arg "Robot.scenario: robots < 1";
  if rooms < 2 then invalid_arg "Robot.scenario: rooms < 2";
  if robots > rooms then invalid_arg "Robot.scenario: more robots than rooms";
  let injured = Ltl.prop "injured_seen" in
  let at_medic = Ltl.prop "at_medic" in
  let carry = Ltl.prop "carry" in
  let room robot k = Ltl.prop (room_prop robot k) in
  let all_rooms robot = List.init rooms (room robot) in
  let per_robot robot =
    (* star topology: from room k the robot may stay, go to the
       corridor (room 0), or — from the corridor — enter any room *)
    let movement k =
      let targets =
        if k = 0 then all_rooms robot
        else [ room robot k; room robot 0 ]
      in
      Ltl.always
        (Ltl.implies (room robot k) (Ltl.next (Ltl.disj_list targets)))
    in
    let somewhere = Ltl.always (Ltl.disj_list (all_rooms robot)) in
    let exclusive =
      Ltl.always
        (Ltl.conj_list
           (List.concat_map
              (fun i ->
                 List.filter_map
                   (fun j ->
                      if j > i then
                        Some (Ltl.neg (Ltl.conj (room robot i) (room robot j)))
                      else None)
                   (List.init rooms Fun.id))
              (List.init rooms Fun.id)))
    in
    let patrol = Ltl.always (Ltl.eventually (room robot 0)) in
    List.map movement (List.init rooms Fun.id)
    @ [ somewhere; exclusive; patrol ]
  in
  let shared =
    [
      (* someone spotted: eventually a robot carries them *)
      Ltl.always (Ltl.implies injured (Ltl.eventually carry));
      (* hand over at the medic *)
      Ltl.always
        (Ltl.implies (Ltl.conj carry at_medic) (Ltl.next (Ltl.neg carry)));
    ]
  in
  let coordination =
    (* with several robots, a sighting recalls every robot to the
       corridor for the hand-over *)
    if robots < 2 then []
    else
      List.init robots (fun robot ->
          Ltl.always
            (Ltl.implies injured (Ltl.eventually (room robot 0))))
  in
  let no_collision =
    if robots < 2 then []
    else
      List.init rooms (fun k ->
          Ltl.always
            (Ltl.conj_list
               (List.concat_map
                  (fun a ->
                     List.filter_map
                       (fun b ->
                          if b > a then
                            Some (Ltl.neg (Ltl.conj (room a k) (room b k)))
                          else None)
                       (List.init robots Fun.id))
                  (List.init robots Fun.id))))
  in
  let formulas =
    List.concat_map per_robot (List.init robots Fun.id)
    @ shared @ coordination @ no_collision
  in
  let outputs =
    List.concat_map
      (fun robot -> List.init rooms (room_prop robot))
      (List.init robots Fun.id)
    @ [ "carry" ]
  in
  {
    robots;
    rooms;
    formulas;
    inputs = [ "injured_seen"; "at_medic" ];
    outputs;
  }

let table_rows = [
  ("1", "A robot with 4 rooms", scenario ~robots:1 ~rooms:4);
  ("2", "A robot with 9 rooms", scenario ~robots:1 ~rooms:9);
  ("3", "Two robots with 5 rooms", scenario ~robots:2 ~rooms:5);
]
