(** The rescue-robot scenario (third case study; adapted, like the
    paper, from Kress-Gazit et al.).

    Rooms are arranged in a star around room 0 (the corridor, where
    the medic waits): every room connects to room 0 and to itself.
    Robots search for injured people and carry them to the medic; two
    robots may never share a room.  The specification is produced
    directly in LTL (the scenario of [10] is already formal).

    Propositions: outputs [rN_room_K] (robot N is in room K) and
    [carry] (someone is aboard); inputs [injured_seen] and [at_medic]
    — exactly two inputs, as in every robot row of Table I. *)

type scenario = {
  robots : int;
  rooms : int;
  formulas : Speccc_logic.Ltl.t list;
  inputs : string list;
  outputs : string list;
}

val scenario : robots:int -> rooms:int -> scenario
(** Raises [Invalid_argument] when [robots < 1], [rooms < 2] or
    [robots > rooms]. *)

val table_rows : (string * string * scenario) list
(** The three Table I rows: (row id, name, scenario) for 1×4, 1×9 and
    2×5. *)
