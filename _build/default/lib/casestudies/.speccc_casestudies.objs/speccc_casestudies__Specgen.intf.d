lib/casestudies/specgen.mli:
