lib/casestudies/arbiter.mli:
