lib/casestudies/robot.mli: Speccc_logic
