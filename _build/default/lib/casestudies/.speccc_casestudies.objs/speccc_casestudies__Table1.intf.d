lib/casestudies/table1.mli: Speccc_logic
