lib/casestudies/table1.ml: Cara List Robot Speccc_logic Telepromise
