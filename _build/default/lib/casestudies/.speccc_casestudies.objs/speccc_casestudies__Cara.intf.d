lib/casestudies/cara.mli: Specgen
