lib/casestudies/specgen.ml: Array List Printf String
