lib/casestudies/cara.ml: List Specgen
