lib/casestudies/robot.ml: Fun List Ltl Printf Speccc_logic
