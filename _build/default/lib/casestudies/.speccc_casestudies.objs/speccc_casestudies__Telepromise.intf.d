lib/casestudies/telepromise.mli: Specgen
