lib/casestudies/telepromise.ml: Printf Specgen
