lib/casestudies/arbiter.ml: Array Fun List Printf
