type source =
  | Sentences of string list
  | Formulas of Speccc_logic.Ltl.t list * string list * string list

type expected =
  | Consistent
  | Inconsistent_until_partition_fix of string

type row = {
  group : string;
  row_id : string;
  name : string;
  source : source;
  expected : expected;
}

let cara_rows =
  {
    group = "CARA";
    row_id = "0";
    name = "Working mode and switching";
    source = Sentences Cara.working_mode_texts;
    expected = Consistent;
  }
  :: List.map
    (fun component ->
       {
         group = "CARA";
         row_id = component.Cara.row;
         name = component.Cara.name;
         source = Sentences (Cara.component_sentences component);
         expected = Consistent;
       })
    Cara.components

let tele_rows =
  List.map
    (fun app ->
       {
         group = "TELE";
         row_id = app.Telepromise.row;
         name = app.Telepromise.name;
         source = Sentences (Telepromise.application_sentences app);
         expected =
           (match app.Telepromise.trap_prop with
            | None -> Consistent
            | Some prop -> Inconsistent_until_partition_fix prop);
       })
    Telepromise.applications

let robot_rows =
  List.map
    (fun (row_id, name, scenario) ->
       {
         group = "Robot";
         row_id;
         name;
         source =
           Formulas
             ( scenario.Robot.formulas,
               scenario.Robot.inputs,
               scenario.Robot.outputs );
         expected = Consistent;
       })
    Robot.table_rows

let rows = cara_rows @ tele_rows @ robot_rows
