(** Generator of structured-English component specifications.

    The CARA component documents and the TELEPROMISE functional
    specification are not public; per the reproduction plan (DESIGN.md)
    we synthesize specifications with the same observable scale —
    requirement count, input count, output count — as each row of the
    paper's Table I, written in the same structured English the
    translator accepts, with the same structural mix (guarded
    responses, multi-sensor guards, timing deadlines, eventualities).

    The generated specifications are consistent (realizable) by
    construction: every response drives a distinct output proposition
    positively.  Inconsistencies, when a case study needs one, are
    seeded explicitly on top (see {!Telepromise}). *)

type profile = {
  prefix : string;   (** token prefix for the synthetic signal names *)
  lines : int;       (** number of requirement sentences *)
  inputs : int;      (** number of sensor (input) propositions *)
  outputs : int;     (** number of actuator (output) propositions *)
}

val sentences : profile -> string list
(** Structured-English requirements meeting the profile.  Raises
    [Invalid_argument] if the profile is infeasible
    ([lines < 1], [inputs < 1], [outputs < 1], or
    [outputs > 2 * lines]). *)

val sensor_name : profile -> int -> string
val actuator_prop : profile -> int -> string
(** The proposition the [k]-th actuator's response produces (verb
    included), for tests that need to predict the partition. *)
