let working_modes = [
  ("Req-01",
   "The CARA will be operational whenever the LSTAT is powered on.");
  ("Req-07",
   "If an occlusion is detected, and auto control mode is running, auto \
    control mode will be terminated.");
  ("Req-08",
   "If Air Ok signal remains low, auto control mode is terminated in 3 \
    seconds.");
  ("Req-13.1",
   "If arterial line and pulse wave are corroborated, and cuff is \
    available, next arterial line is selected.");
  ("Req-13.2",
   "If pulse wave is corroborated, and cuff is available, and arterial \
    line is not corroborated, next pulse wave is selected.");
  ("Req-13.3",
   "If arterial line is not corroborated, and pulse wave is not \
    corroborated, and cuff is available, then cuff is selected.");
  ("Req-16",
   "If a pump is plugged in, and an infusate is ready, and the occlusion \
    line is clear, auto control mode can be started.");
  ("Req-17.1",
   "When auto control mode is running, eventually the cuff will be \
    inflated.");
  ("Req-17.2",
   "If start auto control button is pressed, and cuff is not available, \
    an alarm is issued and override selection is provided.");
  ("Req-17.3",
   "If alarm reset button is pressed, the alarm is disabled.");
  ("Req-17.4",
   "If override selection is provided, if override yes is pressed, and \
    arterial line is not corroborated, next arterial line is selected.");
  ("Req-17.5",
   "If override selection is provided, if override yes is pressed, and \
    arterial line is corroborated, and pulse wave is not corroborated, \
    next pulse wave is selected.");
  ("Req-17.6",
   "If override selection is provided, if override no is pressed, next \
    manual mode is started.");
  ("Req-17.7",
   "If cuff and arterial line and pulse wave are not available, next \
    manual mode is started.");
  ("Req-20",
   "If manual mode is running and start auto control button is pressed, \
    next corroboration is triggered.");
  ("Req-28",
   "If a valid blood pressure is unavailable in 180 seconds, manual mode \
    should be triggered.");
  ("Req-32.1",
   "If pulse wave or arterial line is available, and cuff is selected, \
    corroboration is triggered.");
  ("Req-32.2",
   "If pulse wave is selected, and arterial line is available, \
    corroboration is triggered.");
  ("Req-34",
   "When auto control mode is running, terminate auto control button \
    should be available.");
  ("Req-42",
   "When auto control mode is running, and the arterial line, or pulse \
    wave or cuff is lost, an alarm should sound in 60 seconds.");
  ("Req-44",
   "If pulse wave and arterial line are unavailable, and cuff is \
    selected, and blood pressure is not valid, next manual mode is \
    started.");
  ("Req-48.1",
   "Whenever termiante auto control button is selected, a confirmation \
    button is available.");
  ("Req-48.2",
   "If a confirmation button is available, and confirmation yes is \
    pressed, manual mode is started.");
  ("Req-48.3",
   "If a confirmation button is available, and confirmation no is \
    pressed, auto control mode is running.");
  ("Req-48.4",
   "If a confirmation button is available, and confirmation yes is \
    pressed, next confirmation yes is disabled.");
  ("Req-48.5",
   "If a confirmation button is available, and confirmation no is \
    pressed, next confirmation no is disabled.");
  ("Req-48.6",
   "If a confirmation button is available, and terminating auto control \
    button is pressed, next terminating auto control button is disabled.");
  ("Req-49",
   "When a start auto control button is enabled, the start auto control \
    button is enabled until it is pressed.");
  ("Req-54",
   "If auto control mode is running, and impedance reading is \
    unavailable, next auto control model is terminated.");
]

let working_mode_texts = List.map snd working_modes

(* The prose of Sec. III ("System Description") as structured English:
   the three operating modes, the battery fallback, and the
   arterial-line > pulse-wave > cuff source priority. *)
let mode_description = [
  ("Mode-1", "If the pump is off, wait mode is running.");
  ("Mode-2", "If the pump is off, the blood pressure monitor is disabled.");
  ("Mode-3", "If the pump is turned on, manual mode is started.");
  ("Mode-4", "If manual mode is running, the software is monitoring.");
  ("Mode-5",
   "If the power supply is lost, the battery is selected and the alarm \
    is triggered.");
  ("Mode-6",
   "If manual mode is running and the start auto control button is \
    pressed, auto control mode is started.");
  ("Mode-7", "If the pump is off, auto control mode is not running.");
  ("Mode-8",
   "When auto control mode is running, the infusion rate is controlled.");
  ("Prio-1",
   "If the arterial line is available, the arterial line is selected.");
  ("Prio-2",
   "If the arterial line is lost and the pulse wave is available, the \
    pulse wave is selected.");
  ("Prio-3",
   "If the arterial line is lost and the pulse wave is lost and the \
    cuff is available, the cuff is selected.");
  ("Prio-4",
   "If the arterial line is lost and the pulse wave is lost and the \
    cuff is lost, manual mode is started.");
]

let mode_description_texts = List.map snd mode_description

type component = {
  row : string;
  name : string;
  profile : Specgen.profile;
}

(* Scales from Table I: (row, name, lines, inputs, outputs). *)
let components =
  List.map
    (fun (row, name, prefix, lines, inputs, outputs) ->
       { row; name; profile = { Specgen.prefix; lines; inputs; outputs } })
    [
      ("1", "Pump Monitor", "pm", 20, 9, 14);
      ("2.1.1", "BPM: cuff detector", "cuffdet", 14, 13, 12);
      ("2.1.2", "BPM: AL detector", "aldet", 15, 11, 14);
      ("2.1.3", "BPM: pulse wave detector", "pwdet", 14, 9, 12);
      ("2.2.1", "BPM: initial auto control", "iac", 16, 14, 15);
      ("2.2.2", "BPM: first corroboration", "fcor", 19, 11, 16);
      ("2.2.3", "BPM: valid ctrl blood pressure", "vbp", 13, 11, 10);
      ("2.2.4", "BPM: cuff source handler", "csh", 11, 9, 10);
      ("2.2.5", "BPM: arterial line blood pressure", "albp", 16, 9, 13);
      ("2.2.6", "BPM: arterial line corroboration", "alc", 12, 8, 13);
      ("2.2.7", "BPM: pulse wave handler", "pwh", 20, 10, 21);
      ("3.1", "(PA) Model ctrl algorithm", "mca", 9, 15, 11);
      ("3.2", "(PA) Polling algorithm", "pa", 56, 12, 20);
    ]

let component_sentences component = Specgen.sentences component.profile
