type profile = {
  prefix : string;
  lines : int;
  inputs : int;
  outputs : int;
}

let verbs = [| ("triggered", "trigger"); ("started", "start");
               ("issued", "issue"); ("selected", "select");
               ("provided", "provide") |]

let sensor_name profile k = Printf.sprintf "%s_sensor_%d" profile.prefix k

let actuator_name profile k = Printf.sprintf "%s_unit_%d" profile.prefix k

let actuator_verb k = verbs.(k mod Array.length verbs)

let actuator_prop profile k =
  let _, lemma = actuator_verb k in
  lemma ^ "_" ^ actuator_name profile k

let validate profile =
  if profile.lines < 1 || profile.inputs < 1 || profile.outputs < 1 then
    invalid_arg "Specgen.sentences: counts must be positive";
  if profile.outputs > 2 * profile.lines then
    invalid_arg "Specgen.sentences: more than two outputs per line needed"

(* Distribute [count] item indices over [lines] slots: every item
   appears at least once; lines beyond [count] reuse items
   round-robin.  Returns an array of index lists, one per line. *)
let distribute ~count ~lines ~max_per_line =
  let slots = Array.make lines [] in
  let rec assign item =
    if item < count then begin
      let line = item mod lines in
      if List.length slots.(line) < max_per_line then
        slots.(line) <- slots.(line) @ [ item ]
      else begin
        (* find the next line with room *)
        let rec probe offset =
          if offset >= lines then
            invalid_arg "Specgen: distribution overflow"
          else
            let candidate = (line + offset) mod lines in
            if List.length slots.(candidate) < max_per_line then
              slots.(candidate) <- slots.(candidate) @ [ item ]
            else probe (offset + 1)
        in
        probe 1
      end;
      assign (item + 1)
    end
  in
  assign 0;
  (* fill empty slots by reuse *)
  Array.iteri
    (fun line items -> if items = [] then slots.(line) <- [ line mod count ])
    slots;
  slots

let sentences profile =
  validate profile;
  let sensor_slots =
    distribute ~count:profile.inputs ~lines:profile.lines ~max_per_line:3
  in
  let actuator_slots =
    distribute ~count:profile.outputs ~lines:profile.lines ~max_per_line:2
  in
  let guard_phrase line sensors =
    let phrase position k =
      let status =
        (* vary the polarity so "lost"/"available" both occur *)
        if (line + position) mod 3 = 2 then "is lost" else "is available"
      in
      Printf.sprintf "%s %s" (sensor_name profile k) status
    in
    String.concat " and " (List.mapi phrase sensors)
  in
  let response_phrase k =
    let participle, _ = actuator_verb k in
    Printf.sprintf "%s is %s" (actuator_name profile k) participle
  in
  let line_sentence line =
    let sensors = sensor_slots.(line) in
    let actuators = actuator_slots.(line) in
    let guards = guard_phrase line sensors in
    match line mod 4, actuators with
    | 1, [ single ] ->
      (* deadline requirement *)
      let delay = if line mod 8 < 4 then 2 else 4 in
      Printf.sprintf "If %s, %s in %d seconds." guards
        (response_phrase single) delay
    | 2, first :: rest ->
      (* eventuality requirement *)
      let tail =
        String.concat ""
          (List.map (fun k -> " and " ^ response_phrase k) rest)
      in
      Printf.sprintf "When %s, eventually %s%s." guards
        (response_phrase first) tail
    | _, actuators ->
      Printf.sprintf "If %s, %s." guards
        (String.concat " and " (List.map response_phrase actuators))
  in
  List.init profile.lines line_sentence
