type instance = {
  masters : int;
  document : (string * string) list;
}

let number_names = [| "one"; "two"; "three"; "four" |]

let request k = Printf.sprintf "request_%s" number_names.(k)
let grant k = Printf.sprintf "grant_%s" number_names.(k)

let instance ~masters =
  if masters < 1 || masters > Array.length number_names then
    invalid_arg "Arbiter.instance: masters must be within 1..4";
  let per_master k =
    [
      (* AMBA-style environment assumption: a pending request stays up
         until it is granted; without it no finite-memory arbiter can
         serve two one-shot simultaneous requests.  Stated in the
         one-step form (X via "in 1 seconds"), which keeps the
         negated-specification automaton small. *)
      ( Printf.sprintf "Assume-%d" (k + 1),
        Printf.sprintf
          "If %s is active and %s is disabled, %s is active in 1 seconds."
          (request k) (grant k) (request k) );
      ( Printf.sprintf "Arb-R%d" (k + 1),
        Printf.sprintf "When %s is active, eventually %s is enabled."
          (request k) (grant k) );
      ( Printf.sprintf "Arb-S%d" (k + 1),
        Printf.sprintf "If %s is inactive, %s is disabled." (request k)
          (grant k) );
    ]
  in
  let mutex =
    List.concat_map
      (fun i ->
         List.filter_map
           (fun j ->
              if j > i then
                Some
                  ( Printf.sprintf "Arb-M%d%d" (i + 1) (j + 1),
                    Printf.sprintf "The %s is inactive or the %s is inactive."
                      (grant i) (grant j) )
              else None)
           (List.init masters Fun.id))
      (List.init masters Fun.id)
  in
  {
    masters;
    document =
      List.concat_map per_master (List.init masters Fun.id) @ mutex;
  }

let texts inst = List.map snd inst.document

let expected_inputs inst = List.init inst.masters request |> List.sort compare
let expected_outputs inst = List.init inst.masters grant |> List.sort compare
