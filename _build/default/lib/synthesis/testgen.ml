type step = {
  input : (string * bool) list;
  expected : (string * bool) list;
}

type test_case = step list

(* Shortest input-mask path to every reachable state (BFS). *)
let shortest_paths machine =
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  let paths = Hashtbl.create 64 in
  Hashtbl.add paths machine.Mealy.initial [];
  let queue = Queue.create () in
  Queue.add machine.Mealy.initial queue;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    let path = Hashtbl.find paths state in
    for imask = 0 to num_inputs - 1 do
      let _, next = machine.Mealy.step state imask in
      if not (Hashtbl.mem paths next) then begin
        Hashtbl.add paths next (imask :: path);  (* reversed *)
        Queue.add next queue
      end
    done
  done;
  paths

let steps_of_masks machine masks =
  let rec go state = function
    | [] -> []
    | imask :: rest ->
      let omask, next = machine.Mealy.step state imask in
      {
        input = Mealy.assignment_of_mask machine.Mealy.inputs imask;
        expected = Mealy.assignment_of_mask machine.Mealy.outputs omask;
      }
      :: go next rest
  in
  go machine.Mealy.initial masks

let state_cover machine =
  let paths = shortest_paths machine in
  Hashtbl.fold (fun _ path acc -> List.rev path :: acc) paths []
  |> List.sort compare
  |> List.map (steps_of_masks machine)

let reachable_transitions machine =
  let paths = shortest_paths machine in
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  Hashtbl.fold
    (fun state path acc ->
       List.init num_inputs (fun imask -> (state, List.rev path, imask))
       @ acc)
    paths []
  |> List.sort compare

let transition_cover machine =
  List.map
    (fun (_, path, imask) -> steps_of_masks machine (path @ [ imask ]))
    (reachable_transitions machine)

let transition_tour machine =
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  let covered = Hashtbl.create 64 in
  let total = List.length (reachable_transitions machine) in
  (* From [state], find the shortest mask sequence reaching an
     uncovered transition (BFS over states, where taking an uncovered
     transition terminates the search). *)
  let to_uncovered state =
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.add parent state None;
    Queue.add state queue;
    let rec reconstruct s acc =
      match Hashtbl.find parent s with
      | None -> acc
      | Some (prev, imask) -> reconstruct prev (imask :: acc)
    in
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      let rec try_masks imask =
        if imask >= num_inputs || !result <> None then ()
        else if not (Hashtbl.mem covered (s, imask)) then
          result := Some (reconstruct s [] @ [ imask ])
        else begin
          let _, next = machine.Mealy.step s imask in
          if not (Hashtbl.mem parent next) then begin
            Hashtbl.add parent next (Some (s, imask));
            Queue.add next queue
          end;
          try_masks (imask + 1)
        end
      in
      try_masks 0
    done;
    !result
  in
  let rec extend state acc =
    if Hashtbl.length covered >= total then List.rev acc
    else
      match to_uncovered state with
      | None -> List.rev acc  (* remaining transitions unreachable *)
      | Some masks ->
        let rec advance state acc = function
          | [] -> (state, acc)
          | imask :: rest ->
            Hashtbl.replace covered (state, imask) ();
            let _, next = machine.Mealy.step state imask in
            advance next (imask :: acc) rest
        in
        let state', acc' = advance state acc masks in
        extend state' acc'
  in
  let masks = extend machine.Mealy.initial [] in
  steps_of_masks machine masks

let coverage machine tests =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun test ->
       let rec walk state = function
         | [] -> ()
         | step :: rest ->
           let imask =
             Mealy.mask_of_assignment machine.Mealy.inputs step.input
           in
           Hashtbl.replace covered (state, imask) ();
           let _, next = machine.Mealy.step state imask in
           walk next rest
       in
       walk machine.Mealy.initial test)
    tests;
  (Hashtbl.length covered, List.length (reachable_transitions machine))

let run_against implementation test =
  let rec go state index = function
    | [] -> None
    | step :: rest ->
      let imask =
        Mealy.mask_of_assignment implementation.Mealy.inputs step.input
      in
      let omask, next = implementation.Mealy.step state imask in
      let actual =
        Mealy.assignment_of_mask implementation.Mealy.outputs omask
      in
      let expected_mask =
        Mealy.mask_of_assignment implementation.Mealy.outputs step.expected
      in
      if omask <> expected_mask then Some (index, actual)
      else go next (index + 1) rest
  in
  go implementation.Mealy.initial 0 test

let pp_test_case ppf test =
  let pp_assignment ppf assignment =
    Format.pp_print_string ppf
      (String.concat ","
         (List.map (fun (p, b) -> (if b then "" else "!") ^ p) assignment))
  in
  List.iteri
    (fun i { input; expected } ->
       Format.fprintf ppf "  step %d: in {%a} expect {%a}@." i pp_assignment
         input pp_assignment expected)
    test
