(** Mealy machine minimization by partition refinement.

    Controllers extracted from the counting-function game carry many
    behaviourally identical states; minimization collapses them before
    code generation or test derivation.  The algorithm is the classic
    Moore-style refinement adapted to Mealy machines: the initial
    partition groups states with identical output rows, and blocks are
    split until successor blocks agree on every input.  The result is
    the unique minimal machine for the reachable behaviour. *)

val minimize : Mealy.t -> Mealy.t
(** Equivalent machine with the minimal number of reachable states.
    The initial state maps to block 0. *)

val equivalent : Mealy.t -> Mealy.t -> bool
(** Do two machines over the same interface produce identical outputs
    on every input sequence?  (Product walk over reachable pairs.)
    Raises [Invalid_argument] when the interfaces differ. *)
