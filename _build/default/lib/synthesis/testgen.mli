(** Test-case generation from synthesized controllers.

    The paper's introduction motivates precise specifications as
    "a reference model or a test-case generator later in system and
    architecture design"; this module makes the synthesized Mealy
    controller play that role: it derives input/expected-output
    sequences that cover the controller's behaviour, to be run against
    an implementation under test.

    A test case is a sequence of steps from the initial state; each
    step fixes the input valuation and records the output valuation
    the reference controller mandates. *)

type step = {
  input : (string * bool) list;
  expected : (string * bool) list;
}

type test_case = step list

val state_cover : Mealy.t -> test_case list
(** One test per reachable state: the shortest input sequence driving
    the machine there (breadth-first), with expected outputs along the
    way.  The initial state yields the empty test. *)

val transition_cover : Mealy.t -> test_case list
(** One test per reachable transition (state × input valuation):
    shortest prefix to the source state followed by the transition's
    input.  Covers every behaviour of the reference machine. *)

val transition_tour : Mealy.t -> test_case
(** A single long test covering as many transitions as one run can: a
    greedy tour that repeatedly walks to the nearest uncovered
    transition and takes it.  Complete exactly when the machine is
    strongly connected; otherwise transitions of already-left regions
    stay uncovered — use {!transition_cover} (which restarts from the
    initial state) for guaranteed completeness. *)

val coverage : Mealy.t -> test_case list -> int * int
(** [(covered, total)] over reachable transitions. *)

val run_against :
  Mealy.t -> test_case -> (int * (string * bool) list) option
(** Execute a test against an implementation (any Mealy machine with
    the same interface): [None] if every step's outputs match,
    [Some (step_index, actual_outputs)] at the first divergence. *)

val pp_test_case : Format.formatter -> test_case -> unit
