(** Mealy machines — the controllers produced by the synthesis
    engines (the paper's "Controller" box in Fig. 1).

    Input and output valuations are encoded as bit masks over the
    declared proposition lists (bit [i] of an input mask is the value
    of [List.nth inputs i]). *)

type t = {
  inputs : string list;
  outputs : string list;
  num_states : int;
  initial : int;
  step : int -> int -> int * int;
      (** [step state input_mask] = [(output_mask, next_state)].
          Total on [0 .. num_states-1] × [0 .. 2^|inputs|-1]. *)
}

val mask_of_assignment : string list -> (string * bool) list -> int
val assignment_of_mask : string list -> int -> (string * bool) list

val run : t -> (string * bool) list list -> (string * bool) list list
(** Feed a finite input sequence; returns the combined letters
    (inputs ∪ outputs) produced step by step. *)

val lasso : t -> prefix:(string * bool) list list ->
  loop:(string * bool) list list -> Speccc_logic.Trace.t
(** Drive the machine with the ultimately periodic input word
    [prefix · loop^ω] until the (machine state, loop position) pair
    repeats; the result is the combined input/output lasso, suitable
    for checking against the specification with
    {!Speccc_logic.Trace.holds}. *)

val satisfies : t -> Speccc_logic.Ltl.t -> trials:int -> seed:int -> bool
(** Monte-Carlo validation: drive the machine with [trials] random
    ultimately periodic input words and check that every resulting
    combined word satisfies the formula. *)

val pp_dot : Format.formatter -> t -> unit
