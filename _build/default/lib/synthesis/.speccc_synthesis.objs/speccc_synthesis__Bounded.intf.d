lib/synthesis/bounded.mli: Mealy Speccc_logic
