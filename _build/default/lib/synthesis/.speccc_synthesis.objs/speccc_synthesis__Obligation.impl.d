lib/synthesis/obligation.ml: Array Bdd Hashtbl List Ltl Ltl_print Mealy Nnf Printf Speccc_bdd Speccc_logic String Sys Unix
