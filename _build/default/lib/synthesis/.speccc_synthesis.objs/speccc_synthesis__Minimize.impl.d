lib/synthesis/minimize.ml: Array Hashtbl List Mealy Queue
