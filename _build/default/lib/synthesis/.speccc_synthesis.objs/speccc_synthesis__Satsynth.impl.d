lib/synthesis/satsynth.ml: Array Fun Hashtbl List Ltl Mealy Nbw Printf Sat Speccc_automata Speccc_logic Speccc_sat Speccc_smt Tseitin
