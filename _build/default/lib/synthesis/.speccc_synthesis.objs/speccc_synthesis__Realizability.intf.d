lib/synthesis/realizability.mli: Bounded Mealy Speccc_logic
