lib/synthesis/verify.mli: Mealy Speccc_logic
