lib/synthesis/mealy.ml: Array Format Fun Hashtbl List Random Speccc_logic String Trace
