lib/synthesis/obligation.mli: Mealy Speccc_logic
