lib/synthesis/testgen.mli: Format Mealy
