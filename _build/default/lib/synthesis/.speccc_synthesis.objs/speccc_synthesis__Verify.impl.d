lib/synthesis/verify.ml: Array Hashtbl List Ltl Mealy Nbw Queue Speccc_automata Speccc_logic Trace
