lib/synthesis/bounded.ml: Array Bytes Char Hashtbl List Ltl Mealy Nbw Printf Queue Speccc_automata Speccc_logic
