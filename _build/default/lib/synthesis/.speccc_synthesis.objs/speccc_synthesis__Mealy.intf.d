lib/synthesis/mealy.mli: Format Speccc_logic
