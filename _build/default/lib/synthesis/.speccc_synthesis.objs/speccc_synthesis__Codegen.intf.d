lib/synthesis/codegen.mli: Mealy
