lib/synthesis/realizability.ml: Bounded Classify List Ltl Mealy Minimize Nnf Obligation Option Printf Speccc_logic Unix
