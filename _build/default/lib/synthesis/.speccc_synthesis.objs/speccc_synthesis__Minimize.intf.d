lib/synthesis/minimize.mli: Mealy
