lib/synthesis/codegen.ml: Buffer Fun List Mealy Printf String
