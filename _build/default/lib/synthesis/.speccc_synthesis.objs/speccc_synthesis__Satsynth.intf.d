lib/synthesis/satsynth.mli: Mealy Speccc_logic
