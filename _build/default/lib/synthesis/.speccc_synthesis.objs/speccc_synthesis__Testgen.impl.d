lib/synthesis/testgen.ml: Format Hashtbl List Mealy Queue String
