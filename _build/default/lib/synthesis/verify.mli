(** Exact verification of Mealy controllers against LTL.

    [M ⊨ φ] is decided precisely (not by sampling): the product of the
    machine with the Büchi automaton of [¬φ] is checked for emptiness;
    a non-empty product yields a concrete lasso-shaped counterexample.
    This is the "reference model" role the paper's introduction assigns
    to the synthesized artifacts, and it upgrades
    {!Mealy.satisfies}-style Monte-Carlo replay to a proof. *)

type result =
  | Holds
  | Counterexample of Speccc_logic.Trace.t
      (** a combined input/output word produced by the machine that
          violates the formula *)

val check : Mealy.t -> Speccc_logic.Ltl.t -> result
(** [check machine formula]: does every word the machine can produce
    (over all input sequences) satisfy the formula?

    Cost: O(|machine| · 2^|inputs| · |A¬φ|); intended for the
    controllers the engines return, whose input alphabets are the
    specification's. *)

val check_all : Mealy.t -> Speccc_logic.Ltl.t list -> (int * result) list
(** Check each requirement separately; returns the indices with their
    verdicts (useful to report {e which} requirement a hand-edited
    controller breaks). *)
