open Speccc_logic

type engine = Explicit | Symbolic | Auto

type verdict =
  | Consistent
  | Inconsistent
  | Inconclusive of string

type report = {
  verdict : verdict;
  engine_used : string;
  controller : Mealy.t option;
  counterstrategy : Bounded.counterstrategy option;
  wall_time : float;
  detail : string;
}

let with_timer f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let run_explicit ~bound ~inputs ~outputs spec =
  let verdict_of = function
    | Bounded.Realizable controller ->
      ( Consistent,
        Some (Minimize.minimize controller),
        None,
        "controller extracted and minimized" )
    | Bounded.Unrealizable counterstrategy ->
      ( Inconsistent,
        None,
        Some counterstrategy,
        "environment wins the dual game (counterstrategy extracted)" )
    | Bounded.Unknown k ->
      ( Inconclusive (Printf.sprintf "counting bound %d exhausted" k),
        None,
        None,
        "no side won within the bound" )
  in
  let (verdict, controller, counterstrategy, detail), wall_time =
    with_timer (fun () ->
        verdict_of
          (Bounded.solve_iterative ~max_bound:bound ~inputs ~outputs spec))
  in
  {
    verdict;
    engine_used = "explicit";
    controller;
    counterstrategy;
    wall_time;
    detail;
  }

let run_symbolic ~lookahead ~inputs ~outputs spec =
  let had_liveness = Classify.has_liveness spec in
  let solve_at bound =
    let safety_spec =
      if had_liveness then Classify.bound_liveness ~bound spec
      else Nnf.of_formula spec
    in
    Obligation.solve ~inputs ~outputs safety_spec
  in
  (* Bounding eventualities is a strengthening, so a loss at one
     look-ahead may be won at a larger one — escalate a few times, as
     G4LTL does with its unroll parameter. *)
  let rec attempt bound =
    match solve_at bound with
    | Obligation.Realizable strategy -> Ok (strategy, bound)
    | Obligation.Unrealizable ->
      if had_liveness && 2 * bound <= 4 * lookahead then
        attempt (2 * bound)
      else Error bound
  in
  let result, wall_time = with_timer (fun () -> attempt lookahead) in
  match result with
  | Ok (strategy, bound) ->
    let controller =
      Option.map Minimize.minimize (Obligation.to_mealy strategy)
    in
    {
      verdict = Consistent;
      engine_used = "symbolic";
      controller;
      counterstrategy = None;
      wall_time;
      detail =
        Printf.sprintf "%s lookahead=%d" (Obligation.stats strategy) bound;
    }
  | Error bound ->
    let verdict, detail =
      if had_liveness then
        ( Inconclusive
            (Printf.sprintf "unrealizable at liveness lookahead %d" bound),
          "eventualities were bounded before solving; a larger lookahead \
           may succeed" )
      else (Inconsistent, "safety obligation game lost")
    in
    {
      verdict;
      engine_used = "symbolic";
      controller = None;
      counterstrategy = None;
      wall_time;
      detail;
    }

let check ?(engine = Auto) ?(lookahead = 6) ?(bound = 8)
    ?(explicit_prop_limit = 12) ?(assumptions = []) ~inputs ~outputs
    requirements =
  let guarantees = Ltl.conj_list requirements in
  let spec =
    match assumptions with
    | [] -> guarantees
    | _ -> Ltl.implies (Ltl.conj_list assumptions) guarantees
  in
  let chosen =
    match engine with
    | Explicit -> `Explicit
    | Symbolic -> `Symbolic
    | Auto ->
      (* assumption implications fall outside the obligation game's
         completeness fragment *)
      if assumptions <> []
      || List.length inputs + List.length outputs <= explicit_prop_limit
      then `Explicit
      else `Symbolic
  in
  match chosen with
  | `Explicit -> run_explicit ~bound ~inputs ~outputs spec
  | `Symbolic -> run_symbolic ~lookahead ~inputs ~outputs spec
