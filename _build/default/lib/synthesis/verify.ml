open Speccc_logic
open Speccc_automata

type result =
  | Holds
  | Counterexample of Trace.t

(* Product of the machine (universal over inputs, deterministic given
   them) with the Büchi automaton of the negated formula: a reachable
   non-trivial SCC containing an accepting automaton state is a
   machine-producible word violating the formula. *)
let check machine formula =
  let nbw = Nbw.of_ltl (Ltl.neg formula) in
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  let num_product = machine.Mealy.num_states * nbw.Nbw.num_states in
  let product ms q = (ms * nbw.Nbw.num_states) + q in
  let letter_of ms imask =
    let omask, _ = machine.Mealy.step ms imask in
    Mealy.assignment_of_mask machine.Mealy.inputs imask
    @ Mealy.assignment_of_mask machine.Mealy.outputs omask
  in
  (* adjacency with the input mask recorded on each edge *)
  let adjacency = Array.make num_product [] in
  for ms = 0 to machine.Mealy.num_states - 1 do
    for imask = 0 to num_inputs - 1 do
      let letter = letter_of ms imask in
      let _, ms' = machine.Mealy.step ms imask in
      List.iter
        (fun (src, guard, dst) ->
           if Nbw.guard_holds guard letter then
             adjacency.(product ms src) <-
               (product ms' dst, imask) :: adjacency.(product ms src))
        nbw.Nbw.transitions
    done
  done;
  (* reachability with parents, for counterexample extraction *)
  let parent = Array.make num_product None in
  let reached = Array.make num_product false in
  let queue = Queue.create () in
  List.iter
    (fun q0 ->
       let s = product machine.Mealy.initial q0 in
       if not reached.(s) then begin
         reached.(s) <- true;
         Queue.add s queue
       end)
    nbw.Nbw.initial;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (dst, imask) ->
         if not reached.(dst) then begin
           reached.(dst) <- true;
           parent.(dst) <- Some (s, imask);
           Queue.add dst queue
         end)
      adjacency.(s)
  done;
  (* Tarjan SCC over the reachable part *)
  let index = Array.make num_product (-1) in
  let lowlink = Array.make num_product 0 in
  let on_stack = Array.make num_product false in
  let scc_id = Array.make num_product (-1) in
  let scc_nontrivial = Hashtbl.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
         if index.(w) = -1 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adjacency.(v);
    if lowlink.(v) = index.(v) then begin
      let id = !next_scc in
      incr next_scc;
      let rec pop members =
        match !stack with
        | [] -> members
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          scc_id.(w) <- id;
          if w = v then w :: members else pop (w :: members)
      in
      let members = pop [] in
      let nontrivial =
        match members with
        | [ single ] ->
          List.exists (fun (dst, _) -> dst = single) adjacency.(single)
        | _ -> true
      in
      if nontrivial then Hashtbl.add scc_nontrivial id ()
    end
  in
  for s = 0 to num_product - 1 do
    if reached.(s) && index.(s) = -1 then strongconnect s
  done;
  (* an accepting product state inside a non-trivial reachable SCC? *)
  let witness = ref None in
  for s = 0 to num_product - 1 do
    if !witness = None && reached.(s)
       && nbw.Nbw.accepting.(s mod nbw.Nbw.num_states)
       && scc_id.(s) >= 0
       && Hashtbl.mem scc_nontrivial scc_id.(s)
    then witness := Some s
  done;
  match !witness with
  | None -> Holds
  | Some target ->
    (* prefix: walk parents back from the witness *)
    let rec prefix_masks s acc =
      match parent.(s) with
      | None -> (s, acc)
      | Some (prev, imask) -> prefix_masks prev (imask :: acc)
    in
    let _, prefix = prefix_masks target [] in
    (* cycle: BFS from the witness's successors back to it, restricted
       to its SCC *)
    let cycle_parent = Array.make num_product None in
    let cycle_reached = Array.make num_product false in
    let cq = Queue.create () in
    List.iter
      (fun (dst, imask) ->
         if scc_id.(dst) = scc_id.(target) && not cycle_reached.(dst) then begin
           cycle_reached.(dst) <- true;
           cycle_parent.(dst) <- Some (target, imask);
           Queue.add dst cq
         end)
      adjacency.(target);
    let found = ref (if cycle_reached.(target) then true else false) in
    while not (Queue.is_empty cq) && not !found do
      let s = Queue.pop cq in
      if s = target then found := true
      else
        List.iter
          (fun (dst, imask) ->
             if scc_id.(dst) = scc_id.(target) && not cycle_reached.(dst)
             then begin
               cycle_reached.(dst) <- true;
               cycle_parent.(dst) <- Some (s, imask);
               Queue.add dst cq
             end)
          adjacency.(s)
    done;
    let rec cycle_masks s acc =
      match cycle_parent.(s) with
      | None -> acc
      | Some (prev, imask) ->
        if prev = target then imask :: acc
        else cycle_masks prev (imask :: acc)
    in
    let loop = cycle_masks target [] in
    let loop = if loop = [] then [ 0 ] else loop in
    (* replay the masks through the machine to rebuild letters *)
    let inputs_of masks =
      List.map (Mealy.assignment_of_mask machine.Mealy.inputs) masks
    in
    let word =
      Mealy.lasso machine ~prefix:(inputs_of prefix) ~loop:(inputs_of loop)
    in
    Counterexample word

let check_all machine formulas =
  List.mapi (fun i f -> (i, check machine f)) formulas
