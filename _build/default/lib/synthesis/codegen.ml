let sanitize name =
  let buffer = Buffer.create (String.length name) in
  String.iter
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buffer c
       | '-' | ' ' | '.' -> Buffer.add_char buffer '_'
       | _ -> ())
    name;
  let s = Buffer.contents buffer in
  if s = "" then "p"
  else if s.[0] >= '0' && s.[0] <= '9' then "p_" ^ s
  else s

(* Enumerate (state, input mask) -> (output mask, next state). *)
let rows machine =
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  List.concat_map
    (fun state ->
       List.map
         (fun imask ->
            let omask, next = machine.Mealy.step state imask in
            (state, imask, omask, next))
         (List.init num_inputs Fun.id))
    (List.init machine.Mealy.num_states Fun.id)

let bit mask i = mask land (1 lsl i) <> 0

(* --- IEC 61131-3 Structured Text --- *)

let to_structured_text ?(name = "speccc_controller") machine =
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let inputs = List.map sanitize machine.Mealy.inputs in
  let outputs = List.map sanitize machine.Mealy.outputs in
  add "FUNCTION_BLOCK %s\n" (sanitize name);
  add "VAR_INPUT\n";
  List.iter (fun p -> add "  %s : BOOL;\n" p) inputs;
  add "END_VAR\n";
  add "VAR_OUTPUT\n";
  List.iter (fun p -> add "  %s : BOOL;\n" p) outputs;
  add "END_VAR\n";
  add "VAR\n  state : INT := %d;\nEND_VAR\n\n" machine.Mealy.initial;
  (* guard expression for an input valuation *)
  let guard imask =
    if inputs = [] then "TRUE"
    else
      String.concat " AND "
        (List.mapi
           (fun i p -> if bit imask i then p else "NOT " ^ p)
           inputs)
  in
  let assignments omask =
    String.concat ""
      (List.mapi
         (fun i p ->
            Printf.sprintf "      %s := %s;\n" p
              (if bit omask i then "TRUE" else "FALSE"))
         outputs)
  in
  add "CASE state OF\n";
  for state = 0 to machine.Mealy.num_states - 1 do
    add "  %d:\n" state;
    let first = ref true in
    List.iter
      (fun (s, imask, omask, next) ->
         if s = state then begin
           add "    %s %s THEN\n" (if !first then "IF" else "ELSIF")
             (guard imask);
           first := false;
           Buffer.add_string buffer (assignments omask);
           add "      state := %d;\n" next
         end)
      (rows machine);
    if not !first then add "    END_IF;\n"
  done;
  add "END_CASE;\nEND_FUNCTION_BLOCK\n";
  Buffer.contents buffer

(* --- Verilog --- *)

let to_verilog ?(name = "speccc_controller") machine =
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let inputs = List.map sanitize machine.Mealy.inputs in
  let outputs = List.map sanitize machine.Mealy.outputs in
  let state_bits =
    let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
    bits (max 1 (machine.Mealy.num_states - 1))
  in
  add "module %s (\n  input  wire clk,\n  input  wire rst,\n"
    (sanitize name);
  List.iter (fun p -> add "  input  wire %s,\n" p) inputs;
  add "%s\n);\n"
    (String.concat ",\n"
       (List.map (fun p -> Printf.sprintf "  output reg  %s" p) outputs));
  add "  reg [%d:0] state;\n\n" (state_bits - 1);
  let input_vector =
    if inputs = [] then "1'b0"
    else "{" ^ String.concat ", " (List.rev inputs) ^ "}"
  in
  let num_input_bits = List.length inputs in
  add "  always @(posedge clk) begin\n";
  add "    if (rst) begin\n      state <= %d'd%d;\n    end else begin\n"
    state_bits machine.Mealy.initial;
  add "      case ({state, %s})\n" input_vector;
  List.iter
    (fun (state, imask, _, next) ->
       add "        {%d'd%d, %d'b%s}: state <= %d'd%d;\n" state_bits state
         (max 1 num_input_bits)
         (if num_input_bits = 0 then "0"
          else
            String.init num_input_bits (fun i ->
                if bit imask (num_input_bits - 1 - i) then '1' else '0'))
         state_bits next)
    (rows machine);
  add "        default: state <= state;\n      endcase\n    end\n  end\n\n";
  (* Mealy outputs: combinational over state and inputs *)
  add "  always @(*) begin\n";
  List.iter (fun p -> add "    %s = 1'b0;\n" p) outputs;
  add "    case ({state, %s})\n" input_vector;
  List.iter
    (fun (state, imask, omask, _) ->
       let actions =
         List.concat
           (List.mapi
              (fun i p ->
                 if bit omask i then [ Printf.sprintf "%s = 1'b1;" p ]
                 else [])
              outputs)
       in
       if actions <> [] then
         add "      {%d'd%d, %d'b%s}: begin %s end\n" state_bits state
           (max 1 num_input_bits)
           (if num_input_bits = 0 then "0"
            else
              String.init num_input_bits (fun i ->
                  if bit imask (num_input_bits - 1 - i) then '1' else '0'))
           (String.concat " " actions))
    (rows machine);
  add "      default: ;\n    endcase\n  end\nendmodule\n";
  Buffer.contents buffer
