(* Partition refinement for Mealy machines.

   Only reachable states participate: unreachable behaviour must not
   block merging.  Blocks start from identical output rows; a round
   splits every block by the vector of successor blocks; rounds repeat
   until stable (at most n rounds). *)
let minimize machine =
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  (* reachable states *)
  let reachable = Hashtbl.create 64 in
  let order = ref [] in
  let queue = Queue.create () in
  Hashtbl.add reachable machine.Mealy.initial ();
  Queue.add machine.Mealy.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    for imask = 0 to num_inputs - 1 do
      let _, next = machine.Mealy.step s imask in
      if not (Hashtbl.mem reachable next) then begin
        Hashtbl.add reachable next ();
        Queue.add next queue
      end
    done
  done;
  let states = List.rev !order in
  (* block assignment, keyed by state *)
  let block = Hashtbl.create 64 in
  let assign_blocks signature_of =
    let signatures = Hashtbl.create 64 in
    let next_block = ref 0 in
    let changed = ref false in
    List.iter
      (fun s ->
         let signature = signature_of s in
         let b =
           match Hashtbl.find_opt signatures signature with
           | Some b -> b
           | None ->
             let b = !next_block in
             incr next_block;
             Hashtbl.add signatures signature b;
             b
         in
         (match Hashtbl.find_opt block s with
          | Some old when old = b -> ()
          | _ -> changed := true);
         Hashtbl.replace block s b)
      states;
    (!next_block, !changed)
  in
  (* initial partition: identical output rows *)
  let output_row s =
    List.init num_inputs (fun imask -> fst (machine.Mealy.step s imask))
  in
  let _ = assign_blocks (fun s -> (output_row s, [])) in
  (* refine by successor-block vectors (keeping the output row in the
     signature so blocks never coarsen); every signature of a round
     reads the same pre-round snapshot *)
  let rec refine () =
    let snapshot = Hashtbl.copy block in
    let _, changed =
      assign_blocks (fun s ->
          ( output_row s,
            List.init num_inputs (fun imask ->
                let _, next = machine.Mealy.step s imask in
                Hashtbl.find snapshot next) ))
    in
    if changed then refine ()
  in
  refine ();
  (* renumber blocks so the initial state is block 0 and numbering is
     stable (first-seen order along [states]) *)
  let renumber = Hashtbl.create 64 in
  let next_id = ref 0 in
  let id_of_block b =
    match Hashtbl.find_opt renumber b with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      Hashtbl.add renumber b id;
      id
  in
  let initial_block = Hashtbl.find block machine.Mealy.initial in
  let _ = id_of_block initial_block in
  (* representative per block, in state order *)
  let representative = Hashtbl.create 64 in
  List.iter
    (fun s ->
       let id = id_of_block (Hashtbl.find block s) in
       if not (Hashtbl.mem representative id) then
         Hashtbl.add representative id s)
    states;
  let num_states = !next_id in
  let step_table =
    Array.init num_states (fun id ->
        let s = Hashtbl.find representative id in
        Array.init num_inputs (fun imask ->
            let omask, next = machine.Mealy.step s imask in
            (omask, id_of_block (Hashtbl.find block next))))
  in
  {
    machine with
    Mealy.num_states;
    initial = 0;
    step = (fun state imask -> step_table.(state).(imask));
  }

let equivalent a b =
  if a.Mealy.inputs <> b.Mealy.inputs || a.Mealy.outputs <> b.Mealy.outputs
  then invalid_arg "Minimize.equivalent: interface mismatch";
  let num_inputs = 1 lsl List.length a.Mealy.inputs in
  let visited = Hashtbl.create 64 in
  let rec walk pair =
    if Hashtbl.mem visited pair then true
    else begin
      Hashtbl.add visited pair ();
      let sa, sb = pair in
      let rec inputs_ok imask =
        imask >= num_inputs
        ||
        let oa, na = a.Mealy.step sa imask in
        let ob, nb = b.Mealy.step sb imask in
        oa = ob && walk (na, nb) && inputs_ok (imask + 1)
      in
      inputs_ok 0
    end
  in
  walk (a.Mealy.initial, b.Mealy.initial)
