(** Realizability checking front-end — the paper's stage 2: a
    specification (a set of LTL requirements, implicitly conjoined) is
    {e consistent} iff it is realizable, i.e. a controller reading the
    input propositions and driving the output propositions exists
    (Sec. V-A).

    Two engines are available:
    - [Explicit]: exact bounded synthesis with a dual-game
      unrealizability check ({!Bounded}); cost is exponential in the
      number of propositions, so it is reserved for small alphabets.
    - [Symbolic]: BDD obligation game ({!Obligation}); liveness is
      first strengthened to [lookahead]-bounded eventualities, exactly
      as G4LTL's unroll parameter does.
    - [Auto] picks [Explicit] for small alphabets and [Symbolic]
      otherwise. *)

type engine = Explicit | Symbolic | Auto

type verdict =
  | Consistent        (** realizable: a controller exists *)
  | Inconsistent      (** definitely unrealizable *)
  | Inconclusive of string
      (** bound/lookahead exhausted; the string says which limit *)

type report = {
  verdict : verdict;
  engine_used : string;
  controller : Mealy.t option;   (** present when [Consistent] *)
  counterstrategy : Bounded.counterstrategy option;
      (** present when the explicit engine proved [Inconsistent]: the
          environment's winning strategy, usable with
          {!Bounded.refute} to demonstrate the inconsistency against
          any candidate implementation *)
  wall_time : float;             (** seconds *)
  detail : string;               (** engine diagnostics *)
}

val check :
  ?engine:engine ->
  ?lookahead:int ->
  ?bound:int ->
  ?explicit_prop_limit:int ->
  ?assumptions:Speccc_logic.Ltl.t list ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t list ->
  report
(** [check ~inputs ~outputs requirements].  Defaults: [engine = Auto],
    [lookahead = 6] (bounded-eventuality depth for the symbolic
    engine), [bound = 8] (maximal counting bound for the explicit
    engine), [explicit_prop_limit = 12] (Auto threshold on
    [|inputs| + |outputs|]).

    [assumptions] are environment hypotheses [A]: the checked formula
    becomes [(∧A) → (∧requirements)], so the system need only comply
    while the environment behaves.  The top-level temporal disjunction
    this introduces is outside the symbolic engine's completeness
    fragment, so [Auto] routes assumption-carrying checks to the
    explicit engine; forcing [Symbolic] stays sound but may report
    spurious unrealizability. *)
