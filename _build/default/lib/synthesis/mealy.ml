open Speccc_logic

type t = {
  inputs : string list;
  outputs : string list;
  num_states : int;
  initial : int;
  step : int -> int -> int * int;
}

let mask_of_assignment props assignment =
  List.fold_left
    (fun (mask, bit) prop ->
       let value =
         match List.assoc_opt prop assignment with
         | Some b -> b
         | None -> false
       in
       ((if value then mask lor (1 lsl bit) else mask), bit + 1))
    (0, 0) props
  |> fst

let assignment_of_mask props mask =
  List.mapi (fun bit prop -> (prop, mask land (1 lsl bit) <> 0)) props

let run machine input_letters =
  let rec go state = function
    | [] -> []
    | input :: rest ->
      let imask = mask_of_assignment machine.inputs input in
      let omask, state' = machine.step state imask in
      let letter =
        assignment_of_mask machine.inputs imask
        @ assignment_of_mask machine.outputs omask
      in
      letter :: go state' rest
  in
  go machine.initial input_letters

(* Drive until (machine state, input loop position) repeats; split the
   produced letters at the first repetition of that configuration. *)
let lasso machine ~prefix ~loop =
  if loop = [] then invalid_arg "Mealy.lasso: empty loop";
  let prefix_masks =
    List.map (mask_of_assignment machine.inputs) prefix
  in
  let loop_masks =
    Array.of_list (List.map (mask_of_assignment machine.inputs) loop)
  in
  let loop_len = Array.length loop_masks in
  let combined imask omask =
    assignment_of_mask machine.inputs imask
    @ assignment_of_mask machine.outputs omask
  in
  (* Consume the finite prefix. *)
  let state, prefix_letters =
    List.fold_left
      (fun (state, acc) imask ->
         let omask, state' = machine.step state imask in
         (state', combined imask omask :: acc))
      (machine.initial, []) prefix_masks
  in
  let prefix_letters = List.rev prefix_letters in
  (* Iterate the loop until a (state, position) pair repeats. *)
  let seen = Hashtbl.create 64 in
  let rec iterate state pos acc step_index =
    match Hashtbl.find_opt seen (state, pos) with
    | Some first_index ->
      let letters = List.rev acc in
      let flat_prefix, flat_loop =
        let rec split i = function
          | [] -> ([], [])
          | letter :: rest ->
            if i < first_index then
              let before, cycle = split (i + 1) rest in
              (letter :: before, cycle)
            else ([], letter :: rest)
        in
        split 0 letters
      in
      Trace.make ~prefix:(prefix_letters @ flat_prefix) ~loop:flat_loop
    | None ->
      Hashtbl.add seen (state, pos) step_index;
      let imask = loop_masks.(pos) in
      let omask, state' = machine.step state imask in
      iterate state' ((pos + 1) mod loop_len)
        (combined imask omask :: acc)
        (step_index + 1)
  in
  iterate state 0 [] 0

let satisfies machine formula ~trials ~seed =
  let rng = Random.State.make [| seed |] in
  let random_letter () =
    List.map (fun p -> (p, Random.State.bool rng)) machine.inputs
  in
  let random_letters n = List.init n (fun _ -> random_letter ()) in
  let trial _ =
    let prefix = random_letters (Random.State.int rng 4) in
    let loop = random_letters (1 + Random.State.int rng 3) in
    let word = lasso machine ~prefix ~loop in
    Trace.holds word formula
  in
  List.for_all trial (List.init trials Fun.id)

let pp_dot ppf machine =
  Format.fprintf ppf "digraph mealy {@\n";
  Format.fprintf ppf "  s%d [style=bold];@\n" machine.initial;
  let num_inputs = List.length machine.inputs in
  for state = 0 to machine.num_states - 1 do
    for imask = 0 to (1 lsl num_inputs) - 1 do
      let omask, next = machine.step state imask in
      let show props mask =
        String.concat ","
          (List.map
             (fun (p, b) -> (if b then "" else "!") ^ p)
             (assignment_of_mask props mask))
      in
      Format.fprintf ppf "  s%d -> s%d [label=\"%s / %s\"];@\n" state next
        (show machine.inputs imask)
        (show machine.outputs omask)
    done
  done;
  Format.fprintf ppf "}@\n"
