(** Code generation from synthesized controllers.

    The paper's synthesis backend, G4LTL-ST, is billed as "automatic
    generation of PLC programs": realizable specifications become
    IEC 61131-3 Structured Text function blocks.  This module plays
    that role for the controllers our engines extract, and adds a
    synthesizable Verilog backend (the natural target on the hardware
    side of requirements engineering).

    Both backends compile the Mealy machine to a state register plus a
    flat case analysis; proposition names are sanitized into
    identifiers (letters, digits, underscore). *)

val to_structured_text : ?name:string -> Mealy.t -> string
(** An IEC 61131-3 [FUNCTION_BLOCK]: one [BOOL] input per input
    proposition, one [BOOL] output per output proposition, an [INT]
    state variable, and a [CASE] over states whose branches decode the
    input valuation.  Intended to be dropped into a PLC project and
    called once per scan cycle. *)

val to_verilog : ?name:string -> Mealy.t -> string
(** A synthesizable Verilog module (clocked, synchronous reset,
    Mealy outputs). *)

val sanitize : string -> string
(** Identifier sanitization used by both backends (exposed for
    tests). *)
