(** Algorithm 1 of the paper: semantic reasoning over the
    ⟨subject, dependent⟩ relations extracted by the parser.

    Antonym candidates (adjectives/adverbs) grouped under the same
    subject are colored: {e blue} when a contrasting partner was found
    in the same dependent set by consulting the antonym dictionary,
    {e green} otherwise.  Blue pairs drive proposition reduction: the
    negative member is replaced by the negation of the positive member,
    so [unavailable_pulse_wave] never becomes a separate proposition
    from [available_pulse_wave]. *)

type color = Green | Blue

type colored_word = {
  word : string;
  color : color;
  antonyms_found : string list;
      (** partners discovered in the same dependent set *)
}

type subject_analysis = {
  subject : string;
  words : colored_word list;
}

val analyze :
  Antonym.t -> Speccc_nlp.Dependency.relation list -> subject_analysis list
(** Algorithm 1: for every subject with more than one dependent,
    consult the dictionary and color the dependents; single-dependent
    subjects keep their word green (the paper skips them: "we cannot
    use the derived antonyms for the corresponding proposition
    reduction"). *)

type literal = {
  prop : string;       (** proposition name *)
  positive : bool;     (** sign contributed by the word's polarity *)
}

val literal_for :
  Antonym.t -> subject_analysis list -> subject:string -> word:string ->
  literal
(** Proposition for an adjective/adverb [word] attached to [subject]:
    absorbing words abbreviate to the bare subject and contribute only
    a sign; blue (pair-discovered) words collapse onto their positive
    member; green non-absorbing words keep the [word_subject] form. *)

val reduction_count :
  Antonym.t -> Speccc_nlp.Dependency.relation list -> int * int
(** [(props_without_reasoning, props_with_reasoning)] over all
    subject/word pairs — the quantity the Sec. IV-D example discusses
    (two propositions for available/unavailable collapse into one). *)
