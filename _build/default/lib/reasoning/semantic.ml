open Speccc_nlp

type color = Green | Blue

type colored_word = {
  word : string;
  color : color;
  antonyms_found : string list;
}

type subject_analysis = {
  subject : string;
  words : colored_word list;
}

(* Algorithm 1.  The paper first groups antonym candidates by subject
   (done upstream by Dependency.of_sentences), then, for subjects with
   more than one dependent, looks every word up in the dictionary and
   marks words blue when the intersection of their antonym set with
   the sibling dependents is non-empty. *)
let analyze dict relations =
  let analyze_relation { Dependency.subject; dependents } =
    if List.length dependents <= 1 then
      {
        subject;
        words =
          List.map
            (fun word -> { word; color = Green; antonyms_found = [] })
            dependents;
      }
    else
      let colored =
        List.map
          (fun word ->
             let known_antonyms = Antonym.antonyms dict word in
             let found =
               List.filter
                 (fun other -> List.mem other known_antonyms)
                 dependents
             in
             match found with
             | [] -> { word; color = Green; antonyms_found = [] }
             | _ -> { word; color = Blue; antonyms_found = found })
          dependents
      in
      { subject; words = colored }
  in
  List.map analyze_relation relations

type literal = {
  prop : string;
  positive : bool;
}

let literal_for dict analyses ~subject ~word =
  let analysis =
    match List.find_opt (fun a -> a.subject = subject) analyses with
    | Some a -> a
    | None -> { subject; words = [ { word; color = Green; antonyms_found = [] } ] }
  in
  let coloring =
    List.find_opt (fun c -> c.word = word) analysis.words
  in
  let entry = Antonym.lookup dict word in
  match entry with
  | None ->
    (* Unknown word: keep it verbatim (green path). *)
    { prop = word ^ "_" ^ subject; positive = true }
  | Some { Antonym.pair; polarity; absorb; _ } ->
    let positive = polarity = Antonym.Positive in
    let blue =
      match coloring with
      | Some { color = Blue; _ } -> true
      | Some { color = Green; _ } | None -> false
    in
    if absorb then
      (* Status adjective: the proposition is the bare subject and the
         word only contributes a sign (appendix abbreviation:
         available_pulse_wave ↦ pulse_wave, low ↦ ¬subject). *)
      { prop = subject; positive }
    else if blue then
      (* Pair discovered by Algorithm 1: replace the negative member by
         the negation of the positive form. *)
      { prop = pair ^ "_" ^ subject; positive }
    else
      (* Known word, but no partner in the spec and not absorbing:
         keep the full form with its own positive sign (the word is
         the proposition, e.g. operational_cara). *)
      { prop = word ^ "_" ^ subject; positive = true }

let reduction_count dict relations =
  let analyses = analyze dict relations in
  let all_pairs =
    List.concat_map
      (fun { Dependency.subject; dependents } ->
         List.map (fun word -> (subject, word)) dependents)
      relations
  in
  let without = List.length all_pairs in
  let reduced =
    List.sort_uniq compare
      (List.map
         (fun (subject, word) ->
            let literal = literal_for dict analyses ~subject ~word in
            literal.prop)
         all_pairs)
  in
  (without, List.length reduced)
