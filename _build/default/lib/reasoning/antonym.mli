(** The user-specified antonym dictionary of Sec. IV-D.

    Each entry relates an adjective/adverb to its canonical pair and
    fixes which member is the positive form (the paper picks the
    positive form "randomly"; we make the choice deterministic and
    user-visible).  The [absorb] flag reproduces the paper's
    abbreviation convention: an absorbing word vanishes into its
    subject (["available pulse_wave" ↦ pulse_wave],
    ["low air_ok_signal" ↦ ¬air_ok_signal]), while a non-absorbing
    word keeps the full [word_subject] proposition
    (["operational cara" ↦ operational_cara]). *)

type polarity = Positive | Negative

type entry = {
  word : string;
  pair : string;        (** canonical pair name = its positive member *)
  polarity : polarity;
  absorb : bool;
}

type t

val default : unit -> t
(** Dictionary preloaded for the case studies (the paper's "online
    lookup" is out of scope in a sealed environment; Algorithm 1's
    lookup step resolves against this table). *)

val add : t -> entry -> unit
val lookup : t -> string -> entry option
val antonyms : t -> string -> string list
(** All known words with the same pair but opposite polarity. *)

val is_negative : t -> string -> bool
val entries : t -> entry list
