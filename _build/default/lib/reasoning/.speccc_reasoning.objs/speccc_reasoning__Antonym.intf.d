lib/reasoning/antonym.mli:
