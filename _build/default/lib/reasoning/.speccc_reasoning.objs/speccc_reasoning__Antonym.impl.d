lib/reasoning/antonym.ml: Hashtbl List
