lib/reasoning/semantic.ml: Antonym Dependency List Speccc_nlp
