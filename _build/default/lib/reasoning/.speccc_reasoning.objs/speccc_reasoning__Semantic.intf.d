lib/reasoning/semantic.mli: Antonym Speccc_nlp
