type polarity = Positive | Negative

type entry = {
  word : string;
  pair : string;
  polarity : polarity;
  absorb : bool;
}

type t = { table : (string, entry) Hashtbl.t }

let add dict entry = Hashtbl.replace dict.table entry.word entry

let pair_abs positive negative = [
  { word = positive; pair = positive; polarity = Positive; absorb = true };
  { word = negative; pair = positive; polarity = Negative; absorb = true };
]

let pair_full positive negative = [
  { word = positive; pair = positive; polarity = Positive; absorb = false };
  { word = negative; pair = positive; polarity = Negative; absorb = false };
]

let defaults =
  List.concat
    [
      (* status adjectives that abbreviate into their subject
         (Sec. IV-D's proposition reduction, appendix convention) *)
      pair_abs "available" "unavailable";
      pair_abs "valid" "invalid";
      pair_abs "high" "low";
      pair_abs "enabled" "disabled";
      pair_abs "on" "off";
      pair_abs "active" "inactive";
      (* descriptive adjectives that keep the word_subject form *)
      pair_full "operational" "inoperative";
      pair_full "clear" "blocked";
      pair_full "ready" "unready";
      pair_full "normal" "abnormal";
      pair_full "open" "closed";
      pair_full "full" "empty";
      pair_full "busy" "idle";
      pair_full "occupied" "free";
      pair_full "successful" "failed";
      pair_full "safe" "unsafe";
      pair_full "healthy" "injured";
      pair_full "correctly" "incorrectly";
      pair_full "successfully" "unsuccessfully";
    ]
  @ [
    (* "lost" also pairs against "available" in the corpus (Req-42):
       the pump sources are "available" or "lost". *)
    { word = "lost"; pair = "available"; polarity = Negative; absorb = true };
  ]

let default () =
  let dict = { table = Hashtbl.create 64 } in
  List.iter (add dict) defaults;
  dict

let lookup dict word = Hashtbl.find_opt dict.table word

let antonyms dict word =
  match lookup dict word with
  | None -> []
  | Some entry ->
    Hashtbl.fold
      (fun other other_entry acc ->
         if other_entry.pair = entry.pair
         && other_entry.polarity <> entry.polarity
         && other <> word
         then other :: acc
         else acc)
      dict.table []
    |> List.sort compare

let is_negative dict word =
  match lookup dict word with
  | Some { polarity = Negative; _ } -> true
  | Some { polarity = Positive; _ } | None -> false

let entries dict =
  Hashtbl.fold (fun _ e acc -> e :: acc) dict.table []
  |> List.sort compare
