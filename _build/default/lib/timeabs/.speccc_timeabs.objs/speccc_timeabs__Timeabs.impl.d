lib/timeabs/timeabs.ml: Format Hashtbl List Ltl Smt Speccc_logic Speccc_smt
