lib/timeabs/timeabs.mli: Format Speccc_logic
