(** Syntactic fragment classification and the bounded-liveness
    strengthening used by the symbolic engine (the counterpart of
    G4LTL's look-ahead parameter).

    Classification is performed on the negation normal form: a formula
    is {e syntactically safe} when its NNF contains neither [Until] nor
    [Eventually]; {e syntactically co-safe} when it contains neither
    [Release] nor [Always].  Syntactic safety implies semantic safety. *)

val is_syntactic_safety : Ltl.t -> bool
val is_syntactic_cosafety : Ltl.t -> bool

val has_liveness : Ltl.t -> bool
(** True when the NNF contains [Until] or [Eventually] (so the bounded
    strengthening below is not the identity). *)

val bound_liveness : bound:int -> Ltl.t -> Ltl.t
(** [bound_liveness ~bound f] puts [f] in NNF and replaces every
    eventuality by its [bound]-step unrolling:
    [F g ↦ g ∨ Xg ∨ … ∨ X^(bound-1) g] and
    [g U h ↦ h ∨ (g ∧ X(h ∨ (g ∧ X …)))] with [bound] disjuncts.
    The result is a syntactic-safety formula that {e implies} [f]
    (a strengthening): realizability of the result is sound evidence
    for realizability of [f].  Raises [Invalid_argument] when
    [bound < 1]. *)
