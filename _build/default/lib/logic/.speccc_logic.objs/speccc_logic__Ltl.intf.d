lib/logic/ltl.mli: Map Set
