lib/logic/ltl_print.ml: Format Ltl
