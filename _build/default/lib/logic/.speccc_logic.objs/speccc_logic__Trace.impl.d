lib/logic/trace.ml: Array Format List Ltl String
