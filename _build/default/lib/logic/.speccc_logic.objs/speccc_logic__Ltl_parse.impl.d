lib/logic/ltl_parse.ml: List Ltl Printf String
