lib/logic/nnf.ml: Ltl
