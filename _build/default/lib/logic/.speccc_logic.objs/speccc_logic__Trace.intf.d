lib/logic/trace.mli: Format Ltl
