lib/logic/classify.ml: Ltl Nnf
