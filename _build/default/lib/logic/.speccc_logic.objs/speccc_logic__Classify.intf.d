lib/logic/classify.mli: Ltl
