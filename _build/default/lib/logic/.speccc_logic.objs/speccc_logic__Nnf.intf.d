lib/logic/nnf.mli: Ltl
