lib/logic/ltl_print.mli: Format Ltl
