lib/logic/ltl.ml: Hashtbl Int List Map Set Stdlib String
