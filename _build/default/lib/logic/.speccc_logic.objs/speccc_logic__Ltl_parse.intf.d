lib/logic/ltl_parse.mli: Ltl
