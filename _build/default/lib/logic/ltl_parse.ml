exception Error of string

type token =
  | Tok_true
  | Tok_false
  | Tok_not
  | Tok_and
  | Tok_or
  | Tok_implies
  | Tok_iff
  | Tok_next
  | Tok_eventually
  | Tok_always
  | Tok_until
  | Tok_weak_until
  | Tok_release
  | Tok_lparen
  | Tok_rparen
  | Tok_ident of string
  | Tok_eof

let describe = function
  | Tok_true -> "'true'"
  | Tok_false -> "'false'"
  | Tok_not -> "'!'"
  | Tok_and -> "'&&'"
  | Tok_or -> "'||'"
  | Tok_implies -> "'->'"
  | Tok_iff -> "'<->'"
  | Tok_next -> "'X'"
  | Tok_eventually -> "'F'"
  | Tok_always -> "'G'"
  | Tok_until -> "'U'"
  | Tok_weak_until -> "'W'"
  | Tok_release -> "'R'"
  | Tok_lparen -> "'('"
  | Tok_rparen -> "')'"
  | Tok_ident name -> Printf.sprintf "identifier %S" name
  | Tok_eof -> "end of input"

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'

let keyword_token = function
  | "true" -> Some Tok_true
  | "false" -> Some Tok_false
  | "not" -> Some Tok_not
  | "and" -> Some Tok_and
  | "or" -> Some Tok_or
  | "X" -> Some Tok_next
  | "F" -> Some Tok_eventually
  | "G" -> Some Tok_always
  | "U" -> Some Tok_until
  | "W" -> Some Tok_weak_until
  | "R" -> Some Tok_release
  | _ -> None

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let rec scan i =
    if i >= n then ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '(' -> emit Tok_lparen; scan (i + 1)
      | ')' -> emit Tok_rparen; scan (i + 1)
      | '!' | '~' -> emit Tok_not; scan (i + 1)
      | '&' ->
        let next = if i + 1 < n && input.[i + 1] = '&' then i + 2 else i + 1 in
        emit Tok_and; scan next
      | '|' ->
        let next = if i + 1 < n && input.[i + 1] = '|' then i + 2 else i + 1 in
        emit Tok_or; scan next
      | '1' -> emit Tok_true; scan (i + 1)
      | '0' -> emit Tok_false; scan (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '>' ->
        emit Tok_implies; scan (i + 2)
      | '=' when i + 1 < n && input.[i + 1] = '>' ->
        emit Tok_implies; scan (i + 2)
      | '<' when i + 2 < n && input.[i + 1] = '-' && input.[i + 2] = '>' ->
        emit Tok_iff; scan (i + 3)
      | '<' when i + 2 < n && input.[i + 1] = '=' && input.[i + 2] = '>' ->
        emit Tok_iff; scan (i + 3)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        emit Tok_eventually; scan (i + 2)
      | '[' when i + 1 < n && input.[i + 1] = ']' ->
        emit Tok_always; scan (i + 2)
      | c when is_ident_start c ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char input.[!j] do incr j done;
        let word = String.sub input i (!j - i) in
        (match keyword_token word with
         | Some tok -> emit tok
         | None -> emit (Tok_ident word));
        scan !j
      | c -> fail "unexpected character %C at offset %d" c i
  in
  scan 0;
  List.rev (Tok_eof :: !tokens)

(* Recursive-descent parser over the token list.  Grammar, loosest
   binding first:
     iff     ::= implies ('<->' implies)*          (right assoc)
     implies ::= or ('->' implies)?                (right assoc)
     or      ::= and ('||' and)*
     and     ::= until ('&&' until)*
     until   ::= unary (('U'|'W'|'R') until)?      (right assoc)
     unary   ::= ('!'|'X'|'F'|'G') unary | atom
     atom    ::= 'true' | 'false' | ident | '(' iff ')' *)
let parse tokens =
  let stream = ref tokens in
  let peek () = match !stream with tok :: _ -> tok | [] -> Tok_eof in
  let advance () =
    match !stream with _ :: rest -> stream := rest | [] -> ()
  in
  let expect tok =
    if peek () = tok then advance ()
    else fail "expected %s but found %s" (describe tok) (describe (peek ()))
  in
  let rec parse_iff () =
    let lhs = parse_implies () in
    if peek () = Tok_iff then begin
      advance ();
      Ltl.iff lhs (parse_iff ())
    end
    else lhs
  and parse_implies () =
    let lhs = parse_or () in
    if peek () = Tok_implies then begin
      advance ();
      Ltl.implies lhs (parse_implies ())
    end
    else lhs
  and parse_or () =
    let lhs = ref (parse_and ()) in
    while peek () = Tok_or do
      advance ();
      lhs := Ltl.disj !lhs (parse_and ())
    done;
    !lhs
  and parse_and () =
    let lhs = ref (parse_until ()) in
    while peek () = Tok_and do
      advance ();
      lhs := Ltl.conj !lhs (parse_until ())
    done;
    !lhs
  and parse_until () =
    let lhs = parse_unary () in
    match peek () with
    | Tok_until -> advance (); Ltl.until lhs (parse_until ())
    | Tok_weak_until -> advance (); Ltl.weak_until lhs (parse_until ())
    | Tok_release -> advance (); Ltl.release lhs (parse_until ())
    | Tok_true | Tok_false | Tok_not | Tok_and | Tok_or | Tok_implies
    | Tok_iff | Tok_next | Tok_eventually | Tok_always | Tok_lparen
    | Tok_rparen | Tok_ident _ | Tok_eof ->
      lhs
  and parse_unary () =
    match peek () with
    | Tok_not -> advance (); Ltl.neg (parse_unary ())
    | Tok_next -> advance (); Ltl.next (parse_unary ())
    | Tok_eventually -> advance (); Ltl.eventually (parse_unary ())
    | Tok_always -> advance (); Ltl.always (parse_unary ())
    | Tok_true | Tok_false | Tok_and | Tok_or | Tok_implies | Tok_iff
    | Tok_until | Tok_weak_until | Tok_release | Tok_lparen | Tok_rparen
    | Tok_ident _ | Tok_eof ->
      parse_atom ()
  and parse_atom () =
    match peek () with
    | Tok_true -> advance (); Ltl.tt
    | Tok_false -> advance (); Ltl.ff
    | Tok_ident name -> advance (); Ltl.prop name
    | Tok_lparen ->
      advance ();
      let inner = parse_iff () in
      expect Tok_rparen;
      inner
    | tok -> fail "expected a formula but found %s" (describe tok)
  in
  let result = parse_iff () in
  expect Tok_eof;
  result

let formula input = parse (tokenize input)
let formula_opt input = try Some (formula input) with Error _ -> None
