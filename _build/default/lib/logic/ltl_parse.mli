(** Parsing of textual LTL formulas.

    The accepted syntax covers the printer's [Ascii] and [Paper] modes
    plus common aliases:
    - constants: [true], [false], [1], [0];
    - negation: [!], [~], [not];
    - conjunction: [&&], [&], [and];  disjunction: [||], [|], [or];
    - implication: [->], [=>];  equivalence: [<->], [<=>];
    - temporal: [X], [F], [<>], [G], [[]], [U], [W], [R];
    - identifiers: [[A-Za-z_][A-Za-z0-9_'-]*] (minus the keywords).

    Operator precedence, loosest first: [<->], [->] (right
    associative), [||], [&&], then [U]/[W]/[R] (right associative),
    then unary. *)

exception Error of string
(** Raised with a human-readable message pointing at the offending
    token. *)

val formula : string -> Ltl.t
(** Parse a formula; raises {!Error} on malformed input. *)

val formula_opt : string -> Ltl.t option
