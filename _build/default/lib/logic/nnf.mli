(** Negation normal form and basic rewriting.

    In NNF, negation occurs only in front of propositions; [Implies]
    and [Iff] are expanded; [Eventually]/[Always] are kept (they are
    their own duals' arguments) and [Weak_until] is rewritten using
    [Release] ([φ W ψ ≡ ψ R (φ ∨ ψ)]). *)

val of_formula : Ltl.t -> Ltl.t
(** Equivalent formula in negation normal form. *)

val is_nnf : Ltl.t -> bool

val simplify : Ltl.t -> Ltl.t
(** Cheap semantic-preserving rewriting: constant folding, idempotence
    ([f ∧ f → f]), absorption of double temporal operators
    ([G G f → G f], [F F f → F f]), [X]-distribution is {e not}
    performed (it would destroy the θ chains the time abstraction
    reads). *)
