(** Pretty-printing of LTL formulas.

    Three concrete syntaxes are supported:
    - {e unicode}: ¬ ∧ ∨ → ↔ X ♦ □ U W R (as in the paper body);
    - {e ascii}: ! && || -> <-> X F G U W R (parseable by
      {!Ltl_parse.formula});
    - {e paper}: the appendix style, e.g.
      [[] (run_auto_control_mode -> (<> (inflate_cuff)))]. *)

type syntax = Unicode | Ascii | Paper

val pp : ?syntax:syntax -> Format.formatter -> Ltl.t -> unit
(** Minimal parentheses; default syntax is [Ascii]. *)

val to_string : ?syntax:syntax -> Ltl.t -> string
