lib/partition/partition.ml: Format Hashtbl List Ltl Set Speccc_logic String
