lib/partition/partition.mli: Format Speccc_logic
