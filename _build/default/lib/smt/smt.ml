open Speccc_sat

type term = {
  bits : Bitvec.t;
  lo : int;   (* conservative interval, used to size comparisons *)
  hi : int;
}

type ctx = {
  sat : Sat.t;
  tseitin : Tseitin.t;
}

type atom = Tseitin.lit
type model = bool array

let create () =
  let sat = Sat.create () in
  { sat; tseitin = Tseitin.create sat }

let const ctx value =
  let w = Bitvec.width_for (min value 0) (max value 0) in
  { bits = Bitvec.of_int ctx.tseitin ~width:w value; lo = value; hi = value }

let eq ctx a b = Bitvec.eq ctx.tseitin a.bits b.bits
let le ctx a b = Bitvec.le ctx.tseitin a.bits b.bits
let lt ctx a b = Bitvec.lt ctx.tseitin a.bits b.bits
let ge ctx a b = le ctx b a
let gt ctx a b = lt ctx b a
let atom_not lit = -lit
let atom_or ctx lits = Tseitin.mk_or ctx.tseitin lits
let atom_and ctx lits = Tseitin.mk_and ctx.tseitin lits
let assert_atom ctx lit = Tseitin.assert_lit ctx.tseitin lit

let var ctx ~lo ~hi =
  if lo > hi then invalid_arg "Smt.var: empty range";
  let w = Bitvec.width_for lo hi in
  let bits = Bitvec.fresh ctx.tseitin ~width:w in
  let term = { bits; lo; hi } in
  (* Range clauses: lo <= x <= hi. *)
  assert_atom ctx (le ctx (const ctx lo) term);
  assert_atom ctx (le ctx term (const ctx hi));
  term

let add ctx a b =
  { bits = Bitvec.add ctx.tseitin a.bits b.bits;
    lo = a.lo + b.lo;
    hi = a.hi + b.hi }

let neg ctx a =
  { bits = Bitvec.neg ctx.tseitin a.bits; lo = -a.hi; hi = -a.lo }

let sub ctx a b = add ctx a (neg ctx b)

let mul ctx a b =
  let products = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  { bits = Bitvec.mul ctx.tseitin a.bits b.bits;
    lo = List.fold_left min max_int products;
    hi = List.fold_left max min_int products }

let scale ctx k a = mul ctx (const ctx k) a

let sum ctx = function
  | [] -> const ctx 0
  | first :: rest -> List.fold_left (add ctx) first rest

let value model term = Bitvec.decode model term.bits

let solve ctx =
  match Sat.solve ctx.sat with
  | Sat.Sat m -> Some m
  | Sat.Unsat -> None

(* Binary search for the least objective value.  Upper/lower bounds
   start from the term's static interval; each probe solves under an
   assumption literal encoding [obj <= mid]. *)
let minimize ctx objective =
  match solve ctx with
  | None -> None
  | Some initial_model ->
    let best_model = ref initial_model in
    let best = ref (value initial_model objective) in
    let lower = ref objective.lo in
    while !lower < !best do
      let mid = !lower + ((!best - !lower) / 2) in
      let bound_lit = le ctx objective (const ctx mid) in
      match Sat.solve ~assumptions:[ bound_lit ] ctx.sat with
      | Sat.Sat m ->
        best_model := m;
        best := value m objective
      | Sat.Unsat -> lower := mid + 1
    done;
    Some (!best, !best_model)

let minimize_lex ctx objectives =
  let rec go achieved = function
    | [] ->
      (match solve ctx with
       | None -> None
       | Some m -> Some (List.rev achieved, m))
    | objective :: rest ->
      (match minimize ctx objective with
       | None -> None
       | Some (best, _) ->
         assert_atom ctx (eq ctx objective (const ctx best));
         go (best :: achieved) rest)
  in
  go [] objectives

let stats ctx = (Sat.num_vars ctx.sat, Sat.num_clauses ctx.sat)
