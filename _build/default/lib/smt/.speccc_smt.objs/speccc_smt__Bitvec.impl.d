lib/smt/bitvec.ml: List Speccc_sat Tseitin
