lib/smt/smt.ml: Bitvec List Sat Speccc_sat Tseitin
