lib/smt/bitvec.mli: Speccc_sat Tseitin
