lib/smt/smt.mli:
