open Speccc_sat

type t = Tseitin.lit list

let width = List.length

let width_for lo hi =
  if lo > hi then invalid_arg "Bitvec.width_for: empty range";
  let rec fits w =
    let min_val = -(1 lsl (w - 1)) and max_val = (1 lsl (w - 1)) - 1 in
    if lo >= min_val && hi <= max_val then w else fits (w + 1)
  in
  fits 1

let of_int ctx ~width:w value =
  let min_val = -(1 lsl (w - 1)) and max_val = (1 lsl (w - 1)) - 1 in
  if value < min_val || value > max_val then
    invalid_arg "Bitvec.of_int: value out of range";
  let tt = Tseitin.true_lit ctx and ff = Tseitin.false_lit ctx in
  List.init w (fun i -> if (value lsr i) land 1 = 1 then tt else ff)

let fresh ctx ~width:w = List.init w (fun _ -> Tseitin.fresh ctx)

let sign_extend vec ~width:w =
  let current = List.length vec in
  if w <= current then vec
  else
    let sign = List.nth vec (current - 1) in
    vec @ List.init (w - current) (fun _ -> sign)

(* Full adder over literals. *)
let full_adder ctx a b carry_in =
  let sum = Tseitin.mk_xor ctx (Tseitin.mk_xor ctx a b) carry_in in
  let carry_out =
    Tseitin.mk_or ctx
      [ Tseitin.mk_and ctx [ a; b ];
        Tseitin.mk_and ctx [ a; carry_in ];
        Tseitin.mk_and ctx [ b; carry_in ] ]
  in
  (sum, carry_out)

(* Ripple-carry addition of equal-width vectors, producing [w+1] bits:
   both operands are sign-extended one step so the result is exact. *)
let add ctx a b =
  let w = max (width a) (width b) + 1 in
  let a = sign_extend a ~width:w and b = sign_extend b ~width:w in
  let rec ripple acc carry = function
    | [], [] -> List.rev acc
    | bit_a :: rest_a, bit_b :: rest_b ->
      let sum, carry' = full_adder ctx bit_a bit_b carry in
      ripple (sum :: acc) carry' (rest_a, rest_b)
    | _ -> assert false
  in
  ripple [] (Tseitin.false_lit ctx) (a, b)

let neg ctx a =
  (* -a = ~a + 1, computed at width+1 to accommodate -min_int. *)
  let w = width a + 1 in
  let a = sign_extend a ~width:w in
  let inverted = List.map Tseitin.mk_not a in
  let rec increment acc carry = function
    | [] -> List.rev acc
    | bit :: rest ->
      let sum = Tseitin.mk_xor ctx bit carry in
      let carry' = Tseitin.mk_and ctx [ bit; carry ] in
      increment (sum :: acc) carry' rest
  in
  increment [] (Tseitin.true_lit ctx) inverted

let sub ctx a b = add ctx a (neg ctx b)

(* Shift-add signed multiplication: sign-extend both operands to the
   full result width, add the partial products, truncate. *)
let mul ctx a b =
  let w = width a + width b in
  let a = sign_extend a ~width:w and b = sign_extend b ~width:w in
  let ff = Tseitin.false_lit ctx in
  let partial i bit_a =
    (* (a_i ? b : 0) << i, truncated to w bits *)
    let shifted = List.init w (fun _ -> ff) in
    let rec place idx acc = function
      | [] -> List.rev acc
      | bit_b :: rest ->
        if idx >= w then List.rev acc
        else place (idx + 1) (Tseitin.mk_and ctx [ bit_a; bit_b ] :: acc) rest
    in
    let row = place i [] b in
    List.filteri (fun idx _ -> idx < i) shifted @ row
  in
  let rows = List.mapi partial a in
  let truncate vec = List.filteri (fun idx _ -> idx < w) vec in
  match rows with
  | [] -> invalid_arg "Bitvec.mul: empty vector"
  | first :: rest ->
    List.fold_left (fun acc row -> truncate (add ctx acc row)) first rest

let eq ctx a b =
  let w = max (width a) (width b) in
  let a = sign_extend a ~width:w and b = sign_extend b ~width:w in
  Tseitin.mk_and ctx (List.map2 (fun x y -> Tseitin.mk_iff ctx x y) a b)

(* a < b iff (a - b) is negative; the subtraction is exact because
   [sub] widens. *)
let lt ctx a b =
  let difference = sub ctx a b in
  List.nth difference (width difference - 1)

let le ctx a b = Tseitin.mk_not (lt ctx b a)

let decode model vec =
  let w = List.length vec in
  let magnitude =
    List.fold_left
      (fun (acc, i) lit ->
         let bit = if Tseitin.lit_value model lit then 1 lsl i else 0 in
         (acc + bit, i + 1))
      (0, 0) vec
    |> fst
  in
  (* Interpret as two's complement. *)
  if magnitude land (1 lsl (w - 1)) <> 0 then magnitude - (1 lsl w)
  else magnitude
