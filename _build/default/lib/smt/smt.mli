(** A small SMT solver for bounded-integer (non)linear arithmetic,
    implemented by bit-blasting onto the CDCL SAT solver — the role
    Yices 2 plays in the paper's time-abstraction step (Sec. IV-E),
    which explicitly names bit-blasting as the decision strategy.

    Terms denote integers; every variable carries finite bounds, so
    formulas are effectively propositional.  Multiplication of two
    variables is supported (the paper's constraint system is nonlinear
    of degree 2: [θi = θ'i × d + Δi]). *)

type ctx
type term

val create : unit -> ctx

val const : ctx -> int -> term
val var : ctx -> lo:int -> hi:int -> term
(** Fresh integer variable constrained to [[lo, hi]].  Raises
    [Invalid_argument] if [lo > hi]. *)

val add : ctx -> term -> term -> term
val sub : ctx -> term -> term -> term
val mul : ctx -> term -> term -> term
val neg : ctx -> term -> term
val scale : ctx -> int -> term -> term
val sum : ctx -> term list -> term

(** {1 Atoms and assertions} *)

type atom

val eq : ctx -> term -> term -> atom
val le : ctx -> term -> term -> atom
val lt : ctx -> term -> term -> atom
val ge : ctx -> term -> term -> atom
val gt : ctx -> term -> term -> atom
val atom_not : atom -> atom
val atom_or : ctx -> atom list -> atom
val atom_and : ctx -> atom list -> atom

val assert_atom : ctx -> atom -> unit

(** {1 Solving} *)

type model

val value : model -> term -> int
(** Value of a term in the model. *)

val solve : ctx -> model option
(** [None] when the asserted atoms are unsatisfiable. *)

val minimize : ctx -> term -> (int * model) option
(** [minimize ctx obj] finds the least value of [obj] under the current
    assertions (binary search over SAT calls with assumption literals).
    Does not permanently constrain the context. *)

val minimize_lex : ctx -> term list -> (int list * model) option
(** Lexicographic minimization: earlier objectives dominate.  Each
    optimum found is asserted before optimizing the next objective, so
    this {e does} constrain the context (mirrors the paper's reduction
    of the two-objective problem to a single-objective one with the
    primary optimum pinned). *)

val stats : ctx -> int * int
(** [(sat_variables, sat_clauses)] — for the evaluation tables. *)
