(** Two's-complement bit-vector circuits over a {!Speccc_sat.Tseitin}
    context.

    A bit vector is a list of literals, least-significant bit first;
    the most significant bit is the sign.  All operations return
    freshly encoded vectors; widths are managed explicitly
    (sign-extension happens inside binary operations). *)

open Speccc_sat

type t = Tseitin.lit list
(** LSB first; the last literal is the sign bit.  Never empty. *)

val width : t -> int

val of_int : Tseitin.t -> width:int -> int -> t
(** Constant vector; raises [Invalid_argument] if the value does not
    fit in [width] two's-complement bits. *)

val fresh : Tseitin.t -> width:int -> t
(** Vector of fresh unconstrained variables. *)

val width_for : int -> int -> int
(** [width_for lo hi] is the least two's-complement width holding every
    integer in [[lo, hi]]. *)

val sign_extend : t -> width:int -> t

val add : Tseitin.t -> t -> t -> t
(** Sum, one bit wider than the wider operand (never overflows). *)

val neg : Tseitin.t -> t -> t
(** Two's-complement negation, one bit wider (so [neg min_int] fits). *)

val sub : Tseitin.t -> t -> t -> t

val mul : Tseitin.t -> t -> t -> t
(** Product, width = sum of operand widths. *)

val eq : Tseitin.t -> t -> t -> Tseitin.lit
val le : Tseitin.t -> t -> t -> Tseitin.lit
val lt : Tseitin.t -> t -> t -> Tseitin.lit

val decode : bool array -> t -> int
(** Read the vector's signed value from a SAT model. *)
