(** The SpecCC pipeline (Fig. 1): natural-language requirements are
    translated to LTL (stage 1, with semantic reasoning and time
    abstraction), partitioned into inputs/outputs, and checked for
    consistency by LTL synthesis (stage 2).  Stage 3 — refinement — is
    provided by {!Localize} and {!Refine}. *)

type options = {
  translate : Speccc_translate.Translate.config;
  time_budget : int option;
      (** error budget [B] for the abstraction; [None] = GCD only *)
  use_smt_abstraction : bool;
      (** true: solve the optimization by bit-blasting (the paper's
          route); false: analytic divisor search *)
  engine : Speccc_synthesis.Realizability.engine;
  lookahead : int;
  bound : int;
}

val default_options : unit -> options

type stage_times = {
  translation_s : float;
  abstraction_s : float;
  partition_s : float;
  synthesis_s : float;
}

type outcome = {
  requirements : Speccc_translate.Translate.requirement list;
  formulas : Speccc_logic.Ltl.t list;
      (** after time abstraction, in requirement order *)
  time_solution : Speccc_timeabs.Timeabs.solution option;
  partition : Speccc_partition.Partition.analysis;
  report : Speccc_synthesis.Realizability.report;
  times : stage_times;
}

val run : ?options:options -> string list -> outcome
(** Full pipeline from requirement sentences. *)

val run_document : ?options:options -> Document.t -> outcome
(** Like {!run}, but items whose identifier marks them as environment
    assumptions ({!Document.is_assumption}) become the antecedent of
    the realizability check ([∧A → ∧G]) instead of system obligations.
    Translation, time abstraction and partitioning still treat the
    whole document uniformly, so assumptions share the proposition
    space.  [outcome.formulas] lists every formula in document
    order. *)

val check_formulas :
  ?options:options ->
  ?partition:Speccc_partition.Partition.t ->
  Speccc_logic.Ltl.t list ->
  Speccc_partition.Partition.t * Speccc_synthesis.Realizability.report
(** Stage 2 only: partition (unless given) and synthesis over formulas
    that are already in LTL.  Used by the localization loop and by
    specifications authored directly in LTL. *)

val pp_outcome : Format.formatter -> outcome -> unit
