lib/core/refine.ml: Format List Localize Ltl Partition Speccc_logic Speccc_partition String
