lib/core/localize.mli: Format Speccc_logic
