lib/core/pipeline.mli: Document Format Speccc_logic Speccc_partition Speccc_synthesis Speccc_timeabs Speccc_translate
