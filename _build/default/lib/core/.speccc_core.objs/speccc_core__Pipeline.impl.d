lib/core/pipeline.ml: Document Format List Ltl Partition Realizability Speccc_logic Speccc_partition Speccc_synthesis Speccc_timeabs Speccc_translate Timeabs Translate Unix
