lib/core/document.ml: Format List Printf String
