lib/core/localize.ml: Array Format Fun List Ltl Set Speccc_logic String
