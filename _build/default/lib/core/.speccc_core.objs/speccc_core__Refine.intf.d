lib/core/refine.mli: Localize Speccc_logic Speccc_partition
