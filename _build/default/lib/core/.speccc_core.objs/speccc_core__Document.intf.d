lib/core/document.mli: Format
