open Speccc_logic

type result = {
  culprit : int;
  consistent_prefix : int list;
  relevant : int list;
  partners : int list;
}

module String_set = Set.Make (String)

let props_set formula = String_set.of_list (Ltl.props formula)

let shares_props a b =
  not (String_set.is_empty (String_set.inter (props_set a) (props_set b)))

(* Minimal subset of [candidates] (indices into [formulas]) that is
   inconsistent together with the culprit: drop candidates one at a
   time, keeping the set inconsistent. *)
let shrink_partners ~check formulas culprit candidates =
  let formula_of i = List.nth formulas i in
  let inconsistent indices =
    not (check (formula_of culprit :: List.map formula_of indices))
  in
  if not (inconsistent candidates) then
    (* The culprit only conflicts with the full context; keep all. *)
    candidates
  else
    let rec minimize kept = function
      | [] -> List.rev kept
      | index :: rest ->
        if inconsistent (List.rev_append kept rest) then
          (* droppable *)
          minimize kept rest
        else minimize (index :: kept) rest
    in
    minimize [] candidates

let run ~check formulas =
  let formulas_array = Array.of_list formulas in
  if check formulas then None
  else begin
    (* Incremental growth: add requirements in order while the subset
       stays consistent. *)
    let rec grow accepted index =
      if index >= Array.length formulas_array then None
      else
        let subset =
          List.map (fun i -> formulas_array.(i)) (List.rev accepted)
          @ [ formulas_array.(index) ]
        in
        if check subset then grow (index :: accepted) (index + 1)
        else Some (List.rev accepted, index)
    in
    match grow [] 0 with
    | None ->
      (* Each prefix was consistent, yet the whole set is not: numeric
         instability cannot happen with a deterministic checker, but a
         non-monotone check (bound effects) can land here; report the
         last requirement as culprit. *)
      let last = Array.length formulas_array - 1 in
      Some
        {
          culprit = last;
          consistent_prefix = List.init last Fun.id;
          relevant = [];
          partners = [];
        }
    | Some (prefix, culprit) ->
      let culprit_formula = formulas_array.(culprit) in
      let relevant =
        List.filter
          (fun i -> shares_props formulas_array.(i) culprit_formula)
          prefix
      in
      let partners = shrink_partners ~check formulas culprit relevant in
      Some { culprit; consistent_prefix = prefix; relevant; partners }
  end

let pp ppf result =
  let show = function
    | [] -> "(none)"
    | l -> String.concat ", " (List.map string_of_int l)
  in
  Format.fprintf ppf
    "@[<v>culprit: requirement %d@,consistent prefix: %s@,relevant: \
     %s@,minimal partners: %s@]"
    result.culprit
    (show result.consistent_prefix)
    (show result.relevant)
    (show result.partners)
