lib/automata/nbw.ml: Array Format Hashtbl List Ltl Nnf Printf Queue Set Speccc_logic String Trace
