lib/automata/nbw.mli: Format Speccc_logic
