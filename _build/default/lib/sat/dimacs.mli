(** DIMACS CNF reading and writing (for interoperability and for
    debugging the solver against external tools). *)

val parse : string -> int * int list list
(** [parse text] returns [(num_vars, clauses)].  Raises [Failure] on
    malformed input. *)

val print : Format.formatter -> nvars:int -> int list list -> unit
