type lit = int

type gate_key =
  | Key_and of int list
  | Key_or of int list
  | Key_xor of int * int

type t = {
  sat : Sat.t;
  constant_true : lit;
  cache : (gate_key, lit) Hashtbl.t;
}

let create sat =
  let v = Sat.new_var sat in
  Sat.add_clause sat [ v ];
  { sat; constant_true = v; cache = Hashtbl.create 256 }

let solver t = t.sat
let true_lit t = t.constant_true
let false_lit t = -t.constant_true
let fresh t = Sat.new_var t.sat
let mk_not lit = -lit

let lit_value model lit =
  let v = model.(abs lit) in
  if lit > 0 then v else not v

let cached t key build =
  match Hashtbl.find_opt t.cache key with
  | Some lit -> lit
  | None ->
    let lit = build () in
    Hashtbl.add t.cache key lit;
    lit

let mk_and t inputs =
  let inputs = List.sort_uniq compare inputs in
  if List.exists (fun l -> l = false_lit t) inputs
  || List.exists (fun l -> List.mem (-l) inputs) inputs
  then false_lit t
  else
    match List.filter (fun l -> l <> true_lit t) inputs with
    | [] -> true_lit t
    | [ single ] -> single
    | inputs ->
      cached t (Key_and inputs) (fun () ->
          let out = fresh t in
          List.iter (fun l -> Sat.add_clause t.sat [ -out; l ]) inputs;
          Sat.add_clause t.sat (out :: List.map (fun l -> -l) inputs);
          out)

let mk_or t inputs =
  let inputs = List.sort_uniq compare inputs in
  if List.exists (fun l -> l = true_lit t) inputs
  || List.exists (fun l -> List.mem (-l) inputs) inputs
  then true_lit t
  else
    match List.filter (fun l -> l <> false_lit t) inputs with
    | [] -> false_lit t
    | [ single ] -> single
    | inputs ->
      cached t (Key_or inputs) (fun () ->
          let out = fresh t in
          List.iter (fun l -> Sat.add_clause t.sat [ out; -l ]) inputs;
          Sat.add_clause t.sat (-out :: inputs);
          out)

let mk_xor t a b =
  if a = true_lit t then -b
  else if a = false_lit t then b
  else if b = true_lit t then -a
  else if b = false_lit t then a
  else if a = b then false_lit t
  else if a = -b then true_lit t
  else
    let a, b = if a < b then a, b else b, a in
    cached t (Key_xor (a, b)) (fun () ->
        let out = fresh t in
        Sat.add_clause t.sat [ -out; a; b ];
        Sat.add_clause t.sat [ -out; -a; -b ];
        Sat.add_clause t.sat [ out; -a; b ];
        Sat.add_clause t.sat [ out; a; -b ];
        out)

let mk_iff t a b = mk_not (mk_xor t a b)
let mk_implies t a b = mk_or t [ -a; b ]
let mk_ite t c a b = mk_or t [ mk_and t [ c; a ]; mk_and t [ -c; b ] ]
let assert_lit t lit = Sat.add_clause t.sat [ lit ]
