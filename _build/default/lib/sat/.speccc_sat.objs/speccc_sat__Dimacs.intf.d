lib/sat/dimacs.mli: Format
