lib/sat/tseitin.mli: Sat
