lib/sat/sat.mli:
