lib/sat/dimacs.ml: Format List String
