lib/sat/tseitin.ml: Array Hashtbl List Sat
