(** Structural (Tseitin) encoding of boolean circuits into a SAT
    solver.

    Gates return literals of the underlying {!Sat.t}; negation is free
    (literal sign).  A distinguished always-true variable represents
    the constants.  Common gates are cached so that re-encoding the
    same subcircuit reuses the same literal. *)

type t
type lit = int

val create : Sat.t -> t
val solver : t -> Sat.t

val true_lit : t -> lit
val false_lit : t -> lit
val fresh : t -> lit
(** A fresh unconstrained variable (positive literal). *)

val mk_not : lit -> lit
val mk_and : t -> lit list -> lit
val mk_or : t -> lit list -> lit
val mk_xor : t -> lit -> lit -> lit
val mk_iff : t -> lit -> lit -> lit
val mk_implies : t -> lit -> lit -> lit
val mk_ite : t -> lit -> lit -> lit -> lit
(** [mk_ite t c a b] = if [c] then [a] else [b]. *)

val assert_lit : t -> lit -> unit
(** Constrain the literal to hold (adds a unit clause). *)

val lit_value : bool array -> lit -> bool
(** Read a literal's value from a {!Sat.Sat} model. *)
