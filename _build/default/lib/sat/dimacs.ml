let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "p"; "cnf"; vars; _clauses ] ->
        (try nvars := int_of_string vars
         with Failure _ -> failwith "Dimacs.parse: bad header")
      | _ -> failwith "Dimacs.parse: bad header"
    end
    else
      String.split_on_char ' ' line
      |> List.filter (( <> ) "")
      |> List.iter (fun token ->
          match int_of_string_opt token with
          | None -> failwith ("Dimacs.parse: bad literal " ^ token)
          | Some 0 ->
            clauses := List.rev !current :: !clauses;
            current := []
          | Some lit -> current := lit :: !current)
  in
  List.iter handle_line lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  (!nvars, List.rev !clauses)

let print ppf ~nvars clauses =
  Format.fprintf ppf "p cnf %d %d@\n" nvars (List.length clauses);
  List.iter
    (fun clause ->
       List.iter (fun lit -> Format.fprintf ppf "%d " lit) clause;
       Format.fprintf ppf "0@\n")
    clauses
