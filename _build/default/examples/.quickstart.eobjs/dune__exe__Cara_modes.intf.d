examples/cara_modes.mli:
