examples/quickstart.ml: Format List Pipeline Speccc_core Speccc_logic Speccc_partition Speccc_translate
