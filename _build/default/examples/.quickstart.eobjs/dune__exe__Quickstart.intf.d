examples/quickstart.mli:
