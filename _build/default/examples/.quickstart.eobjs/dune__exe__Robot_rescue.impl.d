examples/robot_rescue.ml: Format List Ltl Ltl_print Mealy Realizability Robot Speccc_casestudies Speccc_logic Speccc_synthesis String
