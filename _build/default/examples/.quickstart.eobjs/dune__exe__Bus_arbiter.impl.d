examples/bus_arbiter.ml: Arbiter Codegen Document Format List Mealy Pipeline Realizability Speccc_casestudies Speccc_core Speccc_synthesis String
