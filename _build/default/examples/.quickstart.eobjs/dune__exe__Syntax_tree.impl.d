examples/syntax_tree.ml: Dependency Format Lexicon List Parser Speccc_logic Speccc_nlp Speccc_translate String Syntax
