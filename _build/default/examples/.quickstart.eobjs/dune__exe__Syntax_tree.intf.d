examples/syntax_tree.mli:
