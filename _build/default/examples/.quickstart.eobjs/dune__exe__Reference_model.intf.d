examples/reference_model.mli:
