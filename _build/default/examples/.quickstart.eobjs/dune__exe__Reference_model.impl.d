examples/reference_model.ml: Format List Mealy Pipeline Realizability Speccc_core Speccc_synthesis String Testgen Verify
