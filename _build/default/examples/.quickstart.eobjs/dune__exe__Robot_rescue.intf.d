examples/robot_rescue.mli:
