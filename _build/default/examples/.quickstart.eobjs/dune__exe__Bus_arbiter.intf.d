examples/bus_arbiter.mli:
