(* Reproduces Figure 2 of the paper: the syntax tree of Req-17,
   "When auto-control mode is entered, eventually the cuff will be
   inflated.", plus the dependency relations Algorithm 1 consumes.

   Run with:  dune exec examples/syntax_tree.exe *)

open Speccc_nlp

let () =
  let lexicon = Lexicon.default () in
  let text =
    "When auto-control mode is entered, eventually the cuff will be \
     inflated."
  in
  Format.printf "sentence: %s@.@." text;
  let tree = Parser.sentence lexicon text in
  Format.printf "%a@.@." Syntax.pp_sentence tree;

  (* The two atomic propositions of the paper's walkthrough. *)
  let config = Speccc_translate.Translate.default_config () in
  let formula = Speccc_translate.Translate.formula_of_sentence config text in
  Format.printf "formula: %s@."
    (Speccc_logic.Ltl_print.to_string
       ~syntax:Speccc_logic.Ltl_print.Paper formula);
  Format.printf "propositions: %s@.@."
    (String.concat ", " (Speccc_logic.Ltl.props formula));

  (* Dependency extraction on a requirement with antonym candidates. *)
  let sentences =
    List.map (Parser.sentence lexicon)
      [
        "If pulse wave or arterial line is available, and cuff is \
         selected, corroboration is triggered.";
        "If pulse wave and arterial line are unavailable, and cuff is \
         selected, and blood pressure is not valid, next manual mode is \
         started.";
      ]
  in
  Format.printf "dependency relations (subject -> antonym candidates):@.";
  List.iter
    (fun r ->
       Format.printf "  %s -> {%s}@." r.Dependency.subject
         (String.concat ", " r.Dependency.dependents))
    (Dependency.of_sentences sentences)
