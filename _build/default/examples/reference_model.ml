(* The "reference model / test-case generator" workflow from the
   paper's introduction: a consistent specification yields a
   controller that serves as the reference model; the reference model
   is (a) exactly verified against every requirement and (b) compiled
   into a conformance test suite that catches a buggy implementation.

   Run with:  dune exec examples/reference_model.exe *)

open Speccc_core
open Speccc_synthesis

let () =
  let requirements = [
    "If the start button is pressed, the pump is started.";
    "If the pump is lost, the alarm is triggered in 2 seconds.";
    "When the pump is started, eventually the cuff is inflated.";
  ]
  in
  Format.printf "=== specification ===@.";
  List.iteri (fun i t -> Format.printf "  [%d] %s@." i t) requirements;

  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let outcome = Pipeline.run ~options requirements in
  let machine =
    match outcome.Pipeline.report.Realizability.controller with
    | Some machine -> machine
    | None -> failwith "specification should be consistent"
  in
  Format.printf "@.=== reference model ===@.";
  Format.printf "controller: %d states over inputs {%s} / outputs {%s}@."
    machine.Mealy.num_states
    (String.concat ", " machine.Mealy.inputs)
    (String.concat ", " machine.Mealy.outputs);

  (* (a) exact verification, requirement by requirement *)
  Format.printf "@.=== exact verification (model checking) ===@.";
  List.iteri
    (fun i (_, verdict) ->
       Format.printf "  requirement %d: %s@." i
         (match verdict with
          | Verify.Holds -> "HOLDS"
          | Verify.Counterexample _ -> "VIOLATED"))
    (Verify.check_all machine outcome.Pipeline.formulas);

  (* (b) conformance test generation *)
  Format.printf "@.=== conformance test suite ===@.";
  let suite = Testgen.transition_cover machine in
  let covered, total = Testgen.coverage machine suite in
  Format.printf "%d tests, covering %d/%d transitions@."
    (List.length suite) covered total;
  (match suite with
   | test :: _ ->
     Format.printf "first test:@.%a" Testgen.pp_test_case test
   | [] -> ());

  (* run the suite against a buggy implementation: it never raises the
     alarm *)
  let buggy = {
    machine with
    Mealy.step =
      (fun state imask ->
         let omask, next = machine.Mealy.step state imask in
         let alarm_bit =
           let rec index i = function
             | [] -> None
             | p :: rest ->
               if p = "trigger_alarm" then Some i else index (i + 1) rest
           in
           index 0 machine.Mealy.outputs
         in
         match alarm_bit with
         | Some bit -> (omask land lnot (1 lsl bit), next)
         | None -> (omask, next));
  }
  in
  let failures =
    List.filter (fun test -> Testgen.run_against buggy test <> None) suite
  in
  Format.printf
    "@.=== mutation check ===@.an implementation that never raises the \
     alarm fails %d/%d tests@."
    (List.length failures) (List.length suite)
