(* Two inconsistency demos.

   1. Footnote 1 of the paper: "the output should always be the same
      as the input 3 time ticks from now" — G (output <-> XXX input) —
      is well-formed but unrealizable: an implementation would need
      clairvoyance.  The dual game proves it.

   2. A seeded CARA variant whose two conflicting requirements are not
      neighbours; the Sec. V-B localization finds the pair and the
      refinement loop reports what to do.

   Run with:  dune exec examples/unrealizable_clairvoyance.exe *)

open Speccc_logic
open Speccc_core
open Speccc_synthesis

let verdict_string = function
  | Realizability.Consistent -> "consistent (controller exists)"
  | Realizability.Inconsistent -> "INCONSISTENT (provably unrealizable)"
  | Realizability.Inconclusive why -> "inconclusive: " ^ why

let () =
  Format.printf "=== 1. the clairvoyance example (footnote 1) ===@.";
  let clairvoyance = Ltl_parse.formula "G (output <-> X X X input)" in
  Format.printf "spec: %s@."
    (Ltl_print.to_string ~syntax:Ltl_print.Paper clairvoyance);
  let report =
    Realizability.check ~engine:Realizability.Explicit
      ~inputs:[ "input" ] ~outputs:[ "output" ] [ clairvoyance ]
  in
  Format.printf "verdict: %s (%.3fs)@.@."
    (verdict_string report.Realizability.verdict)
    report.Realizability.wall_time;

  Format.printf "=== 2. localization on a seeded CARA variant ===@.";
  (* Requirements 0 and 3 conflict; 1 and 2 are innocent bystanders, so
     the culprit pair is not neighbouring — the case the paper's
     incremental strategy is for. *)
  let texts = [
    "If the cuff is lost, the alarm is triggered.";
    "If manual mode is running, corroboration is triggered.";
    "If the pump is lost, override selection is provided.";
    "If the cuff is lost, the alarm is not triggered.";
  ]
  in
  List.iteri (fun i t -> Format.printf "  [%d] %s@." i t) texts;
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Explicit }
  in
  let outcome = Pipeline.run ~options texts in
  Format.printf "@.whole specification: %s@."
    (verdict_string outcome.Pipeline.report.Realizability.verdict);

  let check_subset formulas =
    let _, report = Pipeline.check_formulas ~options formulas in
    report.Realizability.verdict = Realizability.Consistent
  in
  let check_partition partition =
    let _, report =
      Pipeline.check_formulas ~options ~partition outcome.Pipeline.formulas
    in
    report.Realizability.verdict = Realizability.Consistent
  in
  let suggestion =
    Refine.suggest ~check_subset ~check_partition
      ~partition:outcome.Pipeline.partition.Speccc_partition.Partition.partition
      outcome.Pipeline.formulas
  in
  (match suggestion.Refine.localization with
   | Some localization -> Format.printf "@.%a@." Localize.pp localization
   | None -> ());
  Format.printf "advice: %s@." suggestion.Refine.advice
