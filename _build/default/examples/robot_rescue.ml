(* The rescue-robot case study: generate the scenario, check
   consistency, extract the controller and drive it.

   Run with:  dune exec examples/robot_rescue.exe *)

open Speccc_logic
open Speccc_synthesis
open Speccc_casestudies

let () =
  let scenario = Robot.scenario ~robots:1 ~rooms:4 in
  Format.printf "=== rescue robot: %d robot(s), %d rooms, %d formulas ===@.@."
    scenario.Robot.robots scenario.Robot.rooms
    (List.length scenario.Robot.formulas);

  List.iteri
    (fun i f ->
       Format.printf "  [%d] %s@." i (Ltl_print.to_string f))
    scenario.Robot.formulas;

  let report =
    Realizability.check ~engine:Realizability.Symbolic
      ~inputs:scenario.Robot.inputs ~outputs:scenario.Robot.outputs
      scenario.Robot.formulas
  in
  Format.printf "@.verdict: %s (%.3fs, %s)@."
    (match report.Realizability.verdict with
     | Realizability.Consistent -> "consistent — controller synthesized"
     | Realizability.Inconsistent -> "inconsistent"
     | Realizability.Inconclusive why -> "inconclusive: " ^ why)
    report.Realizability.wall_time report.Realizability.detail;

  (* Drive the controller: an injured person appears at step 2; watch
     the robot's room assignment and the carry flag. *)
  match report.Realizability.controller with
  | None -> Format.printf "no explicit controller available@."
  | Some machine ->
    Format.printf "@.controller: %d states; simulating 8 steps:@."
      machine.Mealy.num_states;
    let letters =
      Mealy.run machine
        [
          [ ("injured_seen", false); ("at_medic", false) ];
          [ ("injured_seen", false); ("at_medic", false) ];
          [ ("injured_seen", true); ("at_medic", false) ];
          [ ("injured_seen", false); ("at_medic", false) ];
          [ ("injured_seen", false); ("at_medic", true) ];
          [ ("injured_seen", false); ("at_medic", false) ];
          [ ("injured_seen", false); ("at_medic", false) ];
          [ ("injured_seen", false); ("at_medic", false) ];
        ]
    in
    List.iteri
      (fun step letter ->
         let trues =
           List.filter_map (fun (p, b) -> if b then Some p else None) letter
         in
         Format.printf "  step %d: {%s}@." step (String.concat ", " trues))
      letters;
    (* Validate against the specification's exact semantics. *)
    let spec = Ltl.conj_list scenario.Robot.formulas in
    Format.printf "@.Monte-Carlo check against the LTL semantics: %s@."
      (if Mealy.satisfies machine spec ~trials:50 ~seed:11 then "PASS"
       else "FAIL")
