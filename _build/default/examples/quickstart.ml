(* Quickstart: one requirement in, a consistency verdict out.

   Run with:  dune exec examples/quickstart.exe *)

open Speccc_core

let () =
  let requirements = [
    "If the start button is pressed, the pump is started.";
    "If the pump is lost, the alarm is triggered in 2 seconds.";
    "When the pump is started, eventually the cuff is inflated.";
  ]
  in
  (* The whole pipeline — parse the structured English, reason over
     antonyms, translate to LTL, abstract time, partition the
     propositions, and check realizability — is one call: *)
  let outcome = Pipeline.run requirements in

  (* Show the translated formulas ... *)
  List.iter
    (fun r ->
       Format.printf "%% %s@.  %s@."
         r.Speccc_translate.Translate.text
         (Speccc_logic.Ltl_print.to_string ~syntax:Speccc_logic.Ltl_print.Paper
            r.Speccc_translate.Translate.formula))
    outcome.Pipeline.requirements;

  (* ... the derived input/output partition ... *)
  Format.printf "@.%a@.@."
    Speccc_partition.Partition.pp
    outcome.Pipeline.partition.Speccc_partition.Partition.partition;

  (* ... and the verdict. *)
  Format.printf "%a@." Pipeline.pp_outcome outcome
