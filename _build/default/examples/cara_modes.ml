(* The CARA working-mode case study, end to end (Sec. III + appendix):
   all 29 appendix requirements are translated — reproducing the
   appendix LTL — time-abstracted with the Sec. IV-E optimization
   (Θ = {3, 60, 180}, B = 5 ⇒ d = 60), partitioned, and checked for
   consistency.

   Run with:  dune exec examples/cara_modes.exe *)

open Speccc_core
open Speccc_casestudies

let () =
  Format.printf "=== CARA working modes: %d requirements ===@.@."
    (List.length Cara.working_modes);

  let outcome = Pipeline.run Cara.working_mode_texts in

  (* Stage 1: translation (with semantic reasoning).  Print a few
     requirements next to their formulas, appendix-style. *)
  Format.printf "--- sample translations ---@.";
  List.iteri
    (fun i r ->
       if i < 6 then
         Format.printf "%s@.  %s@."
           (fst (List.nth Cara.working_modes i))
           (Speccc_logic.Ltl_print.to_string
              ~syntax:Speccc_logic.Ltl_print.Paper
              r.Speccc_translate.Translate.formula))
    outcome.Pipeline.requirements;

  (* Semantic reasoning report (Sec. IV-D): which antonym pairs were
     discovered. *)
  Format.printf "@.--- antonym pairs discovered (Algorithm 1) ---@.";
  List.iter
    (fun analysis ->
       let blues =
         List.filter
           (fun w -> w.Speccc_reasoning.Semantic.color
                     = Speccc_reasoning.Semantic.Blue)
           analysis.Speccc_reasoning.Semantic.words
       in
       if blues <> [] then
         Format.printf "  %s: %s@."
           analysis.Speccc_reasoning.Semantic.subject
           (String.concat ", "
              (List.map (fun w -> w.Speccc_reasoning.Semantic.word) blues)))
    (Speccc_translate.Translate.specification
       (Speccc_translate.Translate.default_config ())
       Cara.working_mode_texts)
      .Speccc_translate.Translate.analyses;

  (* Stage 1': time abstraction. *)
  Format.printf "@.--- time abstraction (Sec. IV-E) ---@.";
  (match outcome.Pipeline.time_solution with
   | Some solution ->
     Format.printf "%a@." Speccc_timeabs.Timeabs.pp_solution solution
   | None -> Format.printf "no timing constraints@.");

  (* Stage 1'': partition. *)
  Format.printf "@.--- input/output partition (Sec. IV-F) ---@.";
  Format.printf "%a@."
    Speccc_partition.Partition.pp
    outcome.Pipeline.partition.Speccc_partition.Partition.partition;

  (* Stage 2: consistency via synthesis. *)
  Format.printf "@.--- consistency (Sec. V) ---@.";
  Format.printf "%a@." Pipeline.pp_outcome outcome
