(* Tests for the differential/metamorphic fuzzing subsystem: PRNG
   determinism, generated documents staying inside the grammar, the
   naive reference evaluator against Trace's fixpoint semantics, a
   clean fuzz window on the fixed code, the buggy-timeabs drill (the
   oracle must catch and shrink the pre-fix θ' = 0 collapse), corpus
   round-trips and corpus replay. *)

open Speccc_logic
open Speccc_diffcheck
module Timeabs = Speccc_timeabs.Timeabs
module Translate = Speccc_translate.Translate

(* --- PRNG --- *)

let test_prng_deterministic () =
  let draw seed = List.init 100 (fun _ -> Prng.int (Prng.make seed) 1000) in
  ignore (draw 0);
  let a = Prng.make 7 and b = Prng.make 7 in
  let xs = List.init 100 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Prng.make 8 in
  let zs = List.init 100 (fun _ -> Prng.int c 1_000_000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_prng_bounds () =
  (* Regression: the first projection kept 63 bits, overflowing
     OCaml's native int and returning negative values. *)
  let rng = Prng.make 123 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 7 in
    if v < 0 || v >= 7 then
      Alcotest.failf "Prng.int out of bounds: %d" v;
    let r = Prng.range rng 5 9 in
    if r < 5 || r > 9 then Alcotest.failf "Prng.range out of bounds: %d" r
  done

let test_prng_split_stability () =
  (* Forked streams decouple cases: drawing more from one fork must
     not change the next fork's draws. *)
  let master1 = Prng.make 42 in
  let fork1 = Prng.split master1 in
  ignore (Prng.int fork1 100);
  let second1 = Prng.int (Prng.split master1) 1_000_000 in
  let master2 = Prng.make 42 in
  let fork2 = Prng.split master2 in
  ignore (Prng.int fork2 100);
  ignore (Prng.int fork2 100);
  ignore (Prng.bool fork2);
  let second2 = Prng.int (Prng.split master2) 1_000_000 in
  Alcotest.(check int) "second fork unaffected" second1 second2

(* --- generators --- *)

let test_generated_docs_parse () =
  let config = Translate.default_config () in
  for seed = 1 to 30 do
    let doc = Gen.doc (Prng.make seed) in
    match Translate.specification config doc with
    | result ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: every sentence translated" seed)
        (List.length doc)
        (List.length result.Translate.requirements)
    | exception Speccc_nlp.Parser.Error msg ->
      Alcotest.failf "seed %d: generated document is ungrammatical: %s\n%s"
        seed msg (String.concat "\n" doc)
  done

let test_generator_deterministic () =
  let gen seed =
    List.init 10 (fun _ -> Gen.case (Prng.split (Prng.make seed)))
  in
  let render cases =
    String.concat "\n---\n" (List.map (Format.asprintf "%a" Case.pp) cases)
  in
  Alcotest.(check string) "same seed, same cases" (render (gen 42))
    (render (gen 42))

(* --- reference evaluator vs Trace --- *)

let prop_names = [ "a"; "b"; "c" ]

let formula_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      if size <= 1 then
        oneof
          [ return Ltl.True; return Ltl.False;
            map Ltl.prop (oneofl prop_names) ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map2 (fun f g -> Ltl.Iff (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Weak_until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Release (f, g)) sub sub;
          ])

let letter_gen =
  let open QCheck2.Gen in
  let entry name = map (fun b -> (name, b)) bool in
  flatten_l (List.map entry prop_names)

let trace_gen =
  let open QCheck2.Gen in
  map2
    (fun prefix loop -> Trace.make ~prefix ~loop)
    (list_size (int_range 0 3) letter_gen)
    (list_size (int_range 1 3) letter_gen)

let prop_refeval_agrees_with_trace =
  QCheck2.Test.make ~count:500
    ~name:"naive unfolded semantics = Trace fixpoint semantics"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) ->
       Array.to_list (Trace.values w f) = Array.to_list (Refeval.values w f)
       && List.for_all
            (fun i -> Trace.holds_at w i f = Refeval.holds_at w i f)
            (List.init (Trace.length w + 3) Fun.id))

let prop_weak_until_release_duals =
  (* targeted at the operators the translator rarely emits *)
  QCheck2.Test.make ~count:300 ~name:"W and R agree across evaluators"
    QCheck2.Gen.(triple formula_gen formula_gen trace_gen)
    (fun (f, g, w) ->
       let wu = Ltl.Weak_until (f, g) and r = Ltl.Release (f, g) in
       Trace.holds w wu = Refeval.holds w wu
       && Trace.holds w r = Refeval.holds w r)

let test_find_model_sound () =
  let f = Ltl_parse.formula "F (a && X !a)" in
  match Refeval.find_model ~props:[ "a" ] ~max_positions:3 f with
  | None -> Alcotest.fail "satisfiable formula, no model found"
  | Some w ->
    Alcotest.(check bool) "model satisfies (trace)" true (Trace.holds w f);
    Alcotest.(check bool) "model satisfies (naive)" true (Refeval.holds w f)

let test_find_model_none_for_unsat () =
  let f = Ltl_parse.formula "a && !a" in
  Alcotest.(check bool) "no model" true
    (Refeval.find_model ~props:[ "a" ] ~max_positions:3 f = None)

(* --- oracles --- *)

let paper_instance =
  Case.Timeabs
    {
      thetas = [ 3; 180; 60 ];
      domains = [ Timeabs.Nonnegative; Timeabs.Nonnegative;
                  Timeabs.Nonnegative ];
      budget = 5;
    }

let test_fixed_timeabs_clean () =
  Alcotest.(check int) "no divergence on the fixed solver" 0
    (List.length (Oracle.check paper_instance))

let test_buggy_timeabs_caught_and_shrunk () =
  (* Re-enabling the θ' = 0 collapse must trip the metamorphic oracle
     on the paper's own instance, and the reproducer must shrink. *)
  match Oracle.check ~buggy_timeabs:true paper_instance with
  | [] -> Alcotest.fail "oracle missed the θ'=0 collapse"
  | first :: _ ->
    Alcotest.(check string) "timeabs oracle fired" "timeabs"
      first.Oracle.oracle;
    let shrunk, divergence =
      Shrink.shrink ~buggy_timeabs:true paper_instance first
    in
    Alcotest.(check string) "shrunk case still diverges" "timeabs"
      divergence.Oracle.oracle;
    Alcotest.(check bool) "reproducer got smaller" true
      (Case.size shrunk < Case.size paper_instance);
    (match shrunk with
     | Case.Timeabs { thetas; _ } ->
       Alcotest.(check bool) "at most two thetas remain" true
         (List.length thetas <= 2)
     | _ -> Alcotest.fail "shrinking changed the case kind")

let test_partition_overlap_case_clean () =
  (* The corpus reproducer for the adjust-overlap bug: the oracle
     expects Invalid_argument, which the fixed adjust now raises. *)
  let case =
    Case.Partition_adjust
      {
        formulas =
          [ Ltl_parse.formula "G (req -> X grant)";
            Ltl_parse.formula "G (grant -> X run)" ];
        to_input = [ "grant" ];
        to_output = [ "grant"; "run" ];
      }
  in
  Alcotest.(check int) "no divergence" 0 (List.length (Oracle.check case))

let test_fuzz_window_clean () =
  let summary = Diffcheck.run ~n:25 ~seed:42 () in
  Alcotest.(check int) "25 cases" 25 summary.Diffcheck.total;
  (match summary.Diffcheck.findings with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "unexpected divergence: %a" Oracle.pp_divergence
       f.Diffcheck.divergence)

let test_fuzz_buggy_window_finds () =
  let summary = Diffcheck.run ~buggy_timeabs:true ~n:60 ~seed:42 () in
  Alcotest.(check bool) "the drill produces findings" true
    (summary.Diffcheck.findings <> []);
  List.iter
    (fun f ->
       Alcotest.(check string) "every finding is a timeabs collapse"
         "timeabs" f.Diffcheck.divergence.Oracle.oracle)
    summary.Diffcheck.findings

(* --- corpus --- *)

let roundtrip case =
  match Corpus.of_string (Corpus.to_string case) with
  | Error msg -> Alcotest.failf "corpus round-trip failed: %s" msg
  | Ok case' ->
    Alcotest.(check string) "round-trip preserves the case"
      (Corpus.to_string case) (Corpus.to_string case')

let test_corpus_roundtrip () =
  roundtrip paper_instance;
  roundtrip
    (Case.Ltl_spec
       {
         inputs = [ "req" ];
         outputs = [ "grant" ];
         formulas =
           [ Ltl_parse.formula "G (req -> X grant)";
             Ltl_parse.formula "F grant" ];
         template = true;
       });
  roundtrip
    (Case.Doc
       [ "The pump shall run."; "If the cuff is available, the alarm \
                                 shall sound." ]);
  roundtrip
    (Case.Partition_adjust
       {
         formulas = [ Ltl_parse.formula "G (a -> b)" ];
         to_input = [ "b" ];
         to_output = [];
       })

let test_corpus_rejects_garbage () =
  (match Corpus.of_string "kind: nonsense\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown kind accepted");
  (match Corpus.of_string "kind: timeabs\nbudget: x\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad budget accepted")

let test_corpus_replay () =
  (* Every persisted regression entry must parse and stay quiet on the
     fixed code. *)
  (* dune runtest runs in _build/default/test (deps put corpus/ there);
     dune exec from the repo root sees test/corpus instead. *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let results = Diffcheck.replay dir in
  Alcotest.(check bool) "corpus entries present" true
    (List.length results >= 4);
  List.iter
    (fun (file, outcome) ->
       match outcome with
       | Error msg -> Alcotest.failf "%s: parse error: %s" file msg
       | Ok [] -> ()
       | Ok (d :: _) ->
         Alcotest.failf "%s: still divergent: %a" file Oracle.pp_divergence d)
    results

let () =
  Alcotest.run "diffcheck"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split stability" `Quick
            test_prng_split_stability;
        ] );
      ( "gen",
        [
          Alcotest.test_case "documents parse" `Quick
            test_generated_docs_parse;
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
        ] );
      ( "refeval",
        [
          QCheck_alcotest.to_alcotest prop_refeval_agrees_with_trace;
          QCheck_alcotest.to_alcotest prop_weak_until_release_duals;
          Alcotest.test_case "find_model sound" `Quick test_find_model_sound;
          Alcotest.test_case "find_model unsat" `Quick
            test_find_model_none_for_unsat;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fixed timeabs clean" `Quick
            test_fixed_timeabs_clean;
          Alcotest.test_case "buggy timeabs caught and shrunk" `Quick
            test_buggy_timeabs_caught_and_shrunk;
          Alcotest.test_case "partition overlap clean" `Quick
            test_partition_overlap_case_clean;
          Alcotest.test_case "fuzz window clean" `Slow test_fuzz_window_clean;
          Alcotest.test_case "buggy fuzz window finds" `Slow
            test_fuzz_buggy_window_finds;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_corpus_rejects_garbage;
          Alcotest.test_case "replay" `Quick test_corpus_replay;
        ] );
    ]
