(* Tests for the LTL library: AST operations, parser/printer
   round-trips, NNF correctness on lasso words, classification and the
   bounded-liveness strengthening. *)

open Speccc_logic

let ltl_testable = Alcotest.testable (Ltl_print.pp ~syntax:Ltl_print.Ascii)
    Ltl.equal

let parse = Ltl_parse.formula

(* --- random formula generation (shared with other suites through
   copy-free usage of QCheck2 generators) --- *)

let prop_names = [ "a"; "b"; "c"; "d" ]

let formula_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      if size <= 1 then
        oneof
          [
            return Ltl.True;
            return Ltl.False;
            map Ltl.prop (oneofl prop_names);
          ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map2 (fun f g -> Ltl.Iff (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Weak_until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Release (f, g)) sub sub;
          ])

let letter_gen =
  let open QCheck2.Gen in
  let entry name = map (fun b -> (name, b)) bool in
  flatten_l (List.map entry prop_names)

let trace_gen =
  let open QCheck2.Gen in
  map2
    (fun prefix loop -> Trace.make ~prefix ~loop)
    (list_size (int_range 0 4) letter_gen)
    (list_size (int_range 1 4) letter_gen)

(* --- AST --- *)

let test_smart_constructors () =
  Alcotest.check ltl_testable "conj true" (Ltl.prop "a")
    (Ltl.conj Ltl.tt (Ltl.prop "a"));
  Alcotest.check ltl_testable "conj false" Ltl.ff
    (Ltl.conj (Ltl.prop "a") Ltl.ff);
  Alcotest.check ltl_testable "double negation" (Ltl.prop "a")
    (Ltl.neg (Ltl.neg (Ltl.prop "a")));
  Alcotest.check ltl_testable "implies false lhs" Ltl.tt
    (Ltl.implies Ltl.ff (Ltl.prop "a"));
  Alcotest.check ltl_testable "until target true" Ltl.tt
    (Ltl.until (Ltl.prop "a") Ltl.tt)

let test_props () =
  let f = parse "G (a -> X (b && !c))" in
  Alcotest.(check (list string)) "props" [ "a"; "b"; "c" ] (Ltl.props f)

let test_next_depth_and_chains () =
  let f = parse "G (!air_ok -> X X X stop)" in
  Alcotest.(check int) "depth 3" 3 (Ltl.next_depth f);
  Alcotest.(check (list int)) "chains [3]" [ 3 ] (Ltl.next_chains f);
  let g = parse "(a -> X X b) && (c -> X d) && X X X X e" in
  Alcotest.(check (list int)) "chains sorted desc" [ 4; 2; 1 ]
    (Ltl.next_chains g);
  Alcotest.(check int) "next_n builds chains" 5
    (Ltl.next_depth (Ltl.next_n 5 (Ltl.prop "p")))

let test_subformulas () =
  let f = parse "a U (b && a)" in
  Alcotest.(check int) "4 distinct subformulas" 4
    (List.length (Ltl.subformulas f))

let test_map_props () =
  let f = parse "G (unavailable_pump -> alarm)" in
  let renamed =
    Ltl.map_props
      (fun p ->
         if p = "unavailable_pump" then Ltl.neg (Ltl.prop "available_pump")
         else Ltl.prop p)
      f
  in
  Alcotest.check ltl_testable "substitution"
    (parse "G (!available_pump -> alarm)")
    renamed

let test_error_paths () =
  (match Ltl.next_n (-1) (Ltl.prop "p") with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative next_n must be rejected");
  (match Trace.make ~prefix:[] ~loop:[] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty loop must be rejected");
  let w = Trace.constant [ ("a", true) ] in
  (match Trace.letter_at w (-1) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative position must be rejected");
  match Speccc_logic.Classify.bound_liveness ~bound:0 (Ltl.prop "p") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 must be rejected"

(* --- parser / printer --- *)

let test_parse_basics () =
  Alcotest.check ltl_testable "precedence and over or"
    (Ltl.Or (Ltl.Prop "a", Ltl.And (Ltl.Prop "b", Ltl.Prop "c")))
    (parse "a || b && c");
  Alcotest.check ltl_testable "implication right assoc"
    (Ltl.Implies (Ltl.Prop "a", Ltl.Implies (Ltl.Prop "b", Ltl.Prop "c")))
    (parse "a -> b -> c");
  Alcotest.check ltl_testable "paper style"
    (Ltl.Always (Ltl.Implies (Ltl.Prop "p", Ltl.Eventually (Ltl.Prop "q"))))
    (parse "[] (p -> <> q)");
  Alcotest.check ltl_testable "unary binds tighter than until"
    (Ltl.Until (Ltl.Always (Ltl.Prop "a"), Ltl.Prop "b"))
    (parse "G a U b");
  Alcotest.check ltl_testable "word operators"
    (parse "!a && b || c")
    (parse "not a and b or c")

let test_parse_errors () =
  let fails input =
    match Ltl_parse.formula_opt input with
    | None -> ()
    | Some _ -> Alcotest.fail (input ^ " should not parse")
  in
  fails "";
  fails "a &&";
  fails "(a";
  fails "a b";
  fails "U a";
  fails "a -> -> b"

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"print-then-parse is identity"
    formula_gen (fun f ->
        (* Smart constructors may simplify during parsing, so compare
           after one normalizing round. *)
        let printed = Ltl_print.to_string f in
        let reparsed = Ltl_parse.formula printed in
        let twice = Ltl_parse.formula (Ltl_print.to_string reparsed) in
        Ltl.equal reparsed twice)

let prop_paper_syntax_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"paper syntax parses back"
    formula_gen (fun f ->
        let printed = Ltl_print.to_string ~syntax:Ltl_print.Paper f in
        match Ltl_parse.formula_opt printed with
        | Some _ -> true
        | None -> false)

(* --- trace semantics --- *)

let letter trues =
  List.map (fun p -> (p, List.mem p trues)) prop_names

let test_trace_basics () =
  let w = Trace.make ~prefix:[ letter [ "a" ] ] ~loop:[ letter [ "b" ] ] in
  Alcotest.(check bool) "a at 0" true (Trace.holds w (parse "a"));
  Alcotest.(check bool) "X b" true (Trace.holds w (parse "X b"));
  Alcotest.(check bool) "G X b" true (Trace.holds w (parse "X G b"));
  Alcotest.(check bool) "F b" true (Trace.holds w (parse "F b"));
  Alcotest.(check bool) "G b false at 0" false (Trace.holds w (parse "G b"));
  Alcotest.(check bool) "a U b" true (Trace.holds w (parse "a U b"));
  Alcotest.(check bool) "holds_at wraps" true
    (Trace.holds_at w 17 (parse "b"))

let test_trace_until_release () =
  (* a a a b then loop c: a U b true, a U c false at 0 (a breaks at b). *)
  let w =
    Trace.make
      ~prefix:[ letter [ "a" ]; letter [ "a" ]; letter [ "a" ]; letter [ "b" ] ]
      ~loop:[ letter [ "c" ] ]
  in
  Alcotest.(check bool) "a U b" true (Trace.holds w (parse "a U b"));
  Alcotest.(check bool) "a U c" false (Trace.holds w (parse "a U c"));
  Alcotest.(check bool) "b R (a || b || c)" true
    (Trace.holds w (parse "b R (a || b || c)"));
  (* W with no trigger: G a on loop-only-a word. *)
  let wa = Trace.constant (letter [ "a" ]) in
  Alcotest.(check bool) "a W b with G a" true (Trace.holds wa (parse "a W b"));
  Alcotest.(check bool) "a U b fails without b" false
    (Trace.holds wa (parse "a U b"))

let test_clairvoyance_example () =
  (* Footnote 1 of the paper: G (output <-> XXX input) is a wellformed
     formula; check its trace semantics on a matching word. *)
  let f = parse "G (out <-> X X X inp)" in
  let mk o i = [ ("out", o); ("inp", i) ] in
  let w = Trace.make ~prefix:[] ~loop:[ mk true true ] in
  Alcotest.(check bool) "constant true word satisfies" true (Trace.holds w f);
  let w2 =
    Trace.make ~prefix:[ mk false true ] ~loop:[ mk true true ]
  in
  Alcotest.(check bool) "violation at 0" false (Trace.holds w2 f)

let prop_nnf_preserves_semantics =
  QCheck2.Test.make ~count:500 ~name:"NNF has the same models"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) -> Trace.holds w f = Trace.holds w (Nnf.of_formula f))

let prop_nnf_is_nnf =
  QCheck2.Test.make ~count:500 ~name:"NNF output is in NNF" formula_gen
    (fun f -> Nnf.is_nnf (Nnf.of_formula f))

let prop_simplify_preserves_semantics =
  QCheck2.Test.make ~count:500 ~name:"simplify has the same models"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) -> Trace.holds w f = Trace.holds w (Nnf.simplify f))

(* --- hash-consing --- *)

(* Rebuild a raw AST bottom-up through the smart constructors; the
   result may simplify but must keep the same models. *)
let rec rebuild f =
  match f with
  | Ltl.True -> Ltl.tt
  | Ltl.False -> Ltl.ff
  | Ltl.Prop p -> Ltl.prop p
  | Ltl.Not g -> Ltl.neg (rebuild g)
  | Ltl.And (g, h) -> Ltl.conj (rebuild g) (rebuild h)
  | Ltl.Or (g, h) -> Ltl.disj (rebuild g) (rebuild h)
  | Ltl.Implies (g, h) -> Ltl.implies (rebuild g) (rebuild h)
  | Ltl.Iff (g, h) -> Ltl.iff (rebuild g) (rebuild h)
  | Ltl.Next g -> Ltl.next (rebuild g)
  | Ltl.Eventually g -> Ltl.eventually (rebuild g)
  | Ltl.Always g -> Ltl.always (rebuild g)
  | Ltl.Until (g, h) -> Ltl.until (rebuild g) (rebuild h)
  | Ltl.Weak_until (g, h) -> Ltl.weak_until (rebuild g) (rebuild h)
  | Ltl.Release (g, h) -> Ltl.release (rebuild g) (rebuild h)

let prop_smart_rebuild_preserves_semantics =
  QCheck2.Test.make ~count:500
    ~name:"smart-constructor rebuild has the same models"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) -> Trace.holds w f = Trace.holds w (rebuild f))

let prop_intern_is_structural_identity =
  QCheck2.Test.make ~count:500 ~name:"intern preserves structure"
    formula_gen (fun f -> Ltl.equal f (Ltl.intern f))

let prop_intern_idempotent =
  QCheck2.Test.make ~count:500
    ~name:"intern is idempotent with a stable id" formula_gen (fun f ->
        let i = Ltl.intern f in
        Ltl.intern i == i && Ltl.id i = Ltl.id (Ltl.intern f))

let prop_equal_fast_agrees =
  QCheck2.Test.make ~count:500
    ~name:"equal_fast agrees with structural equality on interned terms"
    QCheck2.Gen.(pair formula_gen formula_gen)
    (fun (f, g) ->
       Ltl.equal_fast (Ltl.intern f) (Ltl.intern g) = Ltl.equal f g)

let test_hashcons_sharing () =
  let f = parse "G (a -> F b) && (c U (a -> F b))" in
  let g = parse "G (a -> F b) && (c U (a -> F b))" in
  Alcotest.(check bool) "same parse is physically shared" true (f == g);
  Alcotest.(check bool) "ids equal" true (Ltl.id f = Ltl.id g);
  Alcotest.(check int) "compare_fast 0" 0 (Ltl.compare_fast f g)

let test_temporal_idempotence () =
  let p = Ltl.prop "p" in
  Alcotest.(check bool) "F (F p) collapses" true
    (Ltl.eventually (Ltl.eventually p) == Ltl.eventually p);
  Alcotest.(check bool) "G (G p) collapses" true
    (Ltl.always (Ltl.always p) == Ltl.always p);
  Alcotest.(check bool) "conj self collapses" true (Ltl.conj p p == p);
  Alcotest.(check bool) "disj self collapses" true (Ltl.disj p p == p)

(* --- classification and bounding --- *)

let test_classification () =
  Alcotest.(check bool) "G(a->Xb) safety" true
    (Classify.is_syntactic_safety (parse "G (a -> X b)"));
  Alcotest.(check bool) "G(a->Fb) not safety" false
    (Classify.is_syntactic_safety (parse "G (a -> F b)"));
  Alcotest.(check bool) "F a cosafety" true
    (Classify.is_syntactic_cosafety (parse "F a"));
  Alcotest.(check bool) "negated G is cosafety" true
    (Classify.is_syntactic_cosafety (parse "!(G a)"));
  Alcotest.(check bool) "W is safety" true
    (Classify.is_syntactic_safety (parse "a W b"));
  Alcotest.(check bool) "liveness detected" true
    (Classify.has_liveness (parse "G (a -> F b)"))

let test_bound_liveness_shape () =
  let bounded = Classify.bound_liveness ~bound:3 (parse "F p") in
  Alcotest.(check bool) "bounded F is safety" true
    (Classify.is_syntactic_safety bounded);
  Alcotest.(check int) "X depth = bound - 1" 2 (Ltl.next_depth bounded)

let prop_bound_liveness_implies_original =
  QCheck2.Test.make ~count:300
    ~name:"bounded formula implies the original on lassos"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) ->
       let bounded = Classify.bound_liveness ~bound:3 f in
       (* strengthening: bounded ⊨ original *)
       (not (Trace.holds w bounded)) || Trace.holds w f)

let prop_bound_liveness_safety =
  QCheck2.Test.make ~count:300 ~name:"bounded formula is syntactically safe"
    formula_gen (fun f ->
        Classify.is_syntactic_safety (Classify.bound_liveness ~bound:2 f))

let () =
  Alcotest.run "logic"
    [
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick
            test_smart_constructors;
          Alcotest.test_case "props" `Quick test_props;
          Alcotest.test_case "next depth/chains" `Quick
            test_next_depth_and_chains;
          Alcotest.test_case "subformulas" `Quick test_subformulas;
          Alcotest.test_case "map_props" `Quick test_map_props;
          Alcotest.test_case "error paths" `Quick test_error_paths;
        ] );
      ( "parse",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_paper_syntax_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "until/release" `Quick test_trace_until_release;
          Alcotest.test_case "clairvoyance example" `Quick
            test_clairvoyance_example;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "maximal sharing" `Quick test_hashcons_sharing;
          Alcotest.test_case "temporal idempotence" `Quick
            test_temporal_idempotence;
          QCheck_alcotest.to_alcotest prop_smart_rebuild_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_intern_is_structural_identity;
          QCheck_alcotest.to_alcotest prop_intern_idempotent;
          QCheck_alcotest.to_alcotest prop_equal_fast_agrees;
        ] );
      ( "nnf",
        [
          QCheck_alcotest.to_alcotest prop_nnf_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_nnf_is_nnf;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_semantics;
        ] );
      ( "classify",
        [
          Alcotest.test_case "fragments" `Quick test_classification;
          Alcotest.test_case "bounded shape" `Quick test_bound_liveness_shape;
          QCheck_alcotest.to_alcotest prop_bound_liveness_implies_original;
          QCheck_alcotest.to_alcotest prop_bound_liveness_safety;
        ] );
    ]
