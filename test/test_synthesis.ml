(* Tests for the synthesis engines.

   The load-bearing checks are end-to-end: whenever an engine reports
   Realizable, the extracted controller is replayed against the exact
   trace semantics on random environment behaviours; and the two
   engines must agree on the requirement fragment the paper's
   translator emits. *)

open Speccc_logic
open Speccc_synthesis

let parse = Ltl_parse.formula

let explicit ~inputs ~outputs text =
  Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
    [ parse text ]

let symbolic ~inputs ~outputs text =
  Realizability.check ~engine:Realizability.Symbolic ~inputs ~outputs
    [ parse text ]

let is_consistent report =
  match report.Realizability.verdict with
  | Realizability.Consistent -> true
  | Realizability.Inconsistent | Realizability.Inconclusive _ -> false

let is_inconsistent report =
  match report.Realizability.verdict with
  | Realizability.Inconsistent -> true
  | Realizability.Consistent | Realizability.Inconclusive _ -> false

let check_controller report spec =
  match report.Realizability.controller with
  | None -> Alcotest.fail "consistent verdict must carry a controller"
  | Some machine ->
    (* Monte-Carlo replay and the exact product check must both pass. *)
    Alcotest.(check bool) "controller satisfies the spec (sampled)" true
      (Mealy.satisfies machine spec ~trials:60 ~seed:42);
    (match Verify.check machine spec with
     | Verify.Holds -> ()
     | Verify.Counterexample word ->
       Alcotest.fail
         (Format.asprintf "controller violates the spec on %a" Trace.pp word))

(* --- explicit engine --- *)

let test_explicit_simple_response () =
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "G (i -> o)" in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse "G (i -> o)")

let test_explicit_clairvoyance () =
  (* Footnote 1 of the paper: requires seeing three steps ahead. *)
  let report =
    explicit ~inputs:[ "inp" ] ~outputs:[ "out" ] "G (out <-> X X X inp)"
  in
  Alcotest.(check bool) "unrealizable" true (is_inconsistent report)

let test_explicit_eventually () =
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "G (i -> F o)" in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse "G (i -> F o)")

let test_explicit_until_needs_input () =
  (* o U i obliges the environment to raise i eventually — the system
     cannot force that. *)
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "o U i" in
  Alcotest.(check bool) "unrealizable" true (is_inconsistent report)

let test_explicit_weak_until () =
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "o W i" in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse "o W i")

let test_explicit_cannot_control_input () =
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "G i" in
  Alcotest.(check bool) "G input unrealizable" true (is_inconsistent report);
  let report2 = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] "G o" in
  Alcotest.(check bool) "G output realizable" true (is_consistent report2)

let test_explicit_delayed_response () =
  let spec = "G (i -> X X o)" in
  let report = explicit ~inputs:[ "i" ] ~outputs:[ "o" ] spec in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse spec)

let test_explicit_contradiction () =
  let report =
    Realizability.check ~engine:Realizability.Explicit ~inputs:[ "i" ]
      ~outputs:[ "o" ]
      [ parse "G (i -> o)"; parse "G (i -> !o)"; parse "F i" ]
  in
  (* F i alone is unrealizable for the system; combined with the
     contradictory responses the whole set is inconsistent. *)
  Alcotest.(check bool) "inconsistent" true (is_inconsistent report)

let test_explicit_conflicting_responses () =
  let report =
    Realizability.check ~engine:Realizability.Explicit ~inputs:[ "i" ]
      ~outputs:[ "o" ]
      [ parse "G (i -> o)"; parse "G (i -> !o)" ]
  in
  (* The conjunction is still realizable: respond correctly while i is
     low; if i never rises nothing is violated... but when i rises both
     o and !o are required, so the system loses.  Verify engine finds
     the environment's winning move. *)
  Alcotest.(check bool) "inconsistent" true (is_inconsistent report)

(* --- symbolic engine --- *)

let test_symbolic_simple () =
  let report = symbolic ~inputs:[ "i" ] ~outputs:[ "o" ] "G (i -> o)" in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse "G (i -> o)")

let test_symbolic_safety_unrealizable () =
  let report = symbolic ~inputs:[ "i" ] ~outputs:[ "o" ] "G i" in
  Alcotest.(check bool) "inconsistent" true (is_inconsistent report)

let test_symbolic_bounded_liveness () =
  let report = symbolic ~inputs:[ "i" ] ~outputs:[ "o" ] "G (i -> F o)" in
  Alcotest.(check bool) "realizable via lookahead" true (is_consistent report);
  check_controller report (parse "G (i -> F o)")

let test_symbolic_xchain () =
  let spec = "G (i -> X X X o)" in
  let report = symbolic ~inputs:[ "i" ] ~outputs:[ "o" ] spec in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse spec)

let test_symbolic_weak_until () =
  let report = symbolic ~inputs:[ "i" ] ~outputs:[ "o" ] "o W i" in
  Alcotest.(check bool) "realizable" true (is_consistent report);
  check_controller report (parse "o W i")

let test_symbolic_lookahead_escalation () =
  (* [F i] is unrealizable at every look-ahead, so the engine escalates
     6 -> 12 -> 24 before giving up; the reported bound witnesses that
     the escalation loop ran. *)
  let report =
    Realizability.check ~engine:Realizability.Symbolic ~lookahead:6
      ~inputs:[ "i" ] ~outputs:[ "o" ] [ parse "F i" ]
  in
  match report.Realizability.verdict with
  | Realizability.Inconclusive why ->
    Alcotest.(check bool) "escalated to 24" true
      (let rec contains i =
         i + 2 <= String.length why
         && (String.sub why i 2 = "24" || contains (i + 1))
       in
       contains 0)
  | Realizability.Consistent | Realizability.Inconsistent ->
    Alcotest.fail "F input cannot be realizable"

let test_symbolic_many_props () =
  (* Beyond the explicit engine's comfort: 8 inputs, 8 outputs. *)
  let inputs = List.init 8 (Printf.sprintf "i%d") in
  let outputs = List.init 8 (Printf.sprintf "o%d") in
  let requirements =
    List.map2 (fun i o -> Ltl.always (Ltl.implies (Ltl.prop i) (Ltl.prop o)))
      inputs outputs
  in
  let report =
    Realizability.check ~engine:Realizability.Symbolic ~inputs ~outputs
      requirements
  in
  Alcotest.(check bool) "16-prop spec realizable" true (is_consistent report)

(* --- engine agreement on the translator fragment --- *)

let fragment_gen =
  let open QCheck2.Gen in
  let input_literal =
    map2 (fun n b -> if b then Ltl.prop n else Ltl.neg (Ltl.prop n))
      (oneofl [ "i1"; "i2" ]) bool
  in
  let output_literal =
    map2 (fun n b -> if b then Ltl.prop n else Ltl.neg (Ltl.prop n))
      (oneofl [ "o1"; "o2" ]) bool
  in
  let guard = list_size (int_range 1 2) input_literal >|= Ltl.conj_list in
  let response =
    let base = output_literal in
    oneof
      [
        base;
        map Ltl.next base;
        map (fun f -> Ltl.next (Ltl.next f)) base;
        map Ltl.eventually base;
        map2 Ltl.weak_until base input_literal;
      ]
  in
  let requirement =
    map2 (fun g r -> Ltl.always (Ltl.implies g r)) guard response
  in
  list_size (int_range 1 3) requirement

let verdict_of_report report =
  match report.Realizability.verdict with
  | Realizability.Consistent -> `Yes
  | Realizability.Inconsistent -> `No
  | Realizability.Inconclusive _ -> `Maybe

let prop_engines_agree_on_fragment =
  QCheck2.Test.make ~count:60
    ~name:"explicit and symbolic agree on the translator fragment"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let explicit_report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       let symbolic_report =
         Realizability.check ~engine:Realizability.Symbolic ~inputs ~outputs
           requirements
       in
       match
         (verdict_of_report explicit_report, verdict_of_report symbolic_report)
       with
       | `Yes, `Yes | `No, `No -> true
       | `Maybe, _ | _, `Maybe ->
         (* bound exhaustion is allowed, disagreement is not *)
         true
       | `Yes, `No | `No, `Yes -> false)

let prop_realizable_controllers_satisfy_spec =
  QCheck2.Test.make ~count:40
    ~name:"extracted controllers satisfy their specification"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let spec = Ltl.conj_list requirements in
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       match (report.Realizability.verdict, report.Realizability.controller) with
       | Realizability.Consistent, Some machine ->
         Mealy.satisfies machine spec ~trials:40 ~seed:7
       | Realizability.Consistent, None -> false
       | (Realizability.Inconsistent | Realizability.Inconclusive _), _ ->
         true)

(* --- counterstrategies --- *)

let constant_machine ~inputs ~outputs omask = {
  Mealy.inputs;
  outputs;
  num_states = 1;
  initial = 0;
  step = (fun _ _ -> (omask, 0));
}

let test_counterstrategy_clairvoyance () =
  let spec = parse "G (out <-> X X X inp)" in
  let report =
    Realizability.check ~engine:Realizability.Explicit ~inputs:[ "inp" ]
      ~outputs:[ "out" ] [ spec ]
  in
  match report.Realizability.counterstrategy with
  | None -> Alcotest.fail "explicit inconsistency must carry a witness"
  | Some cs ->
    (* whatever the candidate does, the play violates the spec *)
    List.iter
      (fun omask ->
         let machine =
           constant_machine ~inputs:[ "inp" ] ~outputs:[ "out" ] omask
         in
         let word = Bounded.refute cs machine in
         Alcotest.(check bool)
           (Printf.sprintf "refutation vs constant-%d machine" omask)
           false (Trace.holds word spec))
      [ 0; 1 ];
    (* also against a copying machine *)
    let copying = {
      Mealy.inputs = [ "inp" ];
      outputs = [ "out" ];
      num_states = 1;
      initial = 0;
      step = (fun _ imask -> (imask, 0));
    }
    in
    let word = Bounded.refute cs copying in
    Alcotest.(check bool) "refutation vs copying machine" false
      (Trace.holds word spec)

let prop_counterstrategies_refute =
  QCheck2.Test.make ~count:40
    ~name:"counterstrategies refute arbitrary candidate machines"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let spec = Ltl.conj_list requirements in
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       match report.Realizability.counterstrategy with
       | None -> true
       | Some cs ->
         List.for_all
           (fun omask ->
              let machine = constant_machine ~inputs ~outputs omask in
              not (Trace.holds (Bounded.refute cs machine) spec))
           [ 0; 1; 2; 3 ])

(* --- exact verification --- *)

let copy_machine = {
  Mealy.inputs = [ "i" ];
  outputs = [ "o" ];
  num_states = 1;
  initial = 0;
  step = (fun _ imask -> (imask, 0));
}

let test_verify_holds () =
  Alcotest.(check bool) "copy machine satisfies G(i <-> o)" true
    (Verify.check copy_machine (parse "G (i <-> o)") = Verify.Holds);
  Alcotest.(check bool) "and the response form" true
    (Verify.check copy_machine (parse "G (i -> o)") = Verify.Holds);
  Alcotest.(check bool) "and a liveness consequence" true
    (Verify.check copy_machine (parse "G (i -> F o)") = Verify.Holds)

let test_verify_counterexample () =
  match Verify.check copy_machine (parse "G (o <-> !i)") with
  | Verify.Holds -> Alcotest.fail "copy machine cannot invert"
  | Verify.Counterexample word ->
    (* the witness must really violate the formula *)
    Alcotest.(check bool) "counterexample violates the formula" false
      (Trace.holds word (parse "G (o <-> !i)"));
    (* and must be producible: outputs equal inputs on every letter *)
    Alcotest.(check bool) "counterexample is machine-consistent" true
      (List.for_all
         (fun pos ->
            let letter = Trace.letter_at word pos in
            List.assoc_opt "i" letter = List.assoc_opt "o" letter)
         (List.init (Trace.length word) Fun.id))

let test_verify_liveness_counterexample () =
  (* A machine that never raises o violates G(i -> F o). *)
  let silent = {
    Mealy.inputs = [ "i" ];
    outputs = [ "o" ];
    num_states = 1;
    initial = 0;
    step = (fun _ _ -> (0, 0));
  }
  in
  (match Verify.check silent (parse "G (i -> F o)") with
   | Verify.Holds -> Alcotest.fail "silent machine cannot respond"
   | Verify.Counterexample word ->
     Alcotest.(check bool) "witness violates" false
       (Trace.holds word (parse "G (i -> F o)")));
  Alcotest.(check bool) "but satisfies the safety part" true
    (Verify.check silent (parse "G (!o)") = Verify.Holds)

let test_verify_check_all () =
  let requirements = [ parse "G (i -> o)"; parse "G (o -> !i) " ] in
  let verdicts = Verify.check_all copy_machine requirements in
  (match List.assoc 0 verdicts with
   | Verify.Holds -> ()
   | Verify.Counterexample _ -> Alcotest.fail "req 0 holds");
  (match List.assoc 1 verdicts with
   | Verify.Holds -> Alcotest.fail "req 1 is violated"
   | Verify.Counterexample _ -> ())

let prop_verify_agrees_with_synthesis =
  QCheck2.Test.make ~count:30
    ~name:"synthesized controllers verify exactly against every requirement"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       match (report.Realizability.verdict, report.Realizability.controller) with
       | Realizability.Consistent, Some machine ->
         List.for_all
           (fun (_, verdict) -> verdict = Verify.Holds)
           (Verify.check_all machine requirements)
       | _ -> true)

(* --- symbolic controllers verify exactly --- *)

let prop_symbolic_controllers_verify =
  QCheck2.Test.make ~count:30
    ~name:"symbolic-engine controllers pass exact verification"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let report =
         Realizability.check ~engine:Realizability.Symbolic ~inputs ~outputs
           requirements
       in
       match (report.Realizability.verdict, report.Realizability.controller) with
       | Realizability.Consistent, Some machine ->
         (* The symbolic engine bounds liveness, so the controller
            satisfies the *bounded* strengthening — which implies the
            original requirement. *)
         List.for_all
           (fun f -> Verify.check machine f = Verify.Holds)
           requirements
       | _ -> true)

(* --- test-case generation --- *)

let synthesize_machine requirements ~inputs ~outputs =
  let report =
    Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
      requirements
  in
  match report.Realizability.controller with
  | Some machine -> machine
  | None -> Alcotest.fail "expected a controller"

let test_testgen_full_coverage () =
  let machine =
    synthesize_machine ~inputs:[ "i" ] ~outputs:[ "o" ]
      [ parse "G (i -> X o)"; parse "G (!i -> X (!o))" ]
  in
  let suite = Testgen.transition_cover machine in
  let covered, total = Testgen.coverage machine suite in
  Alcotest.(check int) "transition cover is complete" total covered;
  Alcotest.(check bool) "suite non-empty" true (List.length suite > 0);
  let tour = Testgen.transition_tour machine in
  let covered_tour, total_tour = Testgen.coverage machine [ tour ] in
  (* the tour is complete only on strongly connected machines; it must
     still cover a prefix-closed region and never exceed the total *)
  Alcotest.(check bool) "tour covers a nonempty region" true
    (covered_tour > 0 && covered_tour <= total_tour);
  (* state cover reaches every state *)
  Alcotest.(check int) "one test per reachable state"
    machine.Mealy.num_states
    (List.length (Testgen.state_cover machine))

let test_testgen_reference_passes_mutant_fails () =
  let machine =
    synthesize_machine ~inputs:[ "i" ] ~outputs:[ "o" ]
      [ parse "G (i -> X o)"; parse "G (!i -> X (!o))" ]
  in
  let suite = Testgen.transition_cover machine in
  (* the reference implementation passes its own suite *)
  List.iter
    (fun test ->
       match Testgen.run_against machine test with
       | None -> ()
       | Some (step, _) ->
         Alcotest.fail (Printf.sprintf "reference diverged at step %d" step))
    suite;
  (* a mutant with one flipped output bit fails some test *)
  let mutant = {
    machine with
    Mealy.step =
      (fun state imask ->
         let omask, next = machine.Mealy.step state imask in
         if state = machine.Mealy.initial && imask = 1 then
           (omask lxor 1, next)
         else (omask, next));
  }
  in
  Alcotest.(check bool) "mutant detected" true
    (List.exists (fun test -> Testgen.run_against mutant test <> None) suite)

(* --- SAT-based bounded synthesis (third engine) --- *)

let test_satsynth_simple () =
  (match
     Satsynth.solve_iterative ~inputs:[ "i" ] ~outputs:[ "o" ]
       (parse "G (i -> o)")
   with
   | Satsynth.Realizable machine ->
     Alcotest.(check bool) "controller verifies" true
       (Verify.check machine (parse "G (i -> o)") = Verify.Holds)
   | Satsynth.No_machine_within _ ->
     Alcotest.fail "G(i -> o) admits a one-state machine");
  (* a delayed exact response needs machine memory (a constant output
     cannot satisfy the biconditional) *)
  match
    Satsynth.solve_iterative ~inputs:[ "i" ] ~outputs:[ "o" ]
      (parse "G (i <-> X o)")
  with
  | Satsynth.Realizable machine ->
    Alcotest.(check bool) "delayed controller verifies" true
      (Verify.check machine (parse "G (i <-> X o)") = Verify.Holds);
    Alcotest.(check bool) "needs more than one state" true
      (machine.Mealy.num_states > 1)
  | Satsynth.No_machine_within _ ->
    Alcotest.fail "G(i <-> Xo) is realizable"

let test_satsynth_unrealizable_stays_unsat () =
  match
    Satsynth.solve_iterative ~inputs:[ "i" ] ~outputs:[ "o" ]
      (parse "G (o <-> X i)")
  with
  | Satsynth.Realizable _ ->
    Alcotest.fail "clairvoyance cannot have a machine"
  | Satsynth.No_machine_within { states; _ } ->
    Alcotest.(check bool) "escalated" true (states >= 8)

(* Keep the instances small: the UNSAT side of the encoding grows
   quickly (machine states × valuations × automaton edges), and CDCL
   proofs of unrealizability can be expensive. *)
let small_fragment_gen =
  let open QCheck2.Gen in
  let input_literal =
    map2 (fun n b -> if b then Ltl.prop n else Ltl.neg (Ltl.prop n))
      (oneofl [ "i1" ]) bool
  in
  let output_literal =
    map2 (fun n b -> if b then Ltl.prop n else Ltl.neg (Ltl.prop n))
      (oneofl [ "o1"; "o2" ]) bool
  in
  let response =
    oneof [ output_literal; map Ltl.next output_literal;
            map Ltl.eventually output_literal ]
  in
  let requirement =
    map2 (fun g r -> Ltl.always (Ltl.implies g r)) input_literal response
  in
  list_size (int_range 1 2) requirement

let prop_satsynth_agrees_with_game_engine =
  QCheck2.Test.make ~count:15
    ~name:"SAT-based and game-based bounded synthesis agree"
    small_fragment_gen
    (fun requirements ->
       let inputs = [ "i1" ] and outputs = [ "o1"; "o2" ] in
       let spec = Ltl.conj_list requirements in
       let game_verdict =
         match Bounded.solve_iterative ~inputs ~outputs spec with
         | Bounded.Realizable _ -> `Yes
         | Bounded.Unrealizable _ -> `No
         | Bounded.Unknown _ -> `Maybe
       in
       let sat_verdict =
         match
           Satsynth.solve_iterative ~bound:3 ~max_machine_states:4 ~inputs
             ~outputs spec
         with
         | Satsynth.Realizable machine ->
           (* SAT answers come with a witness; it must verify *)
           if Verify.check machine spec = Verify.Holds then `Yes
           else `Broken
         | Satsynth.No_machine_within _ -> `Maybe_no
       in
       match game_verdict, sat_verdict with
       | _, `Broken -> false
       | `Yes, `Maybe_no ->
         (* the SAT engine's machine-size cap can genuinely run out on
            specs whose minimal controller is large; only flag clear
            contradictions *)
         true
       | `No, `Yes -> false
       | _ -> true)

(* --- minimization --- *)

let test_minimize_shrinks_and_preserves () =
  let spec = [ parse "G (i -> X o)"; parse "G (!i -> X (!o))" ] in
  let machine =
    synthesize_machine ~inputs:[ "i" ] ~outputs:[ "o" ] spec
  in
  let minimized = Minimize.minimize machine in
  Alcotest.(check bool) "state count does not grow" true
    (minimized.Mealy.num_states <= machine.Mealy.num_states);
  Alcotest.(check bool) "behaviourally equivalent" true
    (Minimize.equivalent machine minimized);
  (* and the minimal machine still satisfies the specification *)
  Alcotest.(check bool) "still correct" true
    (Verify.check minimized (Ltl.conj_list spec) = Verify.Holds);
  (* minimizing twice is idempotent on the state count *)
  Alcotest.(check int) "idempotent"
    minimized.Mealy.num_states
    (Minimize.minimize minimized).Mealy.num_states

let test_minimize_merges_duplicates () =
  (* Two copies of the same one-state behaviour glued together. *)
  let machine = {
    Mealy.inputs = [ "i" ];
    outputs = [ "o" ];
    num_states = 4;
    initial = 0;
    step = (fun state imask -> (imask, (state + 1) mod 4));
  }
  in
  let minimized = Minimize.minimize machine in
  Alcotest.(check int) "collapses to one state" 1
    minimized.Mealy.num_states;
  Alcotest.(check bool) "equivalent" true
    (Minimize.equivalent machine minimized)

let test_minimize_keeps_distinctions () =
  (* A genuine two-state machine: output toggles with the state. *)
  let machine = {
    Mealy.inputs = [ "i" ];
    outputs = [ "o" ];
    num_states = 2;
    initial = 0;
    step = (fun state _ -> ((if state = 0 then 1 else 0), 1 - state));
  }
  in
  let minimized = Minimize.minimize machine in
  Alcotest.(check int) "stays two states" 2 minimized.Mealy.num_states

let prop_minimization_preserves_behaviour =
  QCheck2.Test.make ~count:30
    ~name:"minimized controllers are equivalent and still verify"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       match report.Realizability.controller with
       | Some machine ->
         let minimized = Minimize.minimize machine in
         minimized.Mealy.num_states <= machine.Mealy.num_states
         && Minimize.equivalent machine minimized
       | None -> true)

(* --- code generation --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_codegen_sanitize () =
  Alcotest.(check string) "dash" "auto_control" (Codegen.sanitize "auto-control");
  Alcotest.(check string) "leading digit" "p_3x" (Codegen.sanitize "3x");
  Alcotest.(check string) "empty" "p" (Codegen.sanitize "");
  Alcotest.(check string) "clean" "press_button" (Codegen.sanitize "press_button")

let test_codegen_structured_text () =
  let machine =
    synthesize_machine ~inputs:[ "i" ] ~outputs:[ "o" ]
      [ parse "G (i -> X o)" ]
  in
  let st = Codegen.to_structured_text ~name:"demo" machine in
  List.iter
    (fun fragment ->
       Alcotest.(check bool) ("ST contains " ^ fragment) true
         (contains st fragment))
    [ "FUNCTION_BLOCK demo"; "VAR_INPUT"; "i : BOOL"; "VAR_OUTPUT";
      "o : BOOL"; "state : INT"; "CASE state OF"; "END_FUNCTION_BLOCK" ]

let test_codegen_verilog () =
  let machine =
    synthesize_machine ~inputs:[ "go" ] ~outputs:[ "done_" ]
      [ parse "G (go -> X done_)" ]
  in
  let v = Codegen.to_verilog ~name:"ctrl" machine in
  List.iter
    (fun fragment ->
       Alcotest.(check bool) ("Verilog contains " ^ fragment) true
         (contains v fragment))
    [ "module ctrl"; "input  wire clk"; "input  wire go";
      "output reg  done_"; "always @(posedge clk)"; "endmodule" ];
  (* every reachable transition appears in the next-state case *)
  Alcotest.(check bool) "case rows emitted" true
    (contains v "case ({state, {go}})")

(* --- structured text behaves like the machine (independent oracle) --- *)

let prop_st_program_matches_machine =
  QCheck2.Test.make ~count:25
    ~name:"generated Structured Text scans like the Mealy machine"
    QCheck2.Gen.(pair fragment_gen (list_size (int_range 1 12)
                                      (int_range 0 3)))
    (fun (requirements, input_masks) ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           requirements
       in
       match report.Realizability.controller with
       | None -> true
       | Some machine ->
         let st = Codegen.to_structured_text machine in
         let program = St_interpreter.parse st in
         let instance = St_interpreter.start program in
         let rec drive state = function
           | [] -> true
           | imask :: rest ->
             let assignment = Mealy.assignment_of_mask inputs imask in
             let omask, next = machine.Mealy.step state imask in
             (match St_interpreter.scan instance assignment with
              | None -> false
              | Some st_outputs ->
                let expected = Mealy.assignment_of_mask outputs omask in
                List.for_all
                  (fun (p, b) -> List.assoc p st_outputs = b)
                  expected
                && drive next rest)
         in
         drive machine.Mealy.initial input_masks)

(* --- mealy utilities --- *)

let test_mealy_masks () =
  let props = [ "a"; "b"; "c" ] in
  let assignment = [ ("a", true); ("b", false); ("c", true) ] in
  let mask = Mealy.mask_of_assignment props assignment in
  Alcotest.(check int) "mask" 0b101 mask;
  Alcotest.(check (list (pair string bool))) "roundtrip" assignment
    (Mealy.assignment_of_mask props mask)

let test_mealy_lasso () =
  (* A one-state machine copying input to output. *)
  let machine = {
    Mealy.inputs = [ "i" ];
    outputs = [ "o" ];
    num_states = 1;
    initial = 0;
    step = (fun _ imask -> (imask, 0));
  }
  in
  let word =
    Mealy.lasso machine ~prefix:[ [ ("i", true) ] ] ~loop:[ [ ("i", false) ] ]
  in
  Alcotest.(check bool) "copy machine satisfies G(i <-> o)" true
    (Trace.holds word (parse "G (i <-> o)"))

(* --- antichain vs enumerative explicit engine --- *)

let same_mealy a b =
  let num_inputs = 1 lsl List.length a.Mealy.inputs in
  a.Mealy.inputs = b.Mealy.inputs
  && a.Mealy.outputs = b.Mealy.outputs
  && a.Mealy.num_states = b.Mealy.num_states
  && a.Mealy.initial = b.Mealy.initial
  && List.for_all
       (fun s ->
          List.for_all
            (fun i -> a.Mealy.step s i = b.Mealy.step s i)
            (List.init num_inputs Fun.id))
       (List.init a.Mealy.num_states Fun.id)

let same_counterstrategy a b =
  let num_outputs = 1 lsl List.length a.Bounded.cs_outputs in
  a.Bounded.cs_num_states = b.Bounded.cs_num_states
  && a.Bounded.cs_initial = b.Bounded.cs_initial
  && List.for_all
       (fun s ->
          a.Bounded.cs_move s = b.Bounded.cs_move s
          && List.for_all
               (fun o -> a.Bounded.cs_next s o = b.Bounded.cs_next s o)
               (List.init num_outputs Fun.id))
       (List.init a.Bounded.cs_num_states Fun.id)

(* The antichain solver is not an approximation: on every specification
   it must reproduce the enumerative engine's verdict bit-for-bit,
   including the extracted witness machine (both extractions use the
   same first-winning-move preference). *)
let prop_antichain_matches_enumerative =
  QCheck2.Test.make ~count:40
    ~name:"antichain and enumerative explicit engines produce identical \
           verdicts and witnesses"
    fragment_gen
    (fun requirements ->
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let spec = Ltl.conj_list requirements in
       let run algorithm =
         Bounded.solve_iterative ~algorithm ~inputs ~outputs spec
       in
       match (run Bounded.Antichain, run Bounded.Enumerate) with
       | Bounded.Realizable a, Bounded.Realizable e -> same_mealy a e
       | Bounded.Unrealizable a, Bounded.Unrealizable e ->
         same_counterstrategy a e
       | Bounded.Unknown a, Bounded.Unknown e -> a = e
       | _ -> false)

let () =
  Alcotest.run "synthesis"
    [
      ( "explicit",
        [
          Alcotest.test_case "simple response" `Quick
            test_explicit_simple_response;
          Alcotest.test_case "clairvoyance (footnote 1)" `Quick
            test_explicit_clairvoyance;
          Alcotest.test_case "eventually" `Quick test_explicit_eventually;
          Alcotest.test_case "until needs input" `Quick
            test_explicit_until_needs_input;
          Alcotest.test_case "weak until" `Quick test_explicit_weak_until;
          Alcotest.test_case "inputs uncontrollable" `Quick
            test_explicit_cannot_control_input;
          Alcotest.test_case "delayed response" `Quick
            test_explicit_delayed_response;
          Alcotest.test_case "contradiction" `Quick
            test_explicit_contradiction;
          Alcotest.test_case "conflicting responses" `Quick
            test_explicit_conflicting_responses;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "simple" `Quick test_symbolic_simple;
          Alcotest.test_case "safety unrealizable" `Quick
            test_symbolic_safety_unrealizable;
          Alcotest.test_case "bounded liveness" `Quick
            test_symbolic_bounded_liveness;
          Alcotest.test_case "X chain" `Quick test_symbolic_xchain;
          Alcotest.test_case "weak until" `Quick test_symbolic_weak_until;
          Alcotest.test_case "lookahead escalation" `Quick
            test_symbolic_lookahead_escalation;
          Alcotest.test_case "16 propositions" `Quick
            test_symbolic_many_props;
        ] );
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_engines_agree_on_fragment;
          QCheck_alcotest.to_alcotest
            prop_realizable_controllers_satisfy_spec;
        ] );
      ( "counterstrategy",
        [
          Alcotest.test_case "clairvoyance witness" `Quick
            test_counterstrategy_clairvoyance;
          QCheck_alcotest.to_alcotest prop_counterstrategies_refute;
          QCheck_alcotest.to_alcotest prop_antichain_matches_enumerative;
        ] );
      ( "verify",
        [
          Alcotest.test_case "holds" `Quick test_verify_holds;
          Alcotest.test_case "counterexample" `Quick
            test_verify_counterexample;
          Alcotest.test_case "liveness counterexample" `Quick
            test_verify_liveness_counterexample;
          Alcotest.test_case "check_all" `Quick test_verify_check_all;
          QCheck_alcotest.to_alcotest prop_verify_agrees_with_synthesis;
        ] );
      ( "symbolic-verify",
        [ QCheck_alcotest.to_alcotest prop_symbolic_controllers_verify ] );
      ( "testgen",
        [
          Alcotest.test_case "coverage" `Quick test_testgen_full_coverage;
          Alcotest.test_case "mutant detection" `Quick
            test_testgen_reference_passes_mutant_fails;
        ] );
      ( "satsynth",
        [
          Alcotest.test_case "simple" `Quick test_satsynth_simple;
          Alcotest.test_case "unrealizable" `Quick
            test_satsynth_unrealizable_stays_unsat;
          QCheck_alcotest.to_alcotest prop_satsynth_agrees_with_game_engine;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "shrinks and preserves" `Quick
            test_minimize_shrinks_and_preserves;
          Alcotest.test_case "merges duplicates" `Quick
            test_minimize_merges_duplicates;
          Alcotest.test_case "keeps distinctions" `Quick
            test_minimize_keeps_distinctions;
          QCheck_alcotest.to_alcotest prop_minimization_preserves_behaviour;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "sanitize" `Quick test_codegen_sanitize;
          Alcotest.test_case "structured text" `Quick
            test_codegen_structured_text;
          Alcotest.test_case "verilog" `Quick test_codegen_verilog;
          QCheck_alcotest.to_alcotest prop_st_program_matches_machine;
        ] );
      ( "mealy",
        [
          Alcotest.test_case "masks" `Quick test_mealy_masks;
          Alcotest.test_case "lasso" `Quick test_mealy_lasso;
        ] );
    ]
