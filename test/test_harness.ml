(* Tests for the crash-safe batch harness: per-document confinement,
   degraded-budget retries with recorded backoff, the JSONL journal,
   and resuming an interrupted run without re-checking journaled
   documents. *)

open Speccc_runtime
open Speccc_core
open Speccc_harness

let with_faults ?seed triggers f =
  Fault.install ?seed triggers;
  Fun.protect ~finally:Fault.clear f

let doc texts = Document.of_texts texts

let consistent_doc =
  doc [ "If the start button is pressed, the pump is started." ]

let inconsistent_doc =
  doc
    [ "If the pump is lost, the alarm is triggered.";
      "If the pump is lost, the alarm is not triggered." ]

let garbage_doc = doc [ "The frobnicator zorps quickly." ]

(* A config that never really sleeps; the recorded schedule is the
   backoff assertion surface. *)
let test_config ?journal ?(resume = false) ?(retries = 2) ?sleeps () =
  let sleep s =
    Option.iter (fun r -> r := s :: !r) sleeps;
    s
  in
  { (Harness.default_config ()) with
    Harness.retries; journal; resume; sleep }

let verdicts summary =
  List.map
    (fun r ->
       match r.Harness.verdict with
       | Harness.Consistent -> "consistent"
       | Harness.Inconsistent -> "inconsistent"
       | Harness.Unknown -> "unknown"
       | Harness.Failed _ -> "failed")
    summary.Harness.results

(* ---------- confinement and severity ---------- *)

let test_batch_confines_failures () =
  let summary =
    Harness.run (test_config ())
      [ ("good", consistent_doc); ("bad", garbage_doc);
        ("conflict", inconsistent_doc) ]
  in
  Alcotest.(check (list string)) "verdict classes"
    [ "consistent"; "failed"; "inconsistent" ]
    (verdicts summary);
  Alcotest.(check int) "severity aggregate" 2 summary.Harness.exit_code

let test_all_consistent_exit_zero () =
  let summary =
    Harness.run (test_config ()) [ ("a", consistent_doc); ("b", consistent_doc) ]
  in
  Alcotest.(check int) "exit 0" 0 summary.Harness.exit_code

let test_recover_rescues_partial_garbage () =
  (* With error recovery on, a document that is only partly garbage
     still gets a verdict from its surviving requirements. *)
  let mixed =
    doc
      [ "The frobnicator zorps quickly.";
        "If the start button is pressed, the pump is started." ]
  in
  let config = test_config () in
  let config =
    { config with
      Harness.options =
        { config.Harness.options with Pipeline.recover = true } }
  in
  let summary = Harness.run config [ ("mixed", mixed) ] in
  Alcotest.(check (list string)) "recovered" [ "consistent" ]
    (verdicts summary)

(* ---------- retries and backoff ---------- *)

let test_retry_schedule () =
  let sleeps = ref [] in
  let config = test_config ~retries:3 ~sleeps () in
  let summary = Harness.run config [ ("bad", garbage_doc) ] in
  (match summary.Harness.results with
   | [ { Harness.verdict = Harness.Failed _; attempts; _ } ] ->
     Alcotest.(check int) "all attempts used" 4 attempts
   | _ -> Alcotest.fail "expected one failed result");
  (* bounded exponential backoff: base 0.05, doubled, jittered by a
     per-(key, attempt) factor in [1.0, 1.5), capped at 1.0 — the
     recorded schedule must match Harness.backoff exactly (the jitter
     is deterministic) and stay within the doubling envelope *)
  let expected =
    List.map (fun i -> Harness.backoff config ~key:"bad" i) [ 0; 1; 2 ]
  in
  Alcotest.(check (list (float 1e-9))) "backoff schedule"
    expected (List.rev !sleeps);
  List.iteri
    (fun i slept ->
       let nominal = 0.05 *. (2. ** float_of_int i) in
       Alcotest.(check bool) "within jitter envelope" true
         (slept >= nominal && slept < nominal *. 1.5))
    (List.rev !sleeps)

let test_unreadable_file_is_failed () =
  let summary =
    Harness.run_files (test_config ()) [ "/nonexistent/doc.spec" ]
  in
  Alcotest.(check (list string)) "failed" [ "failed" ] (verdicts summary)

(* ---------- journal and resume ---------- *)

let temp_journal () =
  let path = Filename.temp_file "speccc_journal" ".jsonl" in
  Sys.remove path;
  path

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let test_journal_written_per_document () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let summary =
         Harness.run (test_config ~journal:path ())
           [ ("a", consistent_doc); ("b", inconsistent_doc) ]
       in
       Alcotest.(check int) "exit 1" 1 summary.Harness.exit_code;
       let lines = read_lines path in
       Alcotest.(check int) "one line per document" 2 (List.length lines);
       List.iter
         (fun line ->
            Alcotest.(check bool) "looks like a JSON object" true
              (String.length line > 0 && line.[0] = '{'))
         lines)

let test_resume_skips_journaled () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let documents =
         [ ("d1", consistent_doc); ("d2", inconsistent_doc);
           ("d3", consistent_doc) ]
       in
       (* First run dies on the third document: the harness.document
          checkpoint is announced outside the per-document guard, so
          the injected failure aborts the whole run — the crash. *)
       (match
          with_faults
            [ { Fault.checkpoint = Fault.Checkpoint.harness_document;
                after = 2; action = Fault.Fail "simulated crash" } ]
            (fun () -> Harness.run (test_config ~journal:path ()) documents)
        with
        | _ -> Alcotest.fail "third document must crash the run"
        | exception Runtime.Interrupt (Runtime.Engine_failure (_, why)) ->
          Alcotest.(check string) "crash cause" "simulated crash" why);
       Alcotest.(check int) "two documents journaled" 2
         (List.length (read_lines path));
       (* Second run resumes: d1 and d2 are replayed from the journal
          (attempts = 0), only d3 is actually re-checked. *)
       let summary =
         Harness.run (test_config ~journal:path ~resume:true ()) documents
       in
       (match summary.Harness.results with
        | [ d1; d2; d3 ] ->
          Alcotest.(check bool) "d1 replayed" false d1.Harness.fresh;
          Alcotest.(check int) "d1 not re-run" 0 d1.Harness.attempts;
          Alcotest.(check bool) "d2 replayed" false d2.Harness.fresh;
          Alcotest.(check bool) "d2 verdict preserved" true
            (d2.Harness.verdict = Harness.Inconsistent);
          Alcotest.(check bool) "d3 freshly checked" true d3.Harness.fresh;
          Alcotest.(check bool) "d3 verdict" true
            (d3.Harness.verdict = Harness.Consistent)
        | _ -> Alcotest.fail "expected three results");
       Alcotest.(check int) "exit code still aggregates" 1
         summary.Harness.exit_code;
       Alcotest.(check int) "journal now complete" 3
         (List.length (read_lines path)))

let test_journal_escaping_roundtrip () =
  (* Keys with quotes, backslashes and newlines must survive the
     journal encode/decode cycle used by --resume. *)
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let weird = "spec \"v2\"\\final\n(draft)" in
       let _ =
         Harness.run (test_config ~journal:path ())
           [ (weird, consistent_doc) ]
       in
       let summary =
         Harness.run (test_config ~journal:path ~resume:true ())
           [ (weird, consistent_doc) ]
       in
       match summary.Harness.results with
       | [ r ] ->
         Alcotest.(check bool) "replayed, not re-run" false r.Harness.fresh;
         Alcotest.(check string) "key restored" weird r.Harness.doc
       | _ -> Alcotest.fail "expected one result")

let test_resume_skips_truncated_line () =
  (* A crash mid-flush leaves a truncated trailing line.  Resume must
     warn, skip it, re-check that document, and the repaired journal
     must be fully parsable afterwards. *)
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let documents =
         [ ("d1", consistent_doc); ("d2", inconsistent_doc);
           ("d3", consistent_doc) ]
       in
       let _ = Harness.run (test_config ~journal:path ()) documents in
       (* hand-truncate: keep two full lines plus a torn third *)
       let lines = read_lines path in
       let torn =
         match lines with
         | [ l1; l2; l3 ] ->
           let oc = open_out path in
           output_string oc (l1 ^ "\n" ^ l2 ^ "\n");
           output_string oc (String.sub l3 0 (String.length l3 / 2));
           close_out oc;
           String.sub l3 0 (String.length l3 / 2)
         | _ -> Alcotest.fail "expected three journal lines"
       in
       let corrupt = ref [] in
       let replayed =
         Harness.journal_read
           ~on_corrupt:(fun line_no line -> corrupt := (line_no, line) :: !corrupt)
           path
       in
       Alcotest.(check int) "two lines replayed" 2 (List.length replayed);
       Alcotest.(check (list (pair int string))) "torn line reported"
         [ (3, torn) ] !corrupt;
       (* a resumed run re-checks only d3 *)
       let summary =
         Harness.run (test_config ~journal:path ~resume:true ()) documents
       in
       (match summary.Harness.results with
        | [ d1; d2; d3 ] ->
          Alcotest.(check bool) "d1 replayed" false d1.Harness.fresh;
          Alcotest.(check bool) "d2 replayed" false d2.Harness.fresh;
          Alcotest.(check bool) "d3 re-checked" true d3.Harness.fresh
        | _ -> Alcotest.fail "expected three results");
       (* the resume repaired the crash artifact: the torn trailing
          line was truncated off before d3's line was appended, so the
          journal is wholly sound again *)
       let healed = ref 0 in
       let replayed' =
         Harness.journal_read
           ~on_corrupt:(fun _ _ -> incr healed)
           path
       in
       Alcotest.(check int) "three parsable lines" 3 (List.length replayed');
       Alcotest.(check int) "no corruption left after repair" 0 !healed)

let test_journal_repair_truncates_torn_tail () =
  (* With [repair], a trailing run of torn lines is physically cut off
     the file, so the crash artifact is cleaned once instead of
     re-skipped on every later read; interior corruption is preserved
     (only warned about). *)
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let documents =
         [ ("d1", consistent_doc); ("d2", inconsistent_doc) ]
       in
       let _ = Harness.run (test_config ~journal:path ()) documents in
       let size_before = (Unix.stat path).Unix.st_size in
       (match read_lines path with
        | [ l1; l2 ] ->
          let oc = open_out path in
          output_string oc (l1 ^ "\n" ^ l2 ^ "\n");
          output_string oc (String.sub l2 0 (String.length l2 / 2));
          close_out oc
        | _ -> Alcotest.fail "expected two journal lines");
       let replayed = Harness.journal_read ~repair:true path in
       Alcotest.(check int) "both sound lines replayed" 2
         (List.length replayed);
       Alcotest.(check int) "torn tail physically truncated" size_before
         (Unix.stat path).Unix.st_size;
       (* second read: nothing corrupt remains *)
       let corrupt = ref 0 in
       let replayed' =
         Harness.journal_read ~on_corrupt:(fun _ _ -> incr corrupt) path
       in
       Alcotest.(check int) "clean re-read" 2 (List.length replayed');
       Alcotest.(check int) "no corruption left" 0 !corrupt)

let test_journal_parse_line_roundtrip () =
  let result =
    Harness.check_one (test_config ()) "spec \"quoted\"\nkey" inconsistent_doc
  in
  (match Harness.journal_parse_line (Harness.journal_line result) with
   | Some r ->
     Alcotest.(check string) "doc key" result.Harness.doc r.Harness.doc;
     Alcotest.(check bool) "inconsistent" true
       (r.Harness.verdict = Harness.Inconsistent);
     Alcotest.(check string) "engine" result.Harness.engine r.Harness.engine;
     Alcotest.(check bool) "replay markers" true
       ((not r.Harness.fresh) && r.Harness.attempts = 0)
   | None -> Alcotest.fail "journal line did not parse back");
  (* a torn line (no closing brace) is rejected, never half-parsed *)
  let line = Harness.journal_line result in
  Alcotest.(check bool) "torn line rejected" true
    (Harness.journal_parse_line (String.sub line 0 (String.length line - 1))
     = None)

let test_journal_fsync_append () =
  (* [fsync] is a durability upgrade, not a format change: the line
     must read back exactly like a flushed one. *)
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       let result =
         Harness.check_one (test_config ()) "d1" consistent_doc
       in
       Harness.journal_append ~fsync:true path result;
       match Harness.journal_read path with
       | [ (key, r) ] ->
         Alcotest.(check string) "key" "d1" key;
         Alcotest.(check bool) "verdict survives" true
           (r.Harness.verdict = Harness.Consistent)
       | _ -> Alcotest.fail "expected one fsynced line")

(* ---------- persistent-store hooks ---------- *)

let test_store_hook_short_circuits () =
  (* A store hit is returned with the replay markers and no engine
     runs; fresh definite verdicts are offered to [store_put]. *)
  let stored = Hashtbl.create 4 in
  let puts = ref [] in
  let config =
    { (test_config ()) with
      Harness.store_find =
        Some (fun doc -> Hashtbl.find_opt stored (Document.texts doc));
      store_put =
        Some
          (fun doc result ->
            puts := result.Harness.verdict :: !puts;
            Hashtbl.replace stored (Document.texts doc) result) }
  in
  let first = Harness.check_one config "d1" inconsistent_doc in
  Alcotest.(check bool) "first run is fresh" true first.Harness.fresh;
  Alcotest.(check int) "definite verdict persisted" 1 (List.length !puts);
  let second = Harness.check_one config "d1-again" inconsistent_doc in
  Alcotest.(check bool) "second run served from store" false
    second.Harness.fresh;
  Alcotest.(check int) "store hit burns no attempts" 0
    second.Harness.attempts;
  Alcotest.(check string) "caller's key, not the stored one" "d1-again"
    second.Harness.doc;
  Alcotest.(check bool) "same verdict" true
    (second.Harness.verdict = Harness.Inconsistent);
  Alcotest.(check int) "no second put" 1 (List.length !puts)

let test_store_hook_skips_indefinite () =
  (* Failed/Unknown verdicts indict the budget or environment, not the
     spec: they are never offered to the store. *)
  let puts = ref 0 in
  let config =
    { (test_config ~retries:0 ()) with
      Harness.store_find = Some (fun _ -> None);
      store_put = Some (fun _ _ -> incr puts) }
  in
  let result = Harness.check_one config "bad" garbage_doc in
  Alcotest.(check bool) "parse failure is Failed" true
    (match result.Harness.verdict with Harness.Failed _ -> true | _ -> false);
  Alcotest.(check int) "nothing persisted" 0 !puts

let test_store_hook_failure_degrades () =
  (* A raising lookup is a miss; a raising put is swallowed — store
     I/O never loses a verdict already in hand. *)
  let config =
    { (test_config ()) with
      Harness.store_find = Some (fun _ -> failwith "store down");
      store_put = Some (fun _ _ -> failwith "store down") }
  in
  let result = Harness.check_one config "d1" consistent_doc in
  Alcotest.(check bool) "checked fresh despite store errors" true
    result.Harness.fresh;
  Alcotest.(check bool) "verdict intact" true
    (result.Harness.verdict = Harness.Consistent)

let test_stop_flag_interrupts () =
  (* config.stop is the SIGINT path: polled before each fresh
     document, it ends the run over a clean input-order prefix. *)
  let polls = ref 0 in
  let config =
    { (test_config ()) with
      Harness.stop =
        (fun () ->
           incr polls;
           !polls > 1) }
  in
  let summary =
    Harness.run config
      [ ("d1", consistent_doc); ("d2", consistent_doc);
        ("d3", consistent_doc) ]
  in
  Alcotest.(check bool) "interrupted" true summary.Harness.interrupted;
  Alcotest.(check (list string)) "prefix checked" [ "consistent" ]
    (verdicts summary);
  (match summary.Harness.results with
   | [ d1 ] -> Alcotest.(check string) "the first document" "d1" d1.Harness.doc
   | _ -> Alcotest.fail "expected exactly one result")

(* ---------- parallel batch checking ---------- *)

let parallel_documents =
  [ ("good-1", consistent_doc); ("conflict", inconsistent_doc);
    ("bad", garbage_doc); ("good-2", consistent_doc);
    ("good-3", consistent_doc) ]

(* Everything except the timing-dependent wall clock. *)
let comparable r =
  ( r.Harness.doc,
    verdicts { Harness.results = [ r ]; exit_code = 0; interrupted = false },
    r.Harness.engine, r.Harness.attempts, r.Harness.detail,
    r.Harness.fresh )

let test_parallel_matches_sequential () =
  let sequential = Harness.run (test_config ()) parallel_documents in
  let parallel =
    Harness.run
      { (test_config ()) with Harness.jobs = 4 }
      parallel_documents
  in
  Alcotest.(check int) "same exit code" sequential.Harness.exit_code
    parallel.Harness.exit_code;
  Alcotest.(check int) "same result count"
    (List.length sequential.Harness.results)
    (List.length parallel.Harness.results);
  List.iter2
    (fun s p ->
       Alcotest.(check bool)
         ("result for " ^ s.Harness.doc ^ " identical modulo wall") true
         (comparable s = comparable p))
    sequential.Harness.results parallel.Harness.results

let test_parallel_matches_sequential_under_faults () =
  (* The jobs=4 --inject drill: fault plans are process-global and
     mutex-protected, so a parallel run under an installed plan counts
     exactly the same checkpoint hits and reaches the same verdicts as
     the sequential run.  The Exhaust on the symbolic rung degrades
     whichever document draws it down the ladder without changing its
     verdict, so the comparison is scheduling-independent. *)
  let plan =
    [ { Fault.checkpoint = Fault.Checkpoint.engine_symbolic; after = 1;
        action = Fault.Exhaust } ]
  in
  let governed_config jobs =
    let config = { (test_config ()) with Harness.jobs } in
    { config with
      Harness.options =
        { config.Harness.options with Pipeline.fuel = Some 200_000 } }
  in
  let run jobs =
    with_faults plan (fun () ->
        let summary = Harness.run (governed_config jobs) parallel_documents in
        ( verdicts summary, summary.Harness.exit_code,
          Fault.hits Fault.Checkpoint.engine_symbolic ))
  in
  let seq_verdicts, seq_exit, seq_hits = run 1 in
  let par_verdicts, par_exit, par_hits = run 4 in
  Alcotest.(check (list string)) "same verdicts" seq_verdicts par_verdicts;
  Alcotest.(check int) "same exit code" seq_exit par_exit;
  Alcotest.(check bool) "checkpoint hit at least once" true (seq_hits > 0);
  Alcotest.(check int) "exact hit counts under parallelism" seq_hits
    par_hits

(* Blank out the timing-dependent "wall":<float> field. *)
let strip_wall line =
  let n = String.length line in
  let buf = Buffer.create n in
  let is_float_char = function
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
    | _ -> false
  in
  let rec go i =
    if i >= n then ()
    else if i + 7 <= n && String.sub line i 7 = "\"wall\":" then begin
      Buffer.add_string buf "\"wall\":_";
      let j = ref (i + 7) in
      while !j < n && is_float_char line.[!j] do incr j done;
      go !j
    end
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let test_parallel_journal_order () =
  let seq_path = temp_journal () and par_path = temp_journal () in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ seq_path; par_path ])
    (fun () ->
       let _ =
         Harness.run (test_config ~journal:seq_path ()) parallel_documents
       in
       let _ =
         Harness.run
           { (test_config ~journal:par_path ()) with Harness.jobs = 4 }
           parallel_documents
       in
       let seq_lines = List.map strip_wall (read_lines seq_path) in
       let par_lines = List.map strip_wall (read_lines par_path) in
       Alcotest.(check (list string))
         "journals identical modulo wall, in input order" seq_lines
         par_lines)

let () =
  Alcotest.run "harness"
    [
      ( "confinement",
        [
          Alcotest.test_case "failures confined per document" `Quick
            test_batch_confines_failures;
          Alcotest.test_case "all consistent exits 0" `Quick
            test_all_consistent_exit_zero;
          Alcotest.test_case "recover rescues partial garbage" `Quick
            test_recover_rescues_partial_garbage;
        ] );
      ( "retries",
        [
          Alcotest.test_case "bounded exponential backoff" `Quick
            test_retry_schedule;
          Alcotest.test_case "unreadable file" `Quick
            test_unreadable_file_is_failed;
        ] );
      ( "journal",
        [
          Alcotest.test_case "written per document" `Quick
            test_journal_written_per_document;
          Alcotest.test_case "resume skips journaled docs" `Quick
            test_resume_skips_journaled;
          Alcotest.test_case "escaping roundtrip" `Quick
            test_journal_escaping_roundtrip;
          Alcotest.test_case "truncated trailing line" `Quick
            test_resume_skips_truncated_line;
          Alcotest.test_case "repair truncates the torn tail" `Quick
            test_journal_repair_truncates_torn_tail;
          Alcotest.test_case "parse-line roundtrip" `Quick
            test_journal_parse_line_roundtrip;
          Alcotest.test_case "fsync append reads back" `Quick
            test_journal_fsync_append;
        ] );
      ( "store hooks",
        [
          Alcotest.test_case "hit short-circuits the engines" `Quick
            test_store_hook_short_circuits;
          Alcotest.test_case "indefinite verdicts not persisted" `Quick
            test_store_hook_skips_indefinite;
          Alcotest.test_case "store failure degrades to miss" `Quick
            test_store_hook_failure_degrades;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "stop flag ends run over a prefix" `Quick
            test_stop_flag_interrupts;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs=4 matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "jobs=4 with injected faults" `Quick
            test_parallel_matches_sequential_under_faults;
          Alcotest.test_case "journal in input order" `Quick
            test_parallel_journal_order;
        ] );
    ]
