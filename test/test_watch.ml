(* Incremental re-checking (the watch session): whatever edit sequence
   led to the current document, the session's verdict — witnesses and
   localization included — must be bit-identical to a cold start on
   the same document.  [Watch.fingerprint] materializes everything a
   check claims (controllers transition-by-transition), so identity is
   plain string equality. *)

open Speccc_logic
open Speccc_core
open Speccc_synthesis

let explicit_options =
  { (Pipeline.default_options ()) with
    Pipeline.engine = Realizability.Explicit }

let doc_of items =
  List.mapi
    (fun line (id, text) -> { Document.id; text; line = line + 1 })
    items

let base_doc () =
  doc_of
    [
      ("R1", "If the start button is pressed, the pump is started.");
      ("R2", "If the pump is lost, the alarm is triggered.");
      ("R3", "When the pump is started, eventually the cuff is inflated.");
    ]

(* The oracle: a throwaway session over the same document — same code
   path, no inherited state. *)
let check_against_cold session =
  let live = Watch.check session in
  let cold = Watch.check_cold ~options:explicit_options
      (Watch.document session)
  in
  Alcotest.(check string) "incremental = cold"
    (Watch.fingerprint cold) (Watch.fingerprint live);
  live

let verdict_class (checked : Watch.checked) =
  match checked.Watch.outcome.Pipeline.report.Realizability.verdict with
  | Realizability.Consistent -> "consistent"
  | Realizability.Inconsistent -> "inconsistent"
  | Realizability.Inconclusive _ -> "inconclusive"

(* The full-pipeline reference: verdict class from
   [Pipeline.run_document], culprit from the localization loop the
   [localize] subcommand runs (fresh partitions, no session). *)
let pipeline_reference doc =
  let outcome = Pipeline.run_document ~options:explicit_options doc in
  let culprit =
    match outcome.Pipeline.report.Realizability.verdict with
    | Realizability.Inconsistent ->
      Localize.run
        ~check:(fun subset ->
          let _, report =
            Pipeline.check_formulas ~options:explicit_options subset
          in
          report.Realizability.verdict = Realizability.Consistent)
        outcome.Pipeline.formulas
      |> Option.map (fun l -> Document.id_at doc l.Localize.culprit)
    | _ -> None
  in
  let verdict =
    match outcome.Pipeline.report.Realizability.verdict with
    | Realizability.Consistent -> "consistent"
    | Realizability.Inconsistent -> "inconsistent"
    | Realizability.Inconclusive _ -> "inconclusive"
  in
  (verdict, culprit)

let ok = function
  | Ok () -> ()
  | Error message -> Alcotest.fail message

let test_scripted_edit_drill () =
  let session = Watch.create ~options:explicit_options (base_doc ()) in
  let initial = check_against_cold session in
  Alcotest.(check string) "starts consistent" "consistent"
    (verdict_class initial);
  (* grow the document *)
  ok (Watch.insert session ~id:"R4"
        ~text:"If the cuff is inflated, the valve is opened.");
  ignore (check_against_cold session);
  (* introduce a conflict: R5 contradicts R2 on the same trigger *)
  ok (Watch.insert session ~id:"R5"
        ~text:"If the pump is lost, the alarm is not triggered.");
  let broken = check_against_cold session in
  Alcotest.(check string) "conflict detected" "inconsistent"
    (verdict_class broken);
  let ref_verdict, ref_culprit = pipeline_reference (Watch.document session) in
  Alcotest.(check string) "pipeline agrees on the verdict" ref_verdict
    (verdict_class broken);
  Alcotest.(check (option string)) "pipeline agrees on the culprit"
    ref_culprit broken.Watch.culprit_id;
  Alcotest.(check (option string)) "culprit is the contradicting edit"
    (Some "R5") broken.Watch.culprit_id;
  Alcotest.(check (list string)) "partnered with its mirror" [ "R2" ]
    broken.Watch.partner_ids;
  (* repair by editing the culprit instead of deleting it *)
  ok (Watch.edit session ~id:"R5"
        ~text:"If the cuff is lost, the alarm is triggered.");
  let repaired = check_against_cold session in
  Alcotest.(check string) "repair restores consistency" "consistent"
    (verdict_class repaired);
  (* delete and re-check once more *)
  ok (Watch.delete session ~id:"R4");
  ignore (check_against_cold session);
  let counters = Watch.counters session in
  Alcotest.(check bool) "the session actually reused engine state" true
    (counters.Watch.engine.Bounded.reused_blocks > 0);
  Alcotest.(check bool) "edits invalidated stale state" true
    (counters.Watch.invalidated_total >= 0)

let test_edit_then_revert_is_noop () =
  let session = Watch.create ~options:explicit_options (base_doc ()) in
  let before = Watch.check session in
  ok (Watch.edit session ~id:"R2"
        ~text:"If the pump is lost, the alarm is not triggered.");
  ignore (Watch.check session);
  ok (Watch.edit session ~id:"R2"
        ~text:"If the pump is lost, the alarm is triggered.");
  let after = Watch.check session in
  Alcotest.(check string) "revert restores the verdict verbatim"
    (Watch.fingerprint before) (Watch.fingerprint after);
  Alcotest.(check bool) "and is answered from the verdict cache" true
    after.Watch.reuse.Watch.verdict_cached

let test_assumptions_take_the_stock_path () =
  (* Assumption-carrying documents cannot use the session's block
     decomposition (the spec is an implication); the session must
     still answer, identically to cold. *)
  let doc =
    Document.parse
      "Assume-1: The lock is inactive or the request is lost.\n\
       R1: If the lock is active, the grant is disabled.\n\
       R2: If the request is available, the grant is enabled.\n"
  in
  let session = Watch.create ~options:explicit_options doc in
  let live = check_against_cold session in
  Alcotest.(check string) "realizable under the assumption" "consistent"
    (verdict_class live);
  ok (Watch.edit session ~id:"R2"
        ~text:"If the request is lost, the grant is enabled.");
  ignore (check_against_cold session)

let test_governed_sessions_fall_back () =
  let options = { explicit_options with Pipeline.fuel = Some 2_000_000 } in
  let session = Watch.create ~options (base_doc ()) in
  let live = Watch.check session in
  let cold = Watch.check_cold ~options (Watch.document session) in
  Alcotest.(check string) "governed watch = governed cold"
    (Watch.fingerprint cold) (Watch.fingerprint live);
  Alcotest.(check bool) "no engine reuse on the fallback path" true
    (not live.Watch.reuse.Watch.verdict_cached
     && live.Watch.reuse.Watch.blocks_reused = 0)

(* --- randomized drills --- *)

let sentence_pool =
  [|
    "If the pump is lost, the alarm is triggered.";
    "If the pump is lost, the alarm is not triggered.";
    "If the start button is pressed, the pump is started.";
    "When the pump is started, eventually the cuff is inflated.";
    "If the cuff is inflated, the valve is opened.";
    "If the valve is opened, the alarm is not triggered.";
  |]

type op =
  | Edit of int * int      (* position (mod size), sentence index *)
  | Insert of int * int
  | Delete of int

let op_gen =
  let open QCheck2.Gen in
  let sentence = int_bound (Array.length sentence_pool - 1) in
  oneof
    [
      map2 (fun p s -> Edit (p, s)) (int_bound 7) sentence;
      map2 (fun p s -> Insert (p, s)) (int_bound 7) sentence;
      map (fun p -> Delete p) (int_bound 7);
    ]

let apply_op session fresh op =
  let doc = Watch.document session in
  let size = List.length doc in
  match op with
  | Edit (p, s) ->
    ok
      (Watch.edit session
         ~id:(Document.id_at doc (p mod size))
         ~text:sentence_pool.(s))
  | Insert (p, s) ->
    incr fresh;
    ok
      (Watch.insert ~at:(p mod (size + 1)) session
         ~id:(Printf.sprintf "N%d" !fresh)
         ~text:sentence_pool.(s))
  | Delete p ->
    (* never empty the document *)
    if size > 1 then
      ok (Watch.delete session ~id:(Document.id_at doc (p mod size)))

let prop_random_edit_sequences =
  QCheck2.Test.make ~count:12 ~name:"watch: random edits = cold restart"
    QCheck2.Gen.(list_size (int_range 1 5) op_gen)
    (fun ops ->
       let session = Watch.create ~options:explicit_options (base_doc ()) in
       let fresh = ref 0 in
       ignore (Watch.check session);
       List.iter
         (fun op ->
            apply_op session fresh op;
            let live = Watch.check session in
            let cold =
              Watch.check_cold ~options:explicit_options
                (Watch.document session)
            in
            if Watch.fingerprint live <> Watch.fingerprint cold then
              QCheck2.Test.fail_reportf
                "divergence after %d ops:@.live: %s@.cold: %s"
                (List.length ops) (Watch.fingerprint live)
                (Watch.fingerprint cold))
         ops;
       true)

(* Warm-session [solve_conj] must be bit-identical to a fresh run, and
   must agree with the stock conjunction solver whenever both are
   definite (both are exact then; only Unknown boundaries may differ
   between the union-automaton and conjunction-automaton games). *)
let formula_pool =
  [|
    "G (i1 -> o1)";
    "G (i1 -> !o1)";
    "G (i2 -> o2)";
    "G (i2 -> X o2)";
    "G (i1 -> F o2)";
    "F o1";
    "G !o2";
  |]

let materialize = function
  | Bounded.Realizable m ->
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Printf.sprintf "realizable %d/%d" m.Mealy.num_states m.Mealy.initial);
    let letters = 1 lsl List.length m.Mealy.inputs in
    for state = 0 to m.Mealy.num_states - 1 do
      for input = 0 to letters - 1 do
        let output, next = m.Mealy.step state input in
        Buffer.add_string b (Printf.sprintf ";%d.%d->%d.%d" state input output next)
      done
    done;
    Buffer.contents b
  | Bounded.Unrealizable cs ->
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Printf.sprintf "unrealizable %d/%d" cs.Bounded.cs_num_states
         cs.Bounded.cs_initial);
    let answers = 1 lsl List.length cs.Bounded.cs_outputs in
    for state = 0 to cs.Bounded.cs_num_states - 1 do
      Buffer.add_string b (Printf.sprintf ";%d!%d" state (cs.Bounded.cs_move state));
      for output = 0 to answers - 1 do
        Buffer.add_string b (Printf.sprintf ",%d" (cs.Bounded.cs_next state output))
      done
    done;
    Buffer.contents b
  | Bounded.Unknown bound -> Printf.sprintf "unknown %d" bound

let prop_solve_conj_warm_equals_fresh =
  let session = Bounded.create_session () in
  QCheck2.Test.make ~count:40
    ~name:"solve_conj: warm session = fresh session"
    QCheck2.Gen.(list_size (int_range 2 4)
                   (int_bound (Array.length formula_pool - 1)))
    (fun picks ->
       let formulas =
         List.map (fun i -> Ltl_parse.formula formula_pool.(i)) picks
       in
       let inputs = [ "i1"; "i2" ] and outputs = [ "o1"; "o2" ] in
       let warm =
         Bounded.solve_conj ~session ~inputs ~outputs formulas
       in
       let fresh = Bounded.solve_conj ~inputs ~outputs formulas in
       if materialize warm <> materialize fresh then
         QCheck2.Test.fail_reportf "warm %s <> fresh %s" (materialize warm)
           (materialize fresh);
       let stock =
         Bounded.solve ~inputs ~outputs (Ltl.conj_list formulas)
       in
       (match (warm, stock) with
        | Bounded.Realizable _, Bounded.Unrealizable _
        | Bounded.Unrealizable _, Bounded.Realizable _ ->
          QCheck2.Test.fail_reportf
            "definite disagreement: decomposed %s vs stock %s"
            (materialize warm) (materialize stock)
        | _ -> ());
       true)

let () =
  Alcotest.run "watch"
    [
      ( "identity",
        [
          Alcotest.test_case "scripted edit drill" `Quick
            test_scripted_edit_drill;
          Alcotest.test_case "edit then revert is a no-op" `Quick
            test_edit_then_revert_is_noop;
          Alcotest.test_case "assumptions take the stock path" `Quick
            test_assumptions_take_the_stock_path;
          Alcotest.test_case "governed sessions fall back" `Quick
            test_governed_sessions_fall_back;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_random_edit_sequences;
          QCheck_alcotest.to_alcotest prop_solve_conj_warm_equals_fresh;
        ] );
    ]
