(* Tests for the pipeline, localization and refinement (Fig. 1 loop,
   Sec. V-B). *)

open Speccc_logic
open Speccc_core
open Speccc_synthesis
open Speccc_partition

let parse = Ltl_parse.formula

let explicit_options =
  { (Pipeline.default_options ()) with
    Pipeline.engine = Realizability.Explicit }

let symbolic_options =
  { (Pipeline.default_options ()) with
    Pipeline.engine = Realizability.Symbolic }

let is_consistent report =
  report.Realizability.verdict = Realizability.Consistent

(* --- pipeline --- *)

let test_pipeline_consistent_spec () =
  let outcome =
    Pipeline.run ~options:explicit_options
      [
        "If the pump is available, the alarm is disabled.";
        "If the pump is lost, the alarm is enabled.";
      ]
  in
  Alcotest.(check bool) "consistent" true
    (is_consistent outcome.Pipeline.report);
  Alcotest.(check int) "two formulas" 2
    (List.length outcome.Pipeline.formulas);
  Alcotest.(check (list string)) "pump is the input" [ "pump" ]
    outcome.Pipeline.partition.Partition.partition.Partition.inputs

let test_pipeline_applies_time_abstraction () =
  let outcome =
    Pipeline.run ~options:symbolic_options
      [
        "If the pump is lost, the alarm is triggered in 4 seconds.";
        "If the cuff is lost, the alarm is triggered in 8 seconds.";
      ]
  in
  (match outcome.Pipeline.time_solution with
   | None -> Alcotest.fail "expected a time abstraction"
   | Some solution ->
     Alcotest.(check bool) "chains compressed" true
       (solution.Speccc_timeabs.Timeabs.x_total < 12));
  Alcotest.(check bool) "still consistent" true
    (is_consistent outcome.Pipeline.report)

let test_pipeline_detects_inconsistency () =
  let outcome =
    Pipeline.run ~options:explicit_options
      [
        "If the pump is lost, the alarm is triggered.";
        "If the pump is lost, the alarm is not triggered.";
      ]
  in
  Alcotest.(check bool) "inconsistent" false
    (is_consistent outcome.Pipeline.report)

(* --- localization --- *)

(* A specification where requirement 0 and requirement 3 conflict
   (non-neighbouring, as in Sec. V-B): both fire on the same input but
   demand opposite outputs. *)
let conflicting_formulas = [
  parse "G (i1 -> o1)";          (* 0: conflicts with 3 *)
  parse "G (i2 -> o2)";          (* 1: independent *)
  parse "G (i3 -> X o3)";        (* 2: independent *)
  parse "G (i1 -> !o1)";         (* 3: the culprit *)
  parse "G (i2 -> X o2)";        (* 4: independent *)
]

let explicit_check formulas =
  let _, report =
    Pipeline.check_formulas ~options:explicit_options formulas
  in
  is_consistent report

let test_localize_finds_culprit () =
  match Localize.run ~check:explicit_check conflicting_formulas with
  | None -> Alcotest.fail "spec is inconsistent; localization must fire"
  | Some result ->
    Alcotest.(check int) "culprit is requirement 3" 3
      result.Localize.culprit;
    Alcotest.(check (list int)) "prefix 0..2" [ 0; 1; 2 ]
      result.Localize.consistent_prefix;
    Alcotest.(check (list int)) "only requirement 0 is relevant" [ 0 ]
      result.Localize.relevant;
    Alcotest.(check (list int)) "minimal partner is requirement 0" [ 0 ]
      result.Localize.partners

let test_localize_consistent_spec () =
  Alcotest.(check bool) "no localization on consistent spec" true
    (Localize.run ~check:explicit_check [ parse "G (i -> o)" ] = None)

let test_localize_self_inconsistent () =
  (* F i is unrealizable on its own (i is an input). *)
  let formulas = [ parse "G (i -> o)"; parse "F i" ] in
  match Localize.run ~check:explicit_check formulas with
  | None -> Alcotest.fail "must localize"
  | Some result ->
    Alcotest.(check int) "culprit 1" 1 result.Localize.culprit;
    Alcotest.(check (list int)) "no partners needed" []
      result.Localize.partners

let counting_check calls formulas =
  incr calls;
  explicit_check formulas

let test_localize_memo_reuses_verdicts () =
  let calls = ref 0 in
  let check = counting_check calls in
  let memo = Localize.memo () in
  let first = Localize.run ~memo ~check conflicting_formulas in
  let cold_calls = !calls in
  Alcotest.(check bool) "localized" true (first <> None);
  Alcotest.(check bool) "cold run invokes the engine" true (cold_calls > 0);
  Alcotest.(check bool) "memo holds the decided subsets" true
    (Localize.memo_length memo > 0);
  let second = Localize.run ~memo ~check conflicting_formulas in
  Alcotest.(check bool) "same localization" true (first = second);
  Alcotest.(check int) "memoized run re-checks nothing" cold_calls !calls

let test_localize_no_cross_run_pollution () =
  (* Without an explicit memo, verdicts never leak between runs — the
     second run pays full price.  (The removed shared LRU salted its
     keys with a per-run nonce, so its entries were dead weight that
     could never hit; cross-run reuse is now the opt-in [memo].) *)
  let calls = ref 0 in
  let check = counting_check calls in
  ignore (Localize.run ~check conflicting_formulas);
  let cold_calls = !calls in
  ignore (Localize.run ~check conflicting_formulas);
  Alcotest.(check int) "second memo-less run re-checks everything"
    (2 * cold_calls) !calls;
  Alcotest.(check bool) "no shared localize LRU is registered" true
    (not
       (List.exists
          (fun s -> s.Speccc_cache.Cache.name = "localize.verdict")
          (Speccc_cache.Cache.stats ())))

let test_localize_memo_prune () =
  let memo = Localize.memo () in
  ignore (Localize.run ~memo ~check:explicit_check conflicting_formulas);
  let full = Localize.memo_length memo in
  let keep =
    List.filteri (fun i _ -> i <> 3) conflicting_formulas
    |> List.map Ltl.id
  in
  let dropped =
    Localize.prune_memo memo ~retain:(fun id -> List.mem id keep)
  in
  Alcotest.(check bool) "entries mentioning the pruned id drop" true
    (dropped > 0);
  Alcotest.(check int) "survivors + dropped = all" full
    (Localize.memo_length memo + dropped);
  (* a fresh prune with the same retained set is a no-op *)
  Alcotest.(check int) "prune is idempotent" 0
    (Localize.prune_memo memo ~retain:(fun id -> List.mem id keep))

(* --- refinement --- *)

let test_refine_partition_fix () =
  (* The TELEPROMISE trap shape: lock is misclassified as input. *)
  let formulas = [
    parse "G (lock -> !grant)";
    parse "G (request -> grant)";
  ]
  in
  let analysis = Partition.of_requirements formulas in
  let partition = analysis.Partition.partition in
  Alcotest.(check (list string)) "heuristic calls lock an input"
    [ "lock"; "request" ] partition.Partition.inputs;
  let check_partition p =
    let _, report =
      Pipeline.check_formulas ~options:explicit_options ~partition:p formulas
    in
    is_consistent report
  in
  Alcotest.(check bool) "inconsistent as classified" false
    (check_partition partition);
  (match
     Refine.adjust_partition ~check:check_partition ~partition
       ~focus:[ "lock"; "grant"; "request" ]
   with
   | None -> Alcotest.fail "a partition fix exists"
   | Some adjustment ->
     Alcotest.(check (list string)) "lock moved to outputs" [ "lock" ]
       adjustment.Refine.moved_to_output;
     Alcotest.(check bool) "fixed partition is consistent" true
       (check_partition adjustment.Refine.partition))

let test_refine_suggest_end_to_end () =
  let formulas = [
    parse "G (lock -> !grant)";
    parse "G (request -> grant)";
  ]
  in
  let analysis = Partition.of_requirements formulas in
  let check_partition p =
    let _, report =
      Pipeline.check_formulas ~options:explicit_options ~partition:p formulas
    in
    is_consistent report
  in
  let suggestion =
    Refine.suggest ~check_subset:explicit_check ~check_partition
      ~partition:analysis.Partition.partition formulas
  in
  Alcotest.(check bool) "adjustment found" true
    (suggestion.Refine.adjustment <> None);
  Alcotest.(check bool) "localization reported" true
    (suggestion.Refine.localization <> None)

let test_refine_unfixable () =
  (* G o && G !o: contradictory whoever owns o; no partition helps.
     (Note that for G(i -> o) && G(i -> !o) a partition "fix" does
     exist — demote i to an output — which is why a starker example is
     needed here.) *)
  let formulas = [ parse "G o"; parse "G (!o)" ] in
  let analysis = Partition.of_requirements formulas in
  let check_partition p =
    let _, report =
      Pipeline.check_formulas ~options:explicit_options ~partition:p formulas
    in
    is_consistent report
  in
  let suggestion =
    Refine.suggest ~check_subset:explicit_check ~check_partition
      ~partition:analysis.Partition.partition formulas
  in
  Alcotest.(check bool) "no adjustment" true
    (suggestion.Refine.adjustment = None);
  Alcotest.(check bool) "advice mentions modification" true
    (String.length suggestion.Refine.advice > 0)

(* --- environment assumptions --- *)

let test_assumptions_rescue_realizability () =
  (* Without the assumption the environment raises lock and request
     together and forces grant && !grant; under the assumption they are
     mutually exclusive and the spec becomes realizable. *)
  let document =
    Document.parse
      "Assume-1: The lock is inactive or the request is lost.\n\
       R1: If the lock is active, the grant is disabled.\n\
       R2: If the request is available, the grant is enabled.\n"
  in
  let without =
    Pipeline.run ~options:explicit_options
      (Document.texts (snd (Document.split document)))
  in
  Alcotest.(check bool) "unrealizable without assumption" false
    (is_consistent without.Pipeline.report);
  let with_assumption =
    Pipeline.run_document ~options:explicit_options document
  in
  Alcotest.(check bool) "realizable under the assumption" true
    (is_consistent with_assumption.Pipeline.report)

let test_assumption_detection () =
  let document =
    Document.parse
      "ASSUME_A: The pump is available.\nR1: The alarm is disabled.\n"
  in
  let assumptions, guarantees = Document.split document in
  Alcotest.(check int) "one assumption" 1 (List.length assumptions);
  Alcotest.(check int) "one guarantee" 1 (List.length guarantees)

(* --- the bus arbiter case study --- *)

let test_arbiter () =
  let inst = Speccc_casestudies.Arbiter.instance ~masters:2 in
  let document =
    List.mapi
      (fun line (id, text) -> { Document.id; text; line = line + 1 })
      inst.Speccc_casestudies.Arbiter.document
  in
  let outcome = Pipeline.run_document ~options:explicit_options document in
  Alcotest.(check bool) "realizable under sticky-request assumptions" true
    (is_consistent outcome.Pipeline.report);
  Alcotest.(check (list string)) "derived inputs"
    (Speccc_casestudies.Arbiter.expected_inputs inst)
    outcome.Pipeline.partition.Partition.partition.Partition.inputs;
  Alcotest.(check (list string)) "derived outputs"
    (Speccc_casestudies.Arbiter.expected_outputs inst)
    outcome.Pipeline.partition.Partition.partition.Partition.outputs;
  (* the controller satisfies the assume-guarantee implication exactly *)
  (match outcome.Pipeline.report.Realizability.controller with
   | Some machine ->
     let tagged = List.combine document outcome.Pipeline.formulas in
     let formula_of p =
       List.filter_map
         (fun (item, f) -> if p item then Some f else None)
         tagged
     in
     let spec =
       Ltl.implies
         (Ltl.conj_list (formula_of Document.is_assumption))
         (Ltl.conj_list
            (formula_of (fun item -> not (Document.is_assumption item))))
     in
     Alcotest.(check bool) "controller verifies A -> G" true
       (Speccc_synthesis.Verify.check machine spec
        = Speccc_synthesis.Verify.Holds)
   | None -> Alcotest.fail "controller expected");
  (* without the assumptions the one-shot double request is fatal *)
  let guarantees_only =
    Document.texts (snd (Document.split document))
  in
  let bare = Pipeline.run ~options:explicit_options guarantees_only in
  Alcotest.(check bool) "unrealizable without the assumptions" false
    (is_consistent bare.Pipeline.report)

(* --- determinism --- *)

let test_pipeline_deterministic () =
  (* Two runs over the same input must agree on everything observable:
     formulas, partition, verdict (guards against hash-order leaks). *)
  let texts = Speccc_casestudies.Cara.working_mode_texts in
  let run () = Pipeline.run ~options:symbolic_options texts in
  let a = run () and b = run () in
  Alcotest.(check bool) "formulas equal" true
    (List.for_all2 Ltl.equal a.Pipeline.formulas b.Pipeline.formulas);
  Alcotest.(check (list string)) "inputs equal"
    a.Pipeline.partition.Partition.partition.Partition.inputs
    b.Pipeline.partition.Partition.partition.Partition.inputs;
  Alcotest.(check (list string)) "outputs equal"
    a.Pipeline.partition.Partition.partition.Partition.outputs
    b.Pipeline.partition.Partition.partition.Partition.outputs;
  Alcotest.(check bool) "verdicts equal" true
    (a.Pipeline.report.Realizability.verdict
     = b.Pipeline.report.Realizability.verdict)

(* --- requirement documents --- *)

let test_document_parse () =
  let text =
    "# CARA extract\n\
     Req-08: If Air Ok signal remains low, auto control mode stops.\n\
     \n\
     If the pump is lost, the alarm is triggered.\n\
     REQ_17.1: When auto control mode is running, the cuff is inflated.\n"
  in
  let document = Document.parse text in
  Alcotest.(check int) "three items" 3 (List.length document);
  Alcotest.(check string) "explicit id" "Req-08" (Document.id_at document 0);
  Alcotest.(check string) "positional id" "R2" (Document.id_at document 1);
  Alcotest.(check string) "underscore id" "REQ_17.1"
    (Document.id_at document 2);
  Alcotest.(check string) "text stripped of id"
    "If Air Ok signal remains low, auto control mode stops."
    (List.nth (Document.texts document) 0);
  (* a sentence-like line with a long colon-free prefix keeps its colon *)
  let odd = Document.parse "When a is on, the following holds: b is on.\n" in
  Alcotest.(check int) "one item" 1 (List.length odd);
  Alcotest.(check string) "no spurious id split" "R1" (Document.id_at odd 0)

let test_document_out_of_range () =
  let document = Document.of_texts [ "a is on." ] in
  Alcotest.(check string) "fallback id" "R5" (Document.id_at document 4)

(* --- case studies, small slices (full rows live in the bench) --- *)

let test_cara_working_modes_translate_and_check () =
  let outcome =
    Pipeline.run ~options:symbolic_options
      Speccc_casestudies.Cara.working_mode_texts
  in
  Alcotest.(check int) "29 requirements" 29
    (List.length outcome.Pipeline.formulas);
  Alcotest.(check bool) "consistent" true
    (is_consistent outcome.Pipeline.report);
  (* time abstraction found Θ = {180, 60, 3} and compressed it; with
     θ' ≥ 1 enforced (no timed obligation may collapse to an immediate
     one) the best divisor is the GCD, 3 *)
  (match outcome.Pipeline.time_solution with
   | Some solution ->
     Alcotest.(check int) "divisor 3" 3
       solution.Speccc_timeabs.Timeabs.divisor;
     Alcotest.(check bool) "no collapsed chain" true
       (List.for_all
          (fun r -> r.Speccc_timeabs.Timeabs.theta' >= 1)
          solution.Speccc_timeabs.Timeabs.rewrites)
   | None -> Alcotest.fail "expected time abstraction")

let test_cara_mode_description () =
  let outcome =
    Pipeline.run ~options:symbolic_options
      Speccc_casestudies.Cara.mode_description_texts
  in
  Alcotest.(check int) "12 requirements" 12
    (List.length outcome.Pipeline.formulas);
  Alcotest.(check bool) "Sec. III description is consistent" true
    (is_consistent outcome.Pipeline.report);
  (* the source-priority chain yields the three selection outputs *)
  let outputs =
    outcome.Pipeline.partition.Partition.partition.Partition.outputs
  in
  List.iter
    (fun prop ->
       Alcotest.(check bool) (prop ^ " is an output") true
         (List.mem prop outputs))
    [ "select_arterial_line"; "select_pulse_wave"; "select_cuff" ]

let test_robot_scenarios_consistent () =
  List.iter
    (fun (_, name, scenario) ->
       let partition =
         {
           Partition.inputs = scenario.Speccc_casestudies.Robot.inputs;
           outputs = scenario.Speccc_casestudies.Robot.outputs;
         }
       in
       let _, report =
         Pipeline.check_formulas ~options:symbolic_options ~partition
           scenario.Speccc_casestudies.Robot.formulas
       in
       Alcotest.(check bool) (name ^ " consistent") true
         (is_consistent report))
    Speccc_casestudies.Robot.table_rows

let prop_specgen_profiles =
  let open QCheck2.Gen in
  let gen =
    int_range 2 10 >>= fun lines ->
    int_range 1 (3 * lines) >>= fun inputs ->
    int_range 1 (2 * lines) >>= fun outputs ->
    return { Speccc_casestudies.Specgen.prefix = "g"; lines;
             inputs = min inputs (3 * lines); outputs }
  in
  QCheck2.Test.make ~count:40
    ~name:"generated specs parse, hit their profile, and are consistent"
    gen
    (fun profile ->
       let sentences = Speccc_casestudies.Specgen.sentences profile in
       List.length sentences = profile.Speccc_casestudies.Specgen.lines
       &&
       let outcome = Pipeline.run ~options:symbolic_options sentences in
       let partition = outcome.Pipeline.partition.Partition.partition in
       List.length partition.Partition.inputs
       = profile.Speccc_casestudies.Specgen.inputs
       && List.length partition.Partition.outputs
          = profile.Speccc_casestudies.Specgen.outputs
       && is_consistent outcome.Pipeline.report)

let test_specgen_profile_counts () =
  let profile =
    { Speccc_casestudies.Specgen.prefix = "t"; lines = 11; inputs = 9;
      outputs = 10 }
  in
  let sentences = Speccc_casestudies.Specgen.sentences profile in
  Alcotest.(check int) "line count" 11 (List.length sentences);
  let outcome = Pipeline.run ~options:symbolic_options sentences in
  let partition = outcome.Pipeline.partition.Partition.partition in
  Alcotest.(check int) "input count" 9
    (List.length partition.Partition.inputs);
  Alcotest.(check int) "output count" 10
    (List.length partition.Partition.outputs);
  Alcotest.(check bool) "generated specs are consistent" true
    (is_consistent outcome.Pipeline.report)

let () =
  Alcotest.run "core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "consistent spec" `Quick
            test_pipeline_consistent_spec;
          Alcotest.test_case "time abstraction applied" `Quick
            test_pipeline_applies_time_abstraction;
          Alcotest.test_case "detects inconsistency" `Quick
            test_pipeline_detects_inconsistency;
        ] );
      ( "localize",
        [
          Alcotest.test_case "finds non-neighbouring culprit" `Quick
            test_localize_finds_culprit;
          Alcotest.test_case "consistent spec" `Quick
            test_localize_consistent_spec;
          Alcotest.test_case "self-inconsistent requirement" `Quick
            test_localize_self_inconsistent;
          Alcotest.test_case "memo reuses verdicts across runs" `Quick
            test_localize_memo_reuses_verdicts;
          Alcotest.test_case "no cross-run pollution without memo" `Quick
            test_localize_no_cross_run_pollution;
          Alcotest.test_case "memo prune" `Quick test_localize_memo_prune;
        ] );
      ( "refine",
        [
          Alcotest.test_case "partition fix" `Quick test_refine_partition_fix;
          Alcotest.test_case "suggest end-to-end" `Quick
            test_refine_suggest_end_to_end;
          Alcotest.test_case "unfixable" `Quick test_refine_unfixable;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "rescue realizability" `Quick
            test_assumptions_rescue_realizability;
          Alcotest.test_case "detection" `Quick test_assumption_detection;
          Alcotest.test_case "bus arbiter" `Slow test_arbiter;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pipeline runs agree" `Quick
            test_pipeline_deterministic;
        ] );
      ( "documents",
        [
          Alcotest.test_case "parse" `Quick test_document_parse;
          Alcotest.test_case "out of range" `Quick
            test_document_out_of_range;
        ] );
      ( "case studies",
        [
          Alcotest.test_case "CARA working modes" `Slow
            test_cara_working_modes_translate_and_check;
          Alcotest.test_case "CARA mode description (Sec. III)" `Quick
            test_cara_mode_description;
          Alcotest.test_case "robot scenarios" `Slow
            test_robot_scenarios_consistent;
          Alcotest.test_case "specgen counts" `Slow
            test_specgen_profile_counts;
          QCheck_alcotest.to_alcotest prop_specgen_profiles;
        ] );
    ]
