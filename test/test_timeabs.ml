(* Tests for time counting and abstraction (Sec. IV-E): the paper's
   worked example, GCD soundness on realizability, agreement between
   the SMT and analytic solvers, and the formula rewriting. *)

open Speccc_logic
open Speccc_timeabs.Timeabs
open Speccc_synthesis

let parse = Ltl_parse.formula

let ltl = Alcotest.testable (Ltl_print.pp ~syntax:Ltl_print.Ascii) Ltl.equal

let test_thetas_extraction () =
  let formulas = [
    parse "G (!air_ok -> X X X stop)";
    parse ("G (" ^ String.concat " " (List.init 180 (fun _ -> "X"))
           ^ " !bp -> trigger)");
    parse ("G (run -> " ^ String.concat " " (List.init 60 (fun _ -> "X"))
           ^ " alarm)");
  ]
  in
  Alcotest.(check (list int)) "Θ = {180, 60, 3}" [ 180; 60; 3 ]
    (thetas_of_formulas formulas)

let test_gcd_example () =
  (* Sec. IV-E: gcd {3, 180, 60} = 3, giving lengths 1, 60, 20. *)
  let solution = gcd_solution [ 3; 180; 60 ] in
  Alcotest.(check int) "divisor" 3 solution.divisor;
  let lookup theta =
    (List.find (fun r -> r.theta = theta) solution.rewrites).theta'
  in
  Alcotest.(check int) "3 -> 1" 1 (lookup 3);
  Alcotest.(check int) "180 -> 60" 60 (lookup 180);
  Alcotest.(check int) "60 -> 20" 20 (lookup 60);
  Alcotest.(check int) "no error" 0 solution.error_total

let check_paper_optimum solution =
  (* The paper's reported optimum: d = 60, θ' = (0, 3, 1),
     Δ = (3, 0, 0).  It contains a θ' = 0 rewrite — X³φ becomes φ —
     so reproducing it requires the [allow_zero_theta] escape hatch;
     the default solver refuses to collapse a timed obligation. *)
  Alcotest.(check int) "divisor 60" 60 solution.divisor;
  Alcotest.(check int) "ΣX = 4" 4 solution.x_total;
  Alcotest.(check int) "Σ|Δ| = 3" 3 solution.error_total;
  let find theta = List.find (fun r -> r.theta = theta) solution.rewrites in
  Alcotest.(check int) "θ=3 -> 0" 0 (find 3).theta';
  Alcotest.(check int) "θ=3 Δ=3" 3 (find 3).delta;
  Alcotest.(check int) "θ=180 -> 3" 3 (find 180).theta';
  Alcotest.(check int) "θ=60 -> 1" 1 (find 60).theta'

let test_paper_example_analytic () =
  check_paper_optimum
    (solve_analytic ~allow_zero_theta:true (problem ~budget:5 [ 3; 180; 60 ]))

let test_paper_example_smt () =
  check_paper_optimum
    (solve_smt ~allow_zero_theta:true (problem ~budget:5 [ 3; 180; 60 ]))

let check_default_optimum solution =
  (* Same instance without the escape hatch: every θ' ≥ 1 forces
     d ≤ min Θ, so the best divisor is the GCD, 3 — exact, with
     Σθ' = 1 + 60 + 20. *)
  Alcotest.(check int) "divisor 3" 3 solution.divisor;
  Alcotest.(check int) "ΣX = 81" 81 solution.x_total;
  Alcotest.(check int) "Σ|Δ| = 0" 0 solution.error_total;
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Printf.sprintf "θ=%d keeps a chain" r.theta)
         true (r.theta' >= 1))
    solution.rewrites

let test_default_refuses_collapse_analytic () =
  check_default_optimum (solve_analytic (problem ~budget:5 [ 3; 180; 60 ]))

let test_default_refuses_collapse_smt () =
  check_default_optimum (solve_smt (problem ~budget:5 [ 3; 180; 60 ]))

(* Regression for the θ' = 0 collapse: whenever budget ≥ some θ, the
   old solver could zero that chain out entirely (here θ = 1 with
   budget 1: d = 7 rewrites X¹ to X⁰ with Δ = 1, "optimal" at
   Σθ' = 1).  The fixed solver must keep every chain. *)
let test_budget_at_least_theta_no_collapse () =
  let prob = problem ~budget:1 [ 1; 7 ] in
  List.iter
    (fun (name, solve) ->
       let s = solve prob in
       List.iter
         (fun r ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: θ=%d not collapsed" name r.theta)
              true (r.theta' >= 1))
         s.rewrites;
       Alcotest.(check int) (name ^ ": divisor 1") 1 s.divisor;
       Alcotest.(check int) (name ^ ": ΣX") 8 s.x_total)
    [ ("analytic", solve_analytic ?allow_zero_theta:None);
      ("smt", solve_smt ?allow_zero_theta:None) ];
  (* the escape hatch brings the legacy collapse back, on purpose *)
  let legacy = solve_analytic ~allow_zero_theta:true prob in
  Alcotest.(check int) "legacy divisor 7" 7 legacy.divisor;
  Alcotest.(check int) "legacy ΣX = 1" 1 legacy.x_total

(* Regression for the duplicate-θ domain merge: [build] used to
   sort_uniq the (θ, domain) pairs, keeping an arbitrary domain for a
   duplicated θ.  Declaring θ = 6 both Exact and Nonnegative must
   honour Exact: the solver may not put any error on it. *)
let test_duplicate_theta_merges_to_most_restrictive () =
  let prob =
    problem ~budget:2 ~domains:[ Exact; Nonnegative; Nonnegative ] [ 6; 6; 4 ]
  in
  Alcotest.(check (list int)) "θ deduplicated" [ 6; 4 ] prob.thetas;
  List.iter
    (fun (name, solution) ->
       let r6 = List.find (fun r -> r.theta = 6) solution.rewrites in
       Alcotest.(check int) (name ^ ": Δ(6) = 0 (Exact honoured)") 0 r6.delta;
       (* d = 4 would win (ΣX = 2) if the Exact constraint were
          dropped; honouring it forces d = 3 *)
       Alcotest.(check int) (name ^ ": divisor 3") 3 solution.divisor;
       Alcotest.(check int) (name ^ ": ΣX = 3") 3 solution.x_total)
    [ ("analytic", solve_analytic prob); ("smt", solve_smt prob) ]

let test_conflicting_sign_domains_merge_to_exact () =
  (* Nonnegative ∧ Nonpositive on the same θ leaves only Δ = 0. *)
  let prob =
    problem ~budget:4 ~domains:[ Nonnegative; Nonpositive ] [ 5; 5 ]
  in
  let solution = solve_analytic prob in
  let r5 = List.find (fun r -> r.theta = 5) solution.rewrites in
  Alcotest.(check int) "Δ(5) = 0" 0 r5.delta;
  Alcotest.(check int) "divisor 5" 5 solution.divisor

let test_budget_zero_falls_back_to_gcd () =
  let solution = solve_analytic (problem ~budget:0 [ 3; 180; 60 ]) in
  Alcotest.(check int) "gcd divisor" 3 solution.divisor;
  Alcotest.(check int) "no error" 0 solution.error_total

let test_exact_domain () =
  let solution =
    solve_analytic
      (problem ~budget:100 ~domains:[ Exact; Exact ] [ 4; 6 ])
  in
  (* Exact deltas force a true common divisor: gcd 4 6 = 2. *)
  Alcotest.(check int) "divisor 2" 2 solution.divisor;
  Alcotest.(check int) "ΣX = 5" 5 solution.x_total

let test_nonpositive_domain () =
  let solution =
    solve_analytic (problem ~budget:2 ~domains:[ Nonpositive ] [ 5 ])
  in
  (* Arriving late only: 5 = 1×6 - 1 collapses to one X with Δ = -1
     (d=6); or 5 = 1×5 exactly.  ΣX = 1 either way, tie on error
     prefers Δ = 0. *)
  Alcotest.(check int) "ΣX = 1" 1 solution.x_total;
  Alcotest.(check int) "error 0" 0 solution.error_total

let prop_solvers_agree =
  let open QCheck2.Gen in
  let gen =
    let theta = int_range 1 40 in
    pair (list_size (int_range 1 4) theta) (int_range 0 10)
  in
  QCheck2.Test.make ~count:60 ~name:"SMT and analytic optima coincide" gen
    (fun (thetas, budget) ->
       let prob = problem ~budget thetas in
       let a = solve_analytic prob in
       let s = solve_smt prob in
       a.x_total = s.x_total && a.error_total = s.error_total)

let prop_solution_satisfies_constraints =
  let open QCheck2.Gen in
  let gen =
    pair (list_size (int_range 1 5) (int_range 1 60)) (int_range 0 12)
  in
  QCheck2.Test.make ~count:100 ~name:"solutions satisfy the constraint system"
    gen
    (fun (thetas, budget) ->
       let prob = problem ~budget thetas in
       let s = solve_analytic prob in
       s.divisor >= 1
       && List.for_all
            (fun r ->
               r.theta = (r.theta' * s.divisor) + r.delta
               && r.delta > -s.divisor && r.delta < s.divisor
               && r.theta' >= 1)
            s.rewrites
       && List.fold_left (fun acc r -> acc + abs r.delta) 0 s.rewrites
          <= prob.budget)

let test_apply () =
  let formula = parse "G (!a -> X X X stop) && G (b -> X X X X X X go)" in
  let solution =
    solve_analytic (problem ~budget:0 [ 3; 6 ])
  in
  Alcotest.check ltl "chains divided by 3"
    (parse "G (!a -> X stop) && G (b -> X X go)")
    (apply solution formula)

let test_apply_leaves_unknown_chains () =
  let solution = gcd_solution [ 4 ] in
  let formula = parse "X X X p" in
  Alcotest.check ltl "chain of 3 untouched" (parse "X X X p")
    (apply solution formula)

(* GCD soundness (the paper's claim): realizability is preserved by
   the reduction.  Checked on small specifications with the exact
   engine. *)
let test_gcd_preserves_realizability () =
  let check_pair original reduced =
    let verdict spec =
      match
        Bounded.solve_iterative ~inputs:[ "i" ] ~outputs:[ "o" ]
          (parse spec)
      with
      | Bounded.Realizable _ -> `Yes
      | Bounded.Unrealizable _ -> `No
      | Bounded.Unknown _ -> `Maybe
    in
    let v1 = verdict original and v2 = verdict reduced in
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" original reduced)
      true
      (v1 = v2)
  in
  check_pair "G (i -> X X o)" "G (i -> X o)";
  check_pair "G (o <-> X X i)" "G (o <-> X i)";
  check_pair "G (i -> X X X X o) && G (!i -> X X !o)"
    "G (i -> X X o) && G (!i -> X !o)"

let () =
  Alcotest.run "timeabs"
    [
      ( "extraction",
        [ Alcotest.test_case "thetas" `Quick test_thetas_extraction ] );
      ( "gcd",
        [
          Alcotest.test_case "paper example" `Quick test_gcd_example;
          Alcotest.test_case "budget 0 ~ gcd" `Quick
            test_budget_zero_falls_back_to_gcd;
          Alcotest.test_case "realizability preserved" `Slow
            test_gcd_preserves_realizability;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "paper optimum (analytic)" `Quick
            test_paper_example_analytic;
          Alcotest.test_case "paper optimum (smt)" `Quick
            test_paper_example_smt;
          Alcotest.test_case "default refuses collapse (analytic)" `Quick
            test_default_refuses_collapse_analytic;
          Alcotest.test_case "default refuses collapse (smt)" `Quick
            test_default_refuses_collapse_smt;
          Alcotest.test_case "budget >= theta regression" `Quick
            test_budget_at_least_theta_no_collapse;
          Alcotest.test_case "duplicate theta domain merge" `Quick
            test_duplicate_theta_merges_to_most_restrictive;
          Alcotest.test_case "conflicting sign domains" `Quick
            test_conflicting_sign_domains_merge_to_exact;
          Alcotest.test_case "exact domain" `Quick test_exact_domain;
          Alcotest.test_case "nonpositive domain" `Quick
            test_nonpositive_domain;
          QCheck_alcotest.to_alcotest prop_solvers_agree;
          QCheck_alcotest.to_alcotest prop_solution_satisfies_constraints;
        ] );
      ( "apply",
        [
          Alcotest.test_case "rewrite" `Quick test_apply;
          Alcotest.test_case "unknown chains" `Quick
            test_apply_leaves_unknown_chains;
        ] );
    ]
