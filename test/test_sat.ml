(* Tests for the CDCL SAT solver: hand-written instances, classic
   families (pigeonhole), and a property test comparing against brute
   force on random small CNFs. *)

open Speccc_sat

let check_sat outcome = match outcome with Sat.Sat _ -> true | Sat.Unsat -> false

let model_satisfies clauses model =
  List.for_all
    (fun clause ->
       List.exists
         (fun lit ->
            let v = model.(abs lit) in
            if lit > 0 then v else not v)
         clause)
    clauses

let solve_and_check clauses =
  match Sat.solve_clauses clauses with
  | Sat.Unsat -> false
  | Sat.Sat model ->
    Alcotest.(check bool) "model satisfies clauses" true
      (model_satisfies clauses model);
    true

let test_trivial () =
  Alcotest.(check bool) "empty problem is sat" true (solve_and_check []);
  Alcotest.(check bool) "single unit" true (solve_and_check [ [ 1 ] ]);
  Alcotest.(check bool) "conflicting units" false
    (check_sat (Sat.solve_clauses [ [ 1 ]; [ -1 ] ]));
  Alcotest.(check bool) "empty clause" false
    (check_sat (Sat.solve_clauses [ [] ]))

let test_propagation_chain () =
  (* 1 -> 2 -> 3 -> ... -> 20, with 1 forced. *)
  let chain =
    List.init 19 (fun i -> [ -(i + 1); i + 2 ]) @ [ [ 1 ] ]
  in
  (match Sat.solve_clauses chain with
   | Sat.Unsat -> Alcotest.fail "chain should be sat"
   | Sat.Sat model ->
     for v = 1 to 20 do
       Alcotest.(check bool) (Printf.sprintf "var %d forced true" v) true
         model.(v)
     done);
  Alcotest.(check bool) "chain + final negation unsat" false
    (check_sat (Sat.solve_clauses ([ [ -20 ] ] @ chain)))

let test_simple_3sat () =
  let clauses = [ [ 1; 2; 3 ]; [ -1; -2 ]; [ -1; -3 ]; [ -2; -3 ]; [ -1 ] ] in
  Alcotest.(check bool) "exactly-one with neg" true (solve_and_check clauses)

(* Pigeonhole: n+1 pigeons into n holes, unsatisfiable.  Variable
   p(i,j) = pigeon i in hole j. *)
let pigeonhole n =
  let var i j = (i * n) + j + 1 in
  let pigeon_clauses =
    List.init (n + 1) (fun i -> List.init n (fun j -> var i j))
  in
  let hole_clauses =
    List.concat_map
      (fun j ->
         List.concat_map
           (fun i ->
              List.filter_map
                (fun i' ->
                   if i' > i then Some [ -(var i j); -(var i' j) ] else None)
                (List.init (n + 1) Fun.id))
           (List.init (n + 1) Fun.id))
      (List.init n Fun.id)
  in
  pigeon_clauses @ hole_clauses

let test_pigeonhole () =
  List.iter
    (fun n ->
       Alcotest.(check bool)
         (Printf.sprintf "PHP(%d) unsat" n)
         false
         (check_sat (Sat.solve_clauses (pigeonhole n))))
    [ 2; 3; 4; 5 ]

let test_assumptions () =
  let solver = Sat.create () in
  Sat.add_clause solver [ -1; 2 ];
  Sat.add_clause solver [ -2; 3 ];
  (match Sat.solve ~assumptions:[ 1 ] solver with
   | Sat.Unsat -> Alcotest.fail "sat under assumption 1"
   | Sat.Sat model ->
     Alcotest.(check bool) "2 propagated" true model.(2);
     Alcotest.(check bool) "3 propagated" true model.(3));
  Sat.add_clause solver [ -3 ];
  (match Sat.solve ~assumptions:[ 1 ] solver with
   | Sat.Unsat -> ()
   | Sat.Sat _ -> Alcotest.fail "unsat under assumption 1 after adding -3");
  (* Still satisfiable without the assumption. *)
  (match Sat.solve solver with
   | Sat.Unsat -> Alcotest.fail "sat without assumptions"
   | Sat.Sat model ->
     Alcotest.(check bool) "1 must be false" false model.(1))

let test_incremental () =
  let solver = Sat.create () in
  Sat.add_clause solver [ 1; 2 ];
  Alcotest.(check bool) "first solve sat" true (check_sat (Sat.solve solver));
  Sat.add_clause solver [ -1 ];
  (match Sat.solve solver with
   | Sat.Unsat -> Alcotest.fail "still sat"
   | Sat.Sat model -> Alcotest.(check bool) "2 true" true model.(2));
  Sat.add_clause solver [ -2 ];
  Alcotest.(check bool) "now unsat" false (check_sat (Sat.solve solver))

(* Brute-force reference. *)
let brute_force nvars clauses =
  let rec try_assignment assignment v =
    if v > nvars then
      List.for_all
        (fun clause ->
           List.exists
             (fun lit ->
                let value = assignment.(abs lit) in
                if lit > 0 then value else not value)
             clause)
        clauses
    else begin
      assignment.(v) <- true;
      try_assignment assignment (v + 1)
      ||
      (assignment.(v) <- false;
       try_assignment assignment (v + 1))
    end
  in
  try_assignment (Array.make (nvars + 1) false) 1

let random_cnf_gen =
  let open QCheck2.Gen in
  let nvars = 6 in
  let literal = map (fun (v, sign) -> if sign then v else -v)
      (pair (int_range 1 nvars) bool) in
  let clause = list_size (int_range 1 4) literal in
  list_size (int_range 1 24) clause

let prop_matches_brute_force =
  QCheck2.Test.make ~count:300 ~name:"solver agrees with brute force"
    random_cnf_gen (fun clauses ->
        let verdict = check_sat (Sat.solve_clauses clauses) in
        let expected = brute_force 6 clauses in
        verdict = expected)

let prop_models_are_models =
  QCheck2.Test.make ~count:300 ~name:"returned models satisfy the CNF"
    random_cnf_gen (fun clauses ->
        match Sat.solve_clauses clauses with
        | Sat.Unsat -> true
        | Sat.Sat model -> model_satisfies clauses model)

let test_tseitin_basic () =
  let sat = Sat.create () in
  let t = Tseitin.create sat in
  let a = Tseitin.fresh t and b = Tseitin.fresh t in
  let both = Tseitin.mk_and t [ a; b ] in
  Tseitin.assert_lit t both;
  (match Sat.solve sat with
   | Sat.Unsat -> Alcotest.fail "a && b sat"
   | Sat.Sat model ->
     Alcotest.(check bool) "a true" true (Tseitin.lit_value model a);
     Alcotest.(check bool) "b true" true (Tseitin.lit_value model b));
  let t2sat = Sat.create () in
  let t2 = Tseitin.create t2sat in
  let x = Tseitin.fresh t2 in
  let contradiction = Tseitin.mk_and t2 [ x; Tseitin.mk_not x ] in
  Alcotest.(check bool) "x && !x folds to false" true
    (contradiction = Tseitin.false_lit t2)

let test_tseitin_xor_ite () =
  let sat = Sat.create () in
  let t = Tseitin.create sat in
  let a = Tseitin.fresh t and b = Tseitin.fresh t and c = Tseitin.fresh t in
  (* ite(c, a, b) xor (c && a || !c && b) is always false. *)
  let ite = Tseitin.mk_ite t c a b in
  let manual =
    Tseitin.mk_or t
      [ Tseitin.mk_and t [ c; a ]; Tseitin.mk_and t [ Tseitin.mk_not c; b ] ]
  in
  let diff = Tseitin.mk_xor t ite manual in
  Tseitin.assert_lit t diff;
  Alcotest.(check bool) "ite equals its definition" false
    (check_sat (Sat.solve sat))

let test_dimacs_roundtrip () =
  let clauses = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; 3 ] ] in
  let text = Format.asprintf "%a" (fun ppf -> Dimacs.print ppf ~nvars:3) clauses in
  let nvars, parsed = Dimacs.parse_exn text in
  Alcotest.(check int) "nvars" 3 nvars;
  Alcotest.(check (list (list int))) "clauses" clauses parsed

let () =
  Alcotest.run "sat"
    [
      ( "basic",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "simple 3sat" `Quick test_simple_3sat;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "and/not folding" `Quick test_tseitin_basic;
          Alcotest.test_case "xor/ite" `Quick test_tseitin_xor_ite;
        ] );
      ( "dimacs",
        [ Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_models_are_models;
        ] );
    ]
