(* Tests for the persistent content-addressed verdict store: the
   record-log format survives crashes (torn tails, flipped bytes,
   clobbered headers) by truncating back to the last sound record, and
   a reopened store answers exactly what the writing process knew. *)

open Speccc_core
open Speccc_runtime
open Speccc_store

let with_faults ?seed triggers f =
  Fault.install ?seed triggers;
  Fun.protect ~finally:Fault.clear f

let temp_store () =
  let path = Filename.temp_file "speccc_store" ".store" in
  Sys.remove path;
  path

let with_store_path f =
  let path = temp_store () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let result ?(verdict = Speccc_harness.Harness.Consistent) ?(engine = "symbolic")
    ?(detail = "ok") doc =
  { Speccc_harness.Harness.doc; verdict; engine; attempts = 1; wall = 0.01;
    detail; fresh = true; degradation = []; progress = None }

let verdict_testable =
  Alcotest.testable
    (fun ppf v ->
       Format.pp_print_string ppf
         (match v with
          | Speccc_harness.Harness.Consistent -> "consistent"
          | Speccc_harness.Harness.Inconsistent -> "inconsistent"
          | Speccc_harness.Harness.Unknown -> "unknown"
          | Speccc_harness.Harness.Failed e -> "failed:" ^ e))
    ( = )

let file_size path = (Unix.stat path).Unix.st_size

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ---------- roundtrip and warm start ---------- *)

let test_roundtrip () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Alcotest.(check bool) "fresh store misses" true
        (Store.find store "k1" = None);
      Store.put store ~key:"k1" (result "d1");
      Store.put store ~key:"k2"
        (result ~verdict:Speccc_harness.Harness.Inconsistent "d2");
      (match Store.find store "k1" with
       | Some r ->
         Alcotest.check verdict_testable "verdict"
           Speccc_harness.Harness.Consistent r.Speccc_harness.Harness.verdict;
         Alcotest.(check bool) "replay markers" true
           ((not r.Speccc_harness.Harness.fresh)
            && r.Speccc_harness.Harness.attempts = 0)
       | None -> Alcotest.fail "k1 lost");
      let s = Store.stats store in
      Alcotest.(check int) "live" 2 s.Store.live;
      Alcotest.(check int) "appends" 2 s.Store.appends;
      Alcotest.(check int) "hits" 1 s.Store.hits;
      Alcotest.(check int) "misses" 1 s.Store.misses;
      Store.close store)

let test_reopen_warm_starts () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put store ~key:"k1" (result "d1");
      Store.put store ~key:"k2"
        (result ~verdict:Speccc_harness.Harness.Inconsistent "d2");
      Store.close store;
      (* a different process would see exactly this *)
      let warm = Store.open_ path in
      let s = Store.stats warm in
      Alcotest.(check int) "live survives reopen" 2 s.Store.live;
      Alcotest.(check int) "no recovery needed" 0 s.Store.recovered_bytes;
      (match Store.find warm "k2" with
       | Some r ->
         Alcotest.check verdict_testable "verdict survives"
           Speccc_harness.Harness.Inconsistent r.Speccc_harness.Harness.verdict;
         Alcotest.(check string) "detail survives" "ok"
           r.Speccc_harness.Harness.detail
       | None -> Alcotest.fail "k2 lost across reopen");
      Store.close warm)

let test_same_verdict_put_dedupes () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put store ~key:"k1" (result "d1");
      let size = file_size path in
      (* same verdict class again: no append, no growth *)
      Store.put store ~key:"k1" (result ~engine:"heuristic" "d1");
      Alcotest.(check int) "no second append" 1 (Store.stats store).Store.appends;
      Alcotest.(check int) "file unchanged" size (file_size path);
      (* a conflicting verdict is appended and wins *)
      Store.put store ~key:"k1"
        (result ~verdict:Speccc_harness.Harness.Inconsistent "d1");
      Alcotest.(check bool) "conflict appended" true (file_size path > size);
      (match Store.find store "k1" with
       | Some r ->
         Alcotest.check verdict_testable "last write wins"
           Speccc_harness.Harness.Inconsistent r.Speccc_harness.Harness.verdict
       | None -> Alcotest.fail "k1 lost");
      Store.close store)

(* ---------- crash recovery ---------- *)

let test_torn_tail_truncated () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put store ~key:"k1" (result "d1");
      let good = file_size path in
      Store.put store ~key:"k2" (result "d2");
      Store.close store;
      (* the process died mid-append: cut the last record in half *)
      let data = read_file path in
      write_file path (String.sub data 0 (good + (file_size path - good) / 2));
      let warnings = ref [] in
      let warm =
        Store.open_ ~on_recover:(fun w -> warnings := w :: !warnings) path
      in
      let s = Store.stats warm in
      Alcotest.(check int) "only the sound prefix survives" 1 s.Store.live;
      Alcotest.(check bool) "torn bytes counted" true
        (s.Store.recovered_bytes > 0);
      Alcotest.(check bool) "recovery reported" true (!warnings <> []);
      Alcotest.(check int) "file truncated to last sound record" good
        (file_size path);
      Alcotest.(check bool) "survivor intact" true
        (Store.find warm "k1" <> None);
      (* the log is usable again: append lands on a clean boundary *)
      Store.put warm ~key:"k3" (result "d3");
      Store.close warm;
      let again = Store.open_ path in
      Alcotest.(check int) "clean after repair" 0
        (Store.stats again).Store.recovered_bytes;
      Alcotest.(check int) "both records readable" 2
        (Store.stats again).Store.live;
      Store.close again)

let test_crc_corruption_dropped () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put store ~key:"k1" (result "d1");
      let good = file_size path in
      Store.put store ~key:"k2" (result "d2");
      Store.close store;
      (* flip one payload byte of the second record: framing intact,
         checksum not *)
      let data = Bytes.of_string (read_file path) in
      let target = good + 8 + 3 in
      Bytes.set data target (Char.chr (Char.code (Bytes.get data target) lxor 1));
      write_file path (Bytes.to_string data);
      let warm = Store.open_ ~on_recover:(fun _ -> ()) path in
      let s = Store.stats warm in
      Alcotest.(check int) "corrupt frame dropped" 1 s.Store.live;
      Alcotest.(check int) "CRC failure counted" 1 s.Store.crc_failures;
      Alcotest.(check int) "truncated back to the sound prefix" good
        (file_size path);
      Store.close warm)

let test_bad_header_rebuilds_empty () =
  with_store_path (fun path ->
      write_file path "not a speccc store at all\n";
      let warnings = ref 0 in
      let store = Store.open_ ~on_recover:(fun _ -> incr warnings) path in
      Alcotest.(check int) "foreign file discarded" 0
        (Store.stats store).Store.live;
      Alcotest.(check bool) "discard reported" true (!warnings > 0);
      Store.put store ~key:"k1" (result "d1");
      Store.close store;
      let warm = Store.open_ path in
      Alcotest.(check int) "rebuilt store is sound" 1
        (Store.stats warm).Store.live;
      Alcotest.(check int) "no recovery on reopen" 0
        (Store.stats warm).Store.recovered_bytes;
      Store.close warm)

let test_append_fault_loses_only_tail_record () =
  (* An injected crash at the [store.append] checkpoint models dying
     between deciding to write and completing the frame: the put is
     lost, everything already on disk survives. *)
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put store ~key:"k1" (result "d1");
      with_faults
        [ { Fault.checkpoint = Fault.Checkpoint.store_append; after = 0;
            action = Fault.Fail "died mid-append" } ]
        (fun () ->
           Alcotest.check_raises "injected crash mid-append"
             (Runtime.Interrupt
                (Runtime.Engine_failure ("store.append", "died mid-append")))
             (fun () -> Store.put store ~key:"k2" (result "d2")));
      Store.close store;
      let warm = Store.open_ path in
      Alcotest.(check int) "only the completed record survives" 1
        (Store.stats warm).Store.live;
      Alcotest.(check int) "log not torn" 0
        (Store.stats warm).Store.recovered_bytes;
      Store.close warm)

(* ---------- compaction ---------- *)

let test_compaction_drops_dead_records () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      (* k1 is superseded twice: two dead records in the log *)
      Store.put store ~key:"k1" (result "d1");
      Store.put store ~key:"k1"
        (result ~verdict:Speccc_harness.Harness.Inconsistent "d1");
      Store.put store ~key:"k1" (result "d1");
      Store.put store ~key:"k2" (result "d2");
      let before = file_size path in
      Store.compact store;
      let s = Store.stats store in
      Alcotest.(check int) "live unchanged" 2 s.Store.live;
      Alcotest.(check int) "one compaction" 1 s.Store.compactions;
      Alcotest.(check bool) "log shrank" true (file_size path < before);
      (match Store.find store "k1" with
       | Some r ->
         Alcotest.check verdict_testable "latest verdict kept"
           Speccc_harness.Harness.Consistent r.Speccc_harness.Harness.verdict
       | None -> Alcotest.fail "k1 lost in compaction");
      Store.close store;
      let warm = Store.open_ path in
      Alcotest.(check int) "compacted log replays clean" 2
        (Store.stats warm).Store.live;
      Alcotest.(check int) "no recovery" 0
        (Store.stats warm).Store.recovered_bytes;
      Store.close warm)

(* The compaction crash drill the chaos explorer's model assumes: a
   process SIGKILLed between writing the complete temp log and the
   atomic rename must leave either the old log or the new one — never
   a partial file — and the reopen must book zero recovery work.  The
   kill is landed deterministically by wedging the real [store.compact]
   checkpoint (announced exactly between the two steps) in a forked
   child and killing it once the temp log appears on disk. *)
let test_sigkill_during_compaction () =
  with_store_path (fun path ->
      let tmp = path ^ ".compact.tmp" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
        (fun () ->
           match Unix.fork () with
           | 0 ->
             (* child: fill the log with dead records, then compact —
                the Delay trigger wedges it with the temp log complete
                and the rename not yet performed *)
             Fault.install
               [ { Fault.checkpoint = "store.compact"; after = 0;
                   action = Fault.Delay 30.0 } ];
             let store = Store.open_ path in
             Store.put store ~key:"k1" (result "d1");
             Store.put store ~key:"k1"
               (result ~verdict:Speccc_harness.Harness.Inconsistent "d1");
             Store.put store ~key:"k1" (result "d1");
             Store.put store ~key:"k2" (result "d2");
             Store.compact store;
             Unix._exit 0
           | child ->
             let deadline = Unix.gettimeofday () +. 30.0 in
             while
               (not (Sys.file_exists tmp))
               && Unix.gettimeofday () < deadline
             do
               Unix.sleepf 0.01
             done;
             Alcotest.(check bool) "temp log appeared" true
               (Sys.file_exists tmp);
             Unix.kill child Sys.sigkill;
             ignore (Unix.waitpid [] child);
             let store = Store.open_ path in
             let s = Store.stats store in
             Alcotest.(check int) "every live verdict present" 2 s.Store.live;
             Alcotest.(check int) "no torn bytes to recover" 0
               s.Store.recovered_bytes;
             Alcotest.(check int) "no CRC failures" 0 s.Store.crc_failures;
             (match Store.find store "k1" with
              | Some r ->
                Alcotest.check verdict_testable "k1 kept its latest verdict"
                  Speccc_harness.Harness.Consistent
                  r.Speccc_harness.Harness.verdict
              | None -> Alcotest.fail "k1 lost to the compaction kill");
             Alcotest.(check bool) "k2 survived" true
               (Store.find store "k2" <> None);
             Store.close store))

let test_auto_compaction_at_threshold () =
  with_store_path (fun path ->
      let store = Store.open_ ~compact_threshold:3 path in
      let flip i =
        let verdict =
          if i mod 2 = 0 then Speccc_harness.Harness.Consistent
          else Speccc_harness.Harness.Inconsistent
        in
        Store.put store ~key:"k1" (result ~verdict "d1")
      in
      for i = 0 to 5 do flip i done;
      Alcotest.(check bool) "threshold tripped" true
        ((Store.stats store).Store.compactions >= 1);
      Alcotest.(check int) "live unchanged" 1 (Store.stats store).Store.live;
      Store.close store)

(* ---------- keys ---------- *)

let test_key_content_addressing () =
  let d1 = Document.of_texts [ "If the pump is lost, the alarm is triggered." ] in
  let d2 = Document.of_texts [ "If the pump is lost, the alarm is triggered." ] in
  let d3 = Document.of_texts [ "If the pump is lost, the alarm is muted." ] in
  Alcotest.(check string) "same content, same key" (Store.key d1) (Store.key d2);
  Alcotest.(check bool) "different content, different key" true
    (Store.key d1 <> Store.key d3);
  Alcotest.(check bool) "salt separates keyspaces" true
    (Store.key ~salt:"tb=3" d1 <> Store.key ~salt:"tb=7" d1)

(* Per-field audit of the salt: every option that changes the checked
   formulas (and hence possibly the verdict) must feed it; every
   effort knob — which decides whether a verdict is reached, never
   which one is true — must not. *)
let test_salt_of_options () =
  let options = Pipeline.default_options () in
  let base = Store.salt_of_options options in
  let changes name flipped =
    Alcotest.(check bool) (name ^ " feeds the salt") true
      (Store.salt_of_options flipped <> base)
  in
  let inert name flipped =
    Alcotest.(check string) (name ^ " does not feed the salt") base
      (Store.salt_of_options flipped)
  in
  (* formula-changing fields *)
  changes "time budget" { options with Pipeline.time_budget = Some 7 };
  changes "time budget None"
    { options with Pipeline.time_budget = None };
  changes "smt abstraction"
    { options with
      Pipeline.use_smt_abstraction = not options.Pipeline.use_smt_abstraction };
  changes "next-as-X template"
    { options with
      Pipeline.translate =
        { options.Pipeline.translate with
          Speccc_translate.Translate.next_as_x =
            not
              options.Pipeline.translate
                .Speccc_translate.Translate.next_as_x } };
  changes "future-as-eventually template"
    { options with
      Pipeline.translate =
        { options.Pipeline.translate with
          Speccc_translate.Translate.future_as_eventually =
            not
              options.Pipeline.translate
                .Speccc_translate.Translate.future_as_eventually } };
  changes "error recovery" { options with Pipeline.recover = true };
  (* engine/effort knobs *)
  inert "engine choice"
    { options with
      Pipeline.engine = Speccc_synthesis.Realizability.Explicit };
  inert "lookahead" { options with Pipeline.lookahead = 11 };
  inert "bound" { options with Pipeline.bound = 2 };
  inert "fuel" { options with Pipeline.fuel = Some 1234 };
  inert "deadline" { options with Pipeline.deadline = Some 0.5 };
  inert "skip engines"
    { options with Pipeline.skip_engines = [ "symbolic" ] };
  inert "certify" { options with Pipeline.certify = true };
  inert "snapshot slot"
    { options with
      Pipeline.snapshot = Some (Speccc_runtime.Snapshot.slot ()) }

let test_cacheable () =
  Alcotest.(check bool) "definite fresh" true (Store.cacheable (result "d"));
  Alcotest.(check bool) "inconsistent fresh" true
    (Store.cacheable (result ~verdict:Speccc_harness.Harness.Inconsistent "d"));
  Alcotest.(check bool) "unknown is budget, not truth" false
    (Store.cacheable (result ~verdict:Speccc_harness.Harness.Unknown "d"));
  Alcotest.(check bool) "failed is environment, not truth" false
    (Store.cacheable (result ~verdict:(Speccc_harness.Harness.Failed "x") "d"));
  Alcotest.(check bool) "replays are not re-persisted" false
    (Store.cacheable { (result "d") with Speccc_harness.Harness.fresh = false })

let test_crc32_vector () =
  (* the classic IEEE check value *)
  Alcotest.(check int32) "crc32(123456789)" 0xCBF43926l
    (Store.crc32 "123456789");
  Alcotest.(check int32) "crc32(empty)" 0l (Store.crc32 "")

let () =
  Alcotest.run "store"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "put/find roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "reopen warm-starts" `Quick
            test_reopen_warm_starts;
          Alcotest.test_case "same-verdict puts dedupe" `Quick
            test_same_verdict_put_dedupes;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "CRC corruption dropped" `Quick
            test_crc_corruption_dropped;
          Alcotest.test_case "bad header rebuilds empty" `Quick
            test_bad_header_rebuilds_empty;
          Alcotest.test_case "append fault loses only the tail" `Quick
            test_append_fault_loses_only_tail_record;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "compaction drops dead records" `Quick
            test_compaction_drops_dead_records;
          Alcotest.test_case "auto-compaction at threshold" `Quick
            test_auto_compaction_at_threshold;
          Alcotest.test_case "SIGKILL between temp log and rename" `Quick
            test_sigkill_during_compaction;
        ] );
      ( "keys",
        [
          Alcotest.test_case "content addressing" `Quick
            test_key_content_addressing;
          Alcotest.test_case "salt of options" `Quick test_salt_of_options;
          Alcotest.test_case "cacheable predicate" `Quick test_cacheable;
          Alcotest.test_case "crc32 test vector" `Quick test_crc32_vector;
        ] );
    ]
