(* Tests for verdict certification: a certified Realizable controller
   really satisfies the spec on random input traces (qcheck), and a
   corrupted witness — injected with Fault.Corrupt at the emission
   checkpoints — is rejected, downgrading the verdict to Inconclusive
   with a typed error in the degradation log. *)

open Speccc_logic
open Speccc_runtime
open Speccc_synthesis
open Speccc_certify
open Speccc_core

let parse = Ltl_parse.formula

let with_faults ?seed triggers f =
  Fault.install ?seed triggers;
  Fun.protect ~finally:Fault.clear f

let corrupt_at checkpoint =
  { Fault.checkpoint; after = 0; action = Fault.Corrupt }

let fail_at checkpoint =
  { Fault.checkpoint; after = 0; action = Fault.Fail "injected" }

let inputs = [ "i" ]
let outputs = [ "o" ]
let realizable_spec = [ parse "G (i -> o)" ]
let unrealizable_spec = [ parse "G (i -> o)"; parse "G (i -> !o)" ]

let is_inconclusive report =
  match report.Realizability.verdict with
  | Realizability.Inconclusive _ -> true
  | Realizability.Consistent | Realizability.Inconsistent -> false

let certify_rungs report =
  List.filter
    (fun r -> r.Realizability.rung_engine = "certify")
    report.Realizability.degradation

(* ---------- the happy paths ---------- *)

let test_certifies_controller () =
  let report = Realizability.check ~inputs ~outputs realizable_spec in
  let report', outcome =
    Certify.apply ~assumptions:[] realizable_spec report
  in
  (match outcome with
   | Certify.Certified _ -> ()
   | Certify.Rejected why -> Alcotest.fail ("rejected: " ^ why)
   | Certify.No_witness why -> Alcotest.fail ("no witness: " ^ why));
  Alcotest.(check bool) "verdict unchanged" true
    (report'.Realizability.verdict = Realizability.Consistent);
  Alcotest.(check int) "no certify rung" 0
    (List.length (certify_rungs report'))

let test_certifies_counterstrategy () =
  let report =
    Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
      unrealizable_spec
  in
  Alcotest.(check bool) "inconsistent" true
    (report.Realizability.verdict = Realizability.Inconsistent);
  let _, outcome = Certify.apply ~assumptions:[] unrealizable_spec report in
  match outcome with
  | Certify.Certified _ -> ()
  | Certify.Rejected why -> Alcotest.fail ("rejected: " ^ why)
  | Certify.No_witness why -> Alcotest.fail ("no witness: " ^ why)

let test_certifies_unsat_core () =
  (* Engines knocked out, the lint floor proves the conflict and ships
     a core; certification re-derives it with a fresh tableau. *)
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.fuel = Some 1_000_000; certify = true }
  in
  with_faults
    [ fail_at Fault.Checkpoint.engine_symbolic;
      fail_at Fault.Checkpoint.engine_explicit;
      fail_at Fault.Checkpoint.engine_sat ]
    (fun () ->
       let outcome =
         Pipeline.run
           ~options
           [ "The pump is started."; "The pump is not started." ]
       in
       Alcotest.(check string) "lint concluded" "lint"
         outcome.Pipeline.report.Realizability.engine_used;
       Alcotest.(check bool) "inconsistent" true
         (outcome.Pipeline.report.Realizability.verdict
          = Realizability.Inconsistent);
       match outcome.Pipeline.certificate with
       | Some (Certify.Certified _) -> ()
       | Some (Certify.Rejected why) -> Alcotest.fail ("rejected: " ^ why)
       | Some (Certify.No_witness why) ->
         Alcotest.fail ("no witness: " ^ why)
       | None -> Alcotest.fail "certificate missing")

(* ---------- corrupted witnesses are rejected ---------- *)

let test_corrupted_controller_downgrades () =
  with_faults [ corrupt_at Fault.Checkpoint.witness_controller ]
    (fun () ->
       let report = Realizability.check ~inputs ~outputs realizable_spec in
       let report', outcome =
         Certify.apply ~assumptions:[] realizable_spec report
       in
       (match outcome with
        | Certify.Rejected _ -> ()
        | Certify.Certified how ->
          Alcotest.fail ("corrupted controller certified: " ^ how)
        | Certify.No_witness why -> Alcotest.fail ("no witness: " ^ why));
       Alcotest.(check bool) "downgraded to Inconclusive" true
         (is_inconclusive report');
       match certify_rungs report' with
       | [ { Realizability.rung_error =
               Some (Runtime.Engine_failure ("certify", _)); _ } ] -> ()
       | _ -> Alcotest.fail "expected one certify rung with a typed error")

let test_corrupted_counterstrategy_downgrades () =
  with_faults [ corrupt_at Fault.Checkpoint.witness_counterstrategy ]
    (fun () ->
       let report =
         Realizability.check ~engine:Realizability.Explicit ~inputs ~outputs
           unrealizable_spec
       in
       let report', outcome =
         Certify.apply ~assumptions:[] unrealizable_spec report
       in
       (match outcome with
        | Certify.Rejected _ -> ()
        | Certify.Certified how ->
          Alcotest.fail ("corrupted counterstrategy certified: " ^ how)
        | Certify.No_witness why -> Alcotest.fail ("no witness: " ^ why));
       Alcotest.(check bool) "downgraded to Inconclusive" true
         (is_inconclusive report'))

let test_corrupted_core_downgrades () =
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.fuel = Some 1_000_000; certify = true }
  in
  with_faults
    [ fail_at Fault.Checkpoint.engine_symbolic;
      fail_at Fault.Checkpoint.engine_explicit;
      fail_at Fault.Checkpoint.engine_sat;
      corrupt_at Fault.Checkpoint.witness_core ]
    (fun () ->
       let outcome =
         Pipeline.run
           ~options
           [ "The pump is started."; "The pump is not started." ]
       in
       (match outcome.Pipeline.certificate with
        | Some (Certify.Rejected _) -> ()
        | Some (Certify.Certified how) ->
          Alcotest.fail ("corrupted core certified: " ^ how)
        | Some (Certify.No_witness why) ->
          Alcotest.fail ("no witness: " ^ why)
        | None -> Alcotest.fail "certificate missing");
       Alcotest.(check bool) "downgraded to Inconclusive" true
         (is_inconclusive outcome.Pipeline.report))

(* ---------- no-witness and mismatch edges ---------- *)

let test_inconclusive_has_no_witness () =
  let report =
    {
      Realizability.verdict = Realizability.Inconclusive "test";
      engine_used = "none";
      controller = None;
      counterstrategy = None;
      unsat_core = None;
      wall_time = 0.;
      detail = "";
      degradation = [];
    }
  in
  let report', outcome = Certify.apply ~assumptions:[] realizable_spec report in
  (match outcome with
   | Certify.No_witness _ -> ()
   | Certify.Certified _ | Certify.Rejected _ ->
     Alcotest.fail "inconclusive verdicts carry nothing to certify");
  Alcotest.(check int) "report untouched" 0
    (List.length report'.Realizability.degradation)

let test_out_of_range_core_rejected () =
  let report =
    {
      Realizability.verdict = Realizability.Inconsistent;
      engine_used = "lint";
      controller = None;
      counterstrategy = None;
      unsat_core = Some [ 0; 7 ];
      wall_time = 0.;
      detail = "";
      degradation = [];
    }
  in
  let report', outcome =
    Certify.apply ~assumptions:[] realizable_spec report
  in
  (match outcome with
   | Certify.Rejected _ -> ()
   | Certify.Certified _ | Certify.No_witness _ ->
     Alcotest.fail "a core naming absent requirements must be rejected");
  Alcotest.(check bool) "downgraded" true (is_inconclusive report')

(* ---------- the qcheck property ---------- *)

let prop_names = [ "i"; "o"; "p" ]

let formula_gen =
  let open QCheck2.Gen in
  int_range 0 6 >>= fix (fun self size ->
      if size <= 1 then
        oneof
          [ return Ltl.True; return Ltl.False; map Ltl.prop (oneofl prop_names) ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
          ])

let letter_gen =
  QCheck2.Gen.(
    map
      (fun bits -> [ ("i", bits land 1 = 1) ])
      (int_range 0 1))

let lasso_gen =
  QCheck2.Gen.(
    pair (list_size (int_range 0 3) letter_gen)
      (list_size (int_range 1 3) letter_gen))

(* A certified Realizable controller satisfies the spec on random input
   lassos — including ones drawn from a different generator than the
   certifier's own LCG, so the property is not circular. *)
let prop_certified_controller_satisfies_spec =
  QCheck2.Test.make ~count:60
    ~name:"certified Realizable controller satisfies the spec on random traces"
    QCheck2.Gen.(pair formula_gen (list_size (int_range 1 8) lasso_gen))
    (fun (formula, lassos) ->
       let report =
         Realizability.check ~engine:Realizability.Explicit
           ~inputs:[ "i" ] ~outputs:[ "o"; "p" ] [ formula ]
       in
       match report.Realizability.verdict, report.Realizability.controller with
       | Realizability.Consistent, Some machine ->
         (match Certify.certificate ~assumptions:[] [ formula ] report with
          | Certify.Certified _ ->
            List.for_all
              (fun (prefix, loop) ->
                 Trace.holds (Mealy.lasso machine ~prefix ~loop) formula)
              lassos
          | Certify.Rejected _ | Certify.No_witness _ ->
            (* an exact engine's controller must certify *)
            false)
       | _ -> true)

let () =
  Alcotest.run "certify"
    [
      ( "happy-path",
        [
          Alcotest.test_case "controller replay" `Quick
            test_certifies_controller;
          Alcotest.test_case "counterstrategy panel" `Quick
            test_certifies_counterstrategy;
          Alcotest.test_case "unsat core re-check" `Quick
            test_certifies_unsat_core;
        ] );
      ( "corruption-drills",
        [
          Alcotest.test_case "corrupted controller" `Quick
            test_corrupted_controller_downgrades;
          Alcotest.test_case "corrupted counterstrategy" `Quick
            test_corrupted_counterstrategy_downgrades;
          Alcotest.test_case "corrupted core" `Quick
            test_corrupted_core_downgrades;
        ] );
      ( "edges",
        [
          Alcotest.test_case "inconclusive has no witness" `Quick
            test_inconclusive_has_no_witness;
          Alcotest.test_case "out-of-range core" `Quick
            test_out_of_range_core_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest
            prop_certified_controller_satisfies_spec;
        ] );
    ]
