(* Tests for the bounded LRU memoization cache: eviction order and
   recency promotion, memo counters, the global pass-through switch,
   and the property the whole PR rests on — verdicts are identical
   with caching on and off. *)

open Speccc_cache

module C = Cache.Make (Cache.Int_key)

let stat name =
  List.find_opt (fun s -> s.Cache.name = name) (Cache.stats ())

(* ---------- LRU mechanics ---------- *)

let test_lru_eviction_order () =
  let c = C.create ~name:"test.evict" ~capacity:3 () in
  C.add c 1 "one";
  C.add c 2 "two";
  C.add c 3 "three";
  C.add c 4 "four";
  Alcotest.(check (option string)) "oldest evicted" None (C.find_opt c 1);
  Alcotest.(check (option string)) "2 kept" (Some "two") (C.find_opt c 2);
  Alcotest.(check (option string)) "4 kept" (Some "four") (C.find_opt c 4);
  Alcotest.(check int) "at capacity" 3 (C.length c)

let test_lru_promotion () =
  let c = C.create ~name:"test.promote" ~capacity:3 () in
  C.add c 1 "one";
  C.add c 2 "two";
  C.add c 3 "three";
  (* Touch 1 so it is the most recent; the next insert must evict 2. *)
  ignore (C.find_opt c 1);
  C.add c 4 "four";
  Alcotest.(check (option string)) "promoted survives" (Some "one")
    (C.find_opt c 1);
  Alcotest.(check (option string)) "unpromoted evicted" None
    (C.find_opt c 2)

let test_memo_counters () =
  let c = C.create ~name:"test.counters" ~capacity:8 () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "first memo computes" 42 (C.memo c 7 compute);
  Alcotest.(check int) "second memo replays" 42 (C.memo c 7 compute);
  Alcotest.(check int) "one computation" 1 !calls;
  match stat "test.counters" with
  | None -> Alcotest.fail "cache not registered"
  | Some s ->
    Alcotest.(check int) "one hit" 1 s.Cache.hits;
    Alcotest.(check int) "one miss" 1 s.Cache.misses;
    Alcotest.(check bool) "hit rate is 1/2" true
      (abs_float (Cache.hit_rate s -. 0.5) < 1e-9)

let test_disabled_is_passthrough () =
  let c = C.create ~name:"test.disabled" ~capacity:8 () in
  Cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Cache.set_enabled true)
    (fun () ->
       let calls = ref 0 in
       let compute () = incr calls; 1 in
       ignore (C.memo c 1 compute);
       ignore (C.memo c 1 compute);
       Alcotest.(check int) "every memo recomputes" 2 !calls;
       Alcotest.(check int) "nothing stored" 0 (C.length c);
       match stat "test.disabled" with
       | None -> Alcotest.fail "cache not registered"
       | Some s ->
         Alcotest.(check int) "no counters moved" 0
           (s.Cache.hits + s.Cache.misses))

(* ---------- verdicts do not depend on memoization ---------- *)

let parse = Speccc_logic.Ltl_parse.formula

let verdict_sets =
  [ [ "G (trigger -> flag)"; "G (trigger -> !flag)" ];
    [ "G (a -> X b)"; "F a" ];
    [ "G (req -> F ack)" ];
    [ "G (a -> X b)"; "G (a -> X !b)"; "G (F a)" ] ]

let check_all engine =
  let options =
    { (Speccc_core.Pipeline.default_options ()) with
      Speccc_core.Pipeline.engine }
  in
  List.map
    (fun texts ->
       let formulas = List.map parse texts in
       let _, report =
         Speccc_core.Pipeline.check_formulas ~options formulas
       in
       report.Speccc_synthesis.Realizability.verdict)
    verdict_sets

let test_verdicts_cache_independent () =
  List.iter
    (fun engine ->
       let cached = check_all engine in
       Cache.reset ();
       Cache.set_enabled false;
       let uncached =
         Fun.protect
           ~finally:(fun () -> Cache.set_enabled true)
           (fun () -> check_all engine)
       in
       List.iter2
         (fun a b ->
            Alcotest.(check bool) "cached verdict = uncached verdict" true
              (a = b))
         cached uncached)
    [ Speccc_synthesis.Realizability.Explicit;
      Speccc_synthesis.Realizability.Symbolic ]

(* ---------- capacity table ---------- *)

let test_capacity_table () =
  Alcotest.(check int) "unknown names keep their default" 77
    (Cache.capacity ~name:"no-such-cache" ~default:77);
  Alcotest.(check bool) "automaton cache is sized well above the seed's 256"
    true
    (Cache.capacity ~name:"nbw.of_ltl" ~default:256 >= 16384);
  (* the live instance must actually carry the table's size *)
  match stat "nbw.of_ltl" with
  | Some s ->
    Alcotest.(check int) "live instance uses the table"
      (Cache.capacity ~name:"nbw.of_ltl" ~default:256)
      s.Cache.capacity
  | None ->
    (* instance not created in this process yet: force it *)
    ignore
      (Speccc_automata.Nbw.of_ltl (Speccc_logic.Ltl.prop "capacity_probe"));
    (match stat "nbw.of_ltl" with
     | Some s ->
       Alcotest.(check int) "live instance uses the table"
         (Cache.capacity ~name:"nbw.of_ltl" ~default:256)
         s.Cache.capacity
     | None -> Alcotest.fail "nbw.of_ltl cache not registered")

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "recency promotion" `Quick test_lru_promotion;
          Alcotest.test_case "memo counters" `Quick test_memo_counters;
          Alcotest.test_case "disabled pass-through" `Quick
            test_disabled_is_passthrough;
          Alcotest.test_case "capacity table" `Quick test_capacity_table;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "verdicts cache-independent" `Quick
            test_verdicts_cache_independent;
        ] );
    ]
