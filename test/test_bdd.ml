(* Tests for the BDD package: hand-written diagrams and property tests
   against a truth-table reference on random boolean expressions. *)

open Speccc_bdd

type expr =
  | Evar of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Exor of expr * expr

let nvars = 5

let expr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self size ->
      if size <= 1 then map (fun v -> Evar v) (int_range 0 (nvars - 1))
      else
        let sub = self (size / 2) in
        oneof
          [
            map (fun v -> Evar v) (int_range 0 (nvars - 1));
            map (fun e -> Enot e) sub;
            map2 (fun a b -> Eand (a, b)) sub sub;
            map2 (fun a b -> Eor (a, b)) sub sub;
            map2 (fun a b -> Exor (a, b)) sub sub;
          ])

let rec eval_expr assignment = function
  | Evar v -> assignment v
  | Enot e -> not (eval_expr assignment e)
  | Eand (a, b) -> eval_expr assignment a && eval_expr assignment b
  | Eor (a, b) -> eval_expr assignment a || eval_expr assignment b
  | Exor (a, b) -> eval_expr assignment a <> eval_expr assignment b

let rec build m = function
  | Evar v -> Bdd.var m v
  | Enot e -> Bdd.not_ m (build m e)
  | Eand (a, b) -> Bdd.and_ m (build m a) (build m b)
  | Eor (a, b) -> Bdd.or_ m (build m a) (build m b)
  | Exor (a, b) -> Bdd.xor m (build m a) (build m b)

let all_assignments n =
  List.init (1 lsl n) (fun bits -> fun v -> bits land (1 lsl v) <> 0)

let test_constants () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "x && !x = 0" true
    (Bdd.is_zero (Bdd.and_ m (Bdd.var m 0) (Bdd.nvar m 0)));
  Alcotest.(check bool) "x || !x = 1" true
    (Bdd.is_one (Bdd.or_ m (Bdd.var m 0) (Bdd.nvar m 0)))

let test_hash_consing () =
  let m = Bdd.manager () in
  let f1 = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  let f2 = Bdd.and_ m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "commuted and is physically equal" true
    (Bdd.equal f1 f2);
  let g1 = Bdd.or_ m (Bdd.nvar m 0) (Bdd.nvar m 1) in
  Alcotest.(check bool) "De Morgan" true
    (Bdd.equal (Bdd.not_ m f1) g1)

let test_quantification () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.and_ m x y in
  Alcotest.(check bool) "exists x. x && y = y" true
    (Bdd.equal (Bdd.exists m [ 0 ] f) y);
  Alcotest.(check bool) "forall x. x && y = 0" true
    (Bdd.is_zero (Bdd.forall m [ 0 ] f));
  let g = Bdd.or_ m x y in
  Alcotest.(check bool) "forall x. x || y = y" true
    (Bdd.equal (Bdd.forall m [ 0 ] g) y);
  Alcotest.(check bool) "exists both vars" true
    (Bdd.is_one (Bdd.exists m [ 0; 1 ] f))

let test_restrict_compose_rename () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.xor m x y in
  Alcotest.(check bool) "restrict x=1 gives !y" true
    (Bdd.equal (Bdd.restrict m [ (0, true) ] f) (Bdd.not_ m y));
  Alcotest.(check bool) "compose y:=z in x^y" true
    (Bdd.equal (Bdd.compose m 1 z f) (Bdd.xor m x z));
  Alcotest.(check bool) "rename x->z" true
    (Bdd.equal (Bdd.rename m [ (0, 2) ] f) (Bdd.xor m z y));
  (* Swap via rename with collisions. *)
  let swapped = Bdd.rename m [ (0, 1); (1, 0) ] (Bdd.and_ m x (Bdd.not_ m y)) in
  Alcotest.(check bool) "swap rename" true
    (Bdd.equal swapped (Bdd.and_ m y (Bdd.not_ m x)))

let test_rename_monotone () =
  let m = Bdd.manager () in
  let f =
    Bdd.and_ m
      (Bdd.xor m (Bdd.var m 0) (Bdd.var m 2))
      (Bdd.or_ m (Bdd.var m 4) (Bdd.nvar m 0))
  in
  (* shift every even variable up by one (interleaved current/next) *)
  let mapping = [ (0, 1); (2, 3); (4, 5) ] in
  let fast = Bdd.rename_monotone m mapping f in
  let slow = Bdd.rename m mapping f in
  Alcotest.(check bool) "monotone rename agrees with compose-rename" true
    (Bdd.equal fast slow);
  Alcotest.(check (list int)) "support shifted" [ 1; 3; 5 ]
    (Bdd.support m fast);
  (* a non-monotone mapping is rejected *)
  (match Bdd.rename_monotone m [ (0, 5); (2, 3) ] f with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "non-monotone mapping must be rejected")

let prop_rename_monotone_matches_rename =
  QCheck2.Test.make ~count:200
    ~name:"monotone rename = general rename on shift-by-one maps"
    expr_gen
    (fun e ->
       let m = Bdd.manager () in
       (* express e over even variables only, then shift to odd *)
       let d =
         let rec build_even = function
           | Evar v -> Bdd.var m (2 * v)
           | Enot x -> Bdd.not_ m (build_even x)
           | Eand (a, b) -> Bdd.and_ m (build_even a) (build_even b)
           | Eor (a, b) -> Bdd.or_ m (build_even a) (build_even b)
           | Exor (a, b) -> Bdd.xor m (build_even a) (build_even b)
         in
         build_even e
       in
       let mapping = List.init nvars (fun v -> (2 * v, (2 * v) + 1)) in
       Bdd.equal (Bdd.rename_monotone m mapping d) (Bdd.rename m mapping d))

let test_support_satcount () =
  let m = Bdd.manager () in
  let f = Bdd.or_ m (Bdd.var m 0) (Bdd.var m 3) in
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Bdd.support m f);
  Alcotest.(check (float 0.0)) "sat_count over 4 vars" 12.0
    (Bdd.sat_count m f ~nvars:4);
  Alcotest.(check (float 0.0)) "one over 3 vars" 8.0
    (Bdd.sat_count m (Bdd.one m) ~nvars:3);
  Alcotest.(check (float 0.0)) "zero" 0.0 (Bdd.sat_count m (Bdd.zero m) ~nvars:3)

let test_any_sat () =
  let m = Bdd.manager () in
  let f = Bdd.and_ m (Bdd.var m 1) (Bdd.nvar m 2) in
  (match Bdd.any_sat f with
   | None -> Alcotest.fail "satisfiable"
   | Some assignment ->
     Alcotest.(check bool) "assignment satisfies" true
       (Bdd.eval f (fun v ->
            match List.assoc_opt v assignment with
            | Some b -> b
            | None -> false)));
  Alcotest.(check bool) "zero has no model" true
    (Bdd.any_sat (Bdd.zero m) = None)

let prop_matches_truth_table =
  QCheck2.Test.make ~count:400 ~name:"BDD agrees with evaluation" expr_gen
    (fun e ->
       let m = Bdd.manager () in
       let d = build m e in
       List.for_all
         (fun assignment -> Bdd.eval d assignment = eval_expr assignment e)
         (all_assignments nvars))

let prop_satcount_matches =
  QCheck2.Test.make ~count:200 ~name:"sat_count agrees with enumeration"
    expr_gen (fun e ->
        let m = Bdd.manager () in
        let d = build m e in
        let expected =
          List.length
            (List.filter (fun a -> eval_expr a e) (all_assignments nvars))
        in
        int_of_float (Bdd.sat_count m d ~nvars) = expected)

let prop_exists_is_disjunction =
  QCheck2.Test.make ~count:200 ~name:"exists v. f = f[v:=0] || f[v:=1]"
    QCheck2.Gen.(pair expr_gen (int_range 0 (nvars - 1)))
    (fun (e, v) ->
       let m = Bdd.manager () in
       let d = build m e in
       let quantified = Bdd.exists m [ v ] d in
       let manual =
         Bdd.or_ m
           (Bdd.restrict m [ (v, false) ] d)
           (Bdd.restrict m [ (v, true) ] d)
       in
       Bdd.equal quantified manual)

let prop_canonical =
  QCheck2.Test.make ~count:200
    ~name:"semantically equal expressions share a node"
    QCheck2.Gen.(pair expr_gen expr_gen)
    (fun (e1, e2) ->
       let m = Bdd.manager () in
       let d1 = build m e1 and d2 = build m e2 in
       let semantically_equal =
         List.for_all
           (fun a -> eval_expr a e1 = eval_expr a e2)
           (all_assignments nvars)
       in
       Bdd.equal d1 d2 = semantically_equal)


(* Reordering drill: sifting must preserve semantics exactly, and the
   rebuilt manager must stay canonical — rebuilding the same function
   after the reorder has to produce the translated root itself. *)
let prop_reorder_preserves_semantics =
  QCheck2.Test.make ~count:200 ~name:"reorder preserves semantics"
    QCheck2.Gen.(pair expr_gen expr_gen)
    (fun (e1, e2) ->
       let m = Bdd.manager () in
       let d1 = build m e1 and d2 = build m e2 in
       match Bdd.reorder m ~groups:[ [ 1; 2 ] ] [ d1; d2 ] with
       | [ r1; r2 ] ->
         List.for_all
           (fun a ->
              Bdd.eval r1 a = eval_expr a e1
              && Bdd.eval r2 a = eval_expr a e2)
           (all_assignments nvars)
         && Bdd.equal (build m e1) r1
         && Bdd.equal (build m e2) r2
       | _ -> false)

let test_reorder_pinned_and_counters () =
  let m = Bdd.manager () in
  Bdd.set_reorder_threshold m (Some 1);
  (* A function whose optimal order differs from the identity order:
     pairwise comparisons x_i <-> y_i built with all x's above all
     y's. *)
  let n = 6 in
  let f =
    let parts =
      List.init n (fun i -> Bdd.eqv m (Bdd.var m i) (Bdd.var m (n + i)))
    in
    Bdd.and_list m parts
  in
  let before = Bdd.size f in
  Alcotest.(check bool) "trigger due" true (Bdd.reorder_due m);
  (match Bdd.reorder m ~pinned:1 [ f ] with
   | [ f' ] ->
     Alcotest.(check bool) "variable 0 stays root-most" true
       (match Bdd.top_var f' with Some 0 -> true | _ -> false);
     Alcotest.(check bool) "sifting shrinks the comparator" true
       (Bdd.size f' < before);
     Alcotest.(check int) "one reorder recorded" 1 (Bdd.reorders m);
     let all = all_assignments (2 * n) in
     let reference a = List.for_all (fun i -> a i = a (n + i)) (List.init n Fun.id) in
     Alcotest.(check bool) "same function" true
       (List.for_all (fun a -> Bdd.eval f' a = reference a) all)
   | _ -> Alcotest.fail "root list shape")

let () =
  Alcotest.run "bdd"
    [
      ( "basic",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "quantification" `Quick test_quantification;
          Alcotest.test_case "restrict/compose/rename" `Quick
            test_restrict_compose_rename;
          Alcotest.test_case "monotone rename" `Quick test_rename_monotone;
          Alcotest.test_case "support and sat_count" `Quick
            test_support_satcount;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_truth_table;
          QCheck_alcotest.to_alcotest prop_satcount_matches;
          QCheck_alcotest.to_alcotest prop_exists_is_disjunction;
          QCheck_alcotest.to_alcotest prop_canonical;
          QCheck_alcotest.to_alcotest prop_rename_monotone_matches_rename;
          QCheck_alcotest.to_alcotest prop_reorder_preserves_semantics;
        ] );
      ( "reordering",
        [
          Alcotest.test_case "pinned sift + counters" `Quick
            test_reorder_pinned_and_counters;
        ] );
    ]
