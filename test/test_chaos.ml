(* Tests for the chaos explorer: schedule and corpus-entry codecs, the
   fault-checkpoint registry, the strict-I/O lint (no raw I/O path may
   run outside an enclosing checkpoint scope), and full replays of
   every pinned [.chaos] corpus entry — the explorer-found regressions
   and the crash drills, each run clean + perturbed (+ recovery) with
   the whole invariant suite. *)

module Fault = Speccc_runtime.Fault
module Chaos = Speccc_chaos.Chaos
module Schedule = Speccc_chaos.Schedule
module Workload = Speccc_chaos.Workload

let binary =
  let exe = "speccc_cli.exe" in
  let candidates =
    [ Filename.concat ".." (Filename.concat "bin" exe);
      List.fold_left Filename.concat "_build" [ "default"; "bin"; exe ] ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path when Filename.is_relative path ->
    Filename.concat (Sys.getcwd ()) path
  | Some path -> path
  | None -> Alcotest.fail ("speccc CLI binary not built: " ^ Sys.getcwd ())

(* ---------- schedule codec ---------- *)

let test_schedule_roundtrip () =
  let cases =
    [ { Schedule.site = "store.append"; occurrence = 0; action = Schedule.Crash };
      { Schedule.site = "bdd.fixpoint"; occurrence = 3;
        action = Schedule.Delay 2.5 };
      { Schedule.site = "witness.controller"; occurrence = 1;
        action = Schedule.Corrupt };
      { Schedule.site = Schedule.kill_site; occurrence = 2;
        action = Schedule.Kill } ]
  in
  List.iter
    (fun p ->
       let s = Schedule.perturbation_to_string p in
       match Schedule.perturbation_of_string s with
       | Some q -> Alcotest.(check string) ("roundtrip " ^ s) s
                     (Schedule.perturbation_to_string q)
       | None -> Alcotest.fail ("unparsable own output: " ^ s))
    cases;
  List.iter
    (fun bad ->
       Alcotest.(check bool) ("rejects " ^ bad) true
         (Schedule.perturbation_of_string bad = None))
    [ "no-equals"; "site@x=crash"; "site@1=explode"; "@1=crash";
      "site@-1=crash"; "site@1=delay:-2" ]

let test_schedule_triggers_and_kills () =
  let schedule =
    [ { Schedule.site = "store.append"; occurrence = 1; action = Schedule.Crash };
      { Schedule.site = Schedule.kill_site; occurrence = 2;
        action = Schedule.Kill };
      { Schedule.site = "sat.solve"; occurrence = 0;
        action = Schedule.Delay 0.25 } ]
  in
  let triggers = Schedule.triggers schedule in
  Alcotest.(check int) "kill entries never reach the fault plan" 2
    (List.length triggers);
  Alcotest.(check (list int)) "kill indices" [ 2 ] (Schedule.kills schedule);
  Alcotest.(check bool) "delay budget" true
    (abs_float (Schedule.delay_budget schedule -. 0.25) < 1e-9)

(* ---------- corpus entry codec ---------- *)

let test_entry_roundtrip () =
  let w =
    { (Workload.seed ~kind:Workload.Serve ()) with
      Workload.deadline = 0.5; grace = 0.25 }
  in
  let entry =
    { Chaos.workload = w;
      schedule =
        [ { Schedule.site = "bdd.fixpoint"; occurrence = 1;
            action = Schedule.Delay 3.0 } ];
      seed = 7;
      expect = Chaos.Pass;
      requires = [ ("serve.preempted", 1) ] }
  in
  let text = Chaos.entry_to_string entry in
  match Chaos.entry_of_string text with
  | Error e -> Alcotest.fail ("own output unparsable: " ^ e)
  | Ok back ->
    Alcotest.(check string) "stable reprint" text (Chaos.entry_to_string back)

let test_entry_rejects_garbage () =
  List.iter
    (fun text ->
       match Chaos.entry_of_string text with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail ("accepted garbage: " ^ text))
    [ "workload: spaceship\n";
      "workload: batch\nperturb: nonsense\n";
      "workload: batch\ntext: orphan line\n";
      "workload: batch\nexpect: maybe\n";
      "workload: batch\nrequire: served\n" ]

(* ---------- checkpoint registry ---------- *)

let test_registry_covers_io_sites () =
  List.iter
    (fun site ->
       Alcotest.(check bool) (site ^ " registered") true
         (Fault.Checkpoint.mem site))
    [ "store.append"; "store.compact"; "journal.append"; "server.write";
      "shard.dispatch"; "route.write"; "server.request"; "bdd.fixpoint" ];
  Alcotest.(check bool) "store.append is corrupt-capable" true
    (Fault.Checkpoint.corruptible "store.append");
  Alcotest.(check bool) "journal.append is not corrupt-capable" false
    (Fault.Checkpoint.corruptible "journal.append");
  (* registration is idempotent: re-registering must not duplicate *)
  let before = List.length (Fault.Checkpoint.all ()) in
  let (_ : string) = Fault.Checkpoint.register "store.append" "dup" in
  Alcotest.(check int) "idempotent registration" before
    (List.length (Fault.Checkpoint.all ()))

(* Satellite invariant: no raw I/O path may run without an enclosing
   fault-checkpoint scope.  Run a full journalled + store-backed batch
   workload under the strict-I/O lint and demand zero unguarded
   events; then prove the lint actually bites with a bare event. *)
let test_strict_io_lint () =
  Fault.strict_io true;
  let dir = Workload.temp_dir "speccc_strict_io" in
  let obs =
    Fun.protect
      ~finally:(fun () ->
        Workload.rm_rf dir;
        Fault.strict_io false)
      (fun () -> Workload.run_batch ~dir ~resume:false (Workload.seed ()))
  in
  (match obs.Workload.crashed with
   | Some e -> Alcotest.fail ("strict-io batch run crashed: " ^ e)
   | None -> ());
  Alcotest.(check (list (pair string int)))
    "every I/O path ran inside a fault checkpoint" []
    (Fault.unguarded_io ());
  Fault.strict_io true;
  Fault.io_event "test.bare";
  let unguarded = Fault.unguarded_io () in
  Fault.strict_io false;
  Alcotest.(check (list (pair string int))) "bare I/O event is caught"
    [ ("test.bare", 1) ] unguarded

(* ---------- minimizer ---------- *)

let test_list_shrinks_ladder () =
  let shrinks = Speccc_diffcheck.Shrink.list_shrinks [ 1; 2; 3; 4 ] in
  List.iter
    (fun candidate ->
       Alcotest.(check bool) "strictly smaller" true
         (List.length candidate < 4);
       List.iter
         (fun x ->
            Alcotest.(check bool) "only original elements" true
              (List.mem x [ 1; 2; 3; 4 ]))
         candidate)
    shrinks;
  Alcotest.(check bool) "halves present" true
    (List.mem [ 1; 2 ] shrinks && List.mem [ 3; 4 ] shrinks);
  Alcotest.(check bool) "single deletions present" true
    (List.mem [ 2; 3; 4 ] shrinks && List.mem [ 1; 2; 3 ] shrinks)

(* ---------- corpus replay ---------- *)

let corpus_dir = "corpus"

let corpus_entries () =
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".chaos")
    |> List.sort compare
  else []

let replay_entry file () =
  let path = Filename.concat corpus_dir file in
  match Chaos.load_entry path with
  | Error e -> Alcotest.fail (file ^ ": " ^ e)
  | Ok entry -> (
      match Chaos.replay ~binary entry with
      | Ok _ -> ()
      | Error problems ->
        Alcotest.fail (file ^ ":\n  " ^ String.concat "\n  " problems))

let replay_tests =
  List.map
    (fun file ->
       let speed =
         match (Chaos.load_entry (Filename.concat corpus_dir file) : _ result) with
         | Ok e when e.Chaos.workload.Workload.kind = Workload.Batch ->
           `Quick
         | _ -> `Slow
       in
       Alcotest.test_case ("replay " ^ file) speed (replay_entry file))
    (corpus_entries ())

let () =
  Alcotest.run "chaos"
    [ ("schedule",
       [ Alcotest.test_case "perturbation codec" `Quick test_schedule_roundtrip;
         Alcotest.test_case "triggers and kills" `Quick
           test_schedule_triggers_and_kills ]);
      ("corpus-format",
       [ Alcotest.test_case "entry codec" `Quick test_entry_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick
           test_entry_rejects_garbage ]);
      ("registry",
       [ Alcotest.test_case "io sites registered" `Quick
           test_registry_covers_io_sites;
         Alcotest.test_case "strict io lint" `Quick test_strict_io_lint ]);
      ("minimizer",
       [ Alcotest.test_case "shrink ladder" `Quick test_list_shrinks_ladder ]);
      ("corpus", replay_tests) ]
