(* Tests for the supervised service mode: the JSONL protocol, the
   circuit-breaker state machine, watchdog hard preemption with pool
   recovery, queue shedding with exactly-one-response, and a soak run
   under a seeded fault plan checked against a sequential oracle. *)

open Speccc_runtime
open Speccc_core
open Speccc_harness
open Speccc_server

let with_faults ?seed triggers f =
  Fault.install ?seed triggers;
  Fun.protect ~finally:Fault.clear f

(* ---------- jsonl ---------- *)

let test_jsonl_roundtrip () =
  let cases =
    [ "null"; "true"; "false"; "42"; "-1.5"; "\"hi\"";
      "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\ny\"}"; "[]"; "{}" ]
  in
  List.iter
    (fun text ->
       match Jsonl.parse text with
       | Error e -> Alcotest.fail (text ^ ": " ^ e)
       | Ok v ->
         (match Jsonl.parse (Jsonl.to_string v) with
          | Ok v' ->
            Alcotest.(check bool) ("roundtrip " ^ text) true (v = v')
          | Error e -> Alcotest.fail ("reparse " ^ text ^ ": " ^ e)))
    cases

let test_jsonl_rejects_garbage () =
  List.iter
    (fun text ->
       match Jsonl.parse text with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail (text ^ " must not parse"))
    [ ""; "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2";
      "{\"a\":1,}" ]

let test_jsonl_escapes () =
  match Jsonl.parse "\"a\\\"b\\\\c\\n\\t\\u0041\"" with
  | Ok (Jsonl.Str s) ->
    Alcotest.(check string) "decoded" "a\"b\\c\n\tA" s
  | Ok _ | Error _ -> Alcotest.fail "escaped string must parse"

let test_jsonl_accessors () =
  match Jsonl.parse "{\"id\":7,\"name\":\"x\",\"opts\":{\"fuel\":100}}" with
  | Error e -> Alcotest.fail e
  | Ok json ->
    Alcotest.(check (option int)) "int member" (Some 7)
      (Jsonl.int_member "id" json);
    Alcotest.(check (option string)) "str member" (Some "x")
      (Jsonl.str_member "name" json);
    Alcotest.(check (option int)) "nested" (Some 100)
      (Option.bind (Jsonl.member "opts" json) (Jsonl.int_member "fuel"));
    Alcotest.(check (option string)) "missing" None
      (Jsonl.str_member "absent" json)

(* ---------- breaker ---------- *)

let test_breaker_opens_after_consecutive_failures () =
  let b = Breaker.create ~rung:"symbolic" ~threshold:3 ~cooldown:10. in
  Alcotest.(check string) "starts closed" "closed" (Breaker.state_name b);
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:0.;
  (* a success resets the consecutive count *)
  Breaker.record_success b;
  Breaker.record_failure b ~now:1.;
  Breaker.record_failure b ~now:1.;
  Alcotest.(check string) "still closed at 2/3" "closed"
    (Breaker.state_name b);
  Breaker.record_failure b ~now:1.;
  Alcotest.(check string) "open at 3/3" "open" (Breaker.state_name b);
  Alcotest.(check bool) "skips while open" true (Breaker.should_skip b ~now:5.);
  Alcotest.(check int) "one open" 1 (Breaker.opens b)

let test_breaker_half_open_probe () =
  let b = Breaker.create ~rung:"sat" ~threshold:1 ~cooldown:10. in
  Breaker.record_failure b ~now:0.;
  Alcotest.(check string) "open" "open" (Breaker.state_name b);
  (* cooldown passed: exactly one caller becomes the probe *)
  Alcotest.(check bool) "probe admitted" false
    (Breaker.should_skip b ~now:11.);
  Alcotest.(check string) "half-open" "half-open" (Breaker.state_name b);
  Alcotest.(check bool) "concurrent request still skips" true
    (Breaker.should_skip b ~now:11.);
  (* a failing probe re-opens for another cooldown *)
  Breaker.record_failure b ~now:11.;
  Alcotest.(check string) "re-opened" "open" (Breaker.state_name b);
  Alcotest.(check bool) "skipping again" true (Breaker.should_skip b ~now:12.);
  (* next probe succeeds and closes for good *)
  Alcotest.(check bool) "second probe" false
    (Breaker.should_skip b ~now:22.);
  Breaker.record_success b;
  Alcotest.(check string) "closed" "closed" (Breaker.state_name b);
  Alcotest.(check bool) "serving normally" false
    (Breaker.should_skip b ~now:23.)

let test_breaker_reset_clears_phantom_state () =
  (* The shard router resets a breaker when it respawns a worker: the
     replacement must start closed with a zero failure count, however
     its predecessor died. *)
  let b = Breaker.create ~rung:"symbolic" ~threshold:2 ~cooldown:60. in
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:0.;
  Alcotest.(check string) "open before reset" "open" (Breaker.state_name b);
  Alcotest.(check int) "failures at threshold" 2 (Breaker.failures b);
  Breaker.reset b;
  Alcotest.(check string) "closed after reset" "closed"
    (Breaker.state_name b);
  Alcotest.(check int) "failure count cleared" 0 (Breaker.failures b);
  Alcotest.(check bool) "serving immediately" false
    (Breaker.should_skip b ~now:1.);
  (* reset wipes phantom state, not history *)
  Alcotest.(check int) "opens history preserved" 1 (Breaker.opens b)

(* ---------- driving the server ---------- *)

let consistent_text = "If the start button is pressed, the pump is started."

let inconsistent_text =
  "If the pump is lost, the alarm is triggered.\n\
   If the pump is lost, the alarm is not triggered."

let garbage_text = "The frobnicator zorps quickly."

(* Feed [lines] to a server over a pipe (optionally with pauses to
   sequence the pool deterministically), collect the JSONL responses
   and the final stats. *)
let drive ?(pauses = []) config lines =
  let read_fd, write_fd = Unix.pipe () in
  let out_path = Filename.temp_file "speccc_serve" ".out" in
  let writer =
    Thread.create
      (fun () ->
         List.iteri
           (fun i line ->
              (match List.assoc_opt i pauses with
               | Some seconds -> Thread.delay seconds
               | None -> ());
              let data = Bytes.of_string (line ^ "\n") in
              ignore (Unix.write write_fd data 0 (Bytes.length data)))
           lines;
         Unix.close write_fd)
      ()
  in
  let output = open_out out_path in
  let stats =
    Fun.protect
      ~finally:(fun () ->
        close_out output;
        Unix.close read_fd)
      (fun () -> Server.run config ~input:read_fd ~output)
  in
  Thread.join writer;
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file ->
      close_in ic;
      Sys.remove out_path;
      List.rev acc
  in
  (read [], stats)

let parse_response line =
  match Jsonl.parse line with
  | Ok json -> json
  | Error e -> Alcotest.fail ("unparsable response " ^ line ^ ": " ^ e)

let id_of json =
  match Jsonl.member "id" json with
  | Some v -> v
  | None -> Alcotest.fail "response without id"

let check_request n text =
  Printf.sprintf "{\"id\":%d,\"doc\":\"%s\"}" n (Jsonl.escape text)

let quick_config () =
  { (Server.default_config ()) with
    Server.workers = 2;
    deadline = 10.;
    watchdog_poll = 0.005 }

(* ---------- protocol basics ---------- *)

let test_serve_basics () =
  let lines =
    [ check_request 1 consistent_text;
      check_request 2 inconsistent_text;
      check_request 3 garbage_text;
      "{\"id\":4,\"cmd\":\"health\"}";
      "{\"id\":5,\"nonsense\":true}";
      "this is not json";
      "{\"id\":6,\"cmd\":\"frobnicate\"}" ]
  in
  let responses, stats = drive (quick_config ()) lines in
  Alcotest.(check int) "one response per request" 7
    (List.length responses);
  let by_id =
    List.map
      (fun line ->
         let json = parse_response line in
         (Jsonl.to_string (id_of json), json))
      responses
  in
  let verdict_of id =
    match List.assoc_opt id by_id with
    | Some json -> Jsonl.str_member "verdict" json
    | None -> Alcotest.fail ("no response for id " ^ id)
  in
  Alcotest.(check (option string)) "1 consistent" (Some "consistent")
    (verdict_of "1");
  Alcotest.(check (option string)) "2 inconsistent" (Some "inconsistent")
    (verdict_of "2");
  Alcotest.(check (option string)) "3 failed" (Some "failed")
    (verdict_of "3");
  (match List.assoc_opt "4" by_id with
   | Some json ->
     (match Jsonl.member "health" json with
      | Some health ->
        Alcotest.(check bool) "health reports workers" true
          (Jsonl.int_member "workers" health = Some 2);
        Alcotest.(check bool) "health reports breakers" true
          (Jsonl.member "breakers" health <> None)
      | None -> Alcotest.fail "health response lacks health object")
   | None -> Alcotest.fail "no health response");
  let error_of id =
    match List.assoc_opt id by_id with
    | Some json -> Jsonl.str_member "error" json
    | None -> Alcotest.fail ("no response for id " ^ id)
  in
  Alcotest.(check (option string)) "5 bad request" (Some "bad_request")
    (error_of "5");
  Alcotest.(check (option string)) "6 unknown cmd" (Some "bad_request")
    (error_of "6");
  Alcotest.(check int) "3 checks served" 3 stats.Server.served;
  Alcotest.(check int) "2 bad requests (+1 unparsable)" 3
    stats.Server.bad_requests;
  Alcotest.(check int) "no restarts" 0 stats.Server.restarts;
  Alcotest.(check int) "no leaks" 0 stats.Server.leaked_workers

let test_serve_shutdown_cmd () =
  let lines =
    [ check_request 1 consistent_text; "{\"id\":2,\"cmd\":\"shutdown\"}" ]
  in
  let responses, stats = drive (quick_config ()) lines in
  (* the check is answered (drain finishes in-flight work) and the
     shutdown is acknowledged *)
  Alcotest.(check int) "two responses" 2 (List.length responses);
  Alcotest.(check int) "check served" 1 stats.Server.served

(* ---------- watchdog preemption and pool recovery ---------- *)

let test_serve_watchdog_preempts_stall () =
  (* One worker, and the first request stalls 2s at the server.request
     checkpoint — non-cooperative: no budget poll ever runs.  The
     watchdog must answer it [unknown] within deadline + grace (well
     under 2x the deadline) and a replacement worker must pick up the
     second request long before the stall ends. *)
  let config =
    { (Server.default_config ()) with
      Server.workers = 1;
      deadline = 0.25;
      grace = 0.15;
      watchdog_poll = 0.005;
      drain_wait = 5. }
  in
  let started = Unix.gettimeofday () in
  let responses, stats =
    with_faults
      [ { Fault.checkpoint = Fault.Checkpoint.server_request; after = 0;
          action = Fault.Delay 2.0 } ]
      (fun () ->
         drive config
           [ check_request 1 consistent_text;
             check_request 2 consistent_text ])
  in
  let elapsed = Unix.gettimeofday () -. started in
  let by_id =
    List.map
      (fun line ->
         let json = parse_response line in
         (Jsonl.to_string (id_of json), json))
      responses
  in
  (match List.assoc_opt "1" by_id with
   | Some json ->
     Alcotest.(check (option string)) "stalled request is unknown"
       (Some "unknown") (Jsonl.str_member "verdict" json);
     Alcotest.(check (option string)) "answered by the watchdog"
       (Some "watchdog") (Jsonl.str_member "engine" json);
     (match Jsonl.str_member "detail" json with
      | Some detail ->
        Alcotest.(check bool) "typed watchdog degradation" true
          (String.length detail >= 8
           && String.sub detail 0 8 = "watchdog")
      | None -> Alcotest.fail "watchdog answer lacks detail")
   | None -> Alcotest.fail "no response for the stalled request");
  (match List.assoc_opt "2" by_id with
   | Some json ->
     Alcotest.(check (option string)) "pool recovered" (Some "consistent")
       (Jsonl.str_member "verdict" json)
   | None -> Alcotest.fail "no response for the follow-up request");
  Alcotest.(check int) "one escalation" 1 stats.Server.escalations;
  Alcotest.(check int) "one replacement worker" 1 stats.Server.restarts;
  Alcotest.(check int) "both answered" 2 stats.Server.served;
  (* drain waited out the 2s stall, so the zombie was reaped *)
  Alcotest.(check int) "no leak after drain" 0 stats.Server.leaked_workers;
  (* the whole run is bounded by the stall, not by request x stall *)
  Alcotest.(check bool)
    (Printf.sprintf "run bounded (%.2fs)" elapsed) true (elapsed < 8.)

(* ---------- overload shedding ---------- *)

let test_serve_sheds_past_high_water () =
  (* One worker wedged for 1s, a queue that sheds at depth 2: of eight
     requests, the in-flight one plus two queued are served, the other
     five get typed overloaded responses — and every id is answered
     exactly once. *)
  let config =
    { (Server.default_config ()) with
      Server.workers = 1;
      queue_capacity = 8;
      high_water = Some 2;
      deadline = 10.;
      drain_wait = 5. }
  in
  let lines = List.init 8 (fun i -> check_request (i + 1) consistent_text) in
  let responses, stats =
    with_faults
      [ { Fault.checkpoint = Fault.Checkpoint.server_request; after = 0;
          action = Fault.Delay 1.0 } ]
      (* pause after the first request so the lone worker has surely
         dequeued it (and wedged) before the flood arrives *)
      (fun () -> drive ~pauses:[ (1, 0.4) ] config lines)
  in
  Alcotest.(check int) "every request answered exactly once" 8
    (List.length responses);
  let ids =
    List.sort compare
      (List.map (fun l -> Jsonl.to_string (id_of (parse_response l))) responses)
  in
  Alcotest.(check (list string)) "ids 1..8, no dups"
    (List.sort compare (List.init 8 (fun i -> string_of_int (i + 1))))
    ids;
  let overloaded =
    List.filter
      (fun l ->
         Jsonl.str_member "error" (parse_response l) = Some "overloaded")
      responses
  in
  Alcotest.(check int) "five shed" 5 (List.length overloaded);
  List.iter
    (fun l ->
       let json = parse_response l in
       match Jsonl.int_member "queue_depth" json with
       | Some d ->
         Alcotest.(check bool) "shed at the high-water mark" true (d >= 2)
       | None -> Alcotest.fail "overloaded response lacks queue_depth")
    overloaded;
  Alcotest.(check int) "three served" 3 stats.Server.served;
  Alcotest.(check int) "stats count the shed" 5 stats.Server.shed;
  Alcotest.(check int) "no restarts needed" 0 stats.Server.restarts

(* ---------- circuit breakers end to end ---------- *)

let test_serve_breaker_opens_on_failing_rung () =
  (* Three consecutive symbolic-engine failures open the symbolic
     breaker; requests still get verdicts from the next rung, and the
     final stats report the breaker open. *)
  let config =
    { (quick_config ()) with
      Server.workers = 1;
      breaker_threshold = 3;
      breaker_cooldown = 60.;
      harness =
        { (Harness.default_config ()) with
          Harness.retries = 0;
          options =
            { (Pipeline.default_options ()) with
              Pipeline.fuel = Some 200_000 } } }
  in
  let fail_symbolic after =
    { Fault.checkpoint = Fault.Checkpoint.engine_symbolic; after;
      action = Fault.Fail "flaky rung" }
  in
  let lines = List.init 5 (fun i -> check_request (i + 1) consistent_text) in
  let responses, stats =
    with_faults
      [ fail_symbolic 0; fail_symbolic 1; fail_symbolic 2 ]
      (fun () -> drive config lines)
  in
  Alcotest.(check int) "all answered" 5 (List.length responses);
  List.iter
    (fun line ->
       let json = parse_response line in
       Alcotest.(check (option string))
         ("verdict for " ^ Jsonl.to_string (id_of json))
         (Some "consistent")
         (Jsonl.str_member "verdict" json))
    responses;
  Alcotest.(check (option string)) "symbolic breaker open"
    (Some "open")
    (List.assoc_opt "symbolic" stats.Server.breakers);
  Alcotest.(check (option string)) "explicit breaker closed"
    (Some "closed")
    (List.assoc_opt "explicit" stats.Server.breakers)

(* ---------- persistent verdict store ---------- *)

let test_serve_store_short_circuits_repeats () =
  (* With a store wired in, a repeated spec is answered from disk
     (attempts = 0, no engine fuel), the health report carries the
     store counters, and the verdict survives the server: a fresh
     handle finds it by content key. *)
  let store_path = Filename.temp_file "speccc_serve" ".store" in
  Sys.remove store_path;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store_path then Sys.remove store_path)
    (fun () ->
       let store = Speccc_store.Store.open_ store_path in
       let config =
         { (quick_config ()) with Server.workers = 1; store = Some store }
       in
       let lines =
         [ check_request 1 inconsistent_text;
           check_request 2 inconsistent_text;
           "{\"id\":3,\"cmd\":\"health\"}" ]
       in
       let responses, stats = drive config lines in
       let by_id =
         List.map
           (fun line ->
              let json = parse_response line in
              (Jsonl.to_string (id_of json), json))
           responses
       in
       let field id f =
         match List.assoc_opt id by_id with
         | Some json -> f json
         | None -> Alcotest.fail ("no response for id " ^ id)
       in
       Alcotest.(check (option string)) "first check is fresh"
         (Some "inconsistent") (field "1" (Jsonl.str_member "verdict"));
       Alcotest.(check bool) "fresh check burned attempts" true
         (match field "1" (Jsonl.int_member "attempts") with
          | Some n -> n >= 1
          | None -> false);
       Alcotest.(check (option string)) "repeat answered identically"
         (Some "inconsistent") (field "2" (Jsonl.str_member "verdict"));
       Alcotest.(check (option int)) "repeat served from the store"
         (Some 0) (field "2" (Jsonl.int_member "attempts"));
       (* health is answered at intake, possibly before the checks
          complete, so assert the counters' presence here and their
          values on the handle after the drain below *)
       (match field "3" (Jsonl.member "health") with
        | Some health ->
          (match Jsonl.member "store" health with
           | Some store_health ->
             Alcotest.(check bool) "store counters reported" true
               (Jsonl.int_member "live" store_health <> None
                && Jsonl.int_member "hits" store_health <> None
                && Jsonl.int_member "recovered_bytes" store_health <> None)
           | None -> Alcotest.fail "health lacks store counters");
          (match
             Option.bind (Jsonl.member "breakers" health)
               (Jsonl.member "symbolic")
           with
           | Some breaker ->
             Alcotest.(check (option string))
               "breakers carry persisted state objects" (Some "closed")
               (Jsonl.str_member "state" breaker)
           | None -> Alcotest.fail "health lacks the symbolic breaker")
        | None -> Alcotest.fail "no health object");
       Alcotest.(check int) "both checks served" 2 stats.Server.served;
       (* the drain guarantees both checks finished: exactly one record
          was earned and the repeat hit it *)
       let store_stats = Speccc_store.Store.stats store in
       Alcotest.(check int) "one live record"
         1 store_stats.Speccc_store.Store.live;
       Alcotest.(check bool) "repeat hit the store" true
         (store_stats.Speccc_store.Store.hits >= 1);
       Speccc_store.Store.close store;
       (* durability: a fresh process-equivalent handle finds the
          verdict by content identity *)
       let reopened = Speccc_store.Store.open_ store_path in
       let salt =
         Speccc_store.Store.salt_of_options
           config.Server.harness.Harness.options
       in
       let key =
         Speccc_store.Store.key ~salt (Document.parse inconsistent_text)
       in
       (match Speccc_store.Store.find reopened key with
        | Some r ->
          Alcotest.(check bool) "stored verdict survives" true
            (r.Harness.verdict = Harness.Inconsistent)
        | None -> Alcotest.fail "verdict not found by content key");
       Speccc_store.Store.close reopened)

(* ---------- soak: N requests vs. a sequential oracle ---------- *)

let test_serve_soak_matches_oracle () =
  (* 200 requests over a 4-worker pool under a seeded Delay-only fault
     plan (timing perturbation without semantic effect): every request
     gets exactly one response, the pool neither restarts nor leaks
     workers, and every verdict matches a sequential oracle. *)
  let n = 200 in
  let texts = [| consistent_text; inconsistent_text; garbage_text |] in
  (* deterministic LCG so the request mix is reproducible *)
  let state = ref 12345 in
  let next_choice () =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod Array.length texts
  in
  let choices = Array.init n (fun _ -> next_choice ()) in
  let harness =
    { (Harness.default_config ()) with
      Harness.retries = 1;
      options =
        { (Pipeline.default_options ()) with Pipeline.fuel = Some 200_000 }
    }
  in
  let config =
    { (Server.default_config ()) with
      Server.harness;
      workers = 4;
      queue_capacity = 16;
      high_water = None;        (* backpressure only: nothing shed *)
      deadline = 30.;
      drain_wait = 10. }
  in
  let oracle =
    Array.map
      (fun choice ->
         let result =
           Harness.check_one harness
             (string_of_int choice)
             (Document.parse texts.(choice))
         in
         match result.Harness.verdict with
         | Harness.Consistent -> "consistent"
         | Harness.Inconsistent -> "inconsistent"
         | Harness.Unknown -> "unknown"
         | Harness.Failed _ -> "failed")
      (Array.init (Array.length texts) (fun i -> i))
  in
  let lines =
    List.init n (fun i -> check_request (i + 1) texts.(choices.(i)))
  in
  let (responses, stats), checkpoint_hits =
    with_faults ~seed:42
      [ { Fault.checkpoint = Fault.Checkpoint.server_request; after = 10;
          action = Fault.Delay 0.05 };
        { Fault.checkpoint = Fault.Checkpoint.server_request; after = 77;
          action = Fault.Delay 0.02 };
        { Fault.checkpoint = Fault.Checkpoint.server_request; after = -1;
          action = Fault.Delay 0.03 } ]
      (fun () ->
         let outcome = drive config lines in
         (outcome, Fault.hits Fault.Checkpoint.server_request))
  in
  Alcotest.(check int) "exactly one response per request" n
    (List.length responses);
  let seen = Hashtbl.create n in
  List.iter
    (fun line ->
       let json = parse_response line in
       let id =
         match Jsonl.int_member "id" json with
         | Some id -> id
         | None -> Alcotest.fail ("non-numeric id in " ^ line)
       in
       if Hashtbl.mem seen id then
         Alcotest.fail (Printf.sprintf "duplicate response for id %d" id);
       Hashtbl.add seen id ();
       let expected = oracle.(choices.(id - 1)) in
       Alcotest.(check (option string))
         (Printf.sprintf "verdict for id %d" id)
         (Some expected)
         (Jsonl.str_member "verdict" json))
    responses;
  Alcotest.(check int) "all ids answered" n (Hashtbl.length seen);
  Alcotest.(check int) "served = n" n stats.Server.served;
  Alcotest.(check int) "nothing shed" 0 stats.Server.shed;
  Alcotest.(check int) "no restarts" 0 stats.Server.restarts;
  Alcotest.(check int) "no leaked workers" 0 stats.Server.leaked_workers;
  Alcotest.(check int) "no escalations" 0 stats.Server.escalations;
  (* the Delay triggers really perturbed the pool *)
  Alcotest.(check int) "every request announced the drill checkpoint" n
    checkpoint_hits

let () =
  Alcotest.run "server"
    [
      ( "jsonl",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_jsonl_rejects_garbage;
          Alcotest.test_case "escapes" `Quick test_jsonl_escapes;
          Alcotest.test_case "accessors" `Quick test_jsonl_accessors;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "opens after consecutive failures" `Quick
            test_breaker_opens_after_consecutive_failures;
          Alcotest.test_case "half-open probe" `Quick
            test_breaker_half_open_probe;
          Alcotest.test_case "reset clears phantom state" `Quick
            test_breaker_reset_clears_phantom_state;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "basics" `Quick test_serve_basics;
          Alcotest.test_case "shutdown drains" `Quick
            test_serve_shutdown_cmd;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "watchdog preempts a stall" `Quick
            test_serve_watchdog_preempts_stall;
          Alcotest.test_case "sheds past high water" `Quick
            test_serve_sheds_past_high_water;
          Alcotest.test_case "breaker opens on failing rung" `Quick
            test_serve_breaker_opens_on_failing_rung;
        ] );
      ( "store",
        [
          Alcotest.test_case "store short-circuits repeats" `Quick
            test_serve_store_short_circuits_repeats;
        ] );
      ( "soak",
        [
          Alcotest.test_case "200 requests vs sequential oracle" `Slow
            test_serve_soak_matches_oracle;
        ] );
    ]
