(* Tests for the LTL → Büchi construction: hand-checked automata plus
   the key property test — automaton membership on random lasso words
   agrees with the exact trace semantics. *)

open Speccc_logic
open Speccc_automata

let parse = Ltl_parse.formula

let prop_names = [ "a"; "b"; "c" ]

(* Formula size is capped: the tableau is exponential in the worst
   case, and the membership check multiplies automaton size by lasso
   length. *)
let formula_gen =
  let open QCheck2.Gen in
  int_range 0 10 >>= fix (fun self size ->
      if size <= 1 then
        oneof
          [ return Ltl.True; return Ltl.False; map Ltl.prop (oneofl prop_names) ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Weak_until (f, g)) sub sub;
            map2 (fun f g -> Ltl.Release (f, g)) sub sub;
          ])

let letter_gen =
  let open QCheck2.Gen in
  flatten_l (List.map (fun name -> map (fun b -> (name, b)) bool) prop_names)

let trace_gen =
  let open QCheck2.Gen in
  map2
    (fun prefix loop -> Trace.make ~prefix ~loop)
    (list_size (int_range 0 3) letter_gen)
    (list_size (int_range 1 3) letter_gen)

let letter trues = List.map (fun p -> (p, List.mem p trues)) prop_names

let accepts f word = Nbw.accepts_lasso (Nbw.of_ltl f) word

let test_atomic () =
  let wa = Trace.constant (letter [ "a" ]) in
  let wb = Trace.constant (letter [ "b" ]) in
  Alcotest.(check bool) "a accepts a^w" true (accepts (parse "a") wa);
  Alcotest.(check bool) "a rejects b^w" false (accepts (parse "a") wb);
  Alcotest.(check bool) "true accepts" true (accepts Ltl.tt wa);
  Alcotest.(check bool) "false rejects" false (accepts Ltl.ff wa)

let test_temporal () =
  let w =
    Trace.make ~prefix:[ letter [ "a" ]; letter [ "a" ] ]
      ~loop:[ letter [ "b" ] ]
  in
  Alcotest.(check bool) "a U b" true (accepts (parse "a U b") w);
  Alcotest.(check bool) "G a fails" false (accepts (parse "G a") w);
  Alcotest.(check bool) "F G b" true (accepts (parse "F G b") w);
  Alcotest.(check bool) "G F b" true (accepts (parse "G F b") w);
  Alcotest.(check bool) "X X G b" true (accepts (parse "X X G b") w);
  Alcotest.(check bool) "X G b fails" false (accepts (parse "X G b") w)

let test_liveness_automaton () =
  (* G F a on a word alternating a / not-a is accepted; on eventually
     never-a it is rejected. *)
  let alternating =
    Trace.make ~prefix:[] ~loop:[ letter [ "a" ]; letter [] ]
  in
  let dies =
    Trace.make ~prefix:[ letter [ "a" ] ] ~loop:[ letter [] ]
  in
  Alcotest.(check bool) "GFa on (a;-)^w" true
    (accepts (parse "G F a") alternating);
  Alcotest.(check bool) "GFa on a(-)^w" false (accepts (parse "G F a") dies)

let test_sizes_reasonable () =
  let auto = Nbw.of_ltl (parse "G (a -> F b)") in
  Alcotest.(check bool) "nontrivial automaton" true (auto.Nbw.num_states > 1);
  Alcotest.(check bool) "has accepting states" true
    (Array.exists Fun.id auto.Nbw.accepting)

let prop_membership_matches_semantics =
  QCheck2.Test.make ~count:400
    ~name:"NBW membership = trace semantics"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) -> accepts f w = Trace.holds w f)

let prop_negation_partitions =
  QCheck2.Test.make ~count:200
    ~name:"exactly one of A(f), A(!f) accepts each lasso"
    QCheck2.Gen.(pair formula_gen trace_gen)
    (fun (f, w) -> accepts f w <> accepts (Ltl.Not f) w)

(* --- template-compiled automata --- *)

(* Shapes the pattern catalogue recognizes, with small propositional
   parameters: every generated formula must take the template path. *)
let template_formula_gen =
  let open QCheck2.Gen in
  let atom = map Ltl.prop (oneofl prop_names) in
  let state_formula =
    oneof
      [
        atom;
        map (fun f -> Ltl.Not f) atom;
        map2 (fun f g -> Ltl.And (f, g)) atom atom;
        map2 (fun f g -> Ltl.Or (f, g)) atom atom;
      ]
  in
  oneof
    [
      map (fun p -> Ltl.Always (Ltl.Not p)) state_formula;
      map (fun p -> Ltl.Always p) state_formula;
      map (fun p -> Ltl.Eventually p) state_formula;
      map2
        (fun g r -> Ltl.Always (Ltl.Implies (g, Ltl.Eventually r)))
        state_formula state_formula;
      map2 (fun p s -> Ltl.Weak_until (Ltl.Not p, s)) state_formula
        state_formula;
    ]

let prop_template_matches_tableau =
  QCheck2.Test.make ~count:150
    ~name:"template-compiled automata accept the same lassos as the tableau"
    QCheck2.Gen.(pair template_formula_gen (list_size (int_range 1 4) trace_gen))
    (fun (f, words) ->
       if Template.abstract f = None then
         QCheck2.Test.fail_report "generator produced a non-template shape";
       let templated = Nbw.of_ltl f in
       (* a governed call bypasses both caches and runs the tableau *)
       let tableau =
         Nbw.of_ltl ~budget:(Speccc_runtime.Budget.create ~fuel:1_000_000 ()) f
       in
       List.for_all
         (fun w ->
            Nbw.accepts_lasso templated w = Nbw.accepts_lasso tableau w)
         words)

let test_template_sharing () =
  let hits () =
    match
      List.find_opt
        (fun s -> s.Speccc_cache.Cache.name = "nbw.template")
        (Speccc_cache.Cache.stats ())
    with
    | Some s -> s.Speccc_cache.Cache.hits
    | None -> 0
  in
  let first = Nbw.of_ltl (parse "G (tpl_p -> F tpl_q)") in
  let before = hits () in
  let second = Nbw.of_ltl (parse "G (tpl_r -> F tpl_s)") in
  Alcotest.(check bool) "second instance served from the compiled shape" true
    (hits () > before);
  Alcotest.(check int) "instances share the shape's state count"
    first.Nbw.num_states second.Nbw.num_states;
  Alcotest.(check (slist string compare)) "atoms substituted"
    [ "tpl_r"; "tpl_s" ] second.Nbw.atoms

let () =
  Alcotest.run "automata"
    [
      ( "nbw",
        [
          Alcotest.test_case "atomic" `Quick test_atomic;
          Alcotest.test_case "temporal" `Quick test_temporal;
          Alcotest.test_case "liveness" `Quick test_liveness_automaton;
          Alcotest.test_case "sizes" `Quick test_sizes_reasonable;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_membership_matches_semantics;
          QCheck_alcotest.to_alcotest prop_negation_partitions;
        ] );
      ( "template",
        [
          QCheck_alcotest.to_alcotest prop_template_matches_tableau;
          Alcotest.test_case "sharing" `Quick test_template_sharing;
        ] );
    ]
