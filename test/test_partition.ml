(* Tests for the input/output partition heuristic (Sec. IV-F). *)

open Speccc_logic
open Speccc_partition.Partition

let parse = Ltl_parse.formula

let test_implication_sides () =
  let inputs, outputs = of_formula (parse "G (a && b -> c)") in
  Alcotest.(check (list string)) "antecedent props are inputs" [ "a"; "b" ]
    inputs;
  Alcotest.(check (list string)) "consequent props are outputs" [ "c" ]
    outputs

let test_both_sides_is_output () =
  let inputs, outputs = of_formula (parse "G (a && b -> a)") in
  Alcotest.(check (list string)) "only b stays input" [ "b" ] inputs;
  Alcotest.(check (list string)) "a is output" [ "a" ] outputs

let test_until_right_is_input () =
  (* Req-49 shape: G (btn -> (!press -> btn W press)) *)
  let inputs, outputs =
    of_formula (parse "G (btn -> (!press -> (btn W press)))")
  in
  Alcotest.(check bool) "press is input" true (List.mem "press" inputs);
  Alcotest.(check bool) "btn is output" true (List.mem "btn" outputs)

let test_nested_implications () =
  let inputs, outputs =
    of_formula (parse "G (a -> (b -> c))")
  in
  Alcotest.(check (list string)) "both antecedents input" [ "a"; "b" ] inputs;
  Alcotest.(check (list string)) "c output" [ "c" ] outputs

let test_bare_invariant_is_output () =
  let inputs, outputs = of_formula (parse "G p") in
  Alcotest.(check (list string)) "no inputs" [] inputs;
  Alcotest.(check (list string)) "p output" [ "p" ] outputs

let test_unification_conflict () =
  (* ack: input in req 2, output in req 1 -> output overall. *)
  let analysis =
    of_requirements
      [ parse "G (req -> X ack)"; parse "G (ack -> X done_)" ]
  in
  Alcotest.(check (list string)) "inputs" [ "req" ]
    analysis.partition.inputs;
  Alcotest.(check (list string)) "outputs" [ "ack"; "done_" ]
    analysis.partition.outputs;
  (match analysis.conflicts with
   | [ conflict ] ->
     Alcotest.(check string) "conflicted prop" "ack" conflict.prop;
     Alcotest.(check (list int)) "input vote from req 1" [ 1 ]
       conflict.input_in;
     Alcotest.(check (list int)) "output vote from req 0" [ 0 ]
       conflict.output_in
   | _ -> Alcotest.fail "expected exactly one conflict")

let test_no_input_fallback () =
  let analysis = of_requirements [ parse "G a"; parse "G b" ] in
  Alcotest.(check (option string)) "forced input recorded" (Some "a")
    analysis.forced_input;
  Alcotest.(check (list string)) "a promoted" [ "a" ]
    analysis.partition.inputs;
  Alcotest.(check (list string)) "b stays output" [ "b" ]
    analysis.partition.outputs

let test_cara_example () =
  (* Sec. IV-F's worked example: Req-32. *)
  let analysis =
    of_requirements
      [ parse
          "G ((available_pulse_wave || available_arterial_line) && \
           select_cuff -> trigger_corroboration)" ]
  in
  Alcotest.(check (list string)) "inputs"
    [ "available_arterial_line"; "available_pulse_wave"; "select_cuff" ]
    analysis.partition.inputs;
  Alcotest.(check (list string)) "outputs" [ "trigger_corroboration" ]
    analysis.partition.outputs

let test_adjust () =
  let partition = { inputs = [ "a"; "b" ]; outputs = [ "c" ] } in
  let adjusted = adjust partition ~to_output:[ "a" ] () in
  Alcotest.(check (list string)) "a moved" [ "b" ] adjusted.inputs;
  Alcotest.(check (list string)) "outputs extended" [ "a"; "c" ]
    adjusted.outputs;
  let back = adjust adjusted ~to_input:[ "a" ] () in
  Alcotest.(check (list string)) "a back" [ "a"; "b" ] back.inputs;
  (* unknown props are ignored *)
  let same = adjust partition ~to_output:[ "zz" ] () in
  Alcotest.(check (list string)) "unknown ignored" partition.inputs
    same.inputs

(* Regression: a proposition named in both move lists used to land in
   both classes, silently breaking the inputs ∩ outputs = ∅ invariant
   realizability assumes.  Conflicting moves are now rejected, and
   both construction paths assert the invariant. *)
let test_adjust_overlapping_moves_rejected () =
  let partition = { inputs = [ "a"; "b" ]; outputs = [ "c" ] } in
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Partition.adjust: a moved to both inputs and outputs")
    (fun () -> ignore (adjust partition ~to_input:[ "a" ] ~to_output:[ "a" ] ()));
  (* even when the prop is unknown: the request itself is contradictory *)
  Alcotest.check_raises "unknown overlap rejected"
    (Invalid_argument "Partition.adjust: zz moved to both inputs and outputs")
    (fun () ->
       ignore (adjust partition ~to_input:[ "zz" ] ~to_output:[ "zz" ] ()))

let test_adjust_rejects_corrupt_partition () =
  let corrupt = { inputs = [ "a" ]; outputs = [ "a" ] } in
  Alcotest.check_raises "corrupt input partition surfaced"
    (Invalid_argument "Partition.adjust: inputs and outputs overlap on a")
    (fun () -> ignore (adjust corrupt ()))

let prop_adjust_keeps_disjointness =
  let open QCheck2.Gen in
  let props = [ "a"; "b"; "c"; "d"; "e" ] in
  let formula_gen =
    let p = map Ltl.prop (oneofl props) in
    map2 (fun a b -> Ltl.always (Ltl.implies a b)) p p
  in
  let moves = list_size (int_range 0 3) (oneofl props) in
  QCheck2.Test.make ~count:200
    ~name:"adjust preserves the disjoint-cover invariant"
    (triple (list_size (int_range 1 4) formula_gen) moves moves)
    (fun (formulas, to_input, to_output) ->
       let analysis = of_requirements formulas in
       let overlap = List.exists (fun p -> List.mem p to_output) to_input in
       match adjust analysis.partition ~to_input ~to_output () with
       | adjusted ->
         (not overlap)
         && List.for_all
              (fun p -> not (List.mem p adjusted.outputs))
              adjusted.inputs
         && List.sort compare (adjusted.inputs @ adjusted.outputs)
            = List.sort compare
                (analysis.partition.inputs @ analysis.partition.outputs)
       | exception Invalid_argument _ -> overlap)

let prop_partition_is_disjoint_cover =
  let formula_gen =
    let open QCheck2.Gen in
    let p = map Ltl.prop (oneofl [ "a"; "b"; "c"; "d" ]) in
    let clause = map2 Ltl.implies p p in
    map
      (fun (a, b) -> Ltl.always (Ltl.conj a b))
      (pair clause clause)
  in
  QCheck2.Test.make ~count:200
    ~name:"partition covers all props disjointly"
    QCheck2.Gen.(list_size (int_range 1 4) formula_gen)
    (fun formulas ->
       let analysis = of_requirements formulas in
       let { inputs; outputs } = analysis.partition in
       let all =
         List.sort_uniq compare (List.concat_map Ltl.props formulas)
       in
       List.sort compare (inputs @ outputs) = all
       && List.for_all (fun p -> not (List.mem p outputs)) inputs)

let () =
  Alcotest.run "partition"
    [
      ( "heuristic",
        [
          Alcotest.test_case "implication sides" `Quick
            test_implication_sides;
          Alcotest.test_case "both sides -> output" `Quick
            test_both_sides_is_output;
          Alcotest.test_case "until right is input" `Quick
            test_until_right_is_input;
          Alcotest.test_case "nested implications" `Quick
            test_nested_implications;
          Alcotest.test_case "bare invariant" `Quick
            test_bare_invariant_is_output;
          Alcotest.test_case "paper example (Req-32)" `Quick
            test_cara_example;
        ] );
      ( "unification",
        [
          Alcotest.test_case "conflict" `Quick test_unification_conflict;
          Alcotest.test_case "no-input fallback" `Quick
            test_no_input_fallback;
          Alcotest.test_case "adjust" `Quick test_adjust;
          Alcotest.test_case "overlapping moves rejected" `Quick
            test_adjust_overlapping_moves_rejected;
          Alcotest.test_case "corrupt partition surfaced" `Quick
            test_adjust_rejects_corrupt_partition;
          QCheck_alcotest.to_alcotest prop_partition_is_disjoint_cover;
          QCheck_alcotest.to_alcotest prop_adjust_keeps_disjointness;
        ] );
    ]
