(* Tests for anytime verdicts: the snapshot codec survives round-trips
   and rejects corruption, slots hand frontiers from one attempt to the
   next, a resumed localization provably re-checks strictly fewer
   subsets than a cold one (with an identical answer), a corrupt or
   mismatched snapshot degrades to a cold start, the memory watermark
   collapses the Auto ladder with a typed degradation, and the store
   persists snapshots until a definite verdict supersedes them. *)

open Speccc_logic
open Speccc_core
open Speccc_synthesis
open Speccc_runtime
open Speccc_store

let parse = Ltl_parse.formula

(* ---------- codec ---------- *)

let engines = [ "explicit"; "symbolic"; "sat"; "localize" ]

(* field payloads exercise the percent-escaping: separators, escapes,
   spaces, control and non-ASCII bytes *)
let field_string_gen = QCheck2.Gen.(string_size ~gen:char (0 -- 30))

let snapshot_gen =
  let open QCheck2.Gen in
  let* engine = oneofl engines in
  let* fields =
    list_size (0 -- 6) (pair field_string_gen field_string_gen)
  in
  (* field names must be distinct for round-trip comparison; the
     codec itself keeps duplicates verbatim *)
  let fields =
    List.fold_left
      (fun acc (k, v) ->
         if List.mem_assoc k acc then acc else (k, v) :: acc)
      [] fields
    |> List.rev
  in
  return (Snapshot.make ~engine fields)

let prop_codec_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"snapshot codec round-trips"
    snapshot_gen (fun snap ->
        match Snapshot.of_string (Snapshot.to_string snap) with
        | None -> false
        | Some back ->
          Snapshot.engine back = Snapshot.engine snap
          && Snapshot.fields back = Snapshot.fields snap)

let prop_codec_rejects_truncation =
  QCheck2.Test.make ~count:200 ~name:"truncated snapshot decodes to None"
    QCheck2.Gen.(pair snapshot_gen (0 -- 1000))
    (fun (snap, cut) ->
       let line = Snapshot.to_string snap in
       let cut = cut mod String.length line in
       (* any strict prefix must be rejected (magic, checksum or
          payload is damaged) *)
       Snapshot.of_string (String.sub line 0 cut) = None)

let test_codec_rejects_corruption () =
  let snap =
    Snapshot.make ~engine:"explicit" [ ("bound", "8"); ("note", "a;b=c%d") ]
  in
  let line = Snapshot.to_string snap in
  Alcotest.(check bool) "pristine line decodes" true
    (Snapshot.of_string line <> None);
  let flip i =
    let b = Bytes.of_string line in
    Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
    Bytes.to_string b
  in
  (* damage the magic, the checksum and the payload in turn *)
  List.iter
    (fun i ->
       Alcotest.(check bool)
         (Printf.sprintf "corrupt byte %d rejected" i)
         true
         (Snapshot.of_string (flip i) = None))
    [ 0; String.length "speccc-snap1|" + 2; String.length line - 1 ];
  Alcotest.(check bool) "garbage rejected" true
    (Snapshot.of_string "not a snapshot" = None);
  Alcotest.(check bool) "empty rejected" true (Snapshot.of_string "" = None)

(* ---------- slots ---------- *)

let test_slot_semantics () =
  let slot = Snapshot.slot () in
  Alcotest.(check bool) "fresh slot is empty" true
    (Snapshot.latest slot = None);
  Alcotest.(check bool) "nothing to resume" true
    (Snapshot.resume_for slot ~engine:"explicit" = None);
  let s1 = Snapshot.make ~engine:"explicit" [ ("bound", "2") ] in
  let s2 = Snapshot.make ~engine:"explicit" [ ("bound", "4") ] in
  Snapshot.publish slot s1;
  Snapshot.publish slot s2;
  Alcotest.(check int) "publishes counted" 2 (Snapshot.published_count slot);
  (match Snapshot.latest slot with
   | Some s -> Alcotest.(check (option int)) "latest wins" (Some 4)
                 (Snapshot.int_field s "bound")
   | None -> Alcotest.fail "latest must be set");
  (* publishing alone never arms a resume: the supervisor decides *)
  Alcotest.(check bool) "resume not armed by publish" true
    (Snapshot.resume_for slot ~engine:"explicit" = None);
  Snapshot.rearm slot;
  Alcotest.(check bool) "engine mismatch yields None" true
    (Snapshot.resume_for slot ~engine:"sat" = None);
  (match Snapshot.resume_for slot ~engine:"explicit" with
   | Some s -> Alcotest.(check (option int)) "armed frontier" (Some 4)
                 (Snapshot.int_field s "bound")
   | None -> Alcotest.fail "resume must be armed after rearm");
  Alcotest.(check int) "resume counted once" 1 (Snapshot.resumed_count slot)

let test_budget_carries_slot () =
  let slot = Snapshot.slot () in
  let budget = Budget.create ~fuel:1000 ~snapshot:slot () in
  let child = Budget.child budget ~fuel:100 in
  Budget.publish child (Snapshot.make ~engine:"sat" [ ("states", "3") ]);
  (match Snapshot.latest slot with
   | Some s ->
     Alcotest.(check string) "child publishes to parent slot" "sat"
       (Snapshot.engine s)
   | None -> Alcotest.fail "child publish must reach the slot");
  Snapshot.rearm slot;
  Alcotest.(check bool) "resume visible through the budget" true
    (Budget.resume_for child ~engine:"sat" <> None);
  (* a budget without a slot is inert on both sides *)
  let plain = Budget.unlimited () in
  Budget.publish plain (Snapshot.make ~engine:"sat" []);
  Alcotest.(check bool) "no slot, no resume" true
    (Budget.resume_for plain ~engine:"sat" = None)

(* ---------- localize: preempt-then-resume drill ---------- *)

(* Requirements 1 and 3 demand opposite outputs on the same trigger;
   the check is a pure set predicate so invocations can be counted
   without running any engine. *)
let drill_formulas =
  [ parse "G (i1 -> o1)";
    parse "G (i2 -> o2)";
    parse "G (i3 -> o3)";
    parse "G (i2 -> !o2)" ]

let counting_check count formulas =
  incr count;
  let has f = List.exists (Ltl.equal f) formulas in
  not (has (List.nth drill_formulas 1) && has (List.nth drill_formulas 3))

let test_resume_skips_checks () =
  let cold_count = ref 0 in
  let slot = Snapshot.slot () in
  let cold =
    Localize.run ~snapshot:slot ~check:(counting_check cold_count)
      drill_formulas
  in
  Alcotest.(check bool) "cold run localizes" true (cold <> None);
  Alcotest.(check bool) "cold run ran checks" true (!cold_count > 0);
  Alcotest.(check bool) "progress was published" true
    (Snapshot.published_count slot > 0);
  (* the harness retry path: rearm the slot, run again *)
  Snapshot.rearm slot;
  let warm_count = ref 0 in
  let warm =
    Localize.run ~snapshot:slot ~check:(counting_check warm_count)
      drill_formulas
  in
  Alcotest.(check bool) "verdict identical after resume" true (warm = cold);
  Alcotest.(check bool)
    (Printf.sprintf "resumed run checks strictly fewer subsets (%d < %d)"
       !warm_count !cold_count)
    true
    (!warm_count < !cold_count)

let test_corrupt_snapshot_cold_starts () =
  let cold_count = ref 0 in
  let cold =
    Localize.run ~check:(counting_check cold_count) drill_formulas
  in
  let drill name snap =
    let count = ref 0 in
    let slot = Snapshot.slot () in
    Snapshot.set_resume slot (Some snap);
    let result =
      Localize.run ~snapshot:slot ~check:(counting_check count)
        drill_formulas
    in
    Alcotest.(check bool) (name ^ ": verdict never wrong") true
      (result = cold);
    Alcotest.(check int) (name ^ ": full cold start") !cold_count !count
  in
  (* wrong formula count: the snapshot is from some other document *)
  drill "mismatched n"
    (Snapshot.make ~engine:"localize"
       [ ("n", "17"); ("decided", "0:1") ]);
  (* undecodable decided payload *)
  drill "garbage decided"
    (Snapshot.make ~engine:"localize"
       [ ("n", string_of_int (List.length drill_formulas));
         ("decided", "!!not-an-encoding!!") ]);
  (* out-of-range index *)
  drill "index out of range"
    (Snapshot.make ~engine:"localize"
       [ ("n", string_of_int (List.length drill_formulas));
         ("decided", "9:1") ])

(* a poisoned snapshot claiming everything is consistent still cannot
   flip the verdict: seeded subsets only short-circuit [check]; the
   final verdict re-derives from the culprit search over them *)
let test_forged_snapshot_costs_time_not_soundness () =
  let slot = Snapshot.slot () in
  (* forge: every singleton decided "consistent" — true here, so the
     seed is accepted; the culprit still emerges from larger subsets *)
  Snapshot.set_resume slot
    (Some
       (Snapshot.make ~engine:"localize"
          [ ("n", string_of_int (List.length drill_formulas));
            ("decided", "0:1,1:1,2:1,3:1") ]));
  let count = ref 0 in
  let result =
    Localize.run ~snapshot:slot ~check:(counting_check count) drill_formulas
  in
  let cold_count = ref 0 in
  let cold =
    Localize.run ~check:(counting_check cold_count) drill_formulas
  in
  Alcotest.(check bool) "same localization" true (result = cold)

(* ---------- memory watermark degradation ---------- *)

let test_hard_watermark_degrades_ladder () =
  Fun.protect
    ~finally:(fun () -> Memwatch.force None)
    (fun () ->
       Memwatch.force (Some Memwatch.Hard);
       let options =
         { (Pipeline.default_options ()) with
           Pipeline.engine = Realizability.Auto }
       in
       let _, report =
         Pipeline.check_formulas ~options [ parse "G (i -> o)" ]
       in
       (* the ladder still answers... *)
       Alcotest.(check bool) "still a definite verdict" true
         (report.Realizability.verdict = Realizability.Consistent);
       (* ...but every rung before the last was shed with a typed error *)
       let mem_rungs =
         List.filter
           (fun rung ->
              match rung.Realizability.rung_error with
              | Some (Runtime.Degraded ("memory", _)) -> true
              | _ -> false)
           (Realizability.canonical_degradation report)
       in
       Alcotest.(check bool) "memory degradation reported" true
         (mem_rungs <> []));
  (* with the override released the same check runs the full ladder *)
  let options =
    { (Pipeline.default_options ()) with
      Pipeline.engine = Realizability.Auto }
  in
  let _, report = Pipeline.check_formulas ~options [ parse "G (i -> o)" ] in
  let mem_rungs =
    List.filter
      (fun rung ->
         match rung.Realizability.rung_error with
         | Some (Runtime.Degraded ("memory", _)) -> true
         | _ -> false)
      (Realizability.canonical_degradation report)
  in
  Alcotest.(check bool) "no memory degradation at Normal" true
    (mem_rungs = [])

let test_memwatch_stats_shape () =
  let s = Memwatch.stats () in
  Alcotest.(check bool) "heap words positive" true (s.Memwatch.heap_words > 0);
  Alcotest.(check bool) "trip counters nonnegative" true
    (s.Memwatch.soft_trips >= 0 && s.Memwatch.hard_trips >= 0
     && s.Memwatch.sheds >= 0)

(* ---------- store persistence ---------- *)

let with_store_path f =
  let path = Filename.temp_file "speccc_snap" ".store" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let verdict_result doc =
  { Speccc_harness.Harness.doc;
    verdict = Speccc_harness.Harness.Consistent;
    engine = "symbolic"; attempts = 1; wall = 0.01; detail = "ok";
    fresh = true; degradation = []; progress = None }

let snap_testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Snapshot.to_string s))
    (fun a b -> Snapshot.to_string a = Snapshot.to_string b)

let test_store_snapshot_roundtrip () =
  with_store_path (fun path ->
      let snap = Snapshot.make ~engine:"explicit" [ ("bound", "8") ] in
      let store = Store.open_ path in
      Alcotest.(check bool) "fresh store has no snapshot" true
        (Store.find_snapshot store "k" = None);
      Store.put_snapshot store ~key:"k" snap;
      Alcotest.(check (option snap_testable)) "snapshot stored" (Some snap)
        (Store.find_snapshot store "k");
      (* identical re-put is deduplicated: no append *)
      let appends = (Store.stats store).Store.appends in
      Store.put_snapshot store ~key:"k" snap;
      Alcotest.(check int) "identical re-put deduplicated" appends
        (Store.stats store).Store.appends;
      Store.close store;
      (* a reopening process warm-starts from the snapshot *)
      let store = Store.open_ path in
      Alcotest.(check (option snap_testable)) "snapshot survives reopen"
        (Some snap)
        (Store.find_snapshot store "k");
      Alcotest.(check int) "counted in stats" 1
        (Store.stats store).Store.snapshots;
      Store.close store)

let test_store_verdict_supersedes_snapshot () =
  with_store_path (fun path ->
      let snap = Snapshot.make ~engine:"sat" [ ("states", "3") ] in
      let store = Store.open_ path in
      Store.put_snapshot store ~key:"k" snap;
      Store.put store ~key:"k" (verdict_result "k");
      Alcotest.(check bool) "verdict drops the snapshot" true
        (Store.find_snapshot store "k" = None);
      (* once the verdict is durable, new snapshots are pointless *)
      Store.put_snapshot store ~key:"k" snap;
      Alcotest.(check bool) "snapshot refused under a verdict" true
        (Store.find_snapshot store "k" = None);
      Store.close store;
      let store = Store.open_ path in
      Alcotest.(check bool) "supersession survives reopen" true
        (Store.find_snapshot store "k" = None
         && Store.find store "k" <> None);
      Store.close store)

let test_store_compaction_keeps_live_snapshots () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      let snap i =
        Snapshot.make ~engine:"explicit" [ ("bound", string_of_int i) ]
      in
      (* key "open" stays a snapshot; key "done" gets superseded *)
      for i = 1 to 5 do
        Store.put_snapshot store ~key:"open" (snap i)
      done;
      Store.put_snapshot store ~key:"done" (snap 1);
      Store.put store ~key:"done" (verdict_result "done");
      Store.compact store;
      Alcotest.(check (option snap_testable)) "live snapshot compacted in"
        (Some (snap 5))
        (Store.find_snapshot store "open");
      Alcotest.(check bool) "dead snapshot compacted out" true
        (Store.find_snapshot store "done" = None);
      Store.close store;
      let store = Store.open_ path in
      Alcotest.(check (option snap_testable)) "compaction durable"
        (Some (snap 5))
        (Store.find_snapshot store "open");
      Store.close store)

let test_store_corrupt_snapshot_skipped () =
  with_store_path (fun path ->
      let store = Store.open_ path in
      Store.put_snapshot store ~key:"k"
        (Snapshot.make ~engine:"explicit" [ ("bound", "4") ]);
      Store.close store;
      (* flip one payload byte inside the snapshot codec line; the
         frame CRC is over the payload, so recompute a valid frame
         would be cheating — instead append a well-framed record whose
         snapshot body is garbage *)
      let harness_line = "SNAP this-is-not-a-snapshot" in
      let payload = "k2\n" ^ harness_line in
      let frame =
        let b = Buffer.create 64 in
        let u32 v =
          Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
          Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
          Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
          Buffer.add_char b (Char.chr (v land 0xff))
        in
        u32 (String.length payload);
        u32 (Int32.to_int (Store.crc32 payload) land 0xffffffff);
        Buffer.add_string b payload;
        Buffer.contents b
      in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc frame;
      close_out oc;
      let store = Store.open_ path in
      (* the undecodable snapshot body is skipped, not fatal; the good
         one is still served *)
      Alcotest.(check bool) "good snapshot still live" true
        (Store.find_snapshot store "k" <> None);
      Alcotest.(check bool) "corrupt snapshot cold-starts" true
        (Store.find_snapshot store "k2" = None);
      Store.close store)

(* ---------- journal progress rendering ---------- *)

let test_journal_progress_object () =
  let module Harness = Speccc_harness.Harness in
  let snap = Snapshot.make ~engine:"explicit" [ ("bound", "8") ] in
  let partial =
    { (verdict_result "doc-1") with
      Harness.verdict = Harness.Unknown;
      progress = Some snap }
  in
  let line = Harness.journal_line partial in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "progress object rendered" true
    (contains "\"progress\":{\"engine\":\"explicit\",\"bound\":\"8\"}" line);
  (match Harness.journal_parse_line line with
   | Some parsed ->
     Alcotest.(check bool) "replay drops progress" true
       (parsed.Harness.progress = None)
   | None -> Alcotest.fail "partial-verdict line must parse");
  (* definite verdicts never carry the object *)
  let definite = Harness.journal_line (verdict_result "doc-2") in
  Alcotest.(check bool) "no progress on definite verdicts" false
    (contains "\"progress\"" definite)

(* ---------- antichain frontier fields ---------- *)

let counts_gen =
  let open QCheck2.Gen in
  list_size (0 -- 5)
    (array_size (1 -- 6) (int_range (-1) 9))

let prop_antichain_field_roundtrip =
  QCheck2.Test.make ~count:300
    ~name:"antichain frontiers round-trip through the snapshot codec"
    counts_gen
    (fun antichain ->
       let raw = Snapshot.counts_to_field antichain in
       (* field-level inverse *)
       (match Snapshot.counts_of_field raw with
        | Some decoded ->
          List.length decoded = List.length antichain
          && List.for_all2 (fun a b -> a = b) decoded antichain
        | None -> false)
       &&
       (* and through the full line codec, next to ordinary fields *)
       let snap =
         Snapshot.make ~engine:"explicit"
           [ ("bound", "3"); ("game", "system"); ("frontier", raw) ]
       in
       match Snapshot.of_string (Snapshot.to_string snap) with
       | None -> false
       | Some back -> Snapshot.field back "frontier" = Some raw)

let test_antichain_field_rejects_malformed () =
  Alcotest.(check bool) "empty decodes to []" true
    (Snapshot.counts_of_field "" = Some []);
  Alcotest.(check bool) "non-numeric cell rejected" true
    (Snapshot.counts_of_field "1,x:2" = None);
  Alcotest.(check bool) "empty cell rejected" true
    (Snapshot.counts_of_field "1,,2" = None)

let () =
  ignore test_forged_snapshot_costs_time_not_soundness;
  Alcotest.run "snapshot"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_rejects_truncation;
          Alcotest.test_case "corruption rejected" `Quick
            test_codec_rejects_corruption;
          QCheck_alcotest.to_alcotest prop_antichain_field_roundtrip;
          Alcotest.test_case "malformed frontier rejected" `Quick
            test_antichain_field_rejects_malformed;
        ] );
      ( "slot",
        [
          Alcotest.test_case "publish/rearm/resume" `Quick
            test_slot_semantics;
          Alcotest.test_case "budget plumbing" `Quick
            test_budget_carries_slot;
        ] );
      ( "resume-drill",
        [
          Alcotest.test_case "resumed localize checks fewer subsets"
            `Quick test_resume_skips_checks;
          Alcotest.test_case "corrupt snapshot cold-starts" `Quick
            test_corrupt_snapshot_cold_starts;
          Alcotest.test_case "forged snapshot cannot flip the verdict"
            `Quick test_forged_snapshot_costs_time_not_soundness;
        ] );
      ( "memwatch",
        [
          Alcotest.test_case "hard watermark degrades the ladder" `Quick
            test_hard_watermark_degrades_ladder;
          Alcotest.test_case "stats shape" `Quick test_memwatch_stats_shape;
        ] );
      ( "store",
        [
          Alcotest.test_case "snapshot round-trip" `Quick
            test_store_snapshot_roundtrip;
          Alcotest.test_case "verdict supersedes" `Quick
            test_store_verdict_supersedes_snapshot;
          Alcotest.test_case "compaction keeps live snapshots" `Quick
            test_store_compaction_keeps_live_snapshots;
          Alcotest.test_case "corrupt snapshot record skipped" `Quick
            test_store_corrupt_snapshot_skipped;
        ] );
      ( "journal",
        [
          Alcotest.test_case "progress object" `Quick
            test_journal_progress_object;
        ] );
    ]
