(* Tests for the sharded front end: the consistent-hash ring, routing-key
   extraction, and process-level crash drills — a real router over real
   [speccc serve] worker processes, one of which is SIGKILLed with a
   request in flight, plus a warm restart over a deliberately torn
   verdict store.  Every drill is checked against a sequential oracle:
   failover must trade locality, never correctness. *)

open Speccc_core
open Speccc_harness
open Speccc_shard
module Jsonl = Speccc_server.Jsonl

(* ---------- ring ---------- *)

let test_ring_deterministic_and_in_range () =
  let r1 = Shard.Ring.create ~shards:4 ~replicas:32 in
  let r2 = Shard.Ring.create ~shards:4 ~replicas:32 in
  for i = 0 to 199 do
    let key = Printf.sprintf "requirement-%d" i in
    let shard = Shard.Ring.shard_of r1 key in
    Alcotest.(check int) ("stable placement of " ^ key) shard
      (Shard.Ring.shard_of r2 key);
    Alcotest.(check bool) "in range" true (shard >= 0 && shard < 4)
  done

let test_ring_spreads_load () =
  let ring = Shard.Ring.create ~shards:4 ~replicas:64 in
  let counts = Array.make 4 0 in
  for i = 0 to 999 do
    let shard = Shard.Ring.shard_of ring (Printf.sprintf "spec-%d" i) in
    counts.(shard) <- counts.(shard) + 1
  done;
  Array.iteri
    (fun i n ->
       Alcotest.(check bool)
         (Printf.sprintf "shard %d carries real load (%d)" i n) true
         (n > 50))
    counts

let test_ring_failover_covers_all_shards_once () =
  let shards = 5 in
  let ring = Shard.Ring.create ~shards ~replicas:16 in
  for i = 0 to 49 do
    let key = Printf.sprintf "doc-%d" i in
    let order = Shard.Ring.failover ring key in
    Alcotest.(check int) "every shard appears" shards (List.length order);
    Alcotest.(check (list int)) "each exactly once"
      (List.init shards Fun.id)
      (List.sort compare order);
    (match order with
     | home :: _ ->
       Alcotest.(check int) "home shard first"
         (Shard.Ring.shard_of ring key) home
     | [] -> Alcotest.fail "empty failover order")
  done

let test_ring_growth_is_stable () =
  (* The consistent-hashing contract: growing the pool only moves keys
     onto the new shard — existing placements are otherwise stable. *)
  let before = Shard.Ring.create ~shards:4 ~replicas:64 in
  let after = Shard.Ring.create ~shards:5 ~replicas:64 in
  let moved = ref 0 in
  for i = 0 to 999 do
    let key = Printf.sprintf "spec-%d" i in
    let was = Shard.Ring.shard_of before key in
    let is = Shard.Ring.shard_of after key in
    if was <> is then begin
      incr moved;
      Alcotest.(check int) (key ^ " may only move to the new shard") 4 is
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "a minority moved (%d/1000)" !moved) true (!moved < 500)

(* ---------- routing keys ---------- *)

let test_request_key () =
  Alcotest.(check (option string)) "doc text routes"
    (Some "If the pump is lost, the alarm is triggered.")
    (Shard.request_key
       "{\"id\":1,\"doc\":\"If the pump is lost, the alarm is triggered.\"}");
  Alcotest.(check (option string)) "path routes" (Some "specs/pump.txt")
    (Shard.request_key "{\"id\":2,\"path\":\"specs/pump.txt\"}");
  Alcotest.(check (option string)) "id is the last resort" (Some "7")
    (Shard.request_key "{\"id\":7,\"cmd\":\"health\"}");
  Alcotest.(check (option string)) "unparsable lines are not routed" None
    (Shard.request_key "this is not json")

(* ---------- driving a real routed pool ---------- *)

(* Under [dune runtest] the cwd is [_build/default/test]; under a bare
   [dune exec] it is the workspace root.  Resolve the built CLI either
   way, as an absolute path so worker spawns are cwd-proof. *)
let binary =
  let exe = "speccc_cli.exe" in
  let candidates =
    [ Filename.concat ".." (Filename.concat "bin" exe);
      List.fold_left Filename.concat "_build" [ "default"; "bin"; exe ] ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path when Filename.is_relative path ->
    Filename.concat (Sys.getcwd ()) path
  | Some path -> path
  | None -> Alcotest.fail ("speccc CLI binary not built: " ^ Sys.getcwd ())

let consistent_text = "If the start button is pressed, the pump is started."

let inconsistent_text =
  "If the pump is lost, the alarm is triggered.\n\
   If the pump is lost, the alarm is not triggered."

let single_text = "If the pump is lost, the alarm is not triggered."

let combo_text =
  consistent_text ^ "\nIf the pump is lost, the alarm is triggered."

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

(* The workers the router spawns: the real CLI binary, one domain per
   worker, tight watchdog.  [extra] appends per-shard flags (a fault
   plan for the crash drill, a store path for the warm-start drill). *)
let worker_argv ?(extra = fun _ -> []) () ~shard ~socket =
  Array.of_list
    ([ binary; "serve"; "--socket"; socket; "--workers"; "1";
       "--request-deadline"; "5"; "--grace"; "1" ]
     @ extra shard)

type session = {
  send : string -> unit;
  recv : unit -> string;
  finish : unit -> Shard.stats;
}

(* Run [Shard.run] on a background thread, talking to it over pipes so
   the test can interleave sends, receives and signals. *)
let start_route ?(shards = 2) ?(retries = 2) argv =
  (* cloexec: a worker inheriting [in_write] would keep the router's
     input alive forever after the test closes its own copy *)
  let in_read, in_write = Unix.pipe ~cloexec:true () in
  let out_read, out_write = Unix.pipe ~cloexec:true () in
  let socket_dir = temp_dir "speccc_shard_sock" in
  let config =
    { (Shard.default_config ~socket_dir ~worker_argv:argv) with
      Shard.shards = shards;
      request_retries = retries;
      request_timeout = 20.;
      connect_timeout = 20.;
      respawn_wait = 0.1;
      shutdown_wait = 5. }
  in
  let output = Unix.out_channel_of_descr out_write in
  let stats = ref None in
  let runner =
    Thread.create
      (fun () ->
         let s = Shard.run config ~input:in_read ~output in
         stats := Some s;
         (try close_out output with Sys_error _ -> ()))
      ()
  in
  let responses = Unix.in_channel_of_descr out_read in
  let closed = ref false in
  {
    send =
      (fun line ->
         let data = Bytes.of_string (line ^ "\n") in
         ignore (Unix.write in_write data 0 (Bytes.length data)));
    recv = (fun () -> input_line responses);
    finish =
      (fun () ->
         if not !closed then begin
           closed := true;
           (try Unix.close in_write with Unix.Unix_error _ -> ())
         end;
         Thread.join runner;
         (try close_in responses with Sys_error _ -> ());
         (try Unix.close in_read with Unix.Unix_error _ -> ());
         rm_rf socket_dir;
         match !stats with
         | Some s -> s
         | None -> Alcotest.fail "router did not return stats");
  }

let check_request n text =
  Printf.sprintf "{\"id\":%d,\"doc\":\"%s\"}" n (Jsonl.escape text)

let parse_response line =
  match Jsonl.parse line with
  | Ok json -> json
  | Error e -> Alcotest.fail ("unparsable response " ^ line ^ ": " ^ e)

(* Verdict oracle: the same deterministic pipeline the workers run. *)
let oracle_verdict text =
  let result =
    Harness.check_one (Harness.default_config ()) "oracle" (Document.parse text)
  in
  match result.Harness.verdict with
  | Harness.Consistent -> "consistent"
  | Harness.Inconsistent -> "inconsistent"
  | Harness.Unknown -> "unknown"
  | Harness.Failed _ -> "failed"

let recv_by_id session n =
  let table = Hashtbl.create n in
  for _ = 1 to n do
    let json = parse_response (session.recv ()) in
    match Jsonl.int_member "id" json with
    | Some id ->
      if Hashtbl.mem table id then
        Alcotest.fail (Printf.sprintf "duplicate response for id %d" id);
      Hashtbl.add table id json
    | None -> Alcotest.fail "response without numeric id"
  done;
  table

let shard_entries health_json =
  match
    Option.bind (Jsonl.member "health" health_json) (Jsonl.member "shards")
  with
  | Some (Jsonl.Arr entries) -> entries
  | _ -> Alcotest.fail "health response lacks a shards array"

let pid_of_shard entries target =
  match
    List.find_map
      (fun entry ->
         match Jsonl.int_member "shard" entry with
         | Some i when i = target -> Jsonl.int_member "pid" entry
         | _ -> None)
      entries
  with
  | Some pid -> pid
  | None -> Alcotest.fail (Printf.sprintf "no pid for shard %d" target)

let store_counter entries field =
  List.fold_left
    (fun acc entry ->
       match
         Option.bind (Jsonl.member "health" entry) (Jsonl.member "store")
       with
       | Some store ->
         acc + Option.value (Jsonl.int_member field store) ~default:0
       | None -> acc)
    0 entries

let test_route_answers_and_matches_oracle () =
  let texts = [| consistent_text; inconsistent_text; single_text |] in
  let n = 6 in
  let session = start_route ~shards:2 (worker_argv ()) in
  for i = 1 to n do
    session.send (check_request i texts.((i - 1) mod Array.length texts))
  done;
  let responses = recv_by_id session n in
  let stats = session.finish () in
  for i = 1 to n do
    let json = Hashtbl.find responses i in
    Alcotest.(check (option string))
      (Printf.sprintf "verdict for id %d matches the oracle" i)
      (Some (oracle_verdict texts.((i - 1) mod Array.length texts)))
      (Jsonl.str_member "verdict" json)
  done;
  Alcotest.(check int) "all served" n stats.Shard.served;
  Alcotest.(check int) "none unavailable" 0 stats.Shard.unavailable;
  Alcotest.(check int) "no failovers needed" 0 stats.Shard.failovers;
  Alcotest.(check int) "per-shard tallies add up" n
    (Array.fold_left ( + ) 0 stats.Shard.shard_served)

let test_route_kill_mid_request_fails_over () =
  (* Aim a request at a worker wedged at the server.request checkpoint,
     SIGKILL that worker while the request is in flight, and demand the
     router still answers it — correctly — via failover, then respawns
     the shard. *)
  let shards = 3 in
  let line = check_request 2 inconsistent_text in
  let key =
    match Shard.request_key line with
    | Some key -> key
    | None -> Alcotest.fail "request line must have a routing key"
  in
  let ring = Shard.Ring.create ~shards ~replicas:32 in
  let victim = Shard.Ring.shard_of ring key in
  let extra shard =
    (* only the victim stalls: its first check request sleeps at the
       checkpoint, long enough for the SIGKILL to land mid-request *)
    if shard = victim then [ "--inject"; "server.request@0=delay:8" ] else []
  in
  let session = start_route ~shards (worker_argv ~extra ()) in
  session.send "{\"id\":1,\"cmd\":\"health\"}";
  let pid =
    pid_of_shard (shard_entries (parse_response (session.recv ()))) victim
  in
  session.send line;
  (* let the request reach the victim and wedge, then murder it *)
  Thread.delay 0.5;
  Unix.kill pid Sys.sigkill;
  let response = parse_response (session.recv ()) in
  Alcotest.(check (option int)) "the in-flight request is answered"
    (Some 2) (Jsonl.int_member "id" response);
  Alcotest.(check (option string)) "failover preserved the verdict"
    (Some (oracle_verdict inconsistent_text))
    (Jsonl.str_member "verdict" response);
  (* the respawned victim must serve again: health fans out to all
     shards, so a full aggregate proves the pool is whole *)
  session.send "{\"id\":3,\"cmd\":\"health\"}";
  let entries = shard_entries (parse_response (session.recv ())) in
  let new_pid = pid_of_shard entries victim in
  Alcotest.(check bool) "victim respawned under a new pid" true
    (new_pid <> pid);
  let stats = session.finish () in
  Alcotest.(check int) "the check was served" 1 stats.Shard.served;
  Alcotest.(check bool) "failover recorded" true (stats.Shard.failovers >= 1);
  Alcotest.(check bool) "respawn recorded" true (stats.Shard.respawns >= 1);
  Alcotest.(check int) "nothing unavailable" 0 stats.Shard.unavailable

let test_route_warm_restart_serves_from_store () =
  (* Two pool lifetimes over the same per-shard stores, with one store
     deliberately torn mid-record in between: the second pool must
     answer every repeat identically, serve (almost) all of them from
     the store, and report the recovery. *)
  let texts =
    [| consistent_text; inconsistent_text; single_text; combo_text |]
  in
  let n = Array.length texts in
  let store_dir = temp_dir "speccc_shard_store" in
  Fun.protect
    ~finally:(fun () -> rm_rf store_dir)
    (fun () ->
       let extra shard =
         [ "--store";
           Filename.concat store_dir (Printf.sprintf "shard-%d.store" shard) ]
       in
       let run_pool () =
         let session = start_route ~shards:2 (worker_argv ~extra ()) in
         for i = 1 to n do
           session.send (check_request i texts.(i - 1))
         done;
         let responses = recv_by_id session n in
         session.send (Printf.sprintf "{\"id\":%d,\"cmd\":\"health\"}" (n + 1));
         let entries = shard_entries (parse_response (session.recv ())) in
         let stats = session.finish () in
         (responses, entries, stats)
       in
       let cold, _, cold_stats = run_pool () in
       Alcotest.(check int) "cold run served everything" n
         cold_stats.Shard.served;
       (* tear the tail off one populated store: the process-died-mid-
          append artifact the warm pool must recover from *)
       let torn =
         let candidates =
           List.filter
             (fun i ->
                let path =
                  Filename.concat store_dir (Printf.sprintf "shard-%d.store" i)
                in
                Sys.file_exists path && (Unix.stat path).Unix.st_size > 64)
             [ 0; 1 ]
         in
         match candidates with
         | i :: _ ->
           let path =
             Filename.concat store_dir (Printf.sprintf "shard-%d.store" i)
           in
           let size = (Unix.stat path).Unix.st_size in
           let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
           Unix.ftruncate fd (size - 5);
           Unix.close fd;
           i
         | [] -> Alcotest.fail "no store file was populated"
       in
       let warm, warm_entries, warm_stats = run_pool () in
       for i = 1 to n do
         let verdict json = Jsonl.str_member "verdict" json in
         Alcotest.(check (option string))
           (Printf.sprintf "id %d: warm answer identical to cold" i)
           (verdict (Hashtbl.find cold i))
           (verdict (Hashtbl.find warm i));
         Alcotest.(check (option string))
           (Printf.sprintf "id %d: same engine" i)
           (Jsonl.str_member "engine" (Hashtbl.find cold i))
           (Jsonl.str_member "engine" (Hashtbl.find warm i))
       done;
       Alcotest.(check int) "warm run served everything" n
         warm_stats.Shard.served;
       (* at most the one torn record was lost: >= n-1 of n repeats hit
          the store (the >=90% acceptance bar), and the tear was seen *)
       Alcotest.(check bool)
         (Printf.sprintf "store hits %d >= %d"
            (store_counter warm_entries "hits") (n - 1))
         true
         (store_counter warm_entries "hits" >= n - 1);
       Alcotest.(check bool)
         (Printf.sprintf "shard %d reported recovered bytes" torn)
         true
         (store_counter warm_entries "recovered_bytes" > 0))

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic and in range" `Quick
            test_ring_deterministic_and_in_range;
          Alcotest.test_case "spreads load" `Quick test_ring_spreads_load;
          Alcotest.test_case "failover covers all shards once" `Quick
            test_ring_failover_covers_all_shards_once;
          Alcotest.test_case "growth only moves keys to the new shard"
            `Quick test_ring_growth_is_stable;
        ] );
      ( "routing keys",
        [ Alcotest.test_case "doc, path, id, garbage" `Quick test_request_key ] );
      ( "crash drills",
        [
          Alcotest.test_case "routed pool matches the oracle" `Slow
            test_route_answers_and_matches_oracle;
          Alcotest.test_case "SIGKILL mid-request fails over and respawns"
            `Slow test_route_kill_mid_request_fails_over;
          Alcotest.test_case "warm restart serves from a torn store" `Slow
            test_route_warm_restart_serves_from_store;
        ] );
    ]
