(* Tests for the resource-governance layer: budgets, cancellation,
   fault injection, and the engine-fallback ladder.

   The load-bearing checks are (1) the qcheck property that a budgeted
   realizability check always terminates within its fuel and returns a
   value instead of raising, and (2) the fault-injection cases that
   force every rung of the ladder to fire. *)

open Speccc_logic
open Speccc_runtime
open Speccc_synthesis
open Speccc_core

let parse = Ltl_parse.formula

let with_faults ?seed triggers f =
  Fault.install ?seed triggers;
  Fun.protect ~finally:Fault.clear f

(* ---------- budget ---------- *)

let test_fuel_exhaustion () =
  let budget = Budget.create ~fuel:10 () in
  for _ = 1 to 10 do Budget.checkpoint budget ~stage:"s" done;
  Alcotest.(check int) "spent" 10 (Budget.spent budget);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted budget);
  match Budget.checkpoint budget ~stage:"s" with
  | () -> Alcotest.fail "11th step must raise"
  | exception Runtime.Interrupt (Runtime.Fuel_exhausted "s") -> ()

let test_poll_interval_bound () =
  (* A deadline in the past must be noticed within max_poll_interval
     checkpoints even when a huge polling period is requested. *)
  let budget =
    Budget.create ~deadline_in:(-1.0) ~poll_every:1_000_000 ()
  in
  let steps = ref 0 in
  (try
     while !steps <= Budget.max_poll_interval do
       Budget.checkpoint budget ~stage:"s";
       incr steps
     done
   with Runtime.Interrupt (Runtime.Timeout "s") -> ());
  Alcotest.(check bool)
    (Printf.sprintf "timeout within %d steps (took %d)"
       Budget.max_poll_interval !steps)
    true
    (!steps <= Budget.max_poll_interval)

let test_child_absorb () =
  let parent = Budget.create ~fuel:100 () in
  let child = Budget.child parent ~fuel:60 in
  Alcotest.(check (option int)) "child fuel" (Some 60)
    (Budget.remaining child);
  for _ = 1 to 5 do Budget.checkpoint child ~stage:"c" done;
  Budget.absorb parent child;
  Alcotest.(check int) "parent spent" 5 (Budget.spent parent);
  Alcotest.(check (option int)) "parent remaining" (Some 95)
    (Budget.remaining parent);
  (* a child never gets more than the parent has left *)
  let greedy = Budget.child parent ~fuel:1_000 in
  Alcotest.(check (option int)) "child capped" (Some 95)
    (Budget.remaining greedy)

let test_cancellation () =
  let token = Cancellation.create () in
  let budget = Budget.create ~cancel:token ~poll_every:1 () in
  Budget.checkpoint budget ~stage:"s";
  Alcotest.(check bool) "not cancelled yet" false
    (Cancellation.is_cancelled token);
  Cancellation.cancel token;
  (match Budget.checkpoint budget ~stage:"s" with
   | () -> Alcotest.fail "checkpoint after cancel must raise"
   | exception Runtime.Interrupt (Runtime.Cancelled "s") -> ());
  match Budget.check budget ~stage:"s" with
  | Error (Runtime.Cancelled _) -> ()
  | Ok () | Error _ -> Alcotest.fail "check must report Cancelled"

(* ---------- typed errors on user-input paths ---------- *)

let test_dimacs_typed_errors () =
  (match Speccc_sat.Dimacs.parse "p cnf x 2" with
   | Error (Runtime.Invalid_input { stage = "dimacs"; line = Some 1; _ }) ->
     ()
   | Ok _ | Error _ -> Alcotest.fail "bad header must blame line 1");
  (match Speccc_sat.Dimacs.parse "c ok\np cnf 2 1\n1 zz 0" with
   | Error (Runtime.Invalid_input { stage = "dimacs"; line = Some 3; _ }) ->
     ()
   | Ok _ | Error _ -> Alcotest.fail "bad literal must blame line 3");
  match Speccc_sat.Dimacs.parse "p cnf 2 2\n1 -2 0\n2 0" with
  | Ok (2, [ [ 1; -2 ]; [ 2 ] ]) -> ()
  | Ok _ | Error _ -> Alcotest.fail "well-formed input must parse"

let test_timeabs_typed_errors () =
  (match Speccc_timeabs.Timeabs.problem_checked ~budget:(-1) [ 4; 6 ] with
   | Error error ->
     Alcotest.(check string) "stage" "timeabs" (Runtime.stage_of error)
   | Ok _ -> Alcotest.fail "negative budget must be rejected");
  (match Speccc_timeabs.Timeabs.problem_checked [ 4; 0 ] with
   | Error (Runtime.Invalid_input _) -> ()
   | Ok _ | Error _ -> Alcotest.fail "non-positive θ must be rejected");
  match Speccc_timeabs.Timeabs.problem_checked [ 4; 6 ] with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "valid Θ must build"

let test_verbalize_typed_errors () =
  let config = Speccc_translate.Verbalize.default_config () in
  match
    Speccc_translate.Verbalize.roundtrip_checked config
      (parse "a U b")   (* outside the template fragment *)
  with
  | Error (Runtime.Invalid_input { stage = "verbalize"; _ }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "out-of-fragment must be typed"

(* ---------- fault injection ---------- *)

let test_fault_counts_and_fires () =
  with_faults
    [ { Fault.checkpoint = Fault.Checkpoint.sat_solve; after = 1;
        action = Fault.Fail "boom" } ]
    (fun () ->
       let solver = Speccc_sat.Sat.create () in
       Speccc_sat.Sat.add_clause solver [ 1 ];
       (* first hit passes... *)
       (match Speccc_sat.Sat.solve solver with
        | Speccc_sat.Sat.Sat _ -> ()
        | Speccc_sat.Sat.Unsat -> Alcotest.fail "1 must be satisfiable");
       (* ...second hit fires the trigger *)
       (match
          Runtime.guard ~stage:"sat" (fun () ->
              Speccc_sat.Sat.solve solver)
        with
        | Error (Runtime.Engine_failure ("sat.solve", "boom")) -> ()
        | Ok _ | Error _ -> Alcotest.fail "second solve must fail");
       Alcotest.(check int) "hits counted" 2 (Fault.hits Fault.Checkpoint.sat_solve));
  Alcotest.(check bool) "cleared" false (Fault.active ())

let test_budgeted_tableau_is_interruptible () =
  let budget = Budget.create ~fuel:3 () in
  match
    Runtime.guard ~stage:"tableau" (fun () ->
        Speccc_automata.Nbw.of_ltl ~budget (parse "G (a -> F b)"))
  with
  | Error (Runtime.Fuel_exhausted "tableau") -> ()
  | Ok _ -> Alcotest.fail "3 steps cannot build this tableau"
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_cancellation_reason () =
  let token = Cancellation.create () in
  Alcotest.(check (option string)) "no reason yet" None
    (Cancellation.reason token);
  Cancellation.cancel ~reason:"watchdog" token;
  Alcotest.(check bool) "cancelled" true (Cancellation.is_cancelled token);
  Alcotest.(check (option string)) "reason recorded" (Some "watchdog")
    (Cancellation.reason token);
  (* a second cancel without a reason must not erase the first *)
  Cancellation.cancel token;
  Alcotest.(check (option string)) "reason kept" (Some "watchdog")
    (Cancellation.reason token)

let test_fault_counts_across_domains () =
  (* Fault plans are process-global and mutex-protected: hits
     announced from several domains at once must be counted exactly,
     and a trigger must fire exactly once across the whole pool. *)
  let domains = 4 and hits_per_domain = 250 in
  with_faults
    [ { Fault.checkpoint = Fault.Checkpoint.sat_solve;
        after = (domains * hits_per_domain) - 1;
        action = Fault.Fail "last hit" } ]
    (fun () ->
       let fired = Atomic.make 0 in
       let worker () =
         for _ = 1 to hits_per_domain do
           match Runtime.guard ~stage:"t" (fun () ->
               Fault.hit Fault.Checkpoint.sat_solve) with
           | Ok () -> ()
           | Error _ -> Atomic.incr fired
         done
       in
       let spawned = List.init domains (fun _ -> Domain.spawn worker) in
       List.iter Domain.join spawned;
       Alcotest.(check int) "every hit counted"
         (domains * hits_per_domain)
         (Fault.hits Fault.Checkpoint.sat_solve);
       Alcotest.(check int) "trigger fired exactly once" 1
         (Atomic.get fired))

(* ---------- watchdog ---------- *)

let test_watchdog_fast_job_ok () =
  let dog = Watchdog.create ~poll_interval:0.005 () in
  Fun.protect ~finally:(fun () -> Watchdog.stop dog)
    (fun () ->
       let token = Cancellation.create () in
       let escalated = Atomic.make false in
       let job =
         Watchdog.watch dog ~deadline:5.0 ~grace:1.0 ~cancel:token
           ~on_escalate:(fun () -> Atomic.set escalated true)
       in
       (match Watchdog.complete dog job with
        | `Ok -> ()
        | `Tripped | `Escalated -> Alcotest.fail "job beat its deadline");
       Alcotest.(check bool) "token untouched" false
         (Cancellation.is_cancelled token);
       Alcotest.(check bool) "no escalation" false (Atomic.get escalated))

let test_watchdog_trips_then_escalates () =
  let dog = Watchdog.create ~poll_interval:0.005 () in
  Fun.protect ~finally:(fun () -> Watchdog.stop dog)
    (fun () ->
       let token = Cancellation.create () in
       let escalations = Atomic.make 0 in
       let job =
         Watchdog.watch dog ~deadline:0.03 ~grace:0.03 ~cancel:token
           ~on_escalate:(fun () -> Atomic.incr escalations)
       in
       (* past the deadline but within grace: tripped, not escalated *)
       Thread.delay 0.045;
       Alcotest.(check bool) "token tripped" true
         (Cancellation.is_cancelled token);
       Alcotest.(check (option string)) "by the watchdog"
         (Some "watchdog") (Cancellation.reason token);
       Alcotest.(check int) "not yet escalated" 0 (Atomic.get escalations);
       (* past deadline + grace: escalated, exactly once *)
       Thread.delay 0.08;
       Alcotest.(check int) "escalated once" 1 (Atomic.get escalations);
       (match Watchdog.complete dog job with
        | `Escalated -> ()
        | `Ok | `Tripped -> Alcotest.fail "status must be `Escalated");
       Alcotest.(check int) "trip counter" 1 (Watchdog.trips dog);
       Alcotest.(check int) "escalation counter" 1 (Watchdog.escalations dog))

let test_watchdog_completion_stops_escalation () =
  let dog = Watchdog.create ~poll_interval:0.005 () in
  Fun.protect ~finally:(fun () -> Watchdog.stop dog)
    (fun () ->
       let token = Cancellation.create () in
       let escalated = Atomic.make false in
       let job =
         Watchdog.watch dog ~deadline:0.02 ~grace:0.05 ~cancel:token
           ~on_escalate:(fun () -> Atomic.set escalated true)
       in
       (* the engine notices the trip and stops within the grace *)
       Thread.delay 0.035;
       (match Watchdog.complete dog job with
        | `Tripped -> ()
        | `Ok | `Escalated -> Alcotest.fail "status must be `Tripped");
       (* completing the job disarms stage two for good *)
       Thread.delay 0.08;
       Alcotest.(check bool) "no late escalation" false
         (Atomic.get escalated))

(* ---------- the fallback ladder ---------- *)

let inputs = [ "i" ]
let outputs = [ "o" ]
let realizable_spec = [ parse "G (i -> o)" ]

let governed ?budget ?(faults = []) formulas =
  with_faults faults (fun () ->
      Realizability.check_governed ?budget ~inputs ~outputs formulas)

let rung_engines report =
  List.map (fun r -> r.Realizability.rung_engine)
    report.Realizability.degradation

let fail_at checkpoint =
  { Fault.checkpoint; after = 0; action = Fault.Fail "injected" }

let test_ladder_no_fault () =
  match governed ~budget:(Budget.create ~fuel:500_000 ()) realizable_spec with
  | Ok report ->
    Alcotest.(check bool) "consistent" true
      (report.Realizability.verdict = Realizability.Consistent);
    Alcotest.(check (list string)) "no degradation" [] (rung_engines report)
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_ladder_first_rung_fails () =
  match
    governed ~faults:[ fail_at Fault.Checkpoint.engine_symbolic ] realizable_spec
  with
  | Ok report ->
    Alcotest.(check bool) "consistent" true
      (report.Realizability.verdict = Realizability.Consistent);
    Alcotest.(check string) "fell to explicit" "explicit"
      report.Realizability.engine_used;
    Alcotest.(check (list string)) "one rung logged" [ "symbolic" ]
      (rung_engines report)
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_ladder_two_rungs_fail () =
  match
    governed
      ~faults:[ fail_at Fault.Checkpoint.engine_symbolic; fail_at Fault.Checkpoint.engine_explicit ]
      realizable_spec
  with
  | Ok report ->
    Alcotest.(check bool) "consistent" true
      (report.Realizability.verdict = Realizability.Consistent);
    Alcotest.(check string) "fell to sat" "sat"
      report.Realizability.engine_used;
    Alcotest.(check (list string)) "two rungs logged"
      [ "symbolic"; "explicit" ] (rung_engines report)
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_ladder_all_rungs_fail () =
  match
    governed
      ~faults:
        [ fail_at Fault.Checkpoint.engine_symbolic; fail_at Fault.Checkpoint.engine_explicit;
          fail_at Fault.Checkpoint.engine_sat ]
      realizable_spec
  with
  | Ok report ->
    (match report.Realizability.verdict with
     | Realizability.Inconclusive _ -> ()
     | _ -> Alcotest.fail "no engine left: must be inconclusive");
    Alcotest.(check (list string)) "three rungs logged"
      [ "symbolic"; "explicit"; "sat" ] (rung_engines report)
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_ladder_fuel_exhaust_rung () =
  (* An Exhaust fault is indistinguishable from real fuel starvation:
     the rung degrades with a resource error and the ladder goes on. *)
  match
    governed
      ~faults:
        [ { Fault.checkpoint = Fault.Checkpoint.engine_symbolic; after = 0;
            action = Fault.Exhaust } ]
      realizable_spec
  with
  | Ok report ->
    Alcotest.(check bool) "consistent" true
      (report.Realizability.verdict = Realizability.Consistent);
    (match report.Realizability.degradation with
     | [ { Realizability.rung_error = Some error; _ } ] ->
       Alcotest.(check bool) "resource error" true
         (Runtime.is_resource error)
     | _ -> Alcotest.fail "expected exactly one degraded rung")
  | Error e -> Alcotest.fail (Runtime.to_string e)

let test_ladder_global_timeout_aborts () =
  (* A wall-clock timeout is global: the ladder must stop instead of
     descending to engines that would be killed at their first poll. *)
  match
    governed
      ~faults:
        [ { Fault.checkpoint = Fault.Checkpoint.engine_symbolic; after = 0;
            action = Fault.Timeout_now } ]
      realizable_spec
  with
  | Error (Runtime.Timeout _) -> ()
  | Error e -> Alcotest.fail (Runtime.to_string e)
  | Ok _ -> Alcotest.fail "injected timeout must abort the ladder"

let test_pipeline_lint_floor () =
  (* Every synthesis engine degraded, but the two requirements are a
     plain propositional conflict — the pipeline's lint floor must
     still deliver the sound Inconsistent verdict. *)
  let options =
    { (Pipeline.default_options ()) with Pipeline.fuel = Some 1_000_000 }
  in
  with_faults
    [ fail_at Fault.Checkpoint.engine_symbolic; fail_at Fault.Checkpoint.engine_explicit;
      fail_at Fault.Checkpoint.engine_sat ]
    (fun () ->
       let _, report =
         Pipeline.check_formulas ~options [ parse "G o"; parse "G !o" ]
       in
       Alcotest.(check bool) "inconsistent" true
         (report.Realizability.verdict = Realizability.Inconsistent);
       Alcotest.(check string) "lint concluded" "lint"
         report.Realizability.engine_used;
       Alcotest.(check bool) "engines logged" true
         (List.length report.Realizability.degradation >= 3))

(* ---------- pipeline under tight budgets ---------- *)

let test_cara_under_tight_budget () =
  (* The CARA working-mode document is the paper's running example; a
     starved run must terminate promptly with a populated degradation
     log instead of hanging. *)
  let document =
    List.mapi
      (fun line (id, text) -> { Document.id; text; line = line + 1 })
      Speccc_casestudies.Cara.working_modes
  in
  let options =
    { (Pipeline.default_options ()) with Pipeline.fuel = Some 2_000 }
  in
  let outcome = Pipeline.run_document ~options document in
  match outcome.Pipeline.report.Realizability.verdict with
  | Realizability.Consistent | Realizability.Inconsistent -> ()
  | Realizability.Inconclusive _ ->
    Alcotest.(check bool) "degradation recorded" true
      (outcome.Pipeline.report.Realizability.degradation <> [])

(* ---------- the termination property ---------- *)

let prop_names = [ "i"; "o"; "p" ]

let formula_gen =
  let open QCheck2.Gen in
  int_range 0 8 >>= fix (fun self size ->
      if size <= 1 then
        oneof
          [ return Ltl.True; return Ltl.False; map Ltl.prop (oneofl prop_names) ]
      else
        let sub = self (size / 2) in
        oneof
          [
            map Ltl.prop (oneofl prop_names);
            map (fun f -> Ltl.Not f) sub;
            map2 (fun f g -> Ltl.And (f, g)) sub sub;
            map2 (fun f g -> Ltl.Or (f, g)) sub sub;
            map2 (fun f g -> Ltl.Implies (f, g)) sub sub;
            map (fun f -> Ltl.Next f) sub;
            map (fun f -> Ltl.Eventually f) sub;
            map (fun f -> Ltl.Always f) sub;
            map2 (fun f g -> Ltl.Until (f, g)) sub sub;
          ])

(* check_governed under a fuel-only budget must (a) never raise,
   (b) never return Error — fuel exhaustion is not a global event —
   and (c) never spend more than the fuel it was given. *)
let prop_governed_check_terminates =
  QCheck2.Test.make ~count:60
    ~name:"budgeted check_governed terminates within fuel, never raises"
    QCheck2.Gen.(pair formula_gen (int_range 50 5_000))
    (fun (formula, fuel) ->
       let budget = Budget.create ~fuel () in
       match
         Realizability.check_governed ~budget ~inputs:[ "i" ]
           ~outputs:[ "o"; "p" ] [ formula ]
       with
       | Ok _ -> Budget.spent budget <= fuel
       | Error (Runtime.Timeout _ | Runtime.Fuel_exhausted _) ->
         (* allowed by the contract, though fuel-only budgets take the
            Ok path; spending must still respect the cap *)
         Budget.spent budget <= fuel
       | Error _ -> false)

let () =
  Alcotest.run "runtime"
    [
      ( "budget",
        [
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "poll interval bound" `Quick
            test_poll_interval_bound;
          Alcotest.test_case "child/absorb" `Quick test_child_absorb;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "cancellation reason" `Quick
            test_cancellation_reason;
        ] );
      ( "typed-errors",
        [
          Alcotest.test_case "dimacs" `Quick test_dimacs_typed_errors;
          Alcotest.test_case "timeabs" `Quick test_timeabs_typed_errors;
          Alcotest.test_case "verbalize" `Quick test_verbalize_typed_errors;
        ] );
      ( "faults",
        [
          Alcotest.test_case "counts and fires" `Quick
            test_fault_counts_and_fires;
          Alcotest.test_case "budgeted tableau" `Quick
            test_budgeted_tableau_is_interruptible;
          Alcotest.test_case "exact counts across domains" `Quick
            test_fault_counts_across_domains;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fast job is `Ok" `Quick
            test_watchdog_fast_job_ok;
          Alcotest.test_case "trips then escalates" `Quick
            test_watchdog_trips_then_escalates;
          Alcotest.test_case "completion disarms escalation" `Quick
            test_watchdog_completion_stops_escalation;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "no fault" `Quick test_ladder_no_fault;
          Alcotest.test_case "first rung fails" `Quick
            test_ladder_first_rung_fails;
          Alcotest.test_case "two rungs fail" `Quick
            test_ladder_two_rungs_fail;
          Alcotest.test_case "all rungs fail" `Quick
            test_ladder_all_rungs_fail;
          Alcotest.test_case "fuel-exhaust rung" `Quick
            test_ladder_fuel_exhaust_rung;
          Alcotest.test_case "global timeout aborts" `Quick
            test_ladder_global_timeout_aborts;
          Alcotest.test_case "pipeline lint floor" `Quick
            test_pipeline_lint_floor;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "CARA under tight budget" `Quick
            test_cara_under_tight_budget;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_governed_check_terminates ] );
    ]
