open Speccc_logic
open Speccc_automata
open Speccc_sat
module Bitvec = Speccc_smt.Bitvec

type verdict =
  | Realizable of Mealy.t
  | No_machine_within of { states : int; bound : int }

(* Atomic so concurrent harness workers never tear a read; each worker
   simply sees the most recent solve from any domain. *)
let last_stats = Atomic.make "no solve yet"
let stats () = Atomic.get last_stats

(* Split a UCW guard against an input valuation: [None] when the guard
   contradicts the valuation or requires an unknown proposition;
   otherwise the list of output-bit literals it demands. *)
let guard_requirements ~input_index ~output_index ~imask guard =
  let rec go acc = function
    | [] -> Some acc
    | (prop, value) :: rest ->
      (match input_index prop with
       | Some bit ->
         if (imask land (1 lsl bit) <> 0) = value then go acc rest else None
       | None ->
         (match output_index prop with
          | Some bit -> go ((bit, value) :: acc) rest
          | None -> if value then None else go acc rest))
  in
  go [] guard

(* Counters are two's-complement bit vectors: the width must represent
   0..bound as POSITIVE values (one more bit than the unsigned count,
   or the upper half of the range silently turns negative and the
   usable bound collapses). *)
let bits_for bound = Speccc_smt.Bitvec.width_for 0 bound

let solve ?budget ?(bound = 3) ~machine_states ~inputs ~outputs spec =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_sat;
  if machine_states < 1 then
    invalid_arg "Satsynth.solve: machine_states < 1";
  if List.length inputs + List.length outputs > 16 then
    invalid_arg "Satsynth.solve: too many propositions for the encoding";
  let ucw = Nbw.of_ltl ?budget (Ltl.neg spec) in
  let num_q = ucw.Nbw.num_states in
  let num_inputs = 1 lsl List.length inputs in
  let num_output_bits = List.length outputs in
  let input_index =
    let table = Hashtbl.create 8 in
    List.iteri (fun i p -> Hashtbl.add table p i) inputs;
    fun p -> Hashtbl.find_opt table p
  in
  let output_index =
    let table = Hashtbl.create 8 in
    List.iteri (fun i p -> Hashtbl.add table p i) outputs;
    fun p -> Hashtbl.find_opt table p
  in
  let sat = Sat.create () in
  let ctx = Tseitin.create sat in
  (* machine structure variables *)
  let out_bits =
    Array.init machine_states (fun _ ->
        Array.init num_inputs (fun _ ->
            Array.init num_output_bits (fun _ -> Tseitin.fresh ctx)))
  in
  let succ =
    Array.init machine_states (fun _ ->
        Array.init num_inputs (fun _ ->
            Array.init machine_states (fun _ -> Tseitin.fresh ctx)))
  in
  (* exactly-one successor *)
  Array.iter
    (Array.iter (fun choices ->
         Sat.add_clause sat (Array.to_list choices);
         Array.iteri
           (fun a la ->
              Array.iteri
                (fun b lb ->
                   if b > a then Sat.add_clause sat [ -la; -lb ])
                choices)
           choices))
    succ;
  (* annotation: activity bits and counters *)
  let active =
    Array.init machine_states (fun _ ->
        Array.init num_q (fun _ -> Tseitin.fresh ctx))
  in
  let width = bits_for bound in
  let counter =
    Array.init machine_states (fun _ ->
        Array.init num_q (fun _ -> Bitvec.fresh ctx ~width))
  in
  let const value = Bitvec.of_int ctx ~width:(Bitvec.width_for 0 (max 1 value)) value in
  (* counters stay within the bound *)
  Array.iter
    (Array.iter (fun c ->
         Tseitin.assert_lit ctx (Bitvec.le ctx c (const bound));
         Tseitin.assert_lit ctx (Bitvec.le ctx (const 0) c)))
    counter;
  let credit q = if ucw.Nbw.accepting.(q) then 1 else 0 in
  (* initial pairs *)
  List.iter
    (fun q0 ->
       Tseitin.assert_lit ctx active.(0).(q0);
       Tseitin.assert_lit ctx
         (Bitvec.le ctx (const (credit q0)) counter.(0).(q0)))
    ucw.Nbw.initial;
  (* group UCW transitions by source *)
  let by_src = Array.make num_q [] in
  List.iter
    (fun (src, guard, dst) -> by_src.(src) <- (guard, dst) :: by_src.(src))
    ucw.Nbw.transitions;
  (* propagation constraints *)
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"sat-synth"
    | None -> ()
  in
  for s = 0 to machine_states - 1 do
    for imask = 0 to num_inputs - 1 do
      tick ();
      for q = 0 to num_q - 1 do
        List.iter
          (fun (guard, q') ->
             match
               guard_requirements ~input_index ~output_index ~imask guard
             with
             | None -> ()
             | Some output_requirements ->
               let guard_lits =
                 List.map
                   (fun (bit, value) ->
                      if value then out_bits.(s).(imask).(bit)
                      else Tseitin.mk_not out_bits.(s).(imask).(bit))
                   output_requirements
               in
               for s' = 0 to machine_states - 1 do
                 let antecedent =
                   Tseitin.mk_and ctx
                     (active.(s).(q) :: succ.(s).(imask).(s') :: guard_lits)
                 in
                 (* activity propagates *)
                 Tseitin.assert_lit ctx
                   (Tseitin.mk_implies ctx antecedent active.(s').(q'));
                 (* counters advance *)
                 let advanced =
                   if credit q' = 1 then
                     Bitvec.add ctx counter.(s).(q) (const 1)
                   else counter.(s).(q)
                 in
                 let le_lit = Bitvec.le ctx advanced counter.(s').(q') in
                 Tseitin.assert_lit ctx
                   (Tseitin.mk_implies ctx antecedent le_lit)
               done)
          by_src.(q)
      done
    done
  done;
  let outcome = Sat.solve ?budget sat in
  Atomic.set last_stats
    (Printf.sprintf "vars=%d clauses=%d conflicts=%d" (Sat.num_vars sat)
       (Sat.num_clauses sat) (Sat.num_conflicts sat));
  match outcome with
  | Sat.Unsat -> No_machine_within { states = machine_states; bound }
  | Sat.Sat model ->
    let step_table =
      Array.init machine_states (fun s ->
          Array.init num_inputs (fun imask ->
              let omask =
                List.fold_left
                  (fun acc bit ->
                     if Tseitin.lit_value model out_bits.(s).(imask).(bit)
                     then acc lor (1 lsl bit)
                     else acc)
                  0
                  (List.init num_output_bits Fun.id)
              in
              let next =
                let rec find s' =
                  if s' >= machine_states then 0
                  else if Tseitin.lit_value model succ.(s).(imask).(s') then
                    s'
                  else find (s' + 1)
                in
                find 0
              in
              (omask, next)))
    in
    Realizable
      {
        Mealy.inputs;
        outputs;
        num_states = machine_states;
        initial = 0;
        step = (fun s imask -> step_table.(s).(imask));
      }

let solve_iterative ?budget ?(bound = 3) ?(max_machine_states = 8) ~inputs
    ~outputs spec =
  (* Anytime resume: the snapshot carries the last machine size that
     was refuted, so a retried search skips straight past it.  The
     doubling tail matches a cold run's, keeping verdicts identical. *)
  let publish n =
    match budget with
    | None -> ()
    | Some b ->
      Speccc_runtime.Budget.publish b
        (Speccc_runtime.Snapshot.make ~engine:"sat"
           [ ("states", string_of_int n); ("bound", string_of_int bound) ])
  in
  let start =
    match budget with
    | None -> 1
    | Some b ->
      (match Speccc_runtime.Budget.resume_for b ~engine:"sat" with
       | Some snap ->
         (match Speccc_runtime.Snapshot.int_field snap "states" with
          | Some k when k >= 1 -> min (2 * k) max_machine_states
          | Some _ | None -> 1)
       | None -> 1)
  in
  let rec escalate n =
    match solve ?budget ~bound ~machine_states:n ~inputs ~outputs spec with
    | Realizable _ as verdict -> verdict
    | No_machine_within _ when 2 * n <= max_machine_states ->
      publish n;
      escalate (2 * n)
    | No_machine_within _ ->
      publish n;
      No_machine_within { states = n; bound }
  in
  escalate (max 1 start)
