(** SAT-based bounded synthesis (the Finkbeiner–Schewe encoding),
    complementing the explicit game engine with the other classical
    realization of the same idea: guess a Mealy machine of a fixed
    size [n] and a valid annotation of the run graph with bounded
    counters, as one propositional formula discharged by the bundled
    CDCL solver.

    For a specification [φ] with UCW [A¬φ] (states [Q], counting bound
    [k]) and machine states [S = {0..n-1}]:

    - variables: output bits per (state, input valuation), one-hot
      successor choice per (state, input valuation), an activity bit
      and a binary counter per (machine state, automaton state);
    - constraints: the initial pair is active; along every UCW edge
      whose guard matches the chosen outputs, activity propagates and
      counters are non-decreasing (strictly increasing into accepting
      states) and never exceed [k].

    A satisfying assignment {e is} the controller.  The encoding is
    exact in the same one-sided sense as the game engine: SAT ⇒
    realizable (with the machine as witness); UNSAT only rules out
    machines of size [n] with annotation bound [k]. *)

type verdict =
  | Realizable of Mealy.t
  | No_machine_within of { states : int; bound : int }

val solve :
  ?budget:Speccc_runtime.Budget.t ->
  ?bound:int ->
  machine_states:int ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t ->
  verdict
(** One SAT call at a fixed machine size.  Default [bound] is [3].
    Raises [Invalid_argument] when [machine_states < 1] or the
    combined proposition count exceeds 16.  [budget] governs both the
    UCW construction and the CDCL search; exhaustion raises
    [Speccc_runtime.Runtime.Interrupt].  The fault checkpoint
    ["engine.sat"] is announced on entry. *)

val solve_iterative :
  ?budget:Speccc_runtime.Budget.t ->
  ?bound:int ->
  ?max_machine_states:int ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t ->
  verdict
(** Escalate the machine size 1, 2, 4, … up to [max_machine_states]
    (default 8). *)

val stats : unit -> string
(** Diagnostics of the last [solve] call: SAT variables, clauses,
    conflicts. *)
