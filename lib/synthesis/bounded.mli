(** Explicit-state bounded synthesis (Safraless, Schewe–Finkbeiner
    style): the specification's negation is translated to a Büchi
    automaton, read as a universal co-Büchi automaton for the
    specification, and the system must keep every run's count of
    accepting-state visits at or below a bound [k].  The resulting
    counting-function safety game is solved by a greatest fixpoint.

    Verdicts:
    - [Realizable m] is exact — [m] is a controller (and can be
      replayed against the trace semantics);
    - [Unrealizable] is exact — it is produced by solving the {e dual}
      game, where the environment realizes the negation (sound by
      determinacy);
    - [Unknown] means neither side won within the bound; callers
      typically retry with a larger bound (this mirrors G4LTL's
      unroll/look-ahead parameter).

    The engine enumerates input/output valuations explicitly and is
    meant for specifications with a moderate number of propositions;
    {!val:solve} raises [Invalid_argument] when
    [2^(|inputs| + |outputs|)] exceeds [max_letters]. *)

type counterstrategy = {
  cs_inputs : string list;
  cs_outputs : string list;
  cs_num_states : int;
  cs_initial : int;
  cs_move : int -> int;
      (** the environment's winning input valuation in this state *)
  cs_next : int -> int -> int;
      (** successor after the system answers with an output mask *)
}
(** A Moore strategy for the environment, witnessing unrealizability:
    whatever outputs the system produces, the play violates the
    specification.  {!val:refute} demonstrates it against any candidate
    controller. *)

type verdict =
  | Realizable of Mealy.t
  | Unrealizable of counterstrategy
  | Unknown of int  (** bound at which both games were lost *)

type algorithm =
  | Antichain
      (** Backward greatest fixpoint over ⊑-maximal counting functions
          (Acacia-style).  The winning region is downward closed, so
          its frontier of maximal elements represents it exactly;
          independent requirements cost a few antichain elements
          instead of a product state space.  This is the default. *)
  | Enumerate
      (** Forward enumeration of every reachable counting function
          followed by a greatest fixpoint on the explicit game graph —
          the original engine, kept selectable for differential
          testing and as a fallback. *)

val default_algorithm : unit -> algorithm
(** [Antichain], unless the environment variable [SPECCC_EXPLICIT] is
    set to ["full"], ["enum"] or ["enumerate"]. *)

val refute : counterstrategy -> Mealy.t -> Speccc_logic.Trace.t
(** Play the counterstrategy against a candidate controller; the
    resulting lasso word is a concrete run of the controller that
    violates the specification the counterstrategy was extracted
    from.  Raises [Invalid_argument] when the proposition interfaces
    disagree. *)

val solve :
  ?budget:Speccc_runtime.Budget.t ->
  ?bound:int ->
  ?max_letters:int ->
  ?algorithm:algorithm ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t ->
  verdict
(** [solve ~inputs ~outputs spec].  Default [bound] is [3]; default
    [max_letters] is [4096] ([= 2^12] combined valuations); default
    [algorithm] is {!default_algorithm}.  Both algorithms decide the
    same games with the same move preferences during extraction, so
    verdicts and witness machines coincide.  When [budget] is given,
    fuel is spent as the solver progresses (stage ["explicit"]) —
    per explored position under [Enumerate], per fixpoint round /
    input valuation / extracted state under [Antichain]; exhaustion
    raises [Speccc_runtime.Runtime.Interrupt].  Under [Antichain] and
    a budget, each fixpoint round publishes its frontier as a snapshot
    so a preempted run can warm-start; warm starts are verdict-safe
    (a loss under a resumed frontier is re-checked from the top).
    The fault checkpoint ["engine.explicit"] is announced on entry. *)

val solve_iterative :
  ?budget:Speccc_runtime.Budget.t ->
  ?max_bound:int ->
  ?max_letters:int ->
  ?algorithm:algorithm ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t ->
  verdict
(** Escalate the bound (1, 2, 4, ... up to [max_bound], default 8)
    until a definite verdict is reached. *)

(** {2 Session-incremental conjunction solving}

    The UCW of [¬(f1 ∧ ... ∧ fm)] is the disjoint union of the
    per-conjunct automata [NBW(¬fi)], so the antichain game over a
    requirement conjunction decomposes block-wise.  A {!session}
    caches per formula id the compiled arena block and, per counting
    bound, the converged {e solo} winning frontier of that block alone
    (stored through the [speccc-snap1] codec and re-validated on every
    reuse).  {!solve_conj} then seeds the joint greatest fixpoint with
    the meet of the lifted solo frontiers — a proven upper bound of
    the joint winning region — so after a single-conjunct edit only
    that conjunct's block is rebuilt and re-solved solo, and the joint
    iteration starts next to its fixpoint instead of at ⊤.

    Seeding is exact, not heuristic: the iteration from any frontier
    ⊒ the winning region converges to the same canonical maximal-
    element frontier a cold start reaches, so verdicts {e and}
    extracted witness machines are bit-identical to a fresh-session
    call on the same formula list (the property the watch tests pin).
    Unrealizability is still certified on the conjunction's own dual
    game, exactly as {!solve} does. *)

type session
(** Mutable cache of compiled blocks and solo frontiers.  Keyed by
    hash-consed formula ids, so it is private to one process; it is
    invalidated wholesale when the input/output alphabets change and
    entry-wise via {!prune_session}. *)

type session_stats = {
  cached_blocks : int;
  cached_solo : int;
  built_blocks : int;   (** arena blocks compiled over the session *)
  reused_blocks : int;  (** block-cache hits over the session *)
  solved_solo : int;    (** solo games solved over the session *)
  reused_solo : int;    (** solo-frontier hits over the session *)
}

val create_session : unit -> session
val session_stats : session -> session_stats

val prune_session : session -> retain:(int -> bool) -> unit
(** Drop cached blocks and solo frontiers whose formula id fails
    [retain] — the watch session's explicit invalidation after an
    edit. *)

val solve_conj :
  ?budget:Speccc_runtime.Budget.t ->
  ?session:session ->
  ?bound:int ->
  ?max_letters:int ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t list ->
  verdict
(** [solve_conj ~inputs ~outputs formulas] decides the conjunction of
    [formulas] like [solve (conj formulas)], block-decomposed as
    described above.  Without [session] a fresh one is used (a cold
    run — the identity oracle).  Lists of length [<= 1], and runs
    under the [Enumerate] differential-testing algorithm
    ({!default_algorithm}), fall through to {!solve} on the plain
    conjunction. *)

val solve_conj_iterative :
  ?budget:Speccc_runtime.Budget.t ->
  ?session:session ->
  ?max_bound:int ->
  ?max_letters:int ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t list ->
  verdict
(** {!solve_conj} under the same bound escalation as
    {!solve_iterative} (1, 2, 4, ... up to [max_bound], default 8). *)
