(** Symbolic safety-game engine over BDDs (the scalable counterpart of
    {!Bounded}, mirroring G4LTL's architecture: liveness is bounded by
    a look-ahead parameter, the rest is a safety game).

    The specification must be a {e syntactic safety} formula in NNF
    (callers bound liveness first with
    {!Speccc_logic.Classify.bound_liveness}).  Every temporal
    subformula becomes an {e obligation bit}; the game state is the set
    of pending obligations, and the system resolves both the output
    valuation and the way disjunctive obligations are discharged.

    Soundness: a [Realizable] verdict is always correct (the extracted
    strategy maintains all obligations forever, which implies the
    safety formula).  Completeness holds for the fragment the paper's
    translator emits — conjunctions of requirements of the forms
    [G (pre -> post)], [G (pre -> X^n post)], [G (pre -> bounded-F)],
    [p W q] and propositional constraints — because every disjunction
    is resolved with the current letter in view.  Specifications that
    require delaying the choice between temporal disjuncts (e.g.
    [(G a) || (G b)] against an adaptive environment) may be reported
    unrealizable spuriously; the front-end cross-checks such shapes
    with the explicit engine when feasible. *)

type verdict =
  | Realizable of strategy
  | Unrealizable

and strategy

val solve :
  ?budget:Speccc_runtime.Budget.t ->
  ?snapshot_base:Speccc_runtime.Snapshot.t ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t ->
  verdict
(** Raises [Invalid_argument] if the formula is not syntactic safety
    (contains [Until]/[Eventually] after NNF).  [budget] governs the
    BDD manager for the whole solve (one fuel unit per node
    construction, stage ["bdd"]) plus one unit per fixpoint round
    (stage ["symbolic"]); exhaustion raises
    [Speccc_runtime.Runtime.Interrupt].  The fault checkpoints
    ["engine.symbolic"] (entry) and ["bdd.fixpoint"] (per round) are
    announced.  When [snapshot_base] is given, each fixpoint round
    publishes it to the budget's snapshot slot with a ["round"] layer
    index added (rebuild-on-resume: the index is progress telemetry
    for partial verdicts; BDD state itself is reconstructed). *)

val strategy_step :
  strategy -> (string * bool) list -> (string * bool) list
(** Drive the extracted controller: feed one input valuation, get the
    output valuation (the strategy object carries its own mutable
    current state). *)

val strategy_reset : strategy -> unit

val to_mealy : ?max_states:int -> strategy -> Mealy.t option
(** Enumerate the reachable strategy states into an explicit Mealy
    machine; [None] if more than [max_states] (default 4096) states or
    more than 2^20 (state, input) pairs would be needed. *)

val stats : strategy -> string
(** One-line diagnostic: obligation bits, BDD nodes, fixpoint rounds. *)
