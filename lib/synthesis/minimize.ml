(* Partition refinement for Mealy machines.

   Only reachable states participate: unreachable behaviour must not
   block merging.  Blocks start from identical output rows; a round
   splits every block by the vector of successor blocks; rounds repeat
   until stable (at most n rounds). *)
(* Signatures are interned int arrays, hashed over every element: the
   earlier list-based signatures allocated two [num_inputs]-element
   lists per state per round and fed them to [Hashtbl.hash], whose
   default meaningful-node limit truncates long lists — hash collisions
   then degenerate lookups into full-list comparisons. *)
let hash_int_array a =
  let h = ref 5381 in
  Array.iter (fun x -> h := (!h * 33) + x) a;
  !h land max_int

module Sig_key = struct
  type t = int * int array
  let equal (ha, a) (hb, b) = ha = hb && a == b || (ha = hb && a = b)
  let hash (h, _) = h
end

module Sig_table = Hashtbl.Make (Sig_key)

let minimize machine =
  let num_inputs = 1 lsl List.length machine.Mealy.inputs in
  (* reachable states *)
  let reachable = Hashtbl.create 64 in
  let order = ref [] in
  let queue = Queue.create () in
  Hashtbl.add reachable machine.Mealy.initial ();
  Queue.add machine.Mealy.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    order := s :: !order;
    for imask = 0 to num_inputs - 1 do
      let _, next = machine.Mealy.step s imask in
      if not (Hashtbl.mem reachable next) then begin
        Hashtbl.add reachable next ();
        Queue.add next queue
      end
    done
  done;
  let states = Array.of_list (List.rev !order) in
  let n = Array.length states in
  let dense = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.add dense s i) states;
  (* step tables over dense indices, computed exactly once *)
  let outs = Array.make_matrix n num_inputs 0 in
  let succ = Array.make_matrix n num_inputs 0 in
  for i = 0 to n - 1 do
    for imask = 0 to num_inputs - 1 do
      let omask, next = machine.Mealy.step states.(i) imask in
      outs.(i).(imask) <- omask;
      succ.(i).(imask) <- Hashtbl.find dense next
    done
  done;
  (* initial partition: identical output rows.  Output rows never
     change, so intern them once and prepend the row id to every later
     signature (blocks then never coarsen). *)
  let intern_round signature_of =
    let signatures = Sig_table.create 64 in
    let fresh = Array.make n 0 in
    let next_block = ref 0 in
    for i = 0 to n - 1 do
      let signature = signature_of i in
      let keyed = (hash_int_array signature, signature) in
      match Sig_table.find_opt signatures keyed with
      | Some b -> fresh.(i) <- b
      | None ->
        let b = !next_block in
        incr next_block;
        Sig_table.add signatures keyed b;
        fresh.(i) <- b
    done;
    fresh
  in
  let row_id = intern_round (fun i -> outs.(i)) in
  let block = ref (Array.copy row_id) in
  let changed = ref true in
  while !changed do
    let old = !block in
    let fresh =
      intern_round (fun i ->
          let signature = Array.make (num_inputs + 1) row_id.(i) in
          for imask = 0 to num_inputs - 1 do
            signature.(imask + 1) <- old.(succ.(i).(imask))
          done;
          signature)
    in
    changed := fresh <> old;
    block := fresh
  done;
  let block = !block in
  (* renumber blocks so the initial state is block 0 and numbering is
     stable (first-seen order along [states]) *)
  let renumber = Hashtbl.create 64 in
  let next_id = ref 0 in
  let id_of_block b =
    match Hashtbl.find_opt renumber b with
    | Some id -> id
    | None ->
      let id = !next_id in
      incr next_id;
      Hashtbl.add renumber b id;
      id
  in
  let initial_dense = Hashtbl.find dense machine.Mealy.initial in
  let _ = id_of_block block.(initial_dense) in
  (* representative per block, in state order *)
  let representative = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let id = id_of_block block.(i) in
    if not (Hashtbl.mem representative id) then
      Hashtbl.add representative id i
  done;
  let num_states = !next_id in
  let step_table =
    Array.init num_states (fun id ->
        let i = Hashtbl.find representative id in
        Array.init num_inputs (fun imask ->
            (outs.(i).(imask), id_of_block block.(succ.(i).(imask)))))
  in
  {
    machine with
    Mealy.num_states;
    initial = 0;
    step = (fun state imask -> step_table.(state).(imask));
  }

let equivalent a b =
  if a.Mealy.inputs <> b.Mealy.inputs || a.Mealy.outputs <> b.Mealy.outputs
  then invalid_arg "Minimize.equivalent: interface mismatch";
  let num_inputs = 1 lsl List.length a.Mealy.inputs in
  let visited = Hashtbl.create 64 in
  let rec walk pair =
    if Hashtbl.mem visited pair then true
    else begin
      Hashtbl.add visited pair ();
      let sa, sb = pair in
      let rec inputs_ok imask =
        imask >= num_inputs
        ||
        let oa, na = a.Mealy.step sa imask in
        let ob, nb = b.Mealy.step sb imask in
        oa = ob && walk (na, nb) && inputs_ok (imask + 1)
      in
      inputs_ok 0
    end
  in
  walk (a.Mealy.initial, b.Mealy.initial)
