(** Realizability checking front-end — the paper's stage 2: a
    specification (a set of LTL requirements, implicitly conjoined) is
    {e consistent} iff it is realizable, i.e. a controller reading the
    input propositions and driving the output propositions exists
    (Sec. V-A).

    Three engines are available:
    - [Explicit]: exact bounded synthesis with a dual-game
      unrealizability check ({!Bounded}); cost is exponential in the
      number of propositions, so it is reserved for small alphabets.
    - [Symbolic]: BDD obligation game ({!Obligation}); liveness is
      first strengthened to [lookahead]-bounded eventualities, exactly
      as G4LTL's unroll parameter does.
    - the SAT-based bounded-machine search ({!Satsynth}), used only as
      a fallback rung by {!check_governed}.
    - [Auto] picks [Explicit] for small alphabets and [Symbolic]
      otherwise.

    {!check} is the classic ungoverned entry point; {!check_governed}
    runs under a {!Speccc_runtime.Budget} and degrades down a fallback
    ladder (symbolic → explicit → SAT) instead of hanging or raising,
    recording every degradation step. *)

type engine = Explicit | Symbolic | Auto

type verdict =
  | Consistent        (** realizable: a controller exists *)
  | Inconsistent      (** definitely unrealizable *)
  | Inconclusive of string
      (** bound/lookahead exhausted; the string says which limit *)

type rung = {
  rung_engine : string;       (** ["symbolic"], ["explicit"], ["sat"] *)
  rung_outcome : string;      (** why the ladder moved past this rung *)
  rung_error : Speccc_runtime.Runtime.error option;
      (** present when the rung failed or ran out of resources;
          [None] when it completed but was inconclusive *)
  rung_wall : float;          (** seconds spent on this rung *)
}
(** One abandoned step of the fallback ladder. *)

type report = {
  verdict : verdict;
  engine_used : string;
  controller : Mealy.t option;   (** present when [Consistent] *)
  counterstrategy : Bounded.counterstrategy option;
      (** present when the explicit engine proved [Inconsistent]: the
          environment's winning strategy, usable with
          {!Bounded.refute} to demonstrate the inconsistency against
          any candidate implementation *)
  unsat_core : int list option;
      (** present when [Inconsistent] was proved by unsatisfiability
          of a requirement subset (the lint floor's witness): 0-based
          requirement indices whose conjunction admits no behaviour at
          all.  Engines that prove unrealizability game-theoretically
          leave this [None] and ship a [counterstrategy] instead. *)
  wall_time : float;             (** seconds (all rungs included) *)
  detail : string;               (** engine diagnostics *)
  degradation : rung list;
      (** engines tried and abandoned before this verdict, in order,
          at most one entry per engine; [[]] when the first engine
          concluded (always [[]] from {!check}) *)
}

(** {2 Witnesses}

    [controller], [counterstrategy] and [unsat_core] are the report's
    {e witnesses}: independently checkable evidence for the verdict,
    validated by [Speccc_certify.Certify] with machinery disjoint from
    the engine that produced them.  Each witness passes through a
    [Speccc_runtime.Fault.corrupt] checkpoint ([witness.controller],
    [witness.counterstrategy], [witness.core]) on emission, so
    certificate rejection is drillable from tests. *)

val emit_core : int list -> int list
(** Route an unsat core through its corruption checkpoint (used by the
    pipeline's lint floor; exposed so every witness emission point
    shares one drill mechanism). *)

val dedup_degradation : rung list -> rung list
(** Keep the first rung per engine, preserving order — the
    once-per-engine invariant {!check_governed} maintains, exposed for
    callers that append rungs themselves. *)

val canonical_degradation : report -> rung list
(** The degradation log in canonical rendering order: deduplicated,
    stably sorted by ladder position (symbolic, explicit, sat, lint,
    certify, ladder, then anything else).  CLI printers use this so a
    given report always renders identically. *)

val check :
  ?engine:engine ->
  ?lookahead:int ->
  ?bound:int ->
  ?explicit_prop_limit:int ->
  ?assumptions:Speccc_logic.Ltl.t list ->
  ?explicit_session:Bounded.session ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t list ->
  report
(** [check ~inputs ~outputs requirements].  Defaults: [engine = Auto],
    [lookahead = 6] (bounded-eventuality depth for the symbolic
    engine), [bound = 8] (maximal counting bound for the explicit
    engine), [explicit_prop_limit = 12] (Auto threshold on
    [|inputs| + |outputs|]).

    [explicit_session] opts assumption-free checks that land on the
    explicit engine into {!Bounded.solve_conj_iterative}'s session-
    incremental block decomposition: arena blocks and solo frontiers
    for unchanged requirement formulas are reused across calls, and
    verdicts and witnesses are bit-identical to the same call with a
    fresh session.  Ignored for the symbolic engine and for
    assumption-carrying checks (the spec is then an implication, not a
    plain conjunction).

    [assumptions] are environment hypotheses [A]: the checked formula
    becomes [(∧A) → (∧requirements)], so the system need only comply
    while the environment behaves.  The top-level temporal disjunction
    this introduces is outside the symbolic engine's completeness
    fragment, so [Auto] routes assumption-carrying checks to the
    explicit engine; forcing [Symbolic] stays sound but may report
    spurious unrealizability. *)

val check_governed :
  ?budget:Speccc_runtime.Budget.t ->
  ?engine:engine ->
  ?lookahead:int ->
  ?bound:int ->
  ?explicit_prop_limit:int ->
  ?skip:string list ->
  ?assumptions:Speccc_logic.Ltl.t list ->
  inputs:string list ->
  outputs:string list ->
  Speccc_logic.Ltl.t list ->
  (report, Speccc_runtime.Runtime.error) result
(** Resource-governed {!check}.  Under [engine = Auto] (the default)
    the engines form a fallback ladder — symbolic under a fuel slice,
    then the exact explicit engine with its escalating counting
    bound, then the SAT-based bounded-machine search — where each rung
    gets half of the remaining fuel (the last gets all of it) and a
    rung's fuel exhaustion, engine failure or inconclusive verdict
    drops to the next rung, recorded in [report.degradation].  Forcing
    [engine] runs a one-rung ladder.  Assumption-carrying checks skip
    the symbolic rung (see {!check}).

    [skip] (rung names, e.g. [["symbolic"]]) removes rungs from the
    [Auto] ladder before it runs — the serve mode's circuit breakers
    use this to bypass a rung that keeps failing.  Each skipped rung
    is recorded in [report.degradation] with outcome
    ["skipped: circuit breaker open"].  [skip] is ignored when
    [engine] is forced; skipping every rung yields the same
    [Inconclusive] report as a ladder whose every rung degraded.

    Never raises.  Returns [Error] only for the {e global} resource
    events — [Timeout] (wall-clock deadline) and [Cancelled] — that
    make running further rungs pointless; everything else, including
    full fuel exhaustion, yields [Ok] with a sound verdict
    ([Inconclusive] when no engine concluded) and a populated
    degradation log. *)
