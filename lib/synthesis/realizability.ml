open Speccc_logic
open Speccc_runtime

type engine = Explicit | Symbolic | Auto

type verdict =
  | Consistent
  | Inconsistent
  | Inconclusive of string

type rung = {
  rung_engine : string;
  rung_outcome : string;
  rung_error : Runtime.error option;
  rung_wall : float;
}

type report = {
  verdict : verdict;
  engine_used : string;
  controller : Mealy.t option;
  counterstrategy : Bounded.counterstrategy option;
  unsat_core : int list option;
  wall_time : float;
  detail : string;
  degradation : rung list;
}

let with_timer f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

(* ---------- witness emission (with corruption drill points) ---------- *)

(* Every controller and counterstrategy passes through a
   [Fault.corrupt] checkpoint on its way into the report, so the
   certification layer's rejection path is exercisable from tests: an
   armed [Corrupt] trigger mangles the witness while the verdict stays
   untouched, which certification must then catch. *)

let emit_controller machine =
  if Fault.corrupt Fault.Checkpoint.witness_controller then
    let mask = (1 lsl List.length machine.Mealy.outputs) - 1 in
    { machine with
      Mealy.step =
        (fun state input ->
           let output, next = machine.Mealy.step state input in
           (output lxor mask, next)) }
  else machine

let emit_counterstrategy cs =
  if Fault.corrupt Fault.Checkpoint.witness_counterstrategy then
    (* an environment that never raises an input cannot force an
       input-dependent conflict, so certification's candidate panel
       will produce a satisfying play and reject the witness *)
    { cs with Bounded.cs_move = (fun _ -> 0) }
  else cs

let emit_core core =
  if Fault.corrupt Fault.Checkpoint.witness_core then [] else core

(* ---------- degradation-log hygiene ---------- *)

let rung_rank = function
  | "symbolic" -> 0
  | "explicit" -> 1
  | "sat" -> 2
  | "lint" -> 3
  | "certify" -> 4
  | "ladder" -> 5
  | _ -> 6

let dedup_degradation rungs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun rung ->
       if Hashtbl.mem seen rung.rung_engine then false
       else begin
         Hashtbl.add seen rung.rung_engine ();
         true
       end)
    rungs

let canonical_degradation report =
  dedup_degradation report.degradation
  |> List.stable_sort (fun a b ->
      compare (rung_rank a.rung_engine) (rung_rank b.rung_engine))

let explicit_verdict_of = function
  | Bounded.Realizable controller ->
    ( Consistent,
      Some (emit_controller (Minimize.minimize controller)),
      None,
      "controller extracted and minimized" )
  | Bounded.Unrealizable counterstrategy ->
    ( Inconsistent,
      None,
      Some (emit_counterstrategy counterstrategy),
      "environment wins the dual game (counterstrategy extracted)" )
  | Bounded.Unknown k ->
    ( Inconclusive (Printf.sprintf "counting bound %d exhausted" k),
      None,
      None,
      "no side won within the bound" )

let explicit_report solve =
  let (verdict, controller, counterstrategy, detail), wall_time =
    with_timer (fun () -> explicit_verdict_of (solve ()))
  in
  {
    verdict;
    engine_used = "explicit";
    controller;
    counterstrategy;
    unsat_core = None;
    wall_time;
    detail;
    degradation = [];
  }

let run_explicit ?budget ~bound ~inputs ~outputs spec =
  explicit_report (fun () ->
      Bounded.solve_iterative ?budget ~max_bound:bound ~inputs ~outputs spec)

(* Session-incremental variant: assumption-free requirement lists go
   through the block-decomposed conjunction solver, which reuses the
   session's arena blocks and solo frontiers (see {!Bounded}). *)
let run_explicit_conj ~session ~bound ~inputs ~outputs requirements =
  explicit_report (fun () ->
      Bounded.solve_conj_iterative ~session ~max_bound:bound ~inputs ~outputs
        requirements)

let run_symbolic ?budget ~lookahead ~inputs ~outputs spec =
  let had_liveness = Classify.has_liveness spec in
  let max_bound = 4 * lookahead in
  let solve_at ~completed bound =
    let safety_spec =
      if had_liveness then Classify.bound_liveness ~bound spec
      else Nnf.of_formula spec
    in
    (* The base snapshot carries the last lookahead that fully
       completed (the resumable frontier); Obligation.solve adds the
       live fixpoint layer index on top for partial-verdict telemetry. *)
    let snapshot_base =
      Snapshot.make ~engine:"symbolic"
        (("attempting", string_of_int bound)
         :: (match completed with
             | Some k -> [ ("lookahead", string_of_int k) ]
             | None -> []))
    in
    Obligation.solve ?budget ~snapshot_base ~inputs ~outputs safety_spec
  in
  let publish_completed bound =
    match budget with
    | None -> ()
    | Some b ->
      Budget.publish b
        (Snapshot.make ~engine:"symbolic"
           [ ("lookahead", string_of_int bound) ])
  in
  (* Bounding eventualities is a strengthening, so a loss at one
     look-ahead may be won at a larger one — escalate a few times, as
     G4LTL does with its unroll parameter. *)
  let rec attempt ~completed bound =
    match solve_at ~completed bound with
    | Obligation.Realizable strategy -> Ok (strategy, bound)
    | Obligation.Unrealizable ->
      if had_liveness && 2 * bound <= max_bound then begin
        publish_completed bound;
        attempt ~completed:(Some bound) (2 * bound)
      end
      else begin publish_completed bound; Error bound end
  in
  (* Anytime resume: skip lookaheads a previous attempt already
     refuted; the doubling tail matches a cold run's. *)
  let start, start_completed =
    match budget with
    | None -> (lookahead, None)
    | Some b ->
      (match Budget.resume_for b ~engine:"symbolic" with
       | Some snap ->
         (match Snapshot.int_field snap "lookahead" with
          | Some k when k >= lookahead && had_liveness ->
            (max lookahead (min (2 * k) max_bound), Some k)
          | Some _ | None -> (lookahead, None))
       | None -> (lookahead, None))
  in
  let result, wall_time =
    with_timer (fun () -> attempt ~completed:start_completed start)
  in
  match result with
  | Ok (strategy, bound) ->
    let controller =
      Option.map
        (fun machine -> emit_controller (Minimize.minimize machine))
        (Obligation.to_mealy strategy)
    in
    {
      verdict = Consistent;
      engine_used = "symbolic";
      controller;
      counterstrategy = None;
      unsat_core = None;
      wall_time;
      detail =
        Printf.sprintf "%s lookahead=%d" (Obligation.stats strategy) bound;
      degradation = [];
    }
  | Error bound ->
    let verdict, detail =
      if had_liveness then
        ( Inconclusive
            (Printf.sprintf "unrealizable at liveness lookahead %d" bound),
          "eventualities were bounded before solving; a larger lookahead \
           may succeed" )
      else (Inconsistent, "safety obligation game lost")
    in
    {
      verdict;
      engine_used = "symbolic";
      controller = None;
      counterstrategy = None;
      unsat_core = None;
      wall_time;
      detail;
      degradation = [];
    }

let run_sat ?budget ~inputs ~outputs spec =
  let result, wall_time =
    with_timer (fun () ->
        Satsynth.solve_iterative ?budget ~inputs ~outputs spec)
  in
  match result with
  | Satsynth.Realizable machine ->
    {
      verdict = Consistent;
      engine_used = "sat";
      controller = Some (emit_controller (Minimize.minimize machine));
      counterstrategy = None;
      unsat_core = None;
      wall_time;
      detail = Satsynth.stats ();
      degradation = [];
    }
  | Satsynth.No_machine_within { states; bound } ->
    {
      verdict =
        Inconclusive
          (Printf.sprintf "no Mealy machine with <= %d states (bound %d)"
             states bound);
      engine_used = "sat";
      controller = None;
      counterstrategy = None;
      unsat_core = None;
      wall_time;
      detail = Satsynth.stats ();
      degradation = [];
    }

let spec_of ~assumptions requirements =
  let guarantees = Ltl.conj_list requirements in
  match assumptions with
  | [] -> guarantees
  | _ -> Ltl.implies (Ltl.conj_list assumptions) guarantees

let check ?(engine = Auto) ?(lookahead = 6) ?(bound = 8)
    ?(explicit_prop_limit = 12) ?(assumptions = []) ?explicit_session ~inputs
    ~outputs requirements =
  let spec = spec_of ~assumptions requirements in
  let chosen =
    match engine with
    | Explicit -> `Explicit
    | Symbolic -> `Symbolic
    | Auto ->
      (* assumption implications fall outside the obligation game's
         completeness fragment *)
      if assumptions <> []
      || List.length inputs + List.length outputs <= explicit_prop_limit
      then `Explicit
      else `Symbolic
  in
  match chosen with
  | `Explicit ->
    (match explicit_session with
     | Some session when assumptions = [] ->
       (* With assumptions the spec is an implication, not a plain
          conjunction — the block decomposition does not apply. *)
       run_explicit_conj ~session ~bound ~inputs ~outputs requirements
     | Some _ | None -> run_explicit ~bound ~inputs ~outputs spec)
  | `Symbolic -> run_symbolic ~lookahead ~inputs ~outputs spec

(* ---------- resource-governed checking with a fallback ladder ---------- *)

let ladder_stages ~assumptions =
  (* The symbolic obligation game is incomplete for the top-level
     temporal disjunction introduced by assumptions (it could report a
     spurious loss, which the ladder would trust as Inconsistent), so
     assumption-carrying checks start at the exact explicit engine. *)
  if assumptions = [] then [ `Symbolic; `Explicit; `Sat ]
  else [ `Explicit; `Sat ]

let stage_name = function
  | `Symbolic -> "symbolic"
  | `Explicit -> "explicit"
  | `Sat -> "sat"

let check_governed ?budget ?(engine = Auto) ?(lookahead = 6) ?(bound = 8)
    ?(explicit_prop_limit = 12) ?(skip = []) ?(assumptions = []) ~inputs
    ~outputs requirements =
  ignore explicit_prop_limit;
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let spec = spec_of ~assumptions requirements in
  let run_stage stage rung_budget =
    match stage with
    | `Symbolic ->
      run_symbolic ~budget:rung_budget ~lookahead ~inputs ~outputs spec
    | `Explicit ->
      run_explicit ~budget:rung_budget ~bound ~inputs ~outputs spec
    | `Sat -> run_sat ~budget:rung_budget ~inputs ~outputs spec
  in
  let stages =
    match engine with
    | Explicit -> [ `Explicit ]
    | Symbolic -> [ `Symbolic ]
    | Auto -> ladder_stages ~assumptions
  in
  (* Rung skipping ([skip], by rung name) serves the server's circuit
     breakers: a rung that keeps failing is bypassed for a cooldown
     window.  Skips apply only to the [Auto] ladder — a forced engine
     is an explicit caller choice — and each skipped rung is recorded
     so the degradation log still explains why the verdict came from a
     lower rung. *)
  let stages, skipped =
    match engine with
    | Auto when skip <> [] ->
      List.partition (fun s -> not (List.mem (stage_name s) skip)) stages
    | _ -> (stages, [])
  in
  let skipped_rungs =
    List.map
      (fun stage ->
         {
           rung_engine = stage_name stage;
           rung_outcome = "skipped: circuit breaker open";
           rung_error = None;
           rung_wall = 0.;
         })
      skipped
  in
  (* Hard memory watermark: under heap pressure the game engines'
     state spaces (explicit position tables, BDD node stores) are the
     liability, so the ladder collapses to its lowest-memory rung —
     bounded SAT synthesis — and logs the higher rungs as typed
     memory degradations.  Only the [Auto] ladder degrades; a forced
     engine is an explicit caller choice. *)
  let stages, skipped_rungs =
    match engine, List.rev stages with
    | Auto, (last :: _ :: _ as rev_stages)
      when Memwatch.level () = Memwatch.Hard ->
      let shed = List.rev (List.tl rev_stages) in
      let mem_rungs =
        List.map
          (fun stage ->
             let name = stage_name stage in
             {
               rung_engine = name;
               rung_outcome = "skipped: hard memory watermark";
               rung_error =
                 Some
                   (Runtime.Degraded
                      ( "memory",
                        Runtime.Engine_failure
                          (name, "hard memory watermark") ));
               rung_wall = 0.;
             })
          shed
      in
      ([ last ], skipped_rungs @ mem_rungs)
    | _ -> (stages, skipped_rungs)
  in
  (* Fuel slicing: every rung but the last gets half of what remains,
     so a stuck early engine cannot starve the ladder's floor. *)
  let slice_for ~last =
    match Budget.remaining budget with
    | None -> max_int / 2
    | Some r -> if last then r else max 1 (r / 2)
  in
  let total_wall = ref 0.0 in
  let rec descend stages log last_inconclusive =
    match stages with
    | [] ->
      let detail =
        match last_inconclusive with
        | Some report -> report.detail
        | None -> "every engine in the ladder degraded"
      in
      Ok
        {
          verdict =
            Inconclusive
              "all engines degraded or inconclusive under the budget";
          engine_used =
            (match last_inconclusive with
             | Some report -> report.engine_used
             | None -> "none");
          controller = None;
          counterstrategy = None;
          unsat_core = None;
          wall_time = !total_wall;
          detail;
          degradation = dedup_degradation (List.rev log);
        }
    | stage :: rest ->
      let name = stage_name stage in
      let rung_budget = Budget.child budget ~fuel:(slice_for ~last:(rest = [])) in
      let result, rung_wall =
        with_timer (fun () ->
            Runtime.guard ~stage:name (fun () -> run_stage stage rung_budget))
      in
      Budget.absorb budget rung_budget;
      total_wall := !total_wall +. rung_wall;
      (match result with
       | Ok ({ verdict = Consistent | Inconsistent; _ } as report) ->
         Ok
           {
             report with
             wall_time = !total_wall;
             degradation = dedup_degradation (List.rev log);
           }
       | Ok ({ verdict = Inconclusive why; _ } as report) ->
         let rung =
           {
             rung_engine = name;
             rung_outcome = "inconclusive: " ^ why;
             rung_error = None;
             rung_wall;
           }
         in
         descend rest (rung :: log) (Some report)
       | Error ((Runtime.Timeout _ | Runtime.Cancelled _) as error) ->
         (* The wall-clock deadline and cancellation are global: no
            point starting a cheaper engine that will be killed at its
            first poll. *)
         Error error
       | Error error ->
         let rung =
           {
             rung_engine = name;
             rung_outcome = Runtime.to_string error;
             rung_error = Some error;
             rung_wall;
           }
         in
         descend rest (rung :: log) last_inconclusive)
  in
  descend stages (List.rev skipped_rungs) None
