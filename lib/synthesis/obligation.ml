open Speccc_logic
open Speccc_bdd

type strategy = {
  manager : Bdd.manager;
  inputs : string list;
  outputs : string list;
  closure : Ltl.t array;            (* obligation index -> formula *)
  progression : Bdd.t array;        (* V(g): letter vars ∪ next-z vars *)
  winning : Bdd.t;                  (* over current-z vars *)
  winning_next : Bdd.t;             (* winning renamed to next-z vars *)
  initial_indices : int list;
      (* the top-level conjuncts pending at step 0 *)
  num_props : int;
  rounds : int;
  mutable state : bool array;       (* pending obligations *)
}

type verdict =
  | Realizable of strategy
  | Unrealizable

(* Variable layout: inputs, then outputs, then interleaved
   (z_j, z'_j) pairs. *)
let z_var ~num_props j = num_props + (2 * j)
let z_next_var ~num_props j = num_props + (2 * j) + 1

exception Not_safety of Ltl.t

(* Obligation closure: formulas that may become pending.  The root is
   always included. *)
(* Top-level conjunctions are split into separate obligations: a
   specification is usually a conjunction of tens of requirements, and
   a single root obligation would need the monolithic conjunction of
   all their progressions as one BDD — exactly the blow-up the
   partitioned transition relation avoids. *)
let rec flatten_conjunction = function
  | Ltl.And (g, h) -> flatten_conjunction g @ flatten_conjunction h
  | Ltl.True -> []
  | f -> [ f ]

let closure_of roots =
  let rec refs acc f =
    match f with
    | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not (Ltl.Prop _) -> acc
    | Ltl.And (g, h) | Ltl.Or (g, h) -> refs (refs acc g) h
    | Ltl.Next g -> add acc g
    | Ltl.Always g -> refs (add_self acc f) g
    | Ltl.Release (g, h) -> refs (refs (add_self acc f) g) h
    | Ltl.Weak_until _ | Ltl.Until _ | Ltl.Eventually _ | Ltl.Implies _
    | Ltl.Iff _ | Ltl.Not _ ->
      raise (Not_safety f)
  and add acc g = if Ltl.Set.mem g acc then acc else refs (Ltl.Set.add g acc) g
  and add_self acc f = Ltl.Set.add f acc
  in
  let acc =
    List.fold_left (fun acc root -> add acc root) Ltl.Set.empty roots
  in
  Ltl.Set.elements
    (List.fold_left (fun acc root -> Ltl.Set.add root acc) acc roots)

let solve ?budget ?snapshot_base ~inputs ~outputs spec =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_symbolic;
  let spec = Nnf.of_formula spec in
  let roots = flatten_conjunction spec in
  let closure =
    try Array.of_list (closure_of roots)
    with Not_safety offending ->
      invalid_arg
        (Printf.sprintf
           "Obligation.solve: not a syntactic safety formula (offending \
            subformula: %s); bound liveness first"
           (Ltl_print.to_string offending))
  in
  (* Obligation-variable ordering matters for the winning region's BDD:
     obligations over related propositions should sit next to each
     other, so sort the closure by proposition support (lexicographic
     over sorted prop lists), ties broken structurally. *)
  let closure =
    let key f = (Ltl.props f, Ltl.size f, f) in
    let sorted = Array.copy closure in
    Array.sort (fun a b -> compare (key a) (key b)) sorted;
    sorted
  in
  let manager = Bdd.manager () in
  (* The manager is private to this solve, so installing the budget
     governs every BDD built below — including the strategy object's
     later steps, which reuse the manager but do bounded work. *)
  Bdd.set_budget manager budget;
  let props = inputs @ outputs in
  let num_props = List.length props in
  let prop_var =
    let table = Hashtbl.create 16 in
    List.iteri (fun i p -> Hashtbl.add table p i) props;
    fun p ->
      match Hashtbl.find_opt table p with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf
             "Obligation.solve: proposition %s is neither input nor output" p)
  in
  let index_of =
    let table = Hashtbl.create 64 in
    Array.iteri (fun j g -> Hashtbl.add table g j) closure;
    fun g -> Hashtbl.find table g
  in
  (* V(g): the letter-level requirement of obligation g, over letter
     variables and next-obligation variables. *)
  let rec progression f =
    match f with
    | Ltl.True -> Bdd.one manager
    | Ltl.False -> Bdd.zero manager
    | Ltl.Prop p -> Bdd.var manager (prop_var p)
    | Ltl.Not (Ltl.Prop p) -> Bdd.nvar manager (prop_var p)
    | Ltl.And (g, h) -> Bdd.and_ manager (progression g) (progression h)
    | Ltl.Or (g, h) -> Bdd.or_ manager (progression g) (progression h)
    | Ltl.Next g -> Bdd.var manager (z_next_var ~num_props (index_of g))
    | Ltl.Always g ->
      Bdd.and_ manager (progression g)
        (Bdd.var manager (z_next_var ~num_props (index_of f)))
    | Ltl.Release (g, h) ->
      Bdd.and_ manager (progression h)
        (Bdd.or_ manager (progression g)
           (Bdd.var manager (z_next_var ~num_props (index_of f))))
    | Ltl.Weak_until _ | Ltl.Until _ | Ltl.Eventually _ | Ltl.Implies _
    | Ltl.Iff _ | Ltl.Not _ ->
      assert false
  in
  let progression_bdds = Array.map progression closure in
  let num_obligations = Array.length closure in
  let input_vars = List.mapi (fun i _ -> i) inputs in
  (* The transition relation stays partitioned: one conjunct
     [z_j → V_j] per obligation.  Conjoining them into a monolithic
     BDD blows up (millions of nodes on Table-I-sized specs), so the
     controllable-predecessor below eliminates next-state variables by
     bucket order instead. *)
  let conjuncts =
    List.init num_obligations (fun j ->
        Bdd.imp manager
          (Bdd.var manager (z_var ~num_props j))
          progression_bdds.(j))
  in
  let is_next_var v = v >= num_props && (v - num_props) mod 2 = 1 in
  let num_inputs = List.length inputs in
  (* Variables eliminated inside the controllable predecessor: the
     system's choices — outputs and next obligations.  Inputs (∀) and
     current obligations (the state) remain. *)
  let is_quantifiable v =
    is_next_var v || (v >= num_inputs && v < num_props)
  in
  let max_quantifiable = z_next_var ~num_props (num_obligations - 1) in
  (* z and z' interleave (z_j immediately below z'_j), so the
     current→next renaming is order-preserving and runs in one
     traversal. *)
  let rename_to_next w =
    Bdd.rename_monotone manager
      (List.init num_obligations (fun j ->
           (z_var ~num_props j, z_next_var ~num_props j)))
      w
  in
  (* Controllable predecessor: ∀ inputs ∃ outputs, next obligations.
     The conjunction with the transition relation is built once per
     fixpoint round. *)
  (* Controllable predecessor with early quantification: walk the
     next-state variables top-down; each obligation conjunct joins at
     the bucket of its highest next-state variable, and the variable is
     eliminated immediately afterwards, so no monolithic transition
     relation is ever built. *)
  let debug = Sys.getenv_opt "SPECCC_DEBUG" <> None in
  (* Controllable predecessor by bucket elimination (as in symbolic
     model checkers with partitioned transition relations): every
     conjunct sits in the bucket of its highest quantifiable variable
     (outputs and next-state bits); eliminating top-down keeps
     independent requirement clusters factored instead of building one
     monolithic relation. *)
  let top_quantifiable bdd =
    List.fold_left
      (fun acc v -> if is_quantifiable v then Some v else acc)
      None (Bdd.support bdd)
  in
  let cpre w =
    let target = rename_to_next w in
    let buckets = Array.make (max_quantifiable + 1) [] in
    let residual = ref [] in
    let place bdd =
      if Bdd.is_zero bdd then residual := [ bdd ]
      else if not (Bdd.is_one bdd) then
        match top_quantifiable bdd with
        | Some v -> buckets.(v) <- bdd :: buckets.(v)
        | None -> residual := bdd :: !residual
    in
    List.iter place conjuncts;
    place target;
    let peak = ref 0 in
    for v = max_quantifiable downto 0 do
      if is_quantifiable v then begin
        match buckets.(v) with
        | [] -> ()
        | items ->
          let combined = Bdd.and_list manager items in
          let quantified = Bdd.exists manager [ v ] combined in
          if debug then peak := max !peak (Bdd.size combined);
          place quantified
      end
    done;
    let all = Bdd.and_list manager !residual in
    let result = Bdd.forall manager input_vars all in
    if debug then
      Printf.eprintf "  cpre: peak bucket=%d residual=%d result=%d nodes=%d\n%!"
        !peak (Bdd.size all) (Bdd.size result) (Bdd.node_count manager);
    result
  in
  let rec fixpoint w rounds =
    Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.bdd_fixpoint;
    (match budget with
     | Some budget ->
       (* Publish the fixpoint layer index before the checkpoint that
          might preempt this round: the BDDs themselves are rebuilt on
          resume, but the supervisor's partial verdict can report how
          deep the iteration got. *)
       (match snapshot_base with
        | Some base ->
          Speccc_runtime.Budget.publish budget
            (Speccc_runtime.Snapshot.with_field base "round"
               (string_of_int rounds))
        | None -> ());
       Speccc_runtime.Budget.checkpoint budget ~stage:"symbolic"
     | None -> ());
    let t0 = Unix.gettimeofday () in
    let w' = Bdd.and_ manager w (cpre w) in
    if debug then
      Printf.eprintf "round %d: |W|=%d -> %d (%.2fs)\n%!" rounds (Bdd.size w)
        (Bdd.size w') (Unix.gettimeofday () -. t0);
    if Bdd.equal w w' then (w, rounds) else fixpoint w' (rounds + 1)
  in
  let winning, rounds = fixpoint (Bdd.one manager) 1 in
  let initial_indices = List.map index_of roots in
  let initial_assignment =
    List.init num_obligations (fun j ->
        (z_var ~num_props j, List.mem j initial_indices))
  in
  let at_init = Bdd.restrict manager initial_assignment winning in
  if Bdd.is_zero at_init then Unrealizable
  else begin
    let state = Array.make num_obligations false in
    List.iter (fun j -> state.(j) <- true) initial_indices;
    Realizable
      {
        manager;
        inputs;
        outputs;
        closure;
        progression = progression_bdds;
        winning;
        winning_next = rename_to_next winning;
        initial_indices;
        num_props;
        rounds;
        state;
      }
  end

let pending_constraint strategy state =
  (* ∧_{j pending} V(g_j): what the current letter and next obligations
     must satisfy. *)
  let parts = ref [] in
  Array.iteri
    (fun j pending -> if pending then parts := strategy.progression.(j) :: !parts)
    state;
  Bdd.and_list strategy.manager !parts

let strategy_step strategy input_assignment =
  let manager = strategy.manager in
  let input_restriction =
    List.mapi
      (fun i p ->
         let value =
           match List.assoc_opt p input_assignment with
           | Some b -> b
           | None -> false
         in
         (i, value))
      strategy.inputs
  in
  let constraint_bdd =
    Bdd.and_ manager
      (pending_constraint strategy strategy.state)
      strategy.winning_next
  in
  let now = Bdd.restrict manager input_restriction constraint_bdd in
  match Bdd.any_sat now with
  | None ->
    (* Should not happen from a winning state; fail loudly. *)
    invalid_arg "Obligation.strategy_step: no move from winning state"
  | Some assignment ->
    let num_inputs = List.length strategy.inputs in
    let lookup v =
      match List.assoc_opt v assignment with Some b -> b | None -> false
    in
    let outputs =
      List.mapi
        (fun i p -> (p, lookup (num_inputs + i)))
        strategy.outputs
    in
    let next_state =
      Array.init (Array.length strategy.closure) (fun j ->
          lookup (z_next_var ~num_props:strategy.num_props j))
    in
    strategy.state <- next_state;
    outputs

let strategy_reset strategy =
  Array.fill strategy.state 0 (Array.length strategy.state) false;
  List.iter (fun j -> strategy.state.(j) <- true) strategy.initial_indices

let to_mealy ?(max_states = 4096) strategy =
  let num_inputs = List.length strategy.inputs in
  if num_inputs > 20 then None
  else begin
    let key state = String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list state)) in
    let ids = Hashtbl.create 64 in
    let states = ref [] in
    let transitions = Hashtbl.create 256 in
    let overflow = ref false in
    let rec intern state =
      let k = key state in
      match Hashtbl.find_opt ids k with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        if id >= max_states then begin
          overflow := true;
          id
        end
        else begin
          Hashtbl.add ids k id;
          states := (id, Array.copy state) :: !states;
          for imask = 0 to (1 lsl num_inputs) - 1 do
            if not !overflow then begin
              strategy.state <- Array.copy state;
              let input = Mealy.assignment_of_mask strategy.inputs imask in
              let outputs = strategy_step strategy input in
              let omask = Mealy.mask_of_assignment strategy.outputs outputs in
              let next = intern strategy.state in
              Hashtbl.replace transitions (id, imask) (omask, next)
            end
          done;
          id
        end
    in
    strategy_reset strategy;
    let initial = intern (Array.copy strategy.state) in
    strategy_reset strategy;
    if !overflow then None
    else
      Some
        {
          Mealy.inputs = strategy.inputs;
          outputs = strategy.outputs;
          num_states = Hashtbl.length ids;
          initial;
          step =
            (fun state imask ->
               match Hashtbl.find_opt transitions (state, imask) with
               | Some move -> move
               | None -> (0, state));
        }
  end

let stats strategy =
  Printf.sprintf "obligations=%d winning_nodes=%d rounds=%d"
    (Array.length strategy.closure)
    (Bdd.size strategy.winning)
    strategy.rounds
