open Speccc_logic
open Speccc_bdd

type strategy = {
  manager : Bdd.manager;
  inputs : string list;
  outputs : string list;
  closure : Ltl.t array;            (* obligation index -> formula *)
  (* The BDD-valued fields are mutable because dynamic reordering
     rebuilds every live diagram; see [reorder_for_extraction]. *)
  mutable progression : Bdd.t array; (* V(g): letter vars ∪ next-z vars *)
  mutable winning : Bdd.t;           (* over current-z vars *)
  mutable winning_next : Bdd.t;      (* winning renamed to next-z vars *)
  initial_indices : int list;
      (* the top-level conjuncts pending at step 0 *)
  num_props : int;
  rounds : int;
  mutable state : bool array;       (* pending obligations *)
}

type verdict =
  | Realizable of strategy
  | Unrealizable

(* Variable layout: inputs, then outputs, then interleaved
   (z_j, z'_j) pairs. *)
let z_var ~num_props j = num_props + (2 * j)
let z_next_var ~num_props j = num_props + (2 * j) + 1

exception Not_safety of Ltl.t

(* Obligation closure: formulas that may become pending.  The root is
   always included. *)
(* Top-level conjunctions are split into separate obligations: a
   specification is usually a conjunction of tens of requirements, and
   a single root obligation would need the monolithic conjunction of
   all their progressions as one BDD — exactly the blow-up the
   partitioned transition relation avoids. *)
let rec flatten_conjunction = function
  | Ltl.And (g, h) -> flatten_conjunction g @ flatten_conjunction h
  | Ltl.True -> []
  | f -> [ f ]

let closure_of roots =
  let rec refs acc f =
    match f with
    | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not (Ltl.Prop _) -> acc
    | Ltl.And (g, h) | Ltl.Or (g, h) -> refs (refs acc g) h
    | Ltl.Next g -> add acc g
    | Ltl.Always g -> refs (add_self acc f) g
    | Ltl.Release (g, h) -> refs (refs (add_self acc f) g) h
    | Ltl.Weak_until _ | Ltl.Until _ | Ltl.Eventually _ | Ltl.Implies _
    | Ltl.Iff _ | Ltl.Not _ ->
      raise (Not_safety f)
  and add acc g = if Ltl.Set.mem g acc then acc else refs (Ltl.Set.add g acc) g
  and add_self acc f = Ltl.Set.add f acc
  in
  let acc =
    List.fold_left (fun acc root -> add acc root) Ltl.Set.empty roots
  in
  Ltl.Set.elements
    (List.fold_left (fun acc root -> Ltl.Set.add root acc) acc roots)

let solve ?budget ?snapshot_base ~inputs ~outputs spec =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_symbolic;
  let spec = Nnf.of_formula spec in
  let roots = flatten_conjunction spec in
  let closure =
    try Array.of_list (closure_of roots)
    with Not_safety offending ->
      invalid_arg
        (Printf.sprintf
           "Obligation.solve: not a syntactic safety formula (offending \
            subformula: %s); bound liveness first"
           (Ltl_print.to_string offending))
  in
  (* Obligation-variable ordering matters for the winning region's BDD:
     obligations over related propositions should sit next to each
     other, so sort the closure by proposition support (lexicographic
     over sorted prop lists), ties broken structurally. *)
  let closure =
    let key f = (Ltl.props f, Ltl.size f, f) in
    let sorted = Array.copy closure in
    Array.sort (fun a b -> compare (key a) (key b)) sorted;
    sorted
  in
  let manager = Bdd.manager () in
  (* The manager is private to this solve, so installing the budget
     governs every BDD built below — including the strategy object's
     later steps, which reuse the manager but do bounded work. *)
  Bdd.set_budget manager budget;
  (* Reordering trigger: once the unique table outgrows this, the
     fixpoint reorders at the next round boundary.  Governed runs never
     reorder (sifting would perturb fuel accounting). *)
  (match
     match Sys.getenv_opt "SPECCC_BDD_REORDER" with
     | Some raw -> int_of_string_opt raw
     | None -> Some 150_000
   with
   | Some 0 | None -> ()
   | Some threshold -> Bdd.set_reorder_threshold manager (Some threshold));
  let props = inputs @ outputs in
  let num_props = List.length props in
  let prop_var =
    let table = Hashtbl.create 16 in
    List.iteri (fun i p -> Hashtbl.add table p i) props;
    fun p ->
      match Hashtbl.find_opt table p with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf
             "Obligation.solve: proposition %s is neither input nor output" p)
  in
  let index_of =
    let table = Hashtbl.create 64 in
    Array.iteri (fun j g -> Hashtbl.add table g j) closure;
    fun g -> Hashtbl.find table g
  in
  (* V(g): the letter-level requirement of obligation g, over letter
     variables and next-obligation variables. *)
  let rec progression f =
    match f with
    | Ltl.True -> Bdd.one manager
    | Ltl.False -> Bdd.zero manager
    | Ltl.Prop p -> Bdd.var manager (prop_var p)
    | Ltl.Not (Ltl.Prop p) -> Bdd.nvar manager (prop_var p)
    | Ltl.And (g, h) -> Bdd.and_ manager (progression g) (progression h)
    | Ltl.Or (g, h) -> Bdd.or_ manager (progression g) (progression h)
    | Ltl.Next g -> Bdd.var manager (z_next_var ~num_props (index_of g))
    | Ltl.Always g ->
      Bdd.and_ manager (progression g)
        (Bdd.var manager (z_next_var ~num_props (index_of f)))
    | Ltl.Release (g, h) ->
      Bdd.and_ manager (progression h)
        (Bdd.or_ manager (progression g)
           (Bdd.var manager (z_next_var ~num_props (index_of f))))
    | Ltl.Weak_until _ | Ltl.Until _ | Ltl.Eventually _ | Ltl.Implies _
    | Ltl.Iff _ | Ltl.Not _ ->
      assert false
  in
  let progression_bdds = Array.map progression closure in
  let num_obligations = Array.length closure in
  let input_vars = List.mapi (fun i _ -> i) inputs in
  (* The transition relation stays partitioned: one conjunct
     [z_j → V_j] per obligation.  Conjoining them into a monolithic
     BDD blows up (millions of nodes on Table-I-sized specs), so the
     controllable-predecessor below eliminates next-state variables by
     bucket order instead. *)
  let conjuncts =
    List.init num_obligations (fun j ->
        Bdd.imp manager
          (Bdd.var manager (z_var ~num_props j))
          progression_bdds.(j))
  in
  let is_next_var v = v >= num_props && (v - num_props) mod 2 = 1 in
  let num_inputs = List.length inputs in
  (* Variables eliminated inside the controllable predecessor: the
     system's choices — outputs and next obligations.  Inputs (∀) and
     current obligations (the state) remain. *)
  let is_quantifiable v =
    is_next_var v || (v >= num_inputs && v < num_props)
  in
  let max_quantifiable = z_next_var ~num_props (num_obligations - 1) in
  (* z and z' interleave (z_j immediately below z'_j), so the
     current→next renaming is order-preserving and runs in one
     traversal. *)
  let rename_to_next w =
    Bdd.rename_monotone manager
      (List.init num_obligations (fun j ->
           (z_var ~num_props j, z_next_var ~num_props j)))
      w
  in
  (* Controllable predecessor: ∀ inputs ∃ outputs, next obligations.
     The conjunction with the transition relation is built once per
     fixpoint round. *)
  (* Controllable predecessor with early quantification: walk the
     next-state variables top-down; each obligation conjunct joins at
     the bucket of its highest next-state variable, and the variable is
     eliminated immediately afterwards, so no monolithic transition
     relation is ever built. *)
  let debug = Sys.getenv_opt "SPECCC_DEBUG" <> None in
  (* Controllable predecessor by bucket elimination (as in symbolic
     model checkers with partitioned transition relations): every
     conjunct sits in the bucket of its highest quantifiable variable
     (outputs and next-state bits); eliminating top-down keeps
     independent requirement clusters factored instead of building one
     monolithic relation. *)
  let top_quantifiable bdd =
    List.fold_left
      (fun acc v -> if is_quantifiable v then Some v else acc)
      None (Bdd.support manager bdd)
  in
  let cpre conjuncts w =
    let target = rename_to_next w in
    let buckets = Array.make (max_quantifiable + 1) [] in
    let residual = ref [] in
    let place bdd =
      if Bdd.is_zero bdd then residual := [ bdd ]
      else if not (Bdd.is_one bdd) then
        match top_quantifiable bdd with
        | Some v -> buckets.(v) <- bdd :: buckets.(v)
        | None -> residual := bdd :: !residual
    in
    List.iter place conjuncts;
    place target;
    let peak = ref 0 in
    for v = max_quantifiable downto 0 do
      if is_quantifiable v then begin
        match buckets.(v) with
        | [] -> ()
        | items ->
          let combined = Bdd.and_list manager items in
          let quantified = Bdd.exists manager [ v ] combined in
          if debug then peak := max !peak (Bdd.size combined);
          place quantified
      end
    done;
    let all = Bdd.and_list manager !residual in
    let result = Bdd.forall manager input_vars all in
    if debug then
      Printf.eprintf "  cpre: peak bucket=%d residual=%d result=%d nodes=%d\n%!"
        !peak (Bdd.size all) (Bdd.size result) (Bdd.node_count manager);
    result
  in
  let z_groups =
    List.init num_obligations (fun j ->
        [ z_var ~num_props j; z_next_var ~num_props j ])
  in
  (* Round-boundary reordering: every BDD that survives across rounds
     (partitioned transition relation, progressions, the current
     winning approximation) is threaded through the sift; inputs stay
     pinned root-most and each (z_j, z'_j) pair stays glued so the
     current-to-next renaming stays monotone. *)
  let maybe_reorder conjuncts w =
    if budget = None && Bdd.reorder_due manager then begin
      let roots = w :: (conjuncts @ Array.to_list progression_bdds) in
      match
        Bdd.reorder manager ~pinned:num_inputs ~groups:z_groups roots
      with
      | w' :: rest ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: tl -> take (n - 1) (x :: acc) tl
        in
        let conjuncts', progs = take (List.length conjuncts) [] rest in
        List.iteri (fun j p -> progression_bdds.(j) <- p) progs;
        (conjuncts', w')
      | [] -> (conjuncts, w)
    end
    else (conjuncts, w)
  in
  let rec fixpoint conjuncts w rounds =
    Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.bdd_fixpoint;
    (match budget with
     | Some budget ->
       (* Publish the fixpoint layer index before the checkpoint that
          might preempt this round: the BDDs themselves are rebuilt on
          resume, but the supervisor's partial verdict can report how
          deep the iteration got. *)
       (match snapshot_base with
        | Some base ->
          Speccc_runtime.Budget.publish budget
            (Speccc_runtime.Snapshot.with_field base "round"
               (string_of_int rounds))
        | None -> ());
       Speccc_runtime.Budget.checkpoint budget ~stage:"symbolic"
     | None -> ());
    let t0 = Unix.gettimeofday () in
    let w' = Bdd.and_ manager w (cpre conjuncts w) in
    if debug then
      Printf.eprintf "round %d: |W|=%d -> %d (%.2fs)\n%!" rounds (Bdd.size w)
        (Bdd.size w') (Unix.gettimeofday () -. t0);
    if Bdd.equal w w' then (w, rounds)
    else
      let conjuncts, w' = maybe_reorder conjuncts w' in
      fixpoint conjuncts w' (rounds + 1)
  in
  let winning, rounds = fixpoint conjuncts (Bdd.one manager) 1 in
  let initial_indices = List.map index_of roots in
  let initial_assignment =
    List.init num_obligations (fun j ->
        (z_var ~num_props j, List.mem j initial_indices))
  in
  let at_init = Bdd.restrict manager initial_assignment winning in
  if Bdd.is_zero at_init then Unrealizable
  else begin
    let state = Array.make num_obligations false in
    List.iter (fun j -> state.(j) <- true) initial_indices;
    Realizable
      {
        manager;
        inputs;
        outputs;
        closure;
        progression = progression_bdds;
        winning;
        winning_next = rename_to_next winning;
        initial_indices;
        num_props;
        rounds;
        state;
      }
  end

let pending_constraint strategy state =
  (* ∧_{j pending} V(g_j): what the current letter and next obligations
     must satisfy. *)
  let parts = ref [] in
  Array.iteri
    (fun j pending -> if pending then parts := strategy.progression.(j) :: !parts)
    state;
  Bdd.and_list strategy.manager !parts

let strategy_step strategy input_assignment =
  let manager = strategy.manager in
  let input_restriction =
    List.mapi
      (fun i p ->
         let value =
           match List.assoc_opt p input_assignment with
           | Some b -> b
           | None -> false
         in
         (i, value))
      strategy.inputs
  in
  let constraint_bdd =
    Bdd.and_ manager
      (pending_constraint strategy strategy.state)
      strategy.winning_next
  in
  let now = Bdd.restrict manager input_restriction constraint_bdd in
  match Bdd.any_sat now with
  | None ->
    (* Should not happen from a winning state; fail loudly. *)
    invalid_arg "Obligation.strategy_step: no move from winning state"
  | Some assignment ->
    let num_inputs = List.length strategy.inputs in
    let lookup v =
      match List.assoc_opt v assignment with Some b -> b | None -> false
    in
    let outputs =
      List.mapi
        (fun i p -> (p, lookup (num_inputs + i)))
        strategy.outputs
    in
    let next_state =
      Array.init (Array.length strategy.closure) (fun j ->
          lookup (z_next_var ~num_props:strategy.num_props j))
    in
    strategy.state <- next_state;
    outputs

let strategy_reset strategy =
  Array.fill strategy.state 0 (Array.length strategy.state) false;
  List.iter (fun j -> strategy.state.(j) <- true) strategy.initial_indices

(* Controller enumeration over the implicit product.

   The naive extraction calls [strategy_step] once per input valuation:
   2^|inputs| restrict+any_sat passes per state, each over a per-state
   constraint BDD that conjoins every pending progression.  Building
   those conjunctions dominates extraction — tens of thousands of fresh
   nodes per state even with memoized balanced conjunction trees,
   because each state's pending set differs near the root of every
   conjunction tree.

   This version never materializes the conjunction:

   - The whole progression family (every obligation plus the
     winning-next region) is cofactored by the input variables ONCE,
     in a shared DFS over the input cube — states only differ in which
     factors they keep, so per state and input cube the relevant
     factors are a filter over a precomputed leaf.
   - Each (state, leaf) pair is then a satisfiability question on the
     product of the remaining factors, solved by a backtracking search
     that branches high first at the shallowest live root — the same
     preference [Bdd.any_sat] has.  Factors reduced to [one] drop out,
     so the active list shrinks as the search deepens.
   - Next-obligation variables occur purely positively (progressions
     never negate them), so once the letters are gone the high path of
     each factor is a satisfying assignment — the suffix needs no
     search at all.  A step counter catches pathological backtracking
     and falls back to the exact conjunction for that subproblem.

   The produced machine can differ from the conjunction-based one only
   in don't-care variables (a variable that cancels out of the
   conjunction is unconstrained there, while the product search still
   assigns it), so it is deterministic and satisfies the same pending
   obligations. *)
let to_mealy ?(max_states = 4096) strategy =
  let num_inputs = List.length strategy.inputs in
  if num_inputs > 20 then None
  else begin
    let manager = strategy.manager in
    let num_imasks = 1 lsl num_inputs in
    let num_obligations = Array.length strategy.closure in
    let num_props = strategy.num_props in
    let num_vars = num_props + (2 * num_obligations) in
    let lose () =
      (* Should not happen from a winning state; fail loudly. *)
      invalid_arg "Obligation.strategy_step: no move from winning state"
    in
    (* Active factor cells: (obligation, root var, root level, diagram),
       lists sorted by root level so the variable to branch on is always
       the head's root and cofactoring touches only the head run. *)
    let cell j d = (j, Bdd.top d, Bdd.level manager (Bdd.top d), d) in
    let rec insert ((_, _, l, _) as c) list =
      match list with
      | [] -> [ c ]
      | ((_, _, l', _) as c') :: rest ->
        if l <= l' then c :: list else c' :: insert c rest
    in
    (* Shared input phase: cofactor the whole factor family by every
       input cube.  Leaves are deduplicated — an input no factor
       mentions never splits — and [leaf_of_imask] maps each input
       valuation to its leaf.  A factor that dies under some cube is
       recorded in [leaf_dead]: fatal later only if its obligation is
       pending. *)
    let leaf_cells = ref [] and leaf_dead = ref [] and leaf_count = ref 0 in
    let leaf_of_imask = Array.make num_imasks 0 in
    let () =
      let family =
        List.filter
          (fun (_, _, _, d) -> not (Bdd.is_one d))
          (cell (-1) strategy.winning_next
          :: List.init num_obligations (fun j -> cell j strategy.progression.(j)))
      in
      if List.exists (fun (_, _, _, d) -> Bdd.is_zero d) family then lose ();
      let family =
        List.sort (fun (_, _, l, _) (_, _, l', _) -> compare l l') family
      in
      let rec build active dead fixed_mask fixed_value =
        match active with
        | (_, v, _, _) :: _ when v < num_inputs ->
          let rec split run rest =
            match rest with
            | ((_, v', _, _) as c) :: tail when v' = v ->
              split (c :: run) tail
            | _ -> (run, rest)
          in
          let run, rest = split [] active in
          let branch b =
            let active, dead =
              List.fold_left
                (fun (active, dead) (j, _, _, d) ->
                   let c = if b then Bdd.high d else Bdd.low d in
                   if Bdd.is_zero c then (active, j :: dead)
                   else if Bdd.is_one c then (active, dead)
                   else (insert (cell j c) active, dead))
                (rest, dead) run
            in
            build active dead
              (fixed_mask lor (1 lsl v))
              (if b then fixed_value lor (1 lsl v) else fixed_value)
          in
          branch false;
          branch true
        | _ ->
          let id = !leaf_count in
          incr leaf_count;
          leaf_cells := active :: !leaf_cells;
          leaf_dead := dead :: !leaf_dead;
          (* Spread this leaf over every imask extending the fixed
             input bits. *)
          let free = ref [] in
          for v = num_inputs - 1 downto 0 do
            if fixed_mask land (1 lsl v) = 0 then free := v :: !free
          done;
          let free = Array.of_list !free in
          let num_free = Array.length free in
          for k = 0 to (1 lsl num_free) - 1 do
            let imask = ref fixed_value in
            for b = 0 to num_free - 1 do
              if k land (1 lsl b) <> 0 then imask := !imask lor (1 lsl free.(b))
            done;
            leaf_of_imask.(!imask) <- id
          done
      in
      build family [] 0 0
    in
    let num_leaves = !leaf_count in
    let leaf_cells = Array.of_list (List.rev !leaf_cells) in
    let leaf_dead = Array.of_list (List.rev !leaf_dead) in
    (* Assignment marks, epoch-cleared: [mark_epoch.(v) = epoch] means
       variable [v] carries [mark_val.(v)] in the current search. *)
    let mark_epoch = Array.make num_vars 0 in
    let mark_val = Array.make num_vars false in
    let epoch = ref 0 in
    let exception Bail in
    (* Fast path for the next-obligation tail: variables there occur
       purely positively (progressions never negate them), so the high
       path of each factor is a satisfying assignment — no search.
       Bails if a letter variable shows up inside a next-rooted factor
       (possible only after exotic reorders), if a variable was already
       branched to false, or if positivity is ever violated; the caller
       then falls back to the exact conjunction. *)
    (* A bail aborts the whole search ([Exit] → exact fallback), and
       the fallback starts a fresh mark epoch, so marks set before the
       bail need no undoing. *)
    let try_pure_next zs =
      match
        List.iter
          (fun d ->
             let rec follow d =
               let v = Bdd.top d in
               if v < 0 then (if Bdd.is_zero d then raise Bail)
               else if v < num_props then raise Bail
               else if mark_epoch.(v) = !epoch then
                 if mark_val.(v) then follow (Bdd.high d) else raise Bail
               else begin
                 let h = Bdd.high d in
                 if Bdd.is_zero h then raise Bail;
                 mark_epoch.(v) <- !epoch;
                 mark_val.(v) <- true;
                 follow h
               end
             in
             follow d)
          zs
      with
      | () -> true
      | exception Bail -> raise Exit
    in
    let solve_budget = 200_000 in
    (* Backtracking search below the input prefix.  The active factors
       are split: [letters] holds the factors rooted at output
       variables (few — most factors lose their letter part to the
       input cofactor), sorted by root level and branched high first,
       the same preference [Bdd.any_sat] has; [zs] holds the factors
       rooted at next-obligation variables, which are never branched —
       once the letters are gone they are solved in one pass by
       [try_pure_next].  Setting a factor aside is O(1), so the sorted
       insertions only ever walk the short letter list. *)
    let rec solve_product letters zs steps =
      if !steps <= 0 then raise Exit;
      decr steps;
      match letters with
      | [] -> try_pure_next zs
      | (_, v, _, _) :: _ ->
        let branch b =
          let rec cofactor list zs_acc =
            match list with
            | (j, v', _, d) :: rest when v' = v ->
              let c = if b then Bdd.high d else Bdd.low d in
              if Bdd.is_zero c then None
              else begin
                match cofactor rest zs_acc with
                | None -> None
                | Some (lets, zacc) ->
                  if Bdd.is_one c then Some (lets, zacc)
                  else if Bdd.top c >= num_props then Some (lets, c :: zacc)
                  else Some (insert (cell j c) lets, zacc)
              end
            | _ -> Some (list, zs_acc)
          in
          match cofactor letters zs with
          | None -> false
          | Some (lets, zs) ->
            mark_epoch.(v) <- !epoch;
            mark_val.(v) <- b;
            if solve_product lets zs steps then true
            else begin
              mark_epoch.(v) <- 0;
              false
            end
        in
        branch true || branch false
    in
    (* One decoded move per (state, leaf): run the product search with
       fresh marks, then read the outputs and next obligations straight
       out of the mark arrays.  Falls back to the exact conjunction if
       the search budget trips or the fast path bails. *)
    let solve_leaf state cells =
      incr epoch;
      (* One pass filters the pending factors and splits them:
         letter-rooted cells keep their sorted order, next-rooted
         diagrams are set aside (order irrelevant). *)
      let zs = ref [] in
      let rec split = function
        | [] -> []
        | ((j, v, _, d) as c) :: rest ->
          if j >= 0 && not state.(j) then split rest
          else if v >= num_props then begin
            zs := d :: !zs;
            split rest
          end
          else c :: split rest
      in
      let letters = split cells in
      let zs = !zs in
      let ok =
        match solve_product letters zs (ref solve_budget) with
        | ok -> ok
        | exception Exit ->
          incr epoch;
          (match
             Bdd.any_sat
               (Bdd.and_list manager
                  (List.filter_map
                     (fun (j, _, _, d) ->
                        if j < 0 || state.(j) then Some d else None)
                     cells))
           with
           | None -> false
           | Some assignment ->
             List.iter
               (fun (v, b) ->
                  mark_epoch.(v) <- !epoch;
                  mark_val.(v) <- b)
               assignment;
             true)
      in
      if not ok then lose ();
      let omask = ref 0 in
      for v = num_inputs to num_props - 1 do
        if mark_epoch.(v) = !epoch && mark_val.(v) then
          omask := !omask lor (1 lsl (v - num_inputs))
      done;
      let next = Array.make num_obligations false in
      for j = 0 to num_obligations - 1 do
        let v = num_props + (2 * j) + 1 in
        if mark_epoch.(v) = !epoch && mark_val.(v) then next.(j) <- true
      done;
      (!omask, next)
    in
    (* One move per leaf; the per-imask row is assembled from the
       leaf map at interning time. *)
    let moves_of state =
      Array.init num_leaves (fun leaf ->
          if List.exists (fun j -> j >= 0 && state.(j)) leaf_dead.(leaf)
          then lose ();
          solve_leaf state leaf_cells.(leaf))
    in
    (* States are interned by their pending bitset, packed into a few
       machine words. *)
    let key_words = (num_obligations + 62) / 63 in
    let key state =
      let k = Array.make (max key_words 1) 0 in
      for j = 0 to num_obligations - 1 do
        if state.(j) then k.(j / 63) <- k.(j / 63) lor (1 lsl (j mod 63))
      done;
      k
    in
    let ids = Hashtbl.create 64 in
    let table = ref (Array.make 64 [||]) in
    let overflow = ref false in
    let rec intern state =
      let k = key state in
      match Hashtbl.find_opt ids k with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        if id >= max_states then begin
          overflow := true;
          id
        end
        else begin
          Hashtbl.add ids k id;
          let moves = moves_of state in
          let encoded = Array.make num_imasks (0, 0) in
          if id >= Array.length !table then begin
            let bigger = Array.make (2 * Array.length !table) [||] in
            Array.blit !table 0 bigger 0 (Array.length !table);
            table := bigger
          end;
          !table.(id) <- encoded;
          (* Successors interned once per leaf, not once per imask. *)
          let next_ids =
            Array.map
              (fun (_, next) -> if !overflow then 0 else intern next)
              moves
          in
          if not !overflow then
            for imask = 0 to num_imasks - 1 do
              let leaf = leaf_of_imask.(imask) in
              encoded.(imask) <- (fst moves.(leaf), next_ids.(leaf))
            done;
          id
        end
    in
    strategy_reset strategy;
    let initial = intern (Array.copy strategy.state) in
    strategy_reset strategy;
    if !overflow then None
    else begin
      let num_states = Hashtbl.length ids in
      let table = !table in
      Some
        {
          Mealy.inputs = strategy.inputs;
          outputs = strategy.outputs;
          num_states;
          initial;
          step =
            (fun state imask ->
               if state >= 0 && state < num_states then table.(state).(imask)
               else (0, state));
        }
    end
  end

let stats strategy =
  Printf.sprintf "obligations=%d winning_nodes=%d rounds=%d"
    (Array.length strategy.closure)
    (Bdd.size strategy.winning)
    strategy.rounds
