open Speccc_logic
open Speccc_automata

type counterstrategy = {
  cs_inputs : string list;
  cs_outputs : string list;
  cs_num_states : int;
  cs_initial : int;
  cs_move : int -> int;
  cs_next : int -> int -> int;
}

type verdict =
  | Realizable of Mealy.t
  | Unrealizable of counterstrategy
  | Unknown of int

(* Transitions of the UCW, with guards compiled to (mask, value) pairs
   over the combined input-then-output bit layout. *)
type compiled_transition = {
  dst : int;
  guard_mask : int;
  guard_value : int;
  never : bool;  (* guard mentions an unknown proposition positively *)
}

let compile_automaton auto ~inputs ~outputs =
  let bit_of =
    let table = Hashtbl.create 16 in
    List.iteri (fun i p -> Hashtbl.add table p i) inputs;
    let base = List.length inputs in
    List.iteri (fun i p -> Hashtbl.add table p (base + i)) outputs;
    fun p -> Hashtbl.find_opt table p
  in
  let by_src = Array.make auto.Nbw.num_states [] in
  List.iter
    (fun (src, guard, dst) ->
       let compiled =
         List.fold_left
           (fun acc (p, value) ->
              match acc with
              | None -> None
              | Some t ->
                (match bit_of p with
                 | Some bit ->
                   Some
                     {
                       t with
                       guard_mask = t.guard_mask lor (1 lsl bit);
                       guard_value =
                         (if value then t.guard_value lor (1 lsl bit)
                          else t.guard_value);
                     }
                 | None ->
                   (* Unknown propositions are constant false. *)
                   if value then None else Some t))
           (Some { dst; guard_mask = 0; guard_value = 0; never = false })
           guard
       in
       match compiled with
       | Some t -> by_src.(src) <- t :: by_src.(src)
       | None -> ())
    auto.Nbw.transitions;
  by_src

(* Counting functions are arrays over UCW states: -1 inactive,
   otherwise the maximal number of accepting states seen on a run
   reaching this state.  Keys for hashing are byte strings. *)
let key_of_counts counts =
  let bytes = Bytes.create (Array.length counts) in
  Array.iteri (fun i c -> Bytes.set bytes i (Char.chr (c + 1))) counts;
  Bytes.to_string bytes

type game = {
  states : (string, int) Hashtbl.t;   (* key -> id *)
  mutable count_arrays : int array array;  (* id -> counting function *)
  mutable num_states : int;
  successor : (int, int array) Hashtbl.t;
      (* id -> per-combined-letter successor id, -2 unexplored,
         -1 overflow *)
}

let successor_counts auto by_src ~bound counts letter =
  let n = Array.length counts in
  let next = Array.make n (-1) in
  let overflow = ref false in
  for q = 0 to n - 1 do
    if counts.(q) >= 0 then
      List.iter
        (fun t ->
           if (not t.never) && letter land t.guard_mask = t.guard_value then begin
             let credit = if auto.Nbw.accepting.(t.dst) then 1 else 0 in
             let value = counts.(q) + credit in
             if value > bound then overflow := true
             else if value > next.(t.dst) then next.(t.dst) <- value
           end)
        by_src.(q)
  done;
  if !overflow then None else Some next

(* Explore the full game graph reachable from the initial counting
   function, then compute the set of winning positions by a greatest
   fixpoint.  [system_moves_second] selects the quantifier order:
   true = ∀input ∃output (system synthesis), false = ∃input ∀output
   (environment synthesis for the dual game). *)
let solve_game ?budget auto by_src ~bound ~num_input_bits ~num_output_bits
    ~system_moves_second =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let num_inputs = 1 lsl num_input_bits in
  let num_outputs = 1 lsl num_output_bits in
  let num_letters = num_inputs * num_outputs in
  let combined imask omask = imask lor (omask lsl num_input_bits) in
  let game = {
    states = Hashtbl.create 1024;
    count_arrays = Array.make 64 [||];
    num_states = 0;
    successor = Hashtbl.create 1024;
  }
  in
  let intern counts =
    let key = key_of_counts counts in
    match Hashtbl.find_opt game.states key with
    | Some id -> id
    | None ->
      (* One fuel unit per game position: the counting-function space
         is the exponential blow-up this engine is prone to. *)
      tick ();
      let id = game.num_states in
      Hashtbl.add game.states key id;
      game.num_states <- id + 1;
      if id >= Array.length game.count_arrays then begin
        let fresh = Array.make (2 * Array.length game.count_arrays) [||] in
        Array.blit game.count_arrays 0 fresh 0 id;
        game.count_arrays <- fresh
      end;
      game.count_arrays.(id) <- counts;
      id
  in
  let initial_counts = Array.make auto.Nbw.num_states (-1) in
  List.iter
    (fun q ->
       initial_counts.(q) <-
         (if auto.Nbw.accepting.(q) then 1 else 0))
    auto.Nbw.initial;
  (* Clamp: if an initial state already exceeds the bound the system
     loses immediately (cannot happen with bound >= 1). *)
  let initial_id = intern initial_counts in
  (* Forward exploration. *)
  let queue = Queue.create () in
  Queue.add initial_id queue;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if not (Hashtbl.mem game.successor id) then begin
      let counts = game.count_arrays.(id) in
      let table = Array.make num_letters (-1) in
      for imask = 0 to num_inputs - 1 do
        for omask = 0 to num_outputs - 1 do
          let letter = combined imask omask in
          match successor_counts auto by_src ~bound counts letter with
          | None -> table.(letter) <- -1
          | Some next ->
            let next_id = intern next in
            table.(letter) <- next_id;
            if not (Hashtbl.mem game.successor next_id) then
              Queue.add next_id queue
        done
      done;
      Hashtbl.add game.successor id table
    end
  done;
  (* Greatest fixpoint of the safety winning region. *)
  let alive = Array.make game.num_states true in
  let stable = ref false in
  while not !stable do
    stable := true;
    tick ();
    for id = 0 to game.num_states - 1 do
      if alive.(id) then begin
        let table = Hashtbl.find game.successor id in
        let ok_for_input imask =
          let exists_output omask =
            let succ = table.(combined imask omask) in
            succ >= 0 && alive.(succ)
          in
          let rec any omask =
            omask < num_outputs && (exists_output omask || any (omask + 1))
          in
          let rec all omask =
            omask >= num_outputs
            || (exists_output omask && all (omask + 1))
          in
          if system_moves_second then any 0 else all 0
        in
        let wins =
          if system_moves_second then
            (* ∀ input ∃ output *)
            let rec all imask =
              imask >= num_inputs || (ok_for_input imask && all (imask + 1))
            in
            all 0
          else
            (* ∃ input ∀ output *)
            let rec any imask =
              imask < num_inputs && (ok_for_input imask || any (imask + 1))
            in
            any 0
        in
        if not wins then begin
          alive.(id) <- false;
          stable := false
        end
      end
    done
  done;
  if not alive.(initial_id) then None
  else Some (game, alive, initial_id, combined)

(* Extract a Mealy controller from the winning region: in each alive
   state, for each input, pick the first output leading to an alive
   successor. *)
let extract_controller game alive initial_id combined ~inputs ~outputs =
  let num_inputs = 1 lsl List.length inputs in
  let num_outputs = 1 lsl List.length outputs in
  (* Renumber alive states reachable under the chosen strategy. *)
  let remap = Hashtbl.create 64 in
  let back = ref [] in
  let next_id = ref 0 in
  let rec visit id =
    if not (Hashtbl.mem remap id) then begin
      Hashtbl.add remap id !next_id;
      back := id :: !back;
      incr next_id;
      let table = Hashtbl.find game.successor id in
      for imask = 0 to num_inputs - 1 do
        let rec first omask =
          if omask >= num_outputs then None
          else
            let succ = table.(combined imask omask) in
            if succ >= 0 && alive.(succ) then Some succ else first (omask + 1)
        in
        match first 0 with
        | Some succ -> visit succ
        | None -> assert false  (* alive states always have a move *)
      done
    end
  in
  visit initial_id;
  let ids = Array.of_list (List.rev !back) in
  let step_table =
    Array.map
      (fun id ->
         let table = Hashtbl.find game.successor id in
         Array.init num_inputs (fun imask ->
             let rec first omask =
               if omask >= num_outputs then assert false
               else
                 let succ = table.(combined imask omask) in
                 if succ >= 0 && alive.(succ) then
                   (omask, Hashtbl.find remap succ)
                 else first (omask + 1)
             in
             first 0))
      ids
  in
  {
    Mealy.inputs;
    outputs;
    num_states = Array.length ids;
    initial = 0;
    step = (fun state imask -> step_table.(state).(imask));
  }

(* Extract the environment's Moore strategy from a won dual game: in
   every alive position there is an input valuation under which every
   system answer stays inside the (dual) winning region. *)
let extract_counterstrategy game alive initial_id combined ~inputs ~outputs =
  let num_inputs = 1 lsl List.length inputs in
  let num_outputs = 1 lsl List.length outputs in
  let winning_move id =
    let table = Hashtbl.find game.successor id in
    let all_outputs_alive imask =
      let rec all omask =
        omask >= num_outputs
        || (let succ = table.(combined imask omask) in
            succ >= 0 && alive.(succ) && all (omask + 1))
      in
      all 0
    in
    let rec first imask =
      if imask >= num_inputs then assert false
      else if all_outputs_alive imask then imask
      else first (imask + 1)
    in
    first 0
  in
  let remap = Hashtbl.create 64 in
  let order = ref [] in
  let next_id = ref 0 in
  let rec visit id =
    if not (Hashtbl.mem remap id) then begin
      Hashtbl.add remap id !next_id;
      order := id :: !order;
      incr next_id;
      let table = Hashtbl.find game.successor id in
      let imask = winning_move id in
      for omask = 0 to num_outputs - 1 do
        visit table.(combined imask omask)
      done
    end
  in
  visit initial_id;
  let ids = Array.of_list (List.rev !order) in
  let moves = Array.map winning_move ids in
  let next_table =
    Array.mapi
      (fun state id ->
         let table = Hashtbl.find game.successor id in
         Array.init num_outputs (fun omask ->
             Hashtbl.find remap table.(combined moves.(state) omask)))
      ids
  in
  {
    cs_inputs = inputs;
    cs_outputs = outputs;
    cs_num_states = Array.length ids;
    cs_initial = 0;
    cs_move = (fun state -> moves.(state));
    cs_next = (fun state omask -> next_table.(state).(omask));
  }

let refute counterstrategy machine =
  if counterstrategy.cs_inputs <> machine.Mealy.inputs
  || counterstrategy.cs_outputs <> machine.Mealy.outputs
  then invalid_arg "Bounded.refute: interface mismatch";
  let combined_letter imask omask =
    Mealy.assignment_of_mask counterstrategy.cs_inputs imask
    @ Mealy.assignment_of_mask counterstrategy.cs_outputs omask
  in
  let seen = Hashtbl.create 64 in
  let rec play cs_state mealy_state acc step_index =
    match Hashtbl.find_opt seen (cs_state, mealy_state) with
    | Some first_index ->
      let letters = List.rev acc in
      let prefix = List.filteri (fun i _ -> i < first_index) letters in
      let loop = List.filteri (fun i _ -> i >= first_index) letters in
      Speccc_logic.Trace.make ~prefix ~loop
    | None ->
      Hashtbl.add seen (cs_state, mealy_state) step_index;
      let imask = counterstrategy.cs_move cs_state in
      let omask, mealy' = machine.Mealy.step mealy_state imask in
      let cs' = counterstrategy.cs_next cs_state omask in
      play cs' mealy' (combined_letter imask omask :: acc) (step_index + 1)
  in
  play counterstrategy.cs_initial machine.Mealy.initial [] 0

let check_size ~max_letters ~inputs ~outputs =
  let bits = List.length inputs + List.length outputs in
  if bits > 24 || 1 lsl bits > max_letters then
    invalid_arg
      (Printf.sprintf
         "Bounded.solve: %d propositions exceed the explicit engine's \
          letter budget (max_letters = %d); use the symbolic engine"
         bits max_letters)

let solve ?budget ?(bound = 3) ?(max_letters = 4096) ~inputs ~outputs spec =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_explicit;
  check_size ~max_letters ~inputs ~outputs;
  let num_input_bits = List.length inputs in
  let num_output_bits = List.length outputs in
  (* System game: UCW of the negation. *)
  let ucw = Nbw.of_ltl ?budget (Ltl.neg spec) in
  let by_src = compile_automaton ucw ~inputs ~outputs in
  match
    solve_game ?budget ucw by_src ~bound ~num_input_bits ~num_output_bits
      ~system_moves_second:true
  with
  | Some (game, alive, initial_id, combined) ->
    Realizable
      (extract_controller game alive initial_id combined ~inputs ~outputs)
  | None ->
    (* Dual game: the environment tries to realize the negation; it
       moves first (Moore), i.e. picks the input before seeing the
       output.  Winning it proves unrealizability exactly. *)
    let ucw_dual = Nbw.of_ltl ?budget spec in
    let by_src_dual = compile_automaton ucw_dual ~inputs ~outputs in
    (match
       solve_game ?budget ucw_dual by_src_dual ~bound ~num_input_bits
         ~num_output_bits ~system_moves_second:false
     with
     | Some (game, alive, initial_id, combined) ->
       Unrealizable
         (extract_counterstrategy game alive initial_id combined ~inputs
            ~outputs)
     | None -> Unknown bound)

let solve_iterative ?budget ?(max_bound = 8) ?max_letters ~inputs ~outputs
    spec =
  (* Anytime resume: a snapshot records the last counting bound that
     completed with Unknown, so a preempted-then-retried search starts
     escalation above it instead of re-losing the small bounds.  The
     escalation tail (doubling, clamped at [max_bound]) is identical
     to a cold run's, so the final verdict cannot differ. *)
  let publish bound =
    match budget with
    | None -> ()
    | Some b ->
      Speccc_runtime.Budget.publish b
        (Speccc_runtime.Snapshot.make ~engine:"explicit"
           [ ("bound", string_of_int bound) ])
  in
  let start =
    match budget with
    | None -> 1
    | Some b ->
      (match Speccc_runtime.Budget.resume_for b ~engine:"explicit" with
       | Some snap ->
         (match Speccc_runtime.Snapshot.int_field snap "bound" with
          | Some k when k >= 1 -> min (2 * k) max_bound
          | Some _ | None -> 1)
       | None -> 1)
  in
  let rec escalate bound =
    match solve ?budget ~bound ?max_letters ~inputs ~outputs spec with
    | Realizable _ as verdict -> verdict
    | Unrealizable _ as verdict -> verdict
    | Unknown _ when 2 * bound <= max_bound ->
      publish bound;
      escalate (2 * bound)
    | Unknown _ -> publish bound; Unknown bound
  in
  escalate (max 1 start)
