open Speccc_logic
open Speccc_automata

type counterstrategy = {
  cs_inputs : string list;
  cs_outputs : string list;
  cs_num_states : int;
  cs_initial : int;
  cs_move : int -> int;
  cs_next : int -> int -> int;
}

type verdict =
  | Realizable of Mealy.t
  | Unrealizable of counterstrategy
  | Unknown of int

(* Transitions of the UCW, with guards compiled to (mask, value) pairs
   over the combined input-then-output bit layout. *)
type compiled_transition = {
  dst : int;
  guard_mask : int;
  guard_value : int;
  never : bool;  (* guard mentions an unknown proposition positively *)
}

let compile_automaton auto ~inputs ~outputs =
  let bit_of =
    let table = Hashtbl.create 16 in
    List.iteri (fun i p -> Hashtbl.add table p i) inputs;
    let base = List.length inputs in
    List.iteri (fun i p -> Hashtbl.add table p (base + i)) outputs;
    fun p -> Hashtbl.find_opt table p
  in
  let by_src = Array.make auto.Nbw.num_states [] in
  List.iter
    (fun (src, guard, dst) ->
       let compiled =
         List.fold_left
           (fun acc (p, value) ->
              match acc with
              | None -> None
              | Some t ->
                (match bit_of p with
                 | Some bit ->
                   Some
                     {
                       t with
                       guard_mask = t.guard_mask lor (1 lsl bit);
                       guard_value =
                         (if value then t.guard_value lor (1 lsl bit)
                          else t.guard_value);
                     }
                 | None ->
                   (* Unknown propositions are constant false. *)
                   if value then None else Some t))
           (Some { dst; guard_mask = 0; guard_value = 0; never = false })
           guard
       in
       match compiled with
       | Some t -> by_src.(src) <- t :: by_src.(src)
       | None -> ())
    auto.Nbw.transitions;
  by_src

(* Counting functions are arrays over UCW states: -1 inactive,
   otherwise the maximal number of accepting states seen on a run
   reaching this state.  Keys for hashing are byte strings. *)
let key_of_counts counts =
  let bytes = Bytes.create (Array.length counts) in
  Array.iteri (fun i c -> Bytes.set bytes i (Char.chr (c + 1))) counts;
  Bytes.to_string bytes

type game = {
  states : (string, int) Hashtbl.t;   (* key -> id *)
  mutable count_arrays : int array array;  (* id -> counting function *)
  mutable num_states : int;
  successor : (int, int array) Hashtbl.t;
      (* id -> per-combined-letter successor id, -2 unexplored,
         -1 overflow *)
}

let successor_counts auto by_src ~bound counts letter =
  let n = Array.length counts in
  let next = Array.make n (-1) in
  let overflow = ref false in
  for q = 0 to n - 1 do
    if counts.(q) >= 0 then
      List.iter
        (fun t ->
           if (not t.never) && letter land t.guard_mask = t.guard_value then begin
             let credit = if auto.Nbw.accepting.(t.dst) then 1 else 0 in
             let value = counts.(q) + credit in
             if value > bound then overflow := true
             else if value > next.(t.dst) then next.(t.dst) <- value
           end)
        by_src.(q)
  done;
  if !overflow then None else Some next

(* Explore the full game graph reachable from the initial counting
   function, then compute the set of winning positions by a greatest
   fixpoint.  [system_moves_second] selects the quantifier order:
   true = ∀input ∃output (system synthesis), false = ∃input ∀output
   (environment synthesis for the dual game). *)
let solve_game ?budget auto by_src ~bound ~num_input_bits ~num_output_bits
    ~system_moves_second =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let num_inputs = 1 lsl num_input_bits in
  let num_outputs = 1 lsl num_output_bits in
  let num_letters = num_inputs * num_outputs in
  let combined imask omask = imask lor (omask lsl num_input_bits) in
  let game = {
    states = Hashtbl.create 1024;
    count_arrays = Array.make 64 [||];
    num_states = 0;
    successor = Hashtbl.create 1024;
  }
  in
  let intern counts =
    let key = key_of_counts counts in
    match Hashtbl.find_opt game.states key with
    | Some id -> id
    | None ->
      (* One fuel unit per game position: the counting-function space
         is the exponential blow-up this engine is prone to. *)
      tick ();
      let id = game.num_states in
      Hashtbl.add game.states key id;
      game.num_states <- id + 1;
      if id >= Array.length game.count_arrays then begin
        let fresh = Array.make (2 * Array.length game.count_arrays) [||] in
        Array.blit game.count_arrays 0 fresh 0 id;
        game.count_arrays <- fresh
      end;
      game.count_arrays.(id) <- counts;
      id
  in
  let initial_counts = Array.make auto.Nbw.num_states (-1) in
  List.iter
    (fun q ->
       initial_counts.(q) <-
         (if auto.Nbw.accepting.(q) then 1 else 0))
    auto.Nbw.initial;
  (* Clamp: if an initial state already exceeds the bound the system
     loses immediately (cannot happen with bound >= 1). *)
  let initial_id = intern initial_counts in
  (* Forward exploration. *)
  let queue = Queue.create () in
  Queue.add initial_id queue;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if not (Hashtbl.mem game.successor id) then begin
      let counts = game.count_arrays.(id) in
      let table = Array.make num_letters (-1) in
      for imask = 0 to num_inputs - 1 do
        for omask = 0 to num_outputs - 1 do
          let letter = combined imask omask in
          match successor_counts auto by_src ~bound counts letter with
          | None -> table.(letter) <- -1
          | Some next ->
            let next_id = intern next in
            table.(letter) <- next_id;
            if not (Hashtbl.mem game.successor next_id) then
              Queue.add next_id queue
        done
      done;
      Hashtbl.add game.successor id table
    end
  done;
  (* Greatest fixpoint of the safety winning region. *)
  let alive = Array.make game.num_states true in
  let stable = ref false in
  while not !stable do
    stable := true;
    tick ();
    for id = 0 to game.num_states - 1 do
      if alive.(id) then begin
        let table = Hashtbl.find game.successor id in
        let ok_for_input imask =
          let exists_output omask =
            let succ = table.(combined imask omask) in
            succ >= 0 && alive.(succ)
          in
          let rec any omask =
            omask < num_outputs && (exists_output omask || any (omask + 1))
          in
          let rec all omask =
            omask >= num_outputs
            || (exists_output omask && all (omask + 1))
          in
          if system_moves_second then any 0 else all 0
        in
        let wins =
          if system_moves_second then
            (* ∀ input ∃ output *)
            let rec all imask =
              imask >= num_inputs || (ok_for_input imask && all (imask + 1))
            in
            all 0
          else
            (* ∃ input ∀ output *)
            let rec any imask =
              imask < num_inputs && (ok_for_input imask || any (imask + 1))
            in
            any 0
        in
        if not wins then begin
          alive.(id) <- false;
          stable := false
        end
      end
    done
  done;
  if not alive.(initial_id) then None
  else Some (game, alive, initial_id, combined)

(* ---------- antichain game solving ----------

   Counting functions are ordered pointwise ([-1] inactive is bottom);
   the transition function is monotone in that order and overflow is
   upward-closed, so the system's safety winning region is downward
   closed and is represented exactly by its ⊑-maximal elements
   (Acacia-style).  Instead of enumerating every reachable counting
   function forward, the fixpoint works backward on antichains: one
   controllable-predecessor step maps the current frontier to the
   maximal positions from which the mover can stay inside it, and the
   iteration stops as soon as the initial position falls out (early
   exit) or the frontier stabilizes.  Independent requirements then
   cost a few antichain elements instead of a product state space. *)

type algorithm = Antichain | Enumerate

let default_algorithm () =
  match Sys.getenv_opt "SPECCC_EXPLICIT" with
  | Some ("full" | "enum" | "enumerate") -> Enumerate
  | Some _ | None -> Antichain

(* f ⊑ g, pointwise on counts with -1 (inactive) as bottom. *)
let dominated f g =
  let n = Array.length f in
  let rec go q = q >= n || (f.(q) <= g.(q) && go (q + 1)) in
  go 0

let insert_maximal f antichain =
  if List.exists (fun g -> dominated f g) antichain then antichain
  else f :: List.filter (fun g -> not (dominated g f)) antichain

let meet f g = Array.init (Array.length f) (fun q -> min f.(q) g.(q))

let meet_antichains a b =
  List.fold_left
    (fun acc f ->
       List.fold_left (fun acc g -> insert_maximal (meet f g) acc) acc b)
    [] a

(* Largest f with succ(f, letter) ⊑ w and no overflow:
   f(q) = min over enabled edges q→q' of w(q') − credit(q'), clamped to
   [-1, bound]; states with no enabled edge are unconstrained. *)
let pre_max auto by_src ~bound w letter =
  let n = Array.length w in
  Array.init n (fun q ->
      let c = ref bound in
      List.iter
        (fun t ->
           if (not t.never) && letter land t.guard_mask = t.guard_value
           then begin
             let credit = if auto.Nbw.accepting.(t.dst) then 1 else 0 in
             let allow = w.(t.dst) - credit in
             if allow < !c then c := allow
           end)
        by_src.(q);
      if !c < 0 then -1 else !c)

let initial_counts_of auto =
  let counts = Array.make auto.Nbw.num_states (-1) in
  List.iter
    (fun q -> counts.(q) <- (if auto.Nbw.accepting.(q) then 1 else 0))
    auto.Nbw.initial;
  counts

(* One controllable-predecessor step on antichains.
   System game (∀input ∃output): meet over inputs of the union over
   (output, frontier element) of maximal predecessors.
   Dual game (∃input ∀output): union over inputs of the meet over
   outputs of the per-output predecessor antichains. *)
let cpre_antichain tick auto by_src ~bound ~num_input_bits ~num_output_bits
    ~system_moves_second frontier =
  let num_inputs = 1 lsl num_input_bits in
  let num_outputs = 1 lsl num_output_bits in
  let combined imask omask = imask lor (omask lsl num_input_bits) in
  if system_moves_second then begin
    let per_input imask =
      let acc = ref [] in
      for omask = 0 to num_outputs - 1 do
        List.iter
          (fun w ->
             acc :=
               insert_maximal
                 (pre_max auto by_src ~bound w (combined imask omask))
                 !acc)
          frontier
      done;
      !acc
    in
    let result = ref (per_input 0) in
    for imask = 1 to num_inputs - 1 do
      tick ();
      result := meet_antichains !result (per_input imask)
    done;
    !result
  end
  else begin
    let per_input imask =
      let per_output omask =
        List.fold_left
          (fun acc w ->
             insert_maximal
               (pre_max auto by_src ~bound w (combined imask omask))
               acc)
          [] frontier
      in
      let acc = ref (per_output 0) in
      for omask = 1 to num_outputs - 1 do
        acc := meet_antichains !acc (per_output omask)
      done;
      !acc
    in
    let result = ref [] in
    for imask = 0 to num_inputs - 1 do
      tick ();
      List.iter (fun f -> result := insert_maximal f !result)
        (per_input imask)
    done;
    !result
  end

(* Greatest fixpoint on antichains.  Publishes the frontier (with the
   bound and the game side) into the budget slot every round, so a
   preempted run resumes from its last frontier instead of from top;
   warm starts are verdict-safe — a "lost" outcome under a resumed
   frontier is re-checked from top, so a stale or forged snapshot can
   cost time, never flip a verdict (winning outcomes are self-certifying:
   a converged frontier satisfies W ⊑ CPre(W), so ↓W is a winning
   invariant no matter where the iteration started). *)
let solve_game_antichain ?budget auto by_src ~bound ~num_input_bits
    ~num_output_bits ~system_moves_second =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let n = auto.Nbw.num_states in
  let initial = initial_counts_of auto in
  let top = Array.make n bound in
  let game_tag = if system_moves_second then "system" else "dual" in
  let publish frontier =
    match budget with
    | None -> ()
    | Some b ->
      Speccc_runtime.Budget.publish b
        (Speccc_runtime.Snapshot.make ~engine:"explicit"
           [
             ("bound", string_of_int bound);
             ("game", game_tag);
             ("frontier", Speccc_runtime.Snapshot.counts_to_field frontier);
           ])
  in
  let resumed =
    match budget with
    | None -> None
    | Some b ->
      (match Speccc_runtime.Budget.resume_for b ~engine:"explicit" with
       | Some snap
         when Speccc_runtime.Snapshot.int_field snap "bound" = Some bound
              && Speccc_runtime.Snapshot.field snap "game" = Some game_tag ->
         (match Speccc_runtime.Snapshot.field snap "frontier" with
          | None -> None
          | Some raw ->
            (match Speccc_runtime.Snapshot.counts_of_field raw with
             | Some (_ :: _ as frontier)
               when List.for_all
                      (fun w ->
                         Array.length w = n
                         && Array.for_all (fun c -> c >= -1 && c <= bound) w)
                      frontier ->
               Some frontier
             | Some _ | None -> None))
       | Some _ | None -> None)
  in
  let cpre frontier =
    cpre_antichain tick auto by_src ~bound ~num_input_bits ~num_output_bits
      ~system_moves_second frontier
  in
  let rec gfp warm frontier =
    tick ();
    let frontier' = meet_antichains frontier (cpre frontier) in
    if not (List.exists (dominated initial) frontier') then
      (* Early exit: the initial position fell out.  Under a warm start
         this could be an artifact of the resumed frontier, so re-check
         from the top before conceding. *)
      if warm then gfp false [ top ] else None
    else if
      List.for_all (fun f -> List.exists (dominated f) frontier') frontier
    then Some frontier'
    else begin
      publish frontier';
      gfp warm frontier'
    end
  in
  match resumed with
  | Some frontier -> gfp true frontier
  | None -> gfp false [ top ]

(* Controller extraction from a winning antichain: forward walk over
   the counting functions actually reached under the strategy "first
   output whose successor stays dominated" — the same move preference
   as the enumerative extraction, so the machines coincide. *)
let extract_controller_antichain ?budget auto by_src ~bound frontier ~inputs
    ~outputs =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let num_input_bits = List.length inputs in
  let num_inputs = 1 lsl num_input_bits in
  let num_outputs = 1 lsl List.length outputs in
  let combined imask omask = imask lor (omask lsl num_input_bits) in
  let winning f = List.exists (fun w -> dominated f w) frontier in
  let ids = Hashtbl.create 64 in
  let rows = ref [] in
  let rec intern counts =
    let key = key_of_counts counts in
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
      tick ();
      let id = Hashtbl.length ids in
      Hashtbl.add ids key id;
      let row = Array.make num_inputs (0, 0) in
      rows := row :: !rows;
      for imask = 0 to num_inputs - 1 do
        let rec first omask =
          if omask >= num_outputs then
            assert false (* dominated positions always have a move *)
          else
            match
              successor_counts auto by_src ~bound counts
                (combined imask omask)
            with
            | Some next when winning next -> (omask, next)
            | Some _ | None -> first (omask + 1)
        in
        let omask, next = first 0 in
        row.(imask) <- (omask, intern next)
      done;
      id
  in
  let initial = intern (initial_counts_of auto) in
  let step_table = Array.of_list (List.rev !rows) in
  {
    Mealy.inputs;
    outputs;
    num_states = Array.length step_table;
    initial;
    step = (fun state imask -> step_table.(state).(imask));
  }

(* Environment counterstrategy from a won dual game: first input under
   which every system answer stays dominated — again the enumerative
   extraction's preference. *)
let extract_counterstrategy_antichain ?budget auto by_src ~bound frontier
    ~inputs ~outputs =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let num_input_bits = List.length inputs in
  let num_inputs = 1 lsl num_input_bits in
  let num_outputs = 1 lsl List.length outputs in
  let combined imask omask = imask lor (omask lsl num_input_bits) in
  let winning f = List.exists (fun w -> dominated f w) frontier in
  let successors counts imask =
    let rec collect omask acc =
      if omask < 0 then Some acc
      else
        match
          successor_counts auto by_src ~bound counts (combined imask omask)
        with
        | Some next when winning next -> collect (omask - 1) (next :: acc)
        | Some _ | None -> None
    in
    collect (num_outputs - 1) []
  in
  let winning_move counts =
    let rec first imask =
      if imask >= num_inputs then assert false
      else
        match successors counts imask with
        | Some nexts -> (imask, nexts)
        | None -> first (imask + 1)
    in
    first 0
  in
  let ids = Hashtbl.create 64 in
  let moves = ref [] in
  let nexts_table = ref [] in
  let rec intern counts =
    let key = key_of_counts counts in
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
      tick ();
      let id = Hashtbl.length ids in
      Hashtbl.add ids key id;
      let imask, nexts = winning_move counts in
      moves := (id, imask) :: !moves;
      let row = Array.make num_outputs 0 in
      nexts_table := (id, row) :: !nexts_table;
      List.iteri (fun omask next -> row.(omask) <- intern next) nexts;
      id
  in
  let initial = intern (initial_counts_of auto) in
  let num_states = Hashtbl.length ids in
  let move_arr = Array.make num_states 0 in
  List.iter (fun (id, imask) -> move_arr.(id) <- imask) !moves;
  let next_arr = Array.make num_states [||] in
  List.iter (fun (id, row) -> next_arr.(id) <- row) !nexts_table;
  {
    cs_inputs = inputs;
    cs_outputs = outputs;
    cs_num_states = num_states;
    cs_initial = initial;
    cs_move = (fun state -> move_arr.(state));
    cs_next = (fun state omask -> next_arr.(state).(omask));
  }

(* Extract a Mealy controller from the winning region: in each alive
   state, for each input, pick the first output leading to an alive
   successor. *)
let extract_controller game alive initial_id combined ~inputs ~outputs =
  let num_inputs = 1 lsl List.length inputs in
  let num_outputs = 1 lsl List.length outputs in
  (* Renumber alive states reachable under the chosen strategy. *)
  let remap = Hashtbl.create 64 in
  let back = ref [] in
  let next_id = ref 0 in
  let rec visit id =
    if not (Hashtbl.mem remap id) then begin
      Hashtbl.add remap id !next_id;
      back := id :: !back;
      incr next_id;
      let table = Hashtbl.find game.successor id in
      for imask = 0 to num_inputs - 1 do
        let rec first omask =
          if omask >= num_outputs then None
          else
            let succ = table.(combined imask omask) in
            if succ >= 0 && alive.(succ) then Some succ else first (omask + 1)
        in
        match first 0 with
        | Some succ -> visit succ
        | None -> assert false  (* alive states always have a move *)
      done
    end
  in
  visit initial_id;
  let ids = Array.of_list (List.rev !back) in
  let step_table =
    Array.map
      (fun id ->
         let table = Hashtbl.find game.successor id in
         Array.init num_inputs (fun imask ->
             let rec first omask =
               if omask >= num_outputs then assert false
               else
                 let succ = table.(combined imask omask) in
                 if succ >= 0 && alive.(succ) then
                   (omask, Hashtbl.find remap succ)
                 else first (omask + 1)
             in
             first 0))
      ids
  in
  {
    Mealy.inputs;
    outputs;
    num_states = Array.length ids;
    initial = 0;
    step = (fun state imask -> step_table.(state).(imask));
  }

(* Extract the environment's Moore strategy from a won dual game: in
   every alive position there is an input valuation under which every
   system answer stays inside the (dual) winning region. *)
let extract_counterstrategy game alive initial_id combined ~inputs ~outputs =
  let num_inputs = 1 lsl List.length inputs in
  let num_outputs = 1 lsl List.length outputs in
  let winning_move id =
    let table = Hashtbl.find game.successor id in
    let all_outputs_alive imask =
      let rec all omask =
        omask >= num_outputs
        || (let succ = table.(combined imask omask) in
            succ >= 0 && alive.(succ) && all (omask + 1))
      in
      all 0
    in
    let rec first imask =
      if imask >= num_inputs then assert false
      else if all_outputs_alive imask then imask
      else first (imask + 1)
    in
    first 0
  in
  let remap = Hashtbl.create 64 in
  let order = ref [] in
  let next_id = ref 0 in
  let rec visit id =
    if not (Hashtbl.mem remap id) then begin
      Hashtbl.add remap id !next_id;
      order := id :: !order;
      incr next_id;
      let table = Hashtbl.find game.successor id in
      let imask = winning_move id in
      for omask = 0 to num_outputs - 1 do
        visit table.(combined imask omask)
      done
    end
  in
  visit initial_id;
  let ids = Array.of_list (List.rev !order) in
  let moves = Array.map winning_move ids in
  let next_table =
    Array.mapi
      (fun state id ->
         let table = Hashtbl.find game.successor id in
         Array.init num_outputs (fun omask ->
             Hashtbl.find remap table.(combined moves.(state) omask)))
      ids
  in
  {
    cs_inputs = inputs;
    cs_outputs = outputs;
    cs_num_states = Array.length ids;
    cs_initial = 0;
    cs_move = (fun state -> moves.(state));
    cs_next = (fun state omask -> next_table.(state).(omask));
  }

let refute counterstrategy machine =
  if counterstrategy.cs_inputs <> machine.Mealy.inputs
  || counterstrategy.cs_outputs <> machine.Mealy.outputs
  then invalid_arg "Bounded.refute: interface mismatch";
  let combined_letter imask omask =
    Mealy.assignment_of_mask counterstrategy.cs_inputs imask
    @ Mealy.assignment_of_mask counterstrategy.cs_outputs omask
  in
  let seen = Hashtbl.create 64 in
  let rec play cs_state mealy_state acc step_index =
    match Hashtbl.find_opt seen (cs_state, mealy_state) with
    | Some first_index ->
      let letters = List.rev acc in
      let prefix = List.filteri (fun i _ -> i < first_index) letters in
      let loop = List.filteri (fun i _ -> i >= first_index) letters in
      Speccc_logic.Trace.make ~prefix ~loop
    | None ->
      Hashtbl.add seen (cs_state, mealy_state) step_index;
      let imask = counterstrategy.cs_move cs_state in
      let omask, mealy' = machine.Mealy.step mealy_state imask in
      let cs' = counterstrategy.cs_next cs_state omask in
      play cs' mealy' (combined_letter imask omask :: acc) (step_index + 1)
  in
  play counterstrategy.cs_initial machine.Mealy.initial [] 0

let check_size ~max_letters ~inputs ~outputs =
  let bits = List.length inputs + List.length outputs in
  if bits > 24 || 1 lsl bits > max_letters then
    invalid_arg
      (Printf.sprintf
         "Bounded.solve: %d propositions exceed the explicit engine's \
          letter budget (max_letters = %d); use the symbolic engine"
         bits max_letters)

let solve ?budget ?(bound = 3) ?(max_letters = 4096) ?algorithm ~inputs
    ~outputs spec =
  Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_explicit;
  check_size ~max_letters ~inputs ~outputs;
  let algorithm =
    match algorithm with Some a -> a | None -> default_algorithm ()
  in
  let num_input_bits = List.length inputs in
  let num_output_bits = List.length outputs in
  (* System game: UCW of the negation. *)
  let ucw = Nbw.of_ltl ?budget (Ltl.neg spec) in
  let by_src = compile_automaton ucw ~inputs ~outputs in
  match algorithm with
  | Antichain -> begin
      match
        solve_game_antichain ?budget ucw by_src ~bound ~num_input_bits
          ~num_output_bits ~system_moves_second:true
      with
      | Some frontier ->
        Realizable
          (extract_controller_antichain ?budget ucw by_src ~bound frontier
             ~inputs ~outputs)
      | None ->
        let ucw_dual = Nbw.of_ltl ?budget spec in
        let by_src_dual = compile_automaton ucw_dual ~inputs ~outputs in
        (match
           solve_game_antichain ?budget ucw_dual by_src_dual ~bound
             ~num_input_bits ~num_output_bits ~system_moves_second:false
         with
         | Some frontier ->
           Unrealizable
             (extract_counterstrategy_antichain ?budget ucw_dual by_src_dual
                ~bound frontier ~inputs ~outputs)
         | None -> Unknown bound)
    end
  | Enumerate -> begin
      match
        solve_game ?budget ucw by_src ~bound ~num_input_bits ~num_output_bits
          ~system_moves_second:true
      with
      | Some (game, alive, initial_id, combined) ->
        Realizable
          (extract_controller game alive initial_id combined ~inputs ~outputs)
      | None ->
        (* Dual game: the environment tries to realize the negation; it
           moves first (Moore), i.e. picks the input before seeing the
           output.  Winning it proves unrealizability exactly. *)
        let ucw_dual = Nbw.of_ltl ?budget spec in
        let by_src_dual = compile_automaton ucw_dual ~inputs ~outputs in
        (match
           solve_game ?budget ucw_dual by_src_dual ~bound ~num_input_bits
             ~num_output_bits ~system_moves_second:false
         with
         | Some (game, alive, initial_id, combined) ->
           Unrealizable
             (extract_counterstrategy game alive initial_id combined ~inputs
                ~outputs)
         | None -> Unknown bound)
    end

(* ---------- session-incremental conjunction solving ----------

   The UCW of ¬(f1 ∧ ... ∧ fm) is the disjoint union of the per-
   conjunct automata NBW(¬fi), so the joint counting-function game
   decomposes block-wise: a counting function over the union is the
   concatenation of per-block counting functions, and a joint winning
   strategy wins every per-block "solo" game (a joint play restricted
   to block i is a valid solo play).  Hence

       W*_joint  ⊆  ⋂i lift_i(W*_i)

   where lift_i extends a block-i counting function with ⊤ (the bound)
   everywhere else.  A [session] caches, per formula id: the compiled
   block (arena fragment) and the converged solo frontier per counting
   bound — so after a one-sentence edit only the edited conjunct's
   block is re-instantiated and re-solved solo, and the joint gfp is
   seeded with the meet of the lifted solo frontiers instead of
   starting from ⊤.  Seeding is verdict- and witness-exact: every
   iterate stays ⊇ W*_joint (the seed is, and the operator is
   monotone), and a fixpoint X with X ⊑ CPre(X) is ⊆ W*_joint, so the
   iteration converges to exactly W*_joint — the same canonical
   maximal-element frontier a cold run reaches, from which the
   dominance-based extraction reads off bit-identical machines.  The
   early-exit loss is genuine under a seed (unlike under a resumed
   snapshot): the initial position fell out of an upper bound of the
   winning region.

   Solo frontiers are carried inside the session as [speccc-snap1]
   snapshot payloads (the codec the anytime machinery already uses),
   re-validated on every reuse exactly like a resumed frontier. *)

type block = {
  b_auto : Nbw.t;
  b_by_src : compiled_transition list array;
}

type session = {
  mutable io_tag : string;
      (* compiled guards and solo regions are relative to the in/out
         alphabets; a partition change invalidates everything *)
  s_blocks : (int, block) Hashtbl.t;           (* formula id -> block *)
  s_solo : (int * int, Speccc_runtime.Snapshot.t option) Hashtbl.t;
      (* (formula id, bound) -> encoded won frontier, None = solo lost *)
  mutable s_built_blocks : int;
  mutable s_reused_blocks : int;
  mutable s_solved_solo : int;
  mutable s_reused_solo : int;
}

type session_stats = {
  cached_blocks : int;
  cached_solo : int;
  built_blocks : int;
  reused_blocks : int;
  solved_solo : int;
  reused_solo : int;
}

let create_session () = {
  io_tag = "";
  s_blocks = Hashtbl.create 64;
  s_solo = Hashtbl.create 64;
  s_built_blocks = 0;
  s_reused_blocks = 0;
  s_solved_solo = 0;
  s_reused_solo = 0;
}

let session_stats s = {
  cached_blocks = Hashtbl.length s.s_blocks;
  cached_solo = Hashtbl.length s.s_solo;
  built_blocks = s.s_built_blocks;
  reused_blocks = s.s_reused_blocks;
  solved_solo = s.s_solved_solo;
  reused_solo = s.s_reused_solo;
}

let prune_session s ~retain =
  let stale_blocks =
    Hashtbl.fold
      (fun id _ acc -> if retain id then acc else id :: acc)
      s.s_blocks []
  in
  List.iter (Hashtbl.remove s.s_blocks) stale_blocks;
  let stale_solo =
    Hashtbl.fold
      (fun ((id, _) as key) _ acc -> if retain id then acc else key :: acc)
      s.s_solo []
  in
  List.iter (Hashtbl.remove s.s_solo) stale_solo

let io_tag_of ~inputs ~outputs =
  String.concat "\x1f" inputs ^ "\x1e" ^ String.concat "\x1f" outputs

let ensure_io session ~inputs ~outputs =
  let tag = io_tag_of ~inputs ~outputs in
  if session.io_tag <> tag then begin
    Hashtbl.reset session.s_blocks;
    Hashtbl.reset session.s_solo;
    session.io_tag <- tag
  end

let block_of session ?budget ~inputs ~outputs formula =
  let id = Ltl.id formula in
  match Hashtbl.find_opt session.s_blocks id with
  | Some block ->
    session.s_reused_blocks <- session.s_reused_blocks + 1;
    block
  | None ->
    let b_auto = Nbw.of_ltl ?budget (Ltl.neg formula) in
    let block = { b_auto; b_by_src = compile_automaton b_auto ~inputs ~outputs } in
    Hashtbl.add session.s_blocks id block;
    session.s_built_blocks <- session.s_built_blocks + 1;
    block

let encode_solo ~bound frontier =
  Speccc_runtime.Snapshot.make ~engine:"explicit"
    [
      ("bound", string_of_int bound);
      ("frontier", Speccc_runtime.Snapshot.counts_to_field frontier);
    ]

let decode_solo ~bound ~num_states snap =
  if Speccc_runtime.Snapshot.int_field snap "bound" <> Some bound then None
  else
    match Speccc_runtime.Snapshot.field snap "frontier" with
    | None -> None
    | Some raw ->
      (match Speccc_runtime.Snapshot.counts_of_field raw with
       | Some (_ :: _ as frontier)
         when List.for_all
                (fun w ->
                   Array.length w = num_states
                   && Array.for_all (fun c -> c >= -1 && c <= bound) w)
                frontier ->
         Some frontier
       | Some _ | None -> None)

(* Converged solo frontier of one block's system game, or [None] when
   the system cannot even win that conjunct alone (which settles the
   joint system game at this bound: a joint win restricts to a solo
   win).  Cached per (formula id, bound) through the snap1 codec; a
   payload that fails re-validation is recomputed, never trusted. *)
let solo_of session ?budget ~bound ~num_input_bits ~num_output_bits formula
    block =
  let id = Ltl.id formula in
  let solve_solo () =
    let frontier =
      solve_game_antichain ?budget block.b_auto block.b_by_src ~bound
        ~num_input_bits ~num_output_bits ~system_moves_second:true
    in
    session.s_solved_solo <- session.s_solved_solo + 1;
    Hashtbl.replace session.s_solo (id, bound)
      (Option.map (encode_solo ~bound) frontier);
    frontier
  in
  match Hashtbl.find_opt session.s_solo (id, bound) with
  | Some None ->
    session.s_reused_solo <- session.s_reused_solo + 1;
    None
  | Some (Some snap) ->
    (match decode_solo ~bound ~num_states:block.b_auto.Nbw.num_states snap with
     | Some frontier ->
       session.s_reused_solo <- session.s_reused_solo + 1;
       Some frontier
     | None -> solve_solo ())
  | None -> solve_solo ()

(* Disjoint union of the blocks, with per-block state offsets; the
   [transitions]/[atoms] fields are dead weight for the game solvers
   (they read [accepting]/[initial] plus the compiled guards), so the
   union leaves them empty. *)
let union_of_blocks blocks =
  let total = List.fold_left (fun n b -> n + b.b_auto.Nbw.num_states) 0 blocks in
  let accepting = Array.make total false in
  let by_src = Array.make total [] in
  let initial = ref [] in
  let offset = ref 0 in
  let offsets =
    List.map
      (fun b ->
         let off = !offset in
         Array.blit b.b_auto.Nbw.accepting 0 accepting off
           b.b_auto.Nbw.num_states;
         Array.iteri
           (fun src ts ->
              by_src.(off + src) <-
                List.map (fun t -> { t with dst = t.dst + off }) ts)
           b.b_by_src;
         List.iter (fun q -> initial := (q + off) :: !initial)
           b.b_auto.Nbw.initial;
         offset := off + b.b_auto.Nbw.num_states;
         off)
      blocks
  in
  let auto = {
    Nbw.num_states = total;
    initial = List.rev !initial;
    accepting;
    transitions = [];
    atoms = [];
  }
  in
  (auto, by_src, offsets)

(* The meet of the lifted solo frontiers.  Worst case the meet is the
   product of the per-block frontiers, so the accumulation is capped:
   blocks beyond the cap keep their lift at ⊤ — dropping a constraint
   only loosens the seed, which stays an upper bound of the joint
   winning region. *)
let seed_cap = 64

let seeded_frontier ~bound ~total solos_with_offsets =
  let lift off w =
    let a = Array.make total bound in
    Array.blit w 0 a off (Array.length w);
    a
  in
  List.fold_left
    (fun seed (frontier, off) ->
       let lifted = List.map (lift off) frontier in
       if List.length seed * List.length lifted > seed_cap then seed
       else meet_antichains seed lifted)
    [ Array.make total bound ]
    solos_with_offsets

(* Stock gfp, started from a frontier already known to be ⊇ the exact
   winning region (see the block-decomposition note above): losses are
   genuine without a from-top re-check, and the converged frontier is
   the same canonical one a cold from-top run reaches. *)
let solve_game_antichain_seeded ?budget auto by_src ~bound ~num_input_bits
    ~num_output_bits seed =
  let tick () =
    match budget with
    | Some budget ->
      Speccc_runtime.Budget.checkpoint budget ~stage:"explicit"
    | None -> ()
  in
  let initial = initial_counts_of auto in
  let cpre frontier =
    cpre_antichain tick auto by_src ~bound ~num_input_bits ~num_output_bits
      ~system_moves_second:true frontier
  in
  let rec gfp frontier =
    tick ();
    if not (List.exists (dominated initial) frontier) then None
    else
      let frontier' = meet_antichains frontier (cpre frontier) in
      if not (List.exists (dominated initial) frontier') then None
      else if
        List.for_all (fun f -> List.exists (dominated f) frontier') frontier
      then Some frontier'
      else gfp frontier'
  in
  gfp seed

let solve_conj ?budget ?session ?(bound = 3) ?(max_letters = 4096) ~inputs
    ~outputs formulas =
  match formulas with
  | [] | [ _ ] ->
    solve ?budget ~bound ~max_letters ~inputs ~outputs
      (Ltl.conj_list formulas)
  | _ when default_algorithm () = Enumerate ->
    (* The decomposition is antichain-native; under the enumerative
       differential-testing engine, fall through to the stock path. *)
    solve ?budget ~bound ~max_letters ~inputs ~outputs
      (Ltl.conj_list formulas)
  | _ ->
    Speccc_runtime.Fault.hit Speccc_runtime.Fault.Checkpoint.engine_explicit;
    check_size ~max_letters ~inputs ~outputs;
    let session =
      match session with Some s -> s | None -> create_session ()
    in
    ensure_io session ~inputs ~outputs;
    let num_input_bits = List.length inputs in
    let num_output_bits = List.length outputs in
    let blocks =
      List.map (block_of session ?budget ~inputs ~outputs) formulas
    in
    let auto, by_src, offsets = union_of_blocks blocks in
    let solos =
      List.map2
        (fun formula block ->
           solo_of session ?budget ~bound ~num_input_bits ~num_output_bits
             formula block)
        formulas blocks
    in
    let system_frontier =
      if List.exists Option.is_none solos then None
      else
        let solos_with_offsets =
          List.map2 (fun solo off -> (Option.get solo, off)) solos offsets
        in
        let seed =
          seeded_frontier ~bound ~total:auto.Nbw.num_states
            solos_with_offsets
        in
        solve_game_antichain_seeded ?budget auto by_src ~bound
          ~num_input_bits ~num_output_bits seed
    in
    (match system_frontier with
     | Some frontier ->
       Realizable
         (extract_controller_antichain ?budget auto by_src ~bound frontier
            ~inputs ~outputs)
     | None ->
       (* The dual game certifies unrealizability on the automaton of
          the conjunction itself, which does not decompose as a union —
          run it exactly as the stock path does. *)
       let spec = Ltl.conj_list formulas in
       let ucw_dual = Nbw.of_ltl ?budget spec in
       let by_src_dual = compile_automaton ucw_dual ~inputs ~outputs in
       (match
          solve_game_antichain ?budget ucw_dual by_src_dual ~bound
            ~num_input_bits ~num_output_bits ~system_moves_second:false
        with
        | Some frontier ->
          Unrealizable
            (extract_counterstrategy_antichain ?budget ucw_dual by_src_dual
               ~bound frontier ~inputs ~outputs)
        | None -> Unknown bound))

let solve_conj_iterative ?budget ?session ?(max_bound = 8) ?max_letters
    ~inputs ~outputs formulas =
  let rec escalate bound =
    match
      solve_conj ?budget ?session ~bound ?max_letters ~inputs ~outputs
        formulas
    with
    | (Realizable _ | Unrealizable _) as verdict -> verdict
    | Unknown _ when 2 * bound <= max_bound -> escalate (2 * bound)
    | Unknown _ -> Unknown bound
  in
  escalate 1

let solve_iterative ?budget ?(max_bound = 8) ?max_letters ?algorithm ~inputs
    ~outputs spec =
  (* Anytime resume: a snapshot records the last counting bound that
     completed with Unknown, so a preempted-then-retried search starts
     escalation above it instead of re-losing the small bounds.  The
     escalation tail (doubling, clamped at [max_bound]) is identical
     to a cold run's, so the final verdict cannot differ. *)
  let publish bound =
    match budget with
    | None -> ()
    | Some b ->
      Speccc_runtime.Budget.publish b
        (Speccc_runtime.Snapshot.make ~engine:"explicit"
           [ ("bound", string_of_int bound) ])
  in
  let start =
    match budget with
    | None -> 1
    | Some b ->
      (match Speccc_runtime.Budget.resume_for b ~engine:"explicit" with
       | Some snap ->
         (match Speccc_runtime.Snapshot.int_field snap "bound" with
          | Some k when k >= 1 ->
            (* A bare bound marks a bound that completed with Unknown —
               escalate past it.  A snapshot carrying an antichain
               frontier marks a bound that was preempted mid-fixpoint:
               restart at that bound and let the game solver warm-start
               from the frontier. *)
            if Speccc_runtime.Snapshot.field snap "frontier" <> None then
              min k max_bound
            else min (2 * k) max_bound
          | Some _ | None -> 1)
       | None -> 1)
  in
  let rec escalate bound =
    match solve ?budget ~bound ?max_letters ?algorithm ~inputs ~outputs spec with
    | Realizable _ as verdict -> verdict
    | Unrealizable _ as verdict -> verdict
    | Unknown _ when 2 * bound <= max_bound ->
      publish bound;
      escalate (2 * bound)
    | Unknown _ -> publish bound; Unknown bound
  in
  escalate (max 1 start)
