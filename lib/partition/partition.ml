open Speccc_logic

type t = {
  inputs : string list;
  outputs : string list;
}

type conflict = {
  prop : string;
  input_in : int list;
  output_in : int list;
}

type analysis = {
  partition : t;
  conflicts : conflict list;
  forced_input : string option;
}

module String_set = Set.Make (String)

(* Postcondition shared by {!of_requirements} and {!adjust}: the two
   classes must stay disjoint (synthesis treats them as disjoint
   alphabets, so an overlap would silently skew every verdict). *)
let check_disjoint where partition =
  let overlap =
    List.filter (fun p -> List.mem p partition.outputs) partition.inputs
  in
  if overlap <> [] then
    invalid_arg
      (Printf.sprintf "Partition.%s: inputs and outputs overlap on %s" where
         (String.concat ", " (List.sort_uniq compare overlap)));
  partition

(* Collect propositions by position: [Trigger] covers implication
   antecedents and Until right-hand sides (environment events),
   [Response] everything else. *)
type position = Trigger | Response

let of_formula formula =
  let triggers = ref String_set.empty in
  let responses = ref String_set.empty in
  let record position p =
    match position with
    | Trigger -> triggers := String_set.add p !triggers
    | Response -> responses := String_set.add p !responses
  in
  let rec walk position = function
    | Ltl.True | Ltl.False -> ()
    | Ltl.Prop p -> record position p
    | Ltl.Not f | Ltl.Next f | Ltl.Eventually f | Ltl.Always f ->
      walk position f
    | Ltl.And (f, g) | Ltl.Or (f, g) ->
      walk position f;
      walk position g
    | Ltl.Implies (f, g) ->
      walk Trigger f;
      walk position g
    | Ltl.Iff (f, g) ->
      (* both sides constrain each other: responses *)
      walk position f;
      walk position g
    | Ltl.Until (f, g) | Ltl.Weak_until (f, g) ->
      walk position f;
      walk Trigger g
    | Ltl.Release (f, g) ->
      walk Trigger f;
      walk position g
  in
  walk Response formula;
  (* A proposition on both sides is an output. *)
  let inputs = String_set.diff !triggers !responses in
  let outputs = String_set.union !responses
      (String_set.inter !triggers !responses)
  in
  (String_set.elements inputs, String_set.elements outputs)

let of_requirements formulas =
  let votes = Hashtbl.create 64 in
  let vote prop index kind =
    let input_votes, output_votes =
      match Hashtbl.find_opt votes prop with
      | Some entry -> entry
      | None -> ([], [])
    in
    let entry =
      match kind with
      | `Input -> (index :: input_votes, output_votes)
      | `Output -> (input_votes, index :: output_votes)
    in
    Hashtbl.replace votes prop entry
  in
  List.iteri
    (fun index formula ->
       let inputs, outputs = of_formula formula in
       List.iter (fun p -> vote p index `Input) inputs;
       List.iter (fun p -> vote p index `Output) outputs)
    formulas;
  let conflicts = ref [] in
  let inputs = ref [] in
  let outputs = ref [] in
  Hashtbl.iter
    (fun prop (input_votes, output_votes) ->
       match input_votes, output_votes with
       | _ :: _, [] -> inputs := prop :: !inputs
       | [], _ -> outputs := prop :: !outputs
       | _ :: _, _ :: _ ->
         (* conflict: output wins (paper rule) *)
         conflicts :=
           {
             prop;
             input_in = List.rev input_votes;
             output_in = List.rev output_votes;
           }
           :: !conflicts;
         outputs := prop :: !outputs)
    votes;
  let inputs = List.sort compare !inputs in
  let outputs = List.sort compare !outputs in
  let inputs, outputs, forced_input =
    match inputs, outputs with
    | [], first :: rest -> ([ first ], rest, Some first)
    | _ -> (inputs, outputs, None)
  in
  let partition = check_disjoint "of_requirements" { inputs; outputs } in
  {
    partition;
    conflicts = List.sort compare !conflicts;
    forced_input;
  }

let adjust partition ?(to_input = []) ?(to_output = []) () =
  (* A proposition named in both move lists would land in both classes
     and break the inputs ∩ outputs = ∅ invariant realizability
     assumes, so conflicting moves are rejected up front. *)
  (match List.filter (fun p -> List.mem p to_output) to_input with
   | [] -> ()
   | overlap ->
     invalid_arg
       (Printf.sprintf
          "Partition.adjust: %s moved to both inputs and outputs"
          (String.concat ", " (List.sort_uniq compare overlap))));
  let known = partition.inputs @ partition.outputs in
  let to_input = List.filter (fun p -> List.mem p known) to_input in
  let to_output = List.filter (fun p -> List.mem p known) to_output in
  let inputs =
    List.sort_uniq compare
      (List.filter (fun p -> not (List.mem p to_output)) partition.inputs
       @ to_input)
  in
  let outputs =
    List.sort_uniq compare
      (List.filter (fun p -> not (List.mem p to_input)) partition.outputs
       @ to_output)
  in
  check_disjoint "adjust" { inputs; outputs }

let pp ppf { inputs; outputs } =
  Format.fprintf ppf "@[<v>inputs (%d): %s@,outputs (%d): %s@]"
    (List.length inputs)
    (String.concat ", " inputs)
    (List.length outputs)
    (String.concat ", " outputs)
