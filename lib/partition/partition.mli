(** Heuristic partition of propositions into input and output
    variables (Sec. IV-F).

    Per requirement: propositions under the left-hand side of an
    implication, or the right-hand side of an Until/Weak-until, are
    input candidates; a proposition also appearing on the response
    side of the same requirement is demoted to output.  Requirements
    are then unified: any input/output conflict across requirements
    resolves to output; if no input remains, one output is promoted
    (the paper picks randomly — we deterministically take the first in
    alphabetical order and record that it was forced). *)

type t = {
  inputs : string list;
  outputs : string list;
}

type conflict = {
  prop : string;
  input_in : int list;   (** requirement indices voting "input" *)
  output_in : int list;  (** requirement indices voting "output" *)
}

type analysis = {
  partition : t;
  conflicts : conflict list;
  forced_input : string option;
      (** set when the no-input fallback promoted an output *)
}

val of_formula : Speccc_logic.Ltl.t -> string list * string list
(** Per-requirement [(inputs, outputs)], disjoint, sorted. *)

val of_requirements : Speccc_logic.Ltl.t list -> analysis
(** The full heuristic with unification. *)

val adjust :
  t -> ?to_input:string list -> ?to_output:string list -> unit -> t
(** Manual refinement (stage 3 of the workflow): move propositions
    between the classes.  Unknown propositions are ignored.  Raises
    [Invalid_argument] when a proposition appears in both move lists
    (it would land in both classes) or when the result — or the given
    partition — violates the inputs ∩ outputs = ∅ invariant that
    realizability assumes; {!of_requirements} asserts the same
    postcondition. *)

val pp : Format.formatter -> t -> unit
