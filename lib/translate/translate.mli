(** Translation from structured-English syntax trees to LTL
    (Sec. IV-C), with the semantic reasoning of Sec. IV-D applied to
    proposition formation.

    Template summary (matching the appendix output):
    - every sentence is wrapped in the Universality pattern [□ _];
    - condition subclauses (if / when / whenever / once / while /
      after) nest as implications, leading ones outermost;
    - an [until] subclause [B] turns the main formula [A] into
      [¬B → (A W B)] (Req-49's template);
    - a [before] subclause [B] yields [¬B W A];
    - a clause's own formula is its subject/predicate proposition,
      wrapped by [X^t] for an ["in t seconds"] constraint, [♦] for an
      [eventually]-class modifier or a bare future modality
      (will/would), and [□] for always/globally;
    - ["next"] follows the appendix convention of contributing nothing
      ([next_as_x] switches to an [X] wrapper);
    - propositions are [verb_subject] for verbal predicates and the
      {!Speccc_reasoning.Semantic.literal_for} reduction for
      adjective/adverb complements. *)

type config = {
  lexicon : Speccc_nlp.Lexicon.t;
  dictionary : Speccc_reasoning.Antonym.t;
  next_as_x : bool;              (** default [false] (appendix style) *)
  future_as_eventually : bool;   (** default [true] *)
}

val default_config : unit -> config

type requirement = {
  text : string;                 (** original sentence *)
  tree : Speccc_nlp.Syntax.sentence;
  formula : Speccc_logic.Ltl.t;
}

type result = {
  requirements : requirement list;
  analyses : Speccc_reasoning.Semantic.subject_analysis list;
      (** Algorithm 1's coloring, for reporting *)
  relations : Speccc_nlp.Dependency.relation list;
}

type parse_cache
(** Bounded per-sentence parse memo (LRU, cache name ["nlp.parse"]),
    keyed by sentence text.  Parsing is the only per-sentence stage of
    the front-end — semantic reasoning is document-global and always
    re-runs — so reusing a tree can never change a translation.  Keys
    do not include the lexicon: keep one cache per lexicon (the watch
    session owns one), never share across configs. *)

val parse_cache : unit -> parse_cache

val specification : ?parse_cache:parse_cache -> config -> string list -> result
(** Translate a list of requirement sentences.  Semantic reasoning is
    performed over the whole specification first (antonym pairs are
    discovered across requirements), then each sentence is translated.
    Raises {!Speccc_nlp.Parser.Error} on ungrammatical input.
    [parse_cache] reuses parse trees for sentences already seen by the
    cache — translations are identical with or without it. *)

val specification_recover :
  config ->
  (int * string) list ->
  result * int list * (int * Speccc_nlp.Parser.diagnostic) list
(** Error-recovering {!specification} over [(source_line, text)]
    pairs: ungrammatical sentences are dropped instead of aborting the
    whole document.  Returns the translation of the surviving
    sentences, the original 0-based indices they came from (so callers
    can map reports back to requirement identifiers), and one located
    diagnostic per rejected sentence.  Never raises on grammar
    errors. *)

val formula_of_sentence : config -> string -> Speccc_logic.Ltl.t
(** Convenience wrapper for a single sentence. *)
