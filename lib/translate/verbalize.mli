(** The inverse direction: render template-fragment LTL back into the
    structured English subset.

    Useful for reporting — localization culprits, counterstrategy
    narrations and lint findings can be phrased in the same language
    the requirements were written in.  Only the shapes the forward
    translator emits are supported:

    {v □(guard → response)         If <guard>, <response>.
       □(guard → ♦r)               When <guard>, eventually <response>.
       □(guard → X^t r)            If <guard>, <response> in t seconds.
       □ r / □ ¬r                  <response>.  (invariants)
       ♦ r                         Eventually <response>. v}

    Propositions are un-mangled with the lexicon's morphology:
    [press_start_button ↦ "the start button is pressed"],
    [pump ↦ "the pump is available"] (bare subjects read as status
    propositions), [¬pump ↦ "the pump is lost"].

    {!roundtrips} states the contract: for formulas in the fragment,
    re-translating the produced sentence yields the original formula
    (tested property). *)

type config = {
  lexicon : Speccc_nlp.Lexicon.t;
  translate : Translate.config;
}

val default_config : unit -> config

val sentence : config -> Speccc_logic.Ltl.t -> string option
(** [None] when the formula is outside the supported fragment. *)

val proposition : config -> positive:bool -> string -> string
(** English phrase for one (possibly negated) proposition. *)

val roundtrip_checked :
  config ->
  Speccc_logic.Ltl.t ->
  (Speccc_logic.Ltl.t, Speccc_runtime.Runtime.error) result
(** Verbalize the formula and run the produced sentence back through
    the forward translator, returning the re-translated formula.
    [Error (Invalid_input _)] (stage ["verbalize"]) when the formula
    is outside the fragment or re-translation does not yield exactly
    one requirement; tokenizer/parser escapes surface as typed errors
    instead of exceptions.  Never raises. *)

val roundtrips : config -> Speccc_logic.Ltl.t -> bool
(** Does [sentence] produce text that the forward pipeline translates
    back to the same formula?  ([false] also when [sentence] returns
    [None] or re-translation fails.) *)
