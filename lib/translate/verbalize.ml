open Speccc_logic
open Speccc_nlp

type config = {
  lexicon : Lexicon.t;
  translate : Translate.config;
}

let default_config () =
  let translate = Translate.default_config () in
  { lexicon = translate.Translate.lexicon; translate }

(* ---------- proposition rendering ---------- *)

(* Passive participles the suffix rules get wrong. *)
let irregular_participles = [
  ("run", "running"); ("lose", "lost"); ("leave", "left");
  ("find", "found"); ("send", "sent"); ("pay", "paid");
  ("ship", "shipped"); ("stop", "stopped"); ("plug", "plugged");
  ("drop", "dropped"); ("go", "going");
]

let participle lemma =
  match List.assoc_opt lemma irregular_participles with
  | Some p -> p
  | None ->
    let n = String.length lemma in
    if n = 0 then lemma
    else if lemma.[n - 1] = 'e' then lemma ^ "d"
    else if
      n >= 2 && lemma.[n - 1] = 'y'
      && not (List.mem lemma.[n - 2] [ 'a'; 'e'; 'i'; 'o'; 'u' ])
    then String.sub lemma 0 (n - 1) ^ "ied"
    else lemma ^ "ed"

let proposition config ~positive ap =
  let tokens = String.split_on_char '_' ap in
  let subject rest = String.concat " " rest in
  match tokens with
  | [] -> "the signal is " ^ if positive then "available" else "lost"
  | [ single ] ->
    Printf.sprintf "the %s is %s" single
      (if positive then "available" else "lost")
  | first :: rest when Lexicon.has_class config.lexicon first Lexicon.Adjective
    ->
    Printf.sprintf "the %s is %s%s" (subject rest)
      (if positive then "" else "not ")
      first
  | first :: rest when Lexicon.has_class config.lexicon first Lexicon.Verb ->
    Printf.sprintf "the %s is %s%s" (subject rest)
      (if positive then "" else "not ")
      (participle first)
  | tokens ->
    Printf.sprintf "the %s is %s" (subject tokens)
      (if positive then "available" else "lost")

(* ---------- clause and sentence rendering ---------- *)

(* Boolean bodies render as clause groups: left-associated and/or over
   literal phrases; anything else is out of fragment. *)
let rec boolean config formula =
  match formula with
  | Ltl.Prop p -> Some (proposition config ~positive:true p)
  | Ltl.Not (Ltl.Prop p) -> Some (proposition config ~positive:false p)
  | Ltl.And (g, h) ->
    (match boolean config g, boolean config h with
     | Some a, Some b -> Some (a ^ " and " ^ b)
     | _ -> None)
  | Ltl.Or (g, h) ->
    (match boolean config g, boolean config h with
     | Some a, Some b -> Some (a ^ " or " ^ b)
     | _ -> None)
  | Ltl.True | Ltl.False | Ltl.Not _ | Ltl.Implies _ | Ltl.Iff _
  | Ltl.Next _ | Ltl.Eventually _ | Ltl.Always _ | Ltl.Until _
  | Ltl.Weak_until _ | Ltl.Release _ ->
    None

let rec strip_next formula =
  match formula with
  | Ltl.Next inner ->
    let depth, core = strip_next inner in
    (depth + 1, core)
  | _ -> (0, formula)

let sentence config formula =
  (* "eventually" and "in t seconds" are clause modifiers in the
     forward direction: they scope over ONE clause, so only literal
     bodies are faithful under them. *)
  let literal_only = function
    | (Ltl.Prop _ | Ltl.Not (Ltl.Prop _)) as l -> boolean config l
    | _ -> None
  in
  let response body =
    match body with
    | Ltl.Eventually inner ->
      Option.map (fun text -> `Eventually text) (literal_only inner)
    | Ltl.Next _ ->
      let depth, core = strip_next body in
      (match literal_only core with
       | Some text -> Some (`Deadline (depth, text))
       | None -> None)
    | _ -> Option.map (fun text -> `Plain text) (boolean config body)
  in
  let render_main = function
    | `Plain text -> text
    | `Eventually text -> "eventually " ^ text
    | `Deadline (t, text) -> Printf.sprintf "%s in %d seconds" text t
  in
  match formula with
  | Ltl.Always (Ltl.Implies (guard, body)) ->
    (match boolean config guard, response body with
     | Some guard_text, Some (`Eventually _ as r) ->
       Some (Printf.sprintf "When %s, %s." guard_text (render_main r))
     | Some guard_text, Some r ->
       Some (Printf.sprintf "If %s, %s." guard_text (render_main r))
     | _ -> None)
  | Ltl.Always body ->
    (match response body with
     | Some (`Eventually text) -> Some ("Eventually " ^ text ^ ".")
     | Some r ->
       let text = render_main r in
       Some (String.capitalize_ascii text ^ ".")
     | None -> None)
  | Ltl.True | Ltl.False | Ltl.Prop _ | Ltl.Not _ | Ltl.And _ | Ltl.Or _
  | Ltl.Implies _ | Ltl.Iff _ | Ltl.Next _ | Ltl.Eventually _ | Ltl.Until _
  | Ltl.Weak_until _ | Ltl.Release _ ->
    None

let roundtrip_checked config formula =
  let module Runtime = Speccc_runtime.Runtime in
  match sentence config formula with
  | None ->
    Error
      (Runtime.invalid_input ~stage:"verbalize"
         (Printf.sprintf "formula outside the template fragment: %s"
            (Ltl_print.to_string formula)))
  | Some text ->
    (* The forward translator's tokenizer and parser both raise on
       input outside their grammar; guard confines any such escape
       (not just [Parser.Error]) to a typed value. *)
    (match
       Runtime.guard ~stage:"verbalize" (fun () ->
           Translate.specification config.translate [ text ])
     with
     | Ok { Translate.requirements = [ { Translate.formula = back; _ } ]; _ }
       ->
       Ok back
     | Ok _ ->
       Error
         (Runtime.invalid_input ~stage:"verbalize"
            (Printf.sprintf
               "re-translation of %S did not yield exactly one requirement"
               text))
     | Error error -> Error error)

let roundtrips config formula =
  match roundtrip_checked config formula with
  | Ok back -> Ltl.equal back formula
  | Error _ -> false
