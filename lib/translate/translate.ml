open Speccc_logic
open Speccc_nlp
open Speccc_reasoning

type config = {
  lexicon : Lexicon.t;
  dictionary : Antonym.t;
  next_as_x : bool;
  future_as_eventually : bool;
}

let default_config () = {
  lexicon = Lexicon.default ();
  dictionary = Antonym.default ();
  next_as_x = false;
  future_as_eventually = true;
}

type requirement = {
  text : string;
  tree : Syntax.sentence;
  formula : Ltl.t;
}

type result = {
  requirements : requirement list;
  analyses : Semantic.subject_analysis list;
  relations : Dependency.relation list;
}

(* ---------- subject keys and attribute stripping ---------- *)

(* Attributive status adjectives vanish from the subject and only
   contribute a sign ("a valid blood pressure is unavailable" ↦
   ¬blood_pressure): a word is stripped when the dictionary marks it as
   absorbing and it is not the only word of the substantive. *)
let split_substantive config words =
  match words with
  | [] | [ _ ] -> (words, [])
  | _ ->
    let attributes, core =
      List.partition
        (fun w ->
           match Antonym.lookup config.dictionary w with
           | Some { Antonym.absorb = true; _ } -> true
           | Some _ | None -> false)
        words
    in
    if core = [] then (words, []) else (core, attributes)

let subject_key config ?resolve_it words =
  let core, attributes = split_substantive config words in
  let key = Dependency.subject_key core in
  let key =
    match key, resolve_it with
    | ("it" | "they" | "them"), Some referent -> referent
    | _ -> key
  in
  (key, attributes)

(* ---------- relation extraction for Algorithm 1 ---------- *)

(* Dependents of a subject: copular complements plus attributive status
   adjectives. *)
let clause_relations config clause =
  let complement = clause.Syntax.predicate.Syntax.complement in
  List.concat_map
    (fun substantive ->
       let key, attributes = subject_key config substantive in
       let dependents =
         attributes @ (match complement with Some c -> [ c ] | None -> [])
       in
       List.map (fun d -> (key, d)) dependents)
    clause.Syntax.subject.Syntax.nouns

let group_clauses group = group.Syntax.clauses

let sentence_clauses s =
  List.concat_map (fun sub -> group_clauses sub.Syntax.body) s.Syntax.leading
  @ group_clauses s.Syntax.main
  @ List.concat_map (fun sub -> group_clauses sub.Syntax.body)
      s.Syntax.trailing

let relations_of_sentences config sentences =
  let pairs =
    List.concat_map
      (fun s -> List.concat_map (clause_relations config) (sentence_clauses s))
      sentences
  in
  let order = ref [] in
  let table = Hashtbl.create 32 in
  List.iter
    (fun (subject, dependent) ->
       match Hashtbl.find_opt table subject with
       | None ->
         order := subject :: !order;
         Hashtbl.add table subject [ dependent ]
       | Some deps ->
         if not (List.mem dependent deps) then
           Hashtbl.replace table subject (deps @ [ dependent ]))
    pairs;
  List.rev_map
    (fun subject ->
       { Dependency.subject; dependents = Hashtbl.find table subject })
    !order

(* ---------- clause translation ---------- *)

let apply_sign positive prop =
  if positive then Ltl.prop prop else Ltl.neg (Ltl.prop prop)

(* Proposition(s) for one clause; one literal per substantive, joined
   by the subject conjunction. *)
let clause_atoms config analyses ~resolve_it clause =
  let predicate = clause.Syntax.predicate in
  let literal_of_substantive substantive =
    let key, attributes = subject_key config ?resolve_it substantive in
    let attribute_sign =
      List.for_all
        (fun w -> not (Antonym.is_negative config.dictionary w))
        attributes
    in
    let base =
      match predicate.Syntax.complement with
      | Some word ->
        let literal =
          Semantic.literal_for config.dictionary analyses ~subject:key ~word
        in
        apply_sign literal.Semantic.positive literal.Semantic.prop
      | None ->
        if predicate.Syntax.verb = "be" then Ltl.prop key
        else Ltl.prop (predicate.Syntax.verb ^ "_" ^ key)
    in
    let base = if attribute_sign then base else Ltl.neg base in
    if predicate.Syntax.negated then Ltl.neg base else base
  in
  let literals =
    List.map literal_of_substantive clause.Syntax.subject.Syntax.nouns
  in
  match clause.Syntax.subject.Syntax.noun_conj with
  | Syntax.And -> Ltl.conj_list literals
  | Syntax.Or -> Ltl.disj_list literals

let is_future_modality = function
  | Some ("will" | "would") -> true
  | Some _ | None -> false

let clause_formula config analyses ~resolve_it clause =
  let base = clause_atoms config analyses ~resolve_it clause in
  match clause.Syntax.time_bound with
  | Some t -> Ltl.next_n t base
  | None ->
    (match clause.Syntax.modifier with
     | Some ("eventually" | "sometimes") -> Ltl.eventually base
     | Some ("always" | "globally") -> Ltl.always base
     | Some "next" -> if config.next_as_x then Ltl.next base else base
     | Some _ | None ->
       if config.future_as_eventually
       && is_future_modality clause.Syntax.predicate.Syntax.modality
       then Ltl.eventually base
       else base)

let group_formula config analyses ~resolve_it group =
  let rec go acc clauses conjs =
    match clauses, conjs with
    | [], _ -> acc
    | clause :: rest, conj :: conjs' ->
      let f = clause_formula config analyses ~resolve_it clause in
      let acc' =
        match conj with
        | Syntax.And -> Ltl.conj acc f
        | Syntax.Or -> Ltl.disj acc f
      in
      go acc' rest conjs'
    | clause :: rest, [] ->
      (* more clauses than conjunctions: implicit conjunction *)
      go (Ltl.conj acc (clause_formula config analyses ~resolve_it clause))
        rest []
  in
  match group.Syntax.clauses with
  | [] -> Ltl.tt
  | first :: rest ->
    go (clause_formula config analyses ~resolve_it first) rest
      group.Syntax.clause_conjs

let condition_subordinators =
  [ "if"; "when"; "whenever"; "once"; "while"; "after" ]

let sentence_formula config analyses sentence =
  (* Pronouns in subordinate clauses refer to the main clause's first
     subject. *)
  let referent =
    match sentence.Syntax.main.Syntax.clauses with
    | { Syntax.subject = { Syntax.nouns = first :: _; _ }; _ } :: _ ->
      let key, _ = subject_key config first in
      Some key
    | _ -> None
  in
  let resolve_it = referent in
  let main = group_formula config analyses ~resolve_it sentence.Syntax.main in
  (* Trailing until/before templates transform the main block. *)
  let main_block =
    List.fold_left
      (fun acc sub ->
         let body = group_formula config analyses ~resolve_it sub.Syntax.body in
         match sub.Syntax.subordinator with
         | "until" ->
           (* Req-49 template: ¬B → (A W B) *)
           Ltl.implies (Ltl.neg body) (Ltl.weak_until acc body)
         | "before" ->
           (* "A before B": no B until A *)
           Ltl.weak_until (Ltl.neg body) acc
         | _ -> acc)
      main sentence.Syntax.trailing
  in
  let conditions =
    List.filter
      (fun sub -> List.mem sub.Syntax.subordinator condition_subordinators)
      (sentence.Syntax.leading @ sentence.Syntax.trailing)
  in
  let conditioned =
    List.fold_right
      (fun sub acc ->
         let body = group_formula config analyses ~resolve_it sub.Syntax.body in
         Ltl.implies body acc)
      conditions main_block
  in
  (* leading until-subclauses: "Until B, A" = A W B *)
  let conditioned =
    List.fold_left
      (fun acc sub ->
         match sub.Syntax.subordinator with
         | "until" ->
           let body =
             group_formula config analyses ~resolve_it sub.Syntax.body
           in
           Ltl.weak_until acc body
         | _ -> acc)
      conditioned sentence.Syntax.leading
  in
  Ltl.always conditioned

let of_parsed config texts sentences =
  let relations = relations_of_sentences config sentences in
  let analyses = Semantic.analyze config.dictionary relations in
  let requirements =
    List.map2
      (fun text tree ->
         { text; tree; formula = sentence_formula config analyses tree })
      texts sentences
  in
  { requirements; analyses; relations }

(* ---------- per-sentence parse cache ----------

   Parsing is the per-sentence part of the front-end; the semantic
   analysis (antonym discovery, Algorithm 1) is document-global and is
   always re-run, so a cached parse tree can never change a
   translation — [of_parsed] over the same trees is deterministic.
   The cache is keyed by sentence text alone and therefore owned by
   the caller (one cache per lexicon/session), not shared globally:
   two lexicons could parse the same text differently. *)

module Parse_lru = Speccc_cache.Cache.Make (Speccc_cache.Cache.String_key)

type parse_cache = Syntax.sentence Parse_lru.t

let parse_cache () =
  Parse_lru.create ~name:"nlp.parse"
    ~capacity:(Speccc_cache.Cache.capacity ~name:"nlp.parse" ~default:2048)
    ()

let specification ?parse_cache:cache config texts =
  let parse text =
    match cache with
    | None -> Parser.sentence config.lexicon text
    | Some cache ->
      Parse_lru.memo cache text (fun () -> Parser.sentence config.lexicon text)
  in
  of_parsed config texts (List.map parse texts)

let specification_recover config items =
  let parsed, diagnostics =
    List.fold_left
      (fun (parsed, diags) (index, line, text) ->
         match Parser.sentence_result ~line config.lexicon text with
         | Ok tree -> ((index, text, tree) :: parsed, diags)
         | Error diag -> (parsed, (index, diag) :: diags))
      ([], [])
      (List.mapi (fun index (line, text) -> (index, line, text)) items)
  in
  let parsed = List.rev parsed and diagnostics = List.rev diagnostics in
  let texts = List.map (fun (_, text, _) -> text) parsed in
  let sentences = List.map (fun (_, _, tree) -> tree) parsed in
  let kept = List.map (fun (index, _, _) -> index) parsed in
  (of_parsed config texts sentences, kept, diagnostics)

let formula_of_sentence config text =
  match (specification config [ text ]).requirements with
  | [ { formula; _ } ] -> formula
  | _ -> assert false
