(* Memory watermarks: a Gc.alarm-based monitor with soft/hard
   thresholds over the major-heap size.

   Crossing the soft watermark runs registered shedding hooks (the
   cache layer registers its own eviction from above — lib/runtime
   cannot depend on lib/cache) so a hot process gives memory back
   before the OS takes it.  Crossing the hard watermark flips a level
   flag that the fallback ladder reads to skip memory-hungry rungs
   with a typed Degraded("memory", _) entry instead of dying to the
   OOM killer.

   Disabled by default: fuel-budget determinism tests must not depend
   on the allocator's mood.  The CLI arms it with --mem-soft/--mem-hard. *)

type level = Normal | Soft | Hard

let level_code = function Normal -> 0 | Soft -> 1 | Hard -> 2
let level_of_code = function 0 -> Normal | 1 -> Soft | _ -> Hard

let level_name = function
  | Normal -> "normal"
  | Soft -> "soft"
  | Hard -> "hard"

let state = Atomic.make 0            (* level_code of current level *)
let forced = Atomic.make (-1)        (* test override; -1 = none *)
let soft_trip_count = Atomic.make 0
let hard_trip_count = Atomic.make 0
let shed_count = Atomic.make 0

let soft_words = Atomic.make max_int
let hard_words = Atomic.make max_int

let hooks : (unit -> unit) list ref = ref []
let hooks_mutex = Mutex.create ()

let on_soft hook =
  Mutex.lock hooks_mutex;
  hooks := hook :: !hooks;
  Mutex.unlock hooks_mutex

let run_hooks () =
  Mutex.lock hooks_mutex;
  let hs = !hooks in
  Mutex.unlock hooks_mutex;
  List.iter (fun h -> try h () with _ -> ()) hs;
  Atomic.incr shed_count

let level () =
  match Atomic.get forced with
  | -1 -> level_of_code (Atomic.get state)
  | code -> level_of_code code

let force l =
  Atomic.set forced (match l with None -> -1 | Some l -> level_code l)

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

(* Called from the Gc alarm (end of each major cycle) — keep it
   allocation-light.  Level transitions are edge-triggered: hooks run
   once per upward crossing, and the level decays when the heap
   shrinks back under the watermark. *)
let observe () =
  let heap = (Gc.quick_stat ()).Gc.heap_words in
  let now =
    if heap >= Atomic.get hard_words then Hard
    else if heap >= Atomic.get soft_words then Soft
    else Normal
  in
  let before = level_of_code (Atomic.get state) in
  if now <> before then begin
    Atomic.set state (level_code now);
    match before, now with
    | (Normal | Soft), Hard ->
      Atomic.incr hard_trip_count;
      if before = Normal then Atomic.incr soft_trip_count;
      run_hooks ()
    | Normal, Soft ->
      Atomic.incr soft_trip_count;
      run_hooks ()
    | _ -> ()
  end

let alarm = ref None

let configure ?soft_mb ?hard_mb () =
  Atomic.set soft_words
    (match soft_mb with Some mb -> mb * words_per_mb | None -> max_int);
  Atomic.set hard_words
    (match hard_mb with Some mb -> mb * words_per_mb | None -> max_int);
  (match !alarm with Some _ -> () | None ->
    if soft_mb <> None || hard_mb <> None then
      alarm := Some (Gc.create_alarm observe));
  observe ()

let disable () =
  (match !alarm with
   | Some a -> Gc.delete_alarm a; alarm := None
   | None -> ());
  Atomic.set soft_words max_int;
  Atomic.set hard_words max_int;
  Atomic.set state 0;
  Atomic.set forced (-1)

type stats = {
  major_words : float;       (* cumulative words allocated on the major heap *)
  heap_words : int;          (* current major heap size *)
  compactions : int;
  watermark : level;
  soft_trips : int;
  hard_trips : int;
  sheds : int;
}

let stats () =
  let g = Gc.quick_stat () in
  {
    major_words = g.Gc.major_words;
    heap_words = g.Gc.heap_words;
    compactions = g.Gc.compactions;
    watermark = level ();
    soft_trips = Atomic.get soft_trip_count;
    hard_trips = Atomic.get hard_trip_count;
    sheds = Atomic.get shed_count;
  }
