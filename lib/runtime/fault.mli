(** Deterministic fault injection.

    Engines announce named checkpoints ({!hit}, {!corrupt}).  Normally
    a hit is a single memory read; when a plan is {!install}ed, the
    n-th hit of a named checkpoint deterministically performs its
    action — raising a typed error, delaying, or (for witness-emission
    checkpoints) corrupting the emitted artifact — so every recovery
    path of the fallback ladder {e and} every certificate-rejection
    path is exercisable from tests without pathological inputs.

    The full checkpoint vocabulary is registered in {!Checkpoint};
    tests and the CLI ([speccc --list-faults]) read it from there
    instead of hardcoding strings.

    Installation is global and {e off by default}.  The plan state is
    protected by a mutex, so checkpoints may be announced from any
    domain or thread: hit counts are exact under a parallel batch, and
    a [Delay] sleeps outside the lock so it stalls only the announcing
    domain.  [install]/[clear] swap the whole plan atomically; they are
    meant for tests and chaos drills, not for racing against each
    other. *)

type action =
  | Fail of string    (** raise [Engine_failure (checkpoint, message)] *)
  | Timeout_now       (** raise [Timeout checkpoint] *)
  | Exhaust           (** raise [Fuel_exhausted checkpoint] *)
  | Delay of float    (** sleep this many seconds, then continue *)
  | Corrupt
      (** at a {!corrupt} checkpoint: silently mangle the emitted
          witness (the site decides how); ignored by {!hit} sites *)

type trigger = {
  checkpoint : string;
  after : int;
      (** fire on the [after]-th hit (0 = first); negative = derive a
          small deterministic count from the installed seed *)
  action : action;
}

val install : ?seed:int -> trigger list -> unit
(** Replace the active plan.  [seed] (default 0) resolves negative
    [after] fields reproducibly. *)

val clear : unit -> unit
(** Disarm all triggers and reset hit counters. *)

val active : unit -> bool

val hit : string -> unit
(** Announce a checkpoint.  No-op (one read) when no plan is
    installed; otherwise counts the hit and performs a matching
    trigger's action, raising {!Runtime.Interrupt} for failing
    actions.  [Corrupt] triggers never fire at a [hit] site.  A
    trigger fires at most once. *)

val corrupt : string -> bool
(** Announce a witness-emission checkpoint.  Counts like {!hit} and
    performs raising/delaying triggers the same way; returns [true]
    exactly when an armed [Corrupt] trigger fires at this hit, in
    which case the caller must mangle the artifact it is about to
    emit.  [false] (one read) when disarmed. *)

val hits : string -> int
(** Hits recorded at a checkpoint since the last [install]/[clear]
    (0 when inactive). *)

(** The registered checkpoint vocabulary.  Announcing modules use
    these constants; tests install triggers through them; the CLI
    lists them.  Keeping the registry here (rather than spread over
    the announcing libraries) gives [--list-faults] one authoritative
    source. *)
module Checkpoint : sig
  val sat_solve : string
  val tableau_expand : string
  val bdd_fixpoint : string
  val engine_symbolic : string
  val engine_explicit : string
  val engine_sat : string
  val pipeline_lint : string

  val witness_controller : string
  (** controller emission ({!corrupt} site: output bits are flipped) *)

  val witness_counterstrategy : string
  (** counterstrategy emission ({!corrupt} site: moves are scrambled) *)

  val witness_core : string
  (** unsat-core emission ({!corrupt} site: the core is emptied) *)

  val harness_document : string
  (** announced by the batch harness before each document, {e outside}
      the per-document confinement — a raising trigger here kills the
      whole run, simulating a crash for resume drills *)

  val server_request : string
  (** announced by a serve-mode worker just before it starts a
      request, {e inside} its confinement — a [Delay] here models an
      engine stalled between budget checkpoints, the scenario the
      watchdog's hard preemption exists for *)

  val store_append : string
  (** announced by the verdict store before appending a record — a
      raising trigger models the process dying mid-write, the torn
      tail the store's open-time recovery truncates *)

  val all : (string * string) list
  (** [(name, description)] for every registered checkpoint, in a
      stable order. *)

  val mem : string -> bool
end
