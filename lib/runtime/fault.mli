(** Deterministic fault injection.

    Engines announce named checkpoints ({!hit}, {!corrupt}).  Normally
    a hit is a single memory read; when a plan is {!install}ed, the
    n-th hit of a named checkpoint deterministically performs its
    action — raising a typed error, delaying, or (for corrupt-capable
    checkpoints) corrupting the emitted artifact — so every recovery
    path of the fallback ladder {e and} every certificate-rejection
    path is exercisable from tests without pathological inputs.

    The checkpoint vocabulary is a registry ({!Checkpoint}): every
    announcing module registers its sites at init, and tests, the
    chaos explorer, and the CLI ([speccc --list-faults]) enumerate it
    from there instead of hardcoding strings.

    Installation is global and {e off by default}.  The plan state is
    protected by a mutex, so checkpoints may be announced from any
    domain or thread: hit counts are exact under a parallel batch, and
    a [Delay] sleeps outside the lock so it stalls only the announcing
    domain.  [install]/[clear] swap the whole plan atomically; they are
    meant for tests and chaos drills, not for racing against each
    other. *)

type action =
  | Fail of string    (** raise [Engine_failure (checkpoint, message)] *)
  | Timeout_now       (** raise [Timeout checkpoint] *)
  | Exhaust           (** raise [Fuel_exhausted checkpoint] *)
  | Delay of float    (** sleep this many seconds, then continue *)
  | Corrupt
      (** at a {!corrupt} checkpoint: silently mangle the emitted
          artifact (the site decides how); ignored by {!hit} sites *)

type trigger = {
  checkpoint : string;
  after : int;
      (** fire on the [after]-th hit (0 = first); negative = derive a
          small deterministic count from the installed seed *)
  action : action;
}

val install : ?seed:int -> trigger list -> unit
(** Replace the active plan.  [seed] (default 0) resolves negative
    [after] fields reproducibly. *)

val clear : unit -> unit
(** Disarm all triggers and reset hit counters. *)

val active : unit -> bool

val hit : string -> unit
(** Announce a checkpoint.  No-op (one read) when no plan is
    installed; otherwise counts the hit and performs a matching
    trigger's action, raising {!Runtime.Interrupt} for failing
    actions.  [Corrupt] triggers never fire at a [hit] site.  A
    trigger fires at most once. *)

val corrupt : string -> bool
(** Announce a corrupt-capable checkpoint.  Counts like {!hit} and
    performs raising/delaying triggers the same way; returns [true]
    exactly when an armed [Corrupt] trigger fires at this hit, in
    which case the caller must mangle the artifact it is about to
    emit.  [false] (one read) when disarmed. *)

val hits : string -> int
(** Hits recorded at a checkpoint since the last [install]/[clear]
    (0 when inactive). *)

val set_observer : (string -> unit) option -> unit
(** Install (or remove, with [None]) a process-global trace observer.
    The observer is called with the checkpoint name on {e every}
    announce — with or without an installed plan, before any trigger
    fires — so a clean run's ordered checkpoint stream can be
    recorded.  The chaos explorer uses this for its trace phase; the
    callback must be fast and must not announce checkpoints itself. *)

val in_scope : string -> (unit -> 'a) -> 'a
(** Run [f] with [name] pushed on the calling domain's checkpoint
    scope stack.  Guarded I/O paths (store append, journal line,
    socket write) wrap their syscalls in the scope of the checkpoint
    that covers them, which is what the strict-I/O lint checks. *)

val current_scope : unit -> string option
(** Innermost enclosing checkpoint scope on this domain, if any. *)

val strict_io : bool -> unit
(** Arm (or disarm) the strict-I/O lint and reset its findings.  While
    armed, {!io_event} calls with no enclosing {!in_scope} are
    recorded as violations. *)

val io_event : string -> unit
(** Announce a raw I/O operation of the given kind (["unix.write"],
    ["journal.write"], …).  A single atomic read when the lint is
    disarmed; when armed and no checkpoint scope encloses the call,
    the event is booked as unguarded. *)

val unguarded_io : unit -> (string * int) list
(** Unguarded I/O events recorded since the lint was last armed,
    sorted by kind.  Empty means every I/O path announced under an
    enclosing checkpoint. *)

(** The registered checkpoint vocabulary.  Announcing modules
    {!Checkpoint.register} their sites at module init and keep the
    returned name; tests install triggers through the constants; the
    CLI and the chaos explorer enumerate {!Checkpoint.all}. *)
module Checkpoint : sig
  val register : ?corruptible:bool -> string -> string -> string
  (** [register name desc] adds a checkpoint to the registry (idempotent
      per name) and returns [name].  [corruptible] marks sites that
      honor a [Corrupt] trigger via {!corrupt}. *)

  val all : unit -> (string * string) list
  (** [(name, description)] for every registered checkpoint, in
      registration (link) order. *)

  val mem : string -> bool

  val corruptible : string -> bool
  (** Whether the named site was registered as corrupt-capable. *)

  val sat_solve : string
  val tableau_expand : string
  val bdd_fixpoint : string
  val engine_symbolic : string
  val engine_explicit : string
  val engine_sat : string
  val pipeline_lint : string

  val witness_controller : string
  (** controller emission ({!corrupt} site: output bits are flipped) *)

  val witness_counterstrategy : string
  (** counterstrategy emission ({!corrupt} site: moves are scrambled) *)

  val witness_core : string
  (** unsat-core emission ({!corrupt} site: the core is emptied) *)

  val harness_document : string
  (** announced by the batch harness before each document, {e outside}
      the per-document confinement — a raising trigger here kills the
      whole run, simulating a crash for resume drills *)

  val server_request : string
  (** announced by a serve-mode worker just before it starts a
      request, {e inside} its confinement — a [Delay] here models an
      engine stalled between budget checkpoints, the scenario the
      watchdog's hard preemption exists for *)

  val store_append : string
  (** announced by the verdict store before appending a record — a
      raising trigger models the process dying mid-write; a [Corrupt]
      trigger leaves a torn half-frame on disk, the tail the store's
      open-time recovery truncates *)
end
