(** Deterministic fault injection.

    Engines announce named checkpoints ({!hit}).  Normally a hit is a
    single memory read; when a plan is {!install}ed, the n-th hit of a
    named checkpoint deterministically performs its action — raising a
    typed error or delaying — so every recovery path of the fallback
    ladder is exercisable from tests without pathological inputs.

    Checkpoints currently announced by the pipeline:
    ["engine.symbolic"], ["engine.explicit"], ["engine.sat"],
    ["pipeline.lint"], ["sat.solve"], ["tableau.expand"],
    ["bdd.fixpoint"].

    Installation is global and {e off by default}; [install]/[clear]
    are meant for tests and chaos drills, not concurrent use. *)

type action =
  | Fail of string    (** raise [Engine_failure (checkpoint, message)] *)
  | Timeout_now       (** raise [Timeout checkpoint] *)
  | Exhaust           (** raise [Fuel_exhausted checkpoint] *)
  | Delay of float    (** sleep this many seconds, then continue *)

type trigger = {
  checkpoint : string;
  after : int;
      (** fire on the [after]-th hit (0 = first); negative = derive a
          small deterministic count from the installed seed *)
  action : action;
}

val install : ?seed:int -> trigger list -> unit
(** Replace the active plan.  [seed] (default 0) resolves negative
    [after] fields reproducibly. *)

val clear : unit -> unit
(** Disarm all triggers and reset hit counters. *)

val active : unit -> bool

val hit : string -> unit
(** Announce a checkpoint.  No-op (one read) when no plan is
    installed; otherwise counts the hit and performs a matching
    trigger's action, raising {!Runtime.Interrupt} for failing
    actions.  A trigger fires at most once. *)

val hits : string -> int
(** Hits recorded at a checkpoint since the last [install]/[clear]
    (0 when inactive). *)
