(** Deterministic resource budgets.

    A budget combines a {e fuel} counter (abstract engine steps:
    SAT decisions and conflicts, BDD node constructions, tableau node
    expansions, game positions) with an optional wall-clock deadline
    and an optional {!Cancellation.token}.  Fuel makes termination
    deterministic and test-reproducible; the deadline and the token
    are polled only every few steps so the hot-loop cost stays one
    integer decrement and compare.

    {!checkpoint} is the single primitive engines call from their hot
    loops.  It raises {!Runtime.Interrupt} — callers confine it with
    {!Runtime.guard} at the engine boundary. *)

type t

val max_poll_interval : int
(** Hard upper bound (1024) on the number of steps between two
    deadline/cancellation polls, whatever [poll_every] was requested.
    This bounds cancellation latency in steps. *)

val create :
  ?fuel:int ->
  ?deadline_in:float ->
  ?cancel:Cancellation.token ->
  ?poll_every:int ->
  ?snapshot:Snapshot.slot ->
  unit ->
  t
(** [create ?fuel ?deadline_in ?cancel ()].  [fuel] is the number of
    steps allowed (omitted = unlimited); [deadline_in] is seconds from
    now (omitted = none); [poll_every] (default 256, clamped to
    [1..max_poll_interval]) is the polling period for the deadline and
    the token; [snapshot] is an optional anytime-progress slot shared
    with the supervisor (see {!Snapshot}). *)

val unlimited : unit -> t
(** No fuel limit, no deadline, no token.  [checkpoint] still counts
    steps (for diagnostics) but never raises. *)

val spent : t -> int
(** Steps consumed so far (including those charged by children via
    {!absorb}). *)

val remaining : t -> int option
(** Fuel left; [None] when unlimited. *)

val exhausted : t -> bool

val checkpoint : t -> stage:string -> unit
(** Spend one step.  Raises [Runtime.Interrupt (Fuel_exhausted stage)]
    when the fuel is gone, and — on poll steps —
    [Runtime.Interrupt (Timeout stage)] past the deadline or
    [Runtime.Interrupt (Cancelled stage)] on a triggered token. *)

val check : t -> stage:string -> (unit, Runtime.error) result
(** Non-raising {!checkpoint}, and it always polls. *)

val child : t -> fuel:int -> t
(** A sub-budget for one rung of a fallback ladder: its own fuel pool
    ([min fuel (remaining parent)] when the parent is finite), sharing
    the parent's deadline and cancellation token.  Charge the spend
    back with {!absorb}. *)

val absorb : t -> t -> unit
(** [absorb parent c] debits [spent c] from [parent]'s fuel (saturating
    at zero) and adds it to [spent parent].  Call once per child. *)

val slot : t -> Snapshot.slot option
(** The anytime-progress slot, if one was attached.  Children share
    their parent's slot. *)

val publish : t -> Snapshot.t -> unit
(** Publish a progress frontier to the attached slot; no-op without
    one.  Engines call this at completed escalation steps so a
    preempting supervisor sees the newest resumable state. *)

val resume_for : t -> engine:string -> Snapshot.t option
(** The armed resume snapshot for [engine], if the slot holds one.
    Engines call this once at start-up to skip already-completed
    escalation work. *)
