(** Memory watermarks: graceful degradation under heap pressure.

    A [Gc.alarm]-based monitor compares the major-heap size against
    two thresholds at the end of every major collection.  Crossing the
    {e soft} watermark runs registered shedding hooks (caches register
    their own eviction from above) so memory comes back before the OS
    takes it; crossing the {e hard} watermark flips the level to
    [Hard], which the fallback ladder reads to skip memory-hungry
    rungs with a typed [Degraded("memory", _)] entry.

    Disabled by default — fuel-determinism tests must not depend on
    allocator behaviour.  Armed via [--mem-soft]/[--mem-hard]. *)

type level = Normal | Soft | Hard

val level_name : level -> string

val configure : ?soft_mb:int -> ?hard_mb:int -> unit -> unit
(** Install (or retune) the watermarks, in megabytes of major heap.
    An omitted threshold never trips.  Installs the Gc alarm on first
    call with any threshold present, and takes one immediate
    observation. *)

val disable : unit -> unit
(** Remove the alarm and reset level and thresholds (counters are
    kept). *)

val level : unit -> level
(** Current pressure level (the forced override, when set). *)

val force : level option -> unit
(** Test hook: pin the observed level regardless of actual heap size
    ([None] restores real observation). *)

val on_soft : (unit -> unit) -> unit
(** Register a shedding hook, run once per upward watermark crossing.
    Hook exceptions are swallowed. *)

val observe : unit -> unit
(** Take one observation now (also runs from the Gc alarm). *)

type stats = {
  major_words : float;
  heap_words : int;
  compactions : int;
  watermark : level;
  soft_trips : int;
  hard_trips : int;
  sheds : int;
}

val stats : unit -> stats
(** Gc counters + watermark state, for [--stats] and server
    [health]. *)
