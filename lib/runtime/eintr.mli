(** EINTR-retrying wrappers for the raw syscalls on the serving and
    persistence paths.  A signal landing mid-call (watchdog timers,
    chaos drills, job control) restarts the call instead of surfacing
    [Unix_error (EINTR, _, _)] as a spurious failure.

    The write-side helpers announce {!Fault.io_event} ["unix.write"]
    before each attempt, so when the strict-I/O lint is armed every
    socket/log write is checked for an enclosing checkpoint scope. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
val write : Unix.file_descr -> bytes -> int -> int -> int
val write_substring : Unix.file_descr -> string -> int -> int -> int
val accept : ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr

val write_all : Unix.file_descr -> bytes -> unit
(** Write the whole buffer, retrying on EINTR and short writes;
    raises [Sys_error] if the descriptor stops accepting bytes. *)

val write_string_all : Unix.file_descr -> string -> unit
