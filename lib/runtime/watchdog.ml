(* Wall-clock supervision for jobs whose cooperative budget may never
   fire: a dedicated systhread polls every [poll_interval] seconds and
   pushes each registered job through a two-stage escalation —

     trip      (deadline passed)        cancel the job's token; a
                                        cooperative engine dies at its
                                        next budget poll;
     escalate  (deadline + grace)       the engine did not die: it is
                                        stuck between checkpoints.
                                        Run [on_escalate] so the owner
                                        can answer on the job's behalf
                                        and replace the worker.

   Stages fire at most once per job.  Callbacks run on the watchdog
   thread with no lock held, so they may take locks of their own,
   write responses, or spawn replacement domains. *)

type job = {
  token : Cancellation.token;
  trip_at : float;
  escalate_at : float;
  on_escalate : unit -> unit;
  mutable tripped : bool;
  mutable escalated : bool;
  mutable completed : bool;
}

type status = [ `Ok | `Tripped | `Escalated ]

type t = {
  lock : Mutex.t;
  mutable jobs : job list;
  mutable stopped : bool;
  poll_interval : float;
  mutable thread : Thread.t option;
  trips : int Atomic.t;
  escalations : int Atomic.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* One sweep: advance stages under the lock, collect due callbacks,
   run them unlocked. *)
let sweep t =
  let now = Unix.gettimeofday () in
  let due =
    locked t (fun () ->
        t.jobs <- List.filter (fun j -> not j.completed) t.jobs;
        List.filter_map
          (fun j ->
             if j.completed then None
             else begin
               if (not j.tripped) && now >= j.trip_at then begin
                 j.tripped <- true;
                 Atomic.incr t.trips;
                 Cancellation.cancel ~reason:"watchdog" j.token
               end;
               if (not j.escalated) && now >= j.escalate_at then begin
                 j.escalated <- true;
                 Atomic.incr t.escalations;
                 Some j.on_escalate
               end
               else None
             end)
          t.jobs)
  in
  List.iter (fun f -> f ()) due

let rec loop t =
  let stop = locked t (fun () -> t.stopped) in
  if not stop then begin
    sweep t;
    Thread.delay t.poll_interval;
    loop t
  end

let create ?(poll_interval = 0.01) () =
  let t =
    {
      lock = Mutex.create ();
      jobs = [];
      stopped = false;
      poll_interval = Float.max 0.001 poll_interval;
      thread = None;
      trips = Atomic.make 0;
      escalations = Atomic.make 0;
    }
  in
  t.thread <- Some (Thread.create loop t);
  t

let watch t ~deadline ~grace ~cancel ~on_escalate =
  let now = Unix.gettimeofday () in
  let job =
    {
      token = cancel;
      trip_at = now +. Float.max 0. deadline;
      escalate_at = now +. Float.max 0. deadline +. Float.max 0. grace;
      on_escalate;
      tripped = false;
      escalated = false;
      completed = false;
    }
  in
  locked t (fun () -> t.jobs <- job :: t.jobs);
  job

let complete t job =
  locked t (fun () ->
      job.completed <- true;
      if job.escalated then `Escalated
      else if job.tripped then `Tripped
      else `Ok)

let trips t = Atomic.get t.trips
let escalations t = Atomic.get t.escalations

let stop t =
  locked t (fun () -> t.stopped <- true);
  Option.iter Thread.join t.thread;
  t.thread <- None
