type t = {
  mutable fuel : int;          (* steps remaining; ignored if infinite *)
  infinite : bool;
  deadline : float option;     (* absolute Unix time *)
  cancel : Cancellation.token option;
  poll_every : int;
  mutable until_poll : int;
  mutable steps : int;
  snapshot : Snapshot.slot option;  (* anytime-progress rendezvous *)
}

let max_poll_interval = 1024

let create ?fuel ?deadline_in ?cancel ?(poll_every = 256) ?snapshot () =
  let poll_every = max 1 (min poll_every max_poll_interval) in
  {
    fuel = (match fuel with Some f -> max 0 f | None -> 0);
    infinite = fuel = None;
    deadline =
      Option.map (fun seconds -> Unix.gettimeofday () +. seconds) deadline_in;
    cancel;
    poll_every;
    until_poll = poll_every;
    steps = 0;
    snapshot;
  }

let unlimited () = create ()

let spent budget = budget.steps
let remaining budget = if budget.infinite then None else Some budget.fuel
let exhausted budget = (not budget.infinite) && budget.fuel <= 0

let poll budget ~stage =
  budget.until_poll <- budget.poll_every;
  (match budget.cancel with
   | Some token when Cancellation.is_cancelled token ->
     raise (Runtime.Interrupt (Runtime.Cancelled stage))
   | Some _ | None -> ());
  match budget.deadline with
  | Some deadline when Unix.gettimeofday () > deadline ->
    raise (Runtime.Interrupt (Runtime.Timeout stage))
  | Some _ | None -> ()

let checkpoint budget ~stage =
  budget.steps <- budget.steps + 1;
  if not budget.infinite then begin
    budget.fuel <- budget.fuel - 1;
    if budget.fuel < 0 then begin
      budget.fuel <- 0;
      raise (Runtime.Interrupt (Runtime.Fuel_exhausted stage))
    end
  end;
  budget.until_poll <- budget.until_poll - 1;
  if budget.until_poll <= 0 then poll budget ~stage

let check budget ~stage =
  Runtime.guard ~stage (fun () ->
      if exhausted budget then
        raise (Runtime.Interrupt (Runtime.Fuel_exhausted stage));
      poll budget ~stage)

let child parent ~fuel =
  let fuel =
    if parent.infinite then fuel
    else min fuel parent.fuel
  in
  {
    fuel = max 0 fuel;
    infinite = false;
    deadline = parent.deadline;
    cancel = parent.cancel;
    poll_every = parent.poll_every;
    until_poll = parent.poll_every;
    steps = 0;
    snapshot = parent.snapshot;
  }

let slot budget = budget.snapshot

let publish budget snap =
  match budget.snapshot with
  | None -> ()
  | Some slot -> Snapshot.publish slot snap

let resume_for budget ~engine =
  match budget.snapshot with
  | None -> None
  | Some slot -> Snapshot.resume_for slot ~engine

let absorb parent c =
  parent.steps <- parent.steps + c.steps;
  if not parent.infinite then parent.fuel <- max 0 (parent.fuel - c.steps)
