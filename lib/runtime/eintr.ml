(* EINTR-retrying syscall wrappers.  Chaos delay injection (and the
   watchdog's signal use) makes spurious EINTR wakeups likely; without
   these a signal landing mid-write surfaces as a spurious worker
   failure.  Write-side helpers also announce [Fault.io_event] so the
   strict-I/O lint can check every write runs under an enclosing
   checkpoint scope. *)

let rec read fd buf pos len =
  try Unix.read fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf pos len

let rec write fd buf pos len =
  Fault.io_event "unix.write";
  try Unix.write fd buf pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write fd buf pos len

let rec write_substring fd s pos len =
  Fault.io_event "unix.write";
  try Unix.write_substring fd s pos len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_substring fd s pos len

let rec accept ?cloexec fd =
  try Unix.accept ?cloexec fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> accept ?cloexec fd

let write_all fd bytes =
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    let n = write fd bytes !written (len - !written) in
    if n <= 0 then raise (Sys_error "short write");
    written := !written + n
  done

let write_string_all fd s =
  let len = String.length s in
  let written = ref 0 in
  while !written < len do
    let n = write_substring fd s !written (len - !written) in
    if n <= 0 then raise (Sys_error "short write");
    written := !written + n
  done
