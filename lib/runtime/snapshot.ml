(* Serializable progress frontiers ("anytime snapshots").

   A snapshot is a tiny engine-tagged key/value record describing how
   far a long-running search got: the explicit game's bound, the
   symbolic fixpoint's layer, the SAT search's machine size, the
   localizer's decided subsets.  Engines publish one at every completed
   escalation step; supervisors (harness retries, the server watchdog,
   the shard router) carry the last published snapshot across a
   preemption so the next attempt resumes instead of cold-starting.

   The string codec is a single line guarded by a checksum: a corrupt
   or truncated snapshot decodes to [None] and the consumer falls back
   to a cold start — never to wrong state. *)

type t = {
  engine : string;               (* "explicit" | "symbolic" | "sat" | "localize" *)
  fields : (string * string) list;
}

let make ~engine fields = { engine; fields }

let engine t = t.engine
let fields t = t.fields

let field t name = List.assoc_opt name t.fields

let int_field t name =
  match field t name with
  | None -> None
  | Some v -> int_of_string_opt v

let with_field t name value =
  { t with fields = (name, value) :: List.remove_assoc name t.fields }

(* ---------- codec ---------- *)

let magic = "speccc-snap1"

(* FNV-1a 64-bit over the payload; corruption detection only, not
   cryptographic. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
              0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let needs_escape c =
  match c with
  | '%' | ';' | '=' | '|' -> true
  | c -> Char.code c < 0x20 || Char.code c >= 0x7f

let enc s =
  if String.for_all (fun c -> not (needs_escape c)) s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         if needs_escape c then Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
         else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let dec s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i ok =
    if i >= n then ok
    else if s.[i] = '%' then begin
      if i + 2 < n then
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char b (Char.chr (code land 0xff)); go (i + 3) ok
        | None -> go (i + 1) false
      else false
    end
    else begin Buffer.add_char b s.[i]; go (i + 1) ok end
  in
  if go 0 true then Some (Buffer.contents b) else None

let payload t =
  enc t.engine ^ ";"
  ^ String.concat ";"
      (List.map (fun (k, v) -> enc k ^ "=" ^ enc v) t.fields)

let to_string t =
  let body = payload t in
  magic ^ "|" ^ checksum body ^ "|" ^ body

let of_string line =
  match String.split_on_char '|' line with
  | [ m; sum; body ] when m = magic && sum = checksum body ->
    (match String.split_on_char ';' body with
     | engine :: rest ->
       (match dec engine with
        | None -> None
        | Some engine ->
          let rec decode_fields acc = function
            | [] -> Some (List.rev acc)
            | "" :: rest -> decode_fields acc rest
            | kv :: rest ->
              (match String.index_opt kv '=' with
               | None -> None
               | Some i ->
                 let k = String.sub kv 0 i in
                 let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                 (match dec k, dec v with
                  | Some k, Some v -> decode_fields ((k, v) :: acc) rest
                  | _ -> None))
          in
          (match decode_fields [] rest with
           | Some fields -> Some { engine; fields }
           | None -> None))
     | [] -> None)
  | _ -> None

(* ---------- antichain field codec ----------

   The explicit engine's antichain frontiers are lists of counting
   functions (int arrays, -1 for inactive).  They ride inside an
   ordinary snapshot field, so the line format and its version tag are
   unchanged: arrays are joined with ':', elements with ',' — both
   characters pass the escaper untouched.  Decoding is strict; any
   malformed element rejects the whole field and the consumer cold
   starts. *)

let counts_to_field antichain =
  String.concat ":"
    (List.map
       (fun counts ->
          String.concat ","
            (Array.to_list (Array.map string_of_int counts)))
       antichain)

let counts_of_field s =
  if s = "" then Some []
  else
    let parse_counts part =
      let cells = String.split_on_char ',' part in
      let parsed = List.map int_of_string_opt cells in
      if List.for_all Option.is_some parsed then
        Some (Array.of_list (List.map Option.get parsed))
      else None
    in
    let parts = List.map parse_counts (String.split_on_char ':' s) in
    if List.for_all Option.is_some parts then
      Some (List.map Option.get parts)
    else None

(* ---------- slots ---------- *)

(* A slot is the rendezvous between the engine (publishing progress
   from its own domain) and a supervisor (reading it from the watchdog
   thread after a preemption).  Atomics keep cross-domain reads sound;
   the values themselves are immutable. *)

type slot = {
  latest : t option Atomic.t;    (* most recent frontier published *)
  resume : t option Atomic.t;    (* frontier the next attempt starts from *)
  published : int Atomic.t;
  resumed : int Atomic.t;
}

let slot () =
  { latest = Atomic.make None;
    resume = Atomic.make None;
    published = Atomic.make 0;
    resumed = Atomic.make 0 }

let publish slot t =
  Atomic.set slot.latest (Some t);
  Atomic.incr slot.published

let latest slot = Atomic.get slot.latest

let set_resume slot t = Atomic.set slot.resume t

(* Arm the next attempt with whatever the previous one last published. *)
let rearm slot =
  match Atomic.get slot.latest with
  | None -> ()
  | Some _ as s -> Atomic.set slot.resume s

let resume_for slot ~engine =
  match Atomic.get slot.resume with
  | Some t when t.engine = engine ->
    Atomic.incr slot.resumed;
    Some t
  | Some _ | None -> None

let published_count slot = Atomic.get slot.published
let resumed_count slot = Atomic.get slot.resumed

let clear slot =
  Atomic.set slot.latest None;
  Atomic.set slot.resume None
