(** Structured error taxonomy for resource-governed execution.

    Every worst-case-exponential engine in the pipeline (tableau,
    counting-function games, CDCL, BDD fixpoints) can exhaust a
    resource or fail outright; this module gives those outcomes one
    typed vocabulary so callers can distinguish {e inconsistent},
    {e consistent} and {e unknown-with-diagnostics} instead of
    catching ad-hoc [Failure _] strings.

    The conventions:
    - engines raise {!Interrupt} internally (cheap to throw out of a
      deep recursion) and convert it to [Error] at their boundary via
      {!guard};
    - [Error] values never escape as exceptions past a {!guard}. *)

type error =
  | Timeout of string
      (** wall-clock deadline passed while running the named stage *)
  | Fuel_exhausted of string
      (** step budget ran out in the named stage *)
  | Cancelled of string
      (** the {!Cancellation.token} was triggered *)
  | Engine_failure of string * string
      (** stage * human-readable cause: the engine cannot handle the
          instance (alphabet too large, formula outside its fragment,
          an injected fault, an unexpected exception) *)
  | Invalid_input of { stage : string; message : string; line : int option }
      (** malformed user input, with a 1-based source line when the
          input is textual *)
  | Degraded of string * error
      (** the named stage fell back to a weaker engine; the payload is
          the error that forced the degradation *)

exception Interrupt of error
(** Raised by {!Budget.checkpoint} and {!Fault.hit}; confined by
    {!guard}. *)

val stage_of : error -> string
(** The stage the error originated in (outermost for [Degraded]). *)

val is_resource : error -> bool
(** [true] for [Timeout], [Fuel_exhausted] and [Cancelled] (including
    under [Degraded]): retrying with a larger budget could succeed. *)

val invalid_input : stage:string -> ?line:int -> string -> error

val to_string : error -> string
val pp : Format.formatter -> error -> unit

val guard : stage:string -> (unit -> 'a) -> ('a, error) result
(** [guard ~stage f] confines every escape of [f]: {!Interrupt} maps
    to its payload, and any other exception (except [Out_of_memory],
    [Stack_overflow] and asynchronous exits, which are re-raised) maps
    to [Engine_failure (stage, Printexc.to_string exn)]. *)
