type token = { mutable cancelled : bool }

let create () = { cancelled = false }
let cancel token = token.cancelled <- true
let is_cancelled token = token.cancelled
