(* The flag is atomic so a token may be tripped from another domain or
   systhread (the server watchdog does exactly that) and observed at
   the next budget poll without a data race.  The reason is written
   before the flag is set, so any poller that sees [cancelled = true]
   also sees the reason. *)
type token = {
  cancelled : bool Atomic.t;
  reason : string option Atomic.t;
}

let create () = { cancelled = Atomic.make false; reason = Atomic.make None }

let cancel ?reason token =
  (match reason with
   | Some _ -> Atomic.set token.reason reason
   | None -> ());
  Atomic.set token.cancelled true

let is_cancelled token = Atomic.get token.cancelled
let reason token = Atomic.get token.reason
