(** Serializable progress frontiers for anytime verdicts.

    A snapshot records how far a long-running engine search got — the
    explicit game's escalation bound, the symbolic fixpoint's layer,
    the SAT search's machine size, the localizer's decided subsets —
    as an engine-tagged key/value record with a checksummed
    single-line string codec.  Supervisors carry the last published
    snapshot across a preemption (watchdog trip, harness retry, worker
    respawn) so the next attempt resumes instead of cold-starting.

    Corruption tolerance is structural: {!of_string} returns [None]
    for any damaged line, and a consumer that gets [None] simply cold
    starts.  A snapshot can only skip work that was already completed
    and re-derivable — verdicts still flow through the engines and the
    certificate gate, so a stale or forged snapshot can cost time, not
    soundness. *)

type t

val make : engine:string -> (string * string) list -> t
(** [make ~engine fields].  [engine] is the producing rung
    ("explicit", "symbolic", "sat", "localize"). *)

val engine : t -> string
val fields : t -> (string * string) list
val field : t -> string -> string option
val int_field : t -> string -> int option
val with_field : t -> string -> string -> t
(** Functional field update (replaces an existing binding). *)

val to_string : t -> string
(** One-line codec: magic, checksum, percent-escaped payload.  Safe to
    embed in JSONL strings and store records. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on any corruption (bad magic,
    checksum mismatch, malformed escape or field). *)

(** {2 Antichain frontiers}

    The explicit engine's resumable frontier is an antichain of
    counting functions.  These helpers pack one into a single field
    value (and back), so it travels inside the existing line codec —
    same magic, same checksum, no version bump. *)

val counts_to_field : int array list -> string

val counts_of_field : string -> int array list option
(** Strict inverse of {!counts_to_field}; [None] on any malformed
    element.  Shape validation (array lengths, value ranges) is the
    consumer's job. *)

(** {2 Slots}

    A slot is the rendezvous between an engine publishing progress
    from its own domain and a supervisor reading it from another
    thread after a preemption.  [latest] is what the current attempt
    has reached; [resume] is what the next attempt starts from. *)

type slot

val slot : unit -> slot

val publish : slot -> t -> unit
(** Record the current attempt's newest frontier. *)

val latest : slot -> t option

val rearm : slot -> unit
(** Copy [latest] into [resume]: arm the next attempt with whatever
    the previous one last published.  No-op when nothing was
    published. *)

val set_resume : slot -> t option -> unit
(** Install an externally persisted snapshot (e.g. replayed from the
    verdict store) as the resume point. *)

val resume_for : slot -> engine:string -> t option
(** The armed resume snapshot, if it belongs to [engine]; counts a
    resume when it matches. *)

val published_count : slot -> int
val resumed_count : slot -> int

val clear : slot -> unit
