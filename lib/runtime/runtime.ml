type error =
  | Timeout of string
  | Fuel_exhausted of string
  | Cancelled of string
  | Engine_failure of string * string
  | Invalid_input of { stage : string; message : string; line : int option }
  | Degraded of string * error

exception Interrupt of error

let stage_of = function
  | Timeout stage
  | Fuel_exhausted stage
  | Cancelled stage
  | Engine_failure (stage, _)
  | Invalid_input { stage; _ }
  | Degraded (stage, _) ->
    stage

let rec is_resource = function
  | Timeout _ | Fuel_exhausted _ | Cancelled _ -> true
  | Engine_failure _ | Invalid_input _ -> false
  | Degraded (_, cause) -> is_resource cause

let invalid_input ~stage ?line message = Invalid_input { stage; message; line }

let rec to_string = function
  | Timeout stage -> Printf.sprintf "%s: wall-clock deadline exceeded" stage
  | Fuel_exhausted stage -> Printf.sprintf "%s: step budget exhausted" stage
  | Cancelled stage -> Printf.sprintf "%s: cancelled" stage
  | Engine_failure (stage, cause) -> Printf.sprintf "%s: %s" stage cause
  | Invalid_input { stage; message; line } ->
    (match line with
     | Some line -> Printf.sprintf "%s: line %d: %s" stage line message
     | None -> Printf.sprintf "%s: %s" stage message)
  | Degraded (stage, cause) ->
    Printf.sprintf "%s: degraded (%s)" stage (to_string cause)

let pp ppf error = Format.pp_print_string ppf (to_string error)

let guard ~stage f =
  match f () with
  | value -> Ok value
  | exception Interrupt error -> Error error
  | exception ((Out_of_memory | Stack_overflow) as exn) -> raise exn
  | exception exn -> Error (Engine_failure (stage, Printexc.to_string exn))
