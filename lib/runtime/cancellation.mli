(** Cooperative cancellation.

    A token is a cheap shared flag: the owner calls {!cancel} (from a
    signal handler, another thread or domain, or a supervising loop)
    and every engine polling the token through {!Budget.checkpoint}
    aborts with [Runtime.Cancelled] at its next poll.  Polls happen at
    least every {!Budget.max_poll_interval} budget steps, so
    responsiveness is bounded.

    The flag is atomic: tripping a token from another domain (the
    server's watchdog does) is race-free, and a poller that observes
    the trip also observes the {!reason} written with it. *)

type token

val create : unit -> token
(** A fresh, un-cancelled token. *)

val cancel : ?reason:string -> token -> unit
(** Idempotent.  An optional [reason] (e.g. ["watchdog"]) records who
    tripped the token; the flag itself is one-way. *)

val is_cancelled : token -> bool

val reason : token -> string option
(** Why the token was tripped, when the canceller said. *)
