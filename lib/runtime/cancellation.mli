(** Cooperative cancellation.

    A token is a cheap shared flag: the owner calls {!cancel} (from a
    signal handler, another thread, or a supervising loop) and every
    engine polling the token through {!Budget.checkpoint} aborts with
    [Runtime.Cancelled] at its next poll.  Polls happen at least every
    {!Budget.max_poll_interval} budget steps, so responsiveness is
    bounded. *)

type token

val create : unit -> token
(** A fresh, un-cancelled token. *)

val cancel : token -> unit
(** Idempotent. *)

val is_cancelled : token -> bool
