(** Wall-clock watchdog: guaranteed preemption on top of cooperative
    cancellation.

    {!Budget.checkpoint} only fires if the engine reaches a
    checkpoint; a worker stuck in a non-instrumented loop (or a
    pathological instance between checkpoints) never does.  A watchdog
    pushes every registered job through a two-stage escalation on a
    dedicated polling thread:

    + at [deadline]: the job's cancellation token is tripped (reason
      ["watchdog"]) — a cooperative engine aborts with
      [Runtime.Cancelled] at its next poll;
    + at [deadline + grace]: the engine still has not stopped, so it
      is presumed stuck; [on_escalate] runs on the watchdog thread so
      the owner can answer the request on the worker's behalf and
      tear the worker down / replace it.

    Each stage fires at most once.  {!complete} reports which stage
    (if any) had fired, so the owner can tell a clean result from one
    that raced the watchdog. *)

type t
type job

type status = [ `Ok | `Tripped | `Escalated ]

val create : ?poll_interval:float -> unit -> t
(** Start the polling thread.  [poll_interval] (seconds, default 0.01,
    floor 0.001) bounds how late either stage can fire. *)

val watch :
  t ->
  deadline:float ->
  grace:float ->
  cancel:Cancellation.token ->
  on_escalate:(unit -> unit) ->
  job
(** Register a job starting now.  [deadline] and [grace] are relative
    seconds; negative values are clamped to 0.  [on_escalate] runs on
    the watchdog thread with no watchdog lock held. *)

val complete : t -> job -> status
(** Mark the job finished and report the stage reached: [`Ok] — the
    job beat its deadline; [`Tripped] — cooperative cancellation was
    tripped (the result, if any, is a [Cancelled] error); [`Escalated]
    — [on_escalate] fired, so the owner has already answered for this
    job.  Idempotent in effect; the returned status is stable once the
    job completes. *)

val trips : t -> int
(** Deadline trips since {!create}. *)

val escalations : t -> int
(** Escalations since {!create}. *)

val stop : t -> unit
(** Stop and join the polling thread.  Pending jobs are abandoned
    (no further stages fire). *)
