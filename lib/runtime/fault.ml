type action =
  | Fail of string
  | Timeout_now
  | Exhaust
  | Delay of float

type trigger = {
  checkpoint : string;
  after : int;
  action : action;
}

type armed = {
  resolved_after : int;
  trigger_action : action;
  mutable fired : bool;
}

type plan = {
  triggers : (string, armed) Hashtbl.t;   (* may hold several per name *)
  counts : (string, int) Hashtbl.t;
}

let state : plan option ref = ref None

(* A tiny deterministic LCG so negative [after] fields resolve
   reproducibly from the seed, independent of any global RNG state. *)
let lcg x = (x * 1103515245) + 12345

let install ?(seed = 0) triggers =
  let plan = { triggers = Hashtbl.create 8; counts = Hashtbl.create 8 } in
  List.iteri
    (fun i { checkpoint; after; action } ->
       let resolved_after =
         if after >= 0 then after
         else abs (lcg (seed + i)) mod 8
       in
       Hashtbl.add plan.triggers checkpoint
         { resolved_after; trigger_action = action; fired = false })
    triggers;
  state := Some plan

let clear () = state := None

let active () = !state <> None

let hits name =
  match !state with
  | None -> 0
  | Some plan ->
    (match Hashtbl.find_opt plan.counts name with Some n -> n | None -> 0)

let perform name = function
  | Fail message ->
    raise (Runtime.Interrupt (Runtime.Engine_failure (name, message)))
  | Timeout_now -> raise (Runtime.Interrupt (Runtime.Timeout name))
  | Exhaust -> raise (Runtime.Interrupt (Runtime.Fuel_exhausted name))
  | Delay seconds -> if seconds > 0.0 then Unix.sleepf seconds

let hit name =
  match !state with
  | None -> ()
  | Some plan ->
    let count =
      match Hashtbl.find_opt plan.counts name with Some n -> n | None -> 0
    in
    Hashtbl.replace plan.counts name (count + 1);
    List.iter
      (fun armed ->
         if (not armed.fired) && armed.resolved_after = count then begin
           armed.fired <- true;
           perform name armed.trigger_action
         end)
      (Hashtbl.find_all plan.triggers name)
