type action =
  | Fail of string
  | Timeout_now
  | Exhaust
  | Delay of float
  | Corrupt

type trigger = {
  checkpoint : string;
  after : int;
  action : action;
}

type armed = {
  resolved_after : int;
  trigger_action : action;
  mutable fired : bool;
}

type plan = {
  triggers : (string, armed) Hashtbl.t;   (* may hold several per name *)
  counts : (string, int) Hashtbl.t;
}

(* Plans are process-global (one installed plan covers every domain,
   so a parallel batch sees the same drill as a sequential one), which
   makes the mutable state here shared across domains.  Every access
   goes through [lock]; the actions themselves — raising, sleeping —
   are performed *outside* the critical section so a [Delay] cannot
   stall other domains' checkpoints and a raise cannot leak a held
   mutex. *)
let state : plan option ref = ref None
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* A tiny deterministic LCG so negative [after] fields resolve
   reproducibly from the seed, independent of any global RNG state. *)
let lcg x = (x * 1103515245) + 12345

let install ?(seed = 0) triggers =
  let plan = { triggers = Hashtbl.create 8; counts = Hashtbl.create 8 } in
  List.iteri
    (fun i { checkpoint; after; action } ->
       let resolved_after =
         if after >= 0 then after
         else abs (lcg (seed + i)) mod 8
       in
       Hashtbl.add plan.triggers checkpoint
         { resolved_after; trigger_action = action; fired = false })
    triggers;
  locked (fun () -> state := Some plan)

let clear () = locked (fun () -> state := None)

let active () = locked (fun () -> !state <> None)

let hits name =
  locked (fun () ->
      match !state with
      | None -> 0
      | Some plan ->
        (match Hashtbl.find_opt plan.counts name with
         | Some n -> n
         | None -> 0))

let perform name = function
  | Fail message ->
    raise (Runtime.Interrupt (Runtime.Engine_failure (name, message)))
  | Timeout_now -> raise (Runtime.Interrupt (Runtime.Timeout name))
  | Exhaust -> raise (Runtime.Interrupt (Runtime.Fuel_exhausted name))
  | Delay seconds -> if seconds > 0.0 then Unix.sleepf seconds
  | Corrupt -> ()

(* Count the hit and collect matching triggers under the lock, then
   fire them unlocked.  [Corrupt] triggers fire only when
   [allow_corrupt]; the return value says whether one did. *)
let announce ~allow_corrupt name =
  let corrupted, to_perform =
    locked (fun () ->
        match !state with
        | None -> (false, [])
        | Some plan ->
          let count =
            match Hashtbl.find_opt plan.counts name with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace plan.counts name (count + 1);
          let corrupted = ref false in
          let actions = ref [] in
          List.iter
            (fun armed ->
               if (not armed.fired) && armed.resolved_after = count then
                 match armed.trigger_action with
                 | Corrupt ->
                   if allow_corrupt then begin
                     armed.fired <- true;
                     corrupted := true
                   end
                 | action ->
                   armed.fired <- true;
                   actions := action :: !actions)
            (Hashtbl.find_all plan.triggers name);
          (!corrupted, List.rev !actions))
  in
  List.iter (perform name) to_perform;
  corrupted

let hit name = ignore (announce ~allow_corrupt:false name)
let corrupt name = announce ~allow_corrupt:true name

module Checkpoint = struct
  let sat_solve = "sat.solve"
  let tableau_expand = "tableau.expand"
  let bdd_fixpoint = "bdd.fixpoint"
  let engine_symbolic = "engine.symbolic"
  let engine_explicit = "engine.explicit"
  let engine_sat = "engine.sat"
  let pipeline_lint = "pipeline.lint"
  let witness_controller = "witness.controller"
  let witness_counterstrategy = "witness.counterstrategy"
  let witness_core = "witness.core"
  let harness_document = "harness.document"
  let server_request = "server.request"
  let store_append = "store.append"

  let all = [
    sat_solve, "CDCL solver entry (lib/sat)";
    tableau_expand, "each GPVW tableau node expansion (lib/automata)";
    bdd_fixpoint, "each symbolic obligation-game fixpoint round";
    engine_symbolic, "BDD obligation-game engine entry";
    engine_explicit, "explicit bounded-synthesis engine entry";
    engine_sat, "SAT bounded-machine engine entry";
    pipeline_lint, "lint pass entry (the ladder's floor)";
    witness_controller,
      "controller emission; Corrupt flips the controller's output bits";
    witness_counterstrategy,
      "counterstrategy emission; Corrupt zeroes the environment moves";
    witness_core, "unsat-core emission; Corrupt empties the core";
    harness_document,
      "batch harness, before each document and outside its confinement \
       (a raising trigger simulates a crash)";
    server_request,
      "serve mode, inside a worker just before it starts a request \
       (a Delay models an engine stalled between checkpoints)";
    store_append,
      "verdict store, before a record is appended to the log (a \
       raising trigger models the process dying mid-write; recovery \
       truncates the torn tail on the next open)";
  ]

  let mem name = List.mem_assoc name all
end
