type action =
  | Fail of string
  | Timeout_now
  | Exhaust
  | Delay of float
  | Corrupt

type trigger = {
  checkpoint : string;
  after : int;
  action : action;
}

type armed = {
  resolved_after : int;
  trigger_action : action;
  mutable fired : bool;
}

type plan = {
  triggers : (string, armed) Hashtbl.t;   (* may hold several per name *)
  counts : (string, int) Hashtbl.t;
}

(* Plans are process-global (one installed plan covers every domain,
   so a parallel batch sees the same drill as a sequential one), which
   makes the mutable state here shared across domains.  Every access
   goes through [lock]; the actions themselves — raising, sleeping —
   are performed *outside* the critical section so a [Delay] cannot
   stall other domains' checkpoints and a raise cannot leak a held
   mutex. *)
let state : plan option ref = ref None
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* A tiny deterministic LCG so negative [after] fields resolve
   reproducibly from the seed, independent of any global RNG state. *)
let lcg x = (x * 1103515245) + 12345

let install ?(seed = 0) triggers =
  let plan = { triggers = Hashtbl.create 8; counts = Hashtbl.create 8 } in
  List.iteri
    (fun i { checkpoint; after; action } ->
       let resolved_after =
         if after >= 0 then after
         else abs (lcg (seed + i)) mod 8
       in
       Hashtbl.add plan.triggers checkpoint
         { resolved_after; trigger_action = action; fired = false })
    triggers;
  locked (fun () -> state := Some plan)

let clear () = locked (fun () -> state := None)

let active () = locked (fun () -> !state <> None)

let hits name =
  locked (fun () ->
      match !state with
      | None -> 0
      | Some plan ->
        (match Hashtbl.find_opt plan.counts name with
         | Some n -> n
         | None -> 0))

let perform name = function
  | Fail message ->
    raise (Runtime.Interrupt (Runtime.Engine_failure (name, message)))
  | Timeout_now -> raise (Runtime.Interrupt (Runtime.Timeout name))
  | Exhaust -> raise (Runtime.Interrupt (Runtime.Fuel_exhausted name))
  | Delay seconds -> if seconds > 0.0 then Unix.sleepf seconds
  | Corrupt -> ()

(* ------------------------------------------------------------------ *)
(* Trace observer.  The chaos explorer installs one to record the
   ordered checkpoint stream of a clean run; it sees every announce,
   with or without an installed plan, before any trigger fires. *)

let observer : (string -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer f

(* ------------------------------------------------------------------ *)
(* Checkpoint scopes and the strict-I/O lint.  A scope is pushed for
   the dynamic extent of a guarded I/O path (store append, journal
   line, socket write); [io_event] records a violation when a raw
   write runs with no enclosing scope while the lint is armed.  The
   scope stack is domain-local so worker domains lint independently. *)

let scope_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let in_scope name f =
  let stack = Domain.DLS.get scope_key in
  stack := name :: !stack;
  Fun.protect ~finally:(fun () -> stack := List.tl !stack) f

let current_scope () =
  match !(Domain.DLS.get scope_key) with
  | [] -> None
  | name :: _ -> Some name

let strict = Atomic.make false
let unguarded : (string, int) Hashtbl.t = Hashtbl.create 8

let strict_io enabled =
  locked (fun () -> Hashtbl.reset unguarded);
  Atomic.set strict enabled

let io_event kind =
  if Atomic.get strict && current_scope () = None then
    locked (fun () ->
        let n = Option.value ~default:0 (Hashtbl.find_opt unguarded kind) in
        Hashtbl.replace unguarded kind (n + 1))

let unguarded_io () =
  locked (fun () ->
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) unguarded []
      |> List.sort compare)

(* Count the hit and collect matching triggers under the lock, then
   fire them unlocked.  [Corrupt] triggers fire only when
   [allow_corrupt]; the return value says whether one did. *)
let announce ~allow_corrupt name =
  (match Atomic.get observer with
   | None -> ()
   | Some notify -> notify name);
  let corrupted, to_perform =
    locked (fun () ->
        match !state with
        | None -> (false, [])
        | Some plan ->
          let count =
            match Hashtbl.find_opt plan.counts name with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace plan.counts name (count + 1);
          let corrupted = ref false in
          let actions = ref [] in
          List.iter
            (fun armed ->
               if (not armed.fired) && armed.resolved_after = count then
                 match armed.trigger_action with
                 | Corrupt ->
                   if allow_corrupt then begin
                     armed.fired <- true;
                     corrupted := true
                   end
                 | action ->
                   armed.fired <- true;
                   actions := action :: !actions)
            (Hashtbl.find_all plan.triggers name);
          (!corrupted, List.rev !actions))
  in
  List.iter (perform name) to_perform;
  corrupted

let hit name = ignore (announce ~allow_corrupt:false name)
let corrupt name = announce ~allow_corrupt:true name

module Checkpoint = struct
  (* The registry is dynamic: announcing modules register their sites
     at init, so [--list-faults] and the chaos explorer enumerate the
     live vocabulary instead of a hand-maintained list going stale.
     Registration order is link order, which is stable for a given
     binary. *)
  type entry = { name : string; desc : string; corrupt_site : bool }

  let registry : entry list ref = ref []

  let register ?(corruptible = false) name desc =
    locked (fun () ->
        if not (List.exists (fun e -> e.name = name) !registry) then
          registry :=
            !registry @ [ { name; desc; corrupt_site = corruptible } ]);
    name

  let all () =
    locked (fun () -> List.map (fun e -> (e.name, e.desc)) !registry)

  let mem name =
    locked (fun () -> List.exists (fun e -> e.name = name) !registry)

  let corruptible name =
    locked (fun () ->
        List.exists (fun e -> e.name = name && e.corrupt_site) !registry)

  let sat_solve = register "sat.solve" "CDCL solver entry (lib/sat)"
  let tableau_expand =
    register "tableau.expand"
      "each GPVW tableau node expansion (lib/automata)"
  let bdd_fixpoint =
    register "bdd.fixpoint" "each symbolic obligation-game fixpoint round"
  let engine_symbolic =
    register "engine.symbolic" "BDD obligation-game engine entry"
  let engine_explicit =
    register "engine.explicit" "explicit bounded-synthesis engine entry"
  let engine_sat = register "engine.sat" "SAT bounded-machine engine entry"
  let pipeline_lint =
    register "pipeline.lint" "lint pass entry (the ladder's floor)"
  let witness_controller =
    register ~corruptible:true "witness.controller"
      "controller emission; Corrupt flips the controller's output bits"
  let witness_counterstrategy =
    register ~corruptible:true "witness.counterstrategy"
      "counterstrategy emission; Corrupt zeroes the environment moves"
  let witness_core =
    register ~corruptible:true "witness.core"
      "unsat-core emission; Corrupt empties the core"
  let harness_document =
    register "harness.document"
      "batch harness, before each document and outside its confinement \
       (a raising trigger simulates a crash)"
  let server_request =
    register "server.request"
      "serve mode, inside a worker just before it starts a request \
       (a Delay models an engine stalled between checkpoints)"
  let store_append =
    register ~corruptible:true "store.append"
      "verdict store, before a record is appended to the log (a \
       raising trigger models the process dying mid-write; Corrupt \
       leaves a torn half-frame that recovery truncates on the next \
       open)"
end
