(** Crash-safe batch checking: a supervisor that runs the pipeline
    over many requirement documents with per-document error
    confinement, retry-with-degraded-budget, and a journal that makes
    interrupted runs resumable.

    The contract is the batch analogue of the single-run ladder: one
    document's failure — a parser crash, an engine blow-up, an
    injected fault — never takes down the run; it is confined by
    {!Speccc_runtime.Runtime.guard}, retried under a smaller budget
    after a bounded exponential backoff, and finally recorded as
    [Failed] if every attempt dies.

    {2 Journal format}

    The journal is JSON Lines: one object per completed document,
    appended and flushed as soon as the document's verdict is known,
    so a crash loses at most the document in flight.  Fields:

    {v
    {"doc":"<key>","verdict":"consistent|inconsistent|unknown|failed",
     "engine":"<engine_used>","attempts":<n>,"wall":<seconds>,
     "detail":"<one-line diagnostics>"}
    v}

    A resumed run ({!config.resume}) reads the journal back and skips
    every document whose key already has a line, reporting the
    journaled verdict with [fresh = false]. *)

type verdict_class =
  | Consistent
  | Inconsistent
  | Unknown
      (** the pipeline answered [Inconclusive] (including certificate
          downgrades) *)
  | Failed of string
      (** every attempt died; the payload is the last confined error *)

type config = {
  options : Speccc_core.Pipeline.options;
      (** per-document pipeline options; [options.fuel] (default
          200k when unset) is the first attempt's budget *)
  retries : int;        (** extra attempts after the first (default 2) *)
  backoff_base : float; (** seconds before the first retry (default 0.05) *)
  backoff_cap : float;  (** ceiling on any single backoff (default 1.0) *)
  sleep : float -> float;
      (** sleeping primitive, returning the seconds actually slept —
          injectable so tests can record schedules instead of waiting
          (default [Unix.sleepf] returning its argument) *)
  journal : string option;  (** JSONL path; [None] = no journal *)
  resume : bool;
      (** skip documents already present in the journal *)
  jobs : int;
      (** worker domains checking documents concurrently (default 1 =
          the plain sequential loop).  With [jobs > 1] documents are
          fanned out to a [Domain] pool; every worker owns its own
          hash-consing and memo tables, per-document confinement and
          retries are unchanged, and the coordinator merges results
          {e in input order} — journal lines and the results list are
          identical to a sequential run up to the timing-dependent
          [wall] fields.  The ["harness.document"] checkpoint is
          announced by the coordinator at each fresh document's
          journal slot, so an injected crash still leaves an
          input-order journal prefix; note that fault *plans* are
          process-global and not domain-safe, so fault-injection runs
          should keep [jobs = 1]. *)
}

val default_config : unit -> config

type doc_result = {
  doc : string;                (** document key (file path or name) *)
  verdict : verdict_class;
  engine : string;
  attempts : int;              (** 1 + retries actually used; 0 when
                                   replayed from the journal *)
  wall : float;
  detail : string;
  fresh : bool;                (** false when replayed from the journal *)
}

type summary = {
  results : doc_result list;   (** one per requested document, in order *)
  exit_code : int;
      (** severity aggregate over the batch: 0 all consistent, 1 some
          inconsistency, 2 some document unknown or failed — the
          single-document CLI convention, taken as a maximum *)
}

val run : config -> (string * Speccc_core.Document.t) list -> summary
(** Check each [(key, document)] pair in order.  Never raises on
    per-document failures.  The fault checkpoint ["harness.document"]
    is announced before each document {e outside} the confinement
    guard: an injected raise there aborts the whole run, which is how
    the resume tests simulate a crash. *)

val run_files : config -> string list -> summary
(** {!run} over files, keyed by path ({!Speccc_core.Document.of_file}; an
    unreadable file is a [Failed] result, not an exception). *)

val pp_summary : Format.formatter -> summary -> unit
(** One line per document plus the severity tally — the [speccc batch]
    report. *)
