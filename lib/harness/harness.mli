(** Crash-safe batch checking: a supervisor that runs the pipeline
    over many requirement documents with per-document error
    confinement, retry-with-degraded-budget, and a journal that makes
    interrupted runs resumable.

    The contract is the batch analogue of the single-run ladder: one
    document's failure — a parser crash, an engine blow-up, an
    injected fault — never takes down the run; it is confined by
    {!Speccc_runtime.Runtime.guard}, retried under a smaller budget
    after a bounded exponential backoff, and finally recorded as
    [Failed] if every attempt dies.

    {2 Journal format}

    The journal is JSON Lines: one object per completed document,
    appended and flushed as soon as the document's verdict is known,
    so a crash loses at most the document in flight.  Fields:

    {v
    {"doc":"<key>","verdict":"consistent|inconsistent|unknown|failed",
     "engine":"<engine_used>","attempts":<n>,"wall":<seconds>,
     "detail":"<one-line diagnostics>"}
    v}

    Partial verdicts ([unknown]/[failed] results with anytime progress
    to report) additionally carry a [progress] object — the rung that
    was running and its frontier fields, e.g.
    [{"engine":"explicit","bound":"4"}] — so a preempted check tells
    the caller how far it got instead of answering a bare timeout.

    A resumed run ({!config.resume}) reads the journal back and skips
    every document whose key already has a line, reporting the
    journaled verdict with [fresh = false].  A truncated or corrupt
    trailing line (the process died mid-flush) is skipped with a
    warning instead of aborting the resume.  The same verdict-object
    schema is the serve mode's response format
    ({!Speccc_server.Server}). *)

type verdict_class =
  | Consistent
  | Inconsistent
  | Unknown
      (** the pipeline answered [Inconclusive] (including certificate
          downgrades) *)
  | Failed of string
      (** every attempt died; the payload is the last confined error *)

type config = {
  options : Speccc_core.Pipeline.options;
      (** per-document pipeline options; [options.fuel] (default
          200k when unset) is the first attempt's budget *)
  retries : int;        (** extra attempts after the first (default 2) *)
  backoff_base : float;
      (** nominal seconds before the first retry (default 0.05); each
          actual backoff is the doubled base stretched by a
          deterministic per-document jitter factor (see {!backoff}) *)
  backoff_cap : float;  (** ceiling on any single backoff (default 1.0) *)
  sleep : float -> float;
      (** sleeping primitive, returning the seconds actually slept —
          injectable so tests can record schedules instead of waiting
          (default [Unix.sleepf] returning its argument) *)
  journal : string option;  (** JSONL path; [None] = no journal *)
  journal_fsync : bool;
      (** also [fsync] after every journal append, so lines survive
          the {e machine} dying, not just the process (default false;
          the same knob {!Speccc_store.Store} exposes for its log) *)
  resume : bool;
      (** skip documents already present in the journal *)
  jobs : int;
      (** worker domains checking documents concurrently (default 1 =
          the plain sequential loop).  With [jobs > 1] documents are
          fanned out to a [Domain] pool; every worker owns its own
          hash-consing and memo tables, per-document confinement and
          retries are unchanged, and the coordinator merges results
          {e in input order} — journal lines and the results list are
          identical to a sequential run up to the timing-dependent
          [wall] fields.  The ["harness.document"] checkpoint is
          announced by the coordinator at each fresh document's
          journal slot, so an injected crash still leaves an
          input-order journal prefix.  Fault {e plans} are
          mutex-protected process-global state, so fault-injection
          runs are safe at any [jobs] count: hit counts are exact and
          coordinator-announced triggers fire at the same documents
          as in a sequential run. *)
  stop : unit -> bool;
      (** polled before each fresh document (journal replays are never
          blocked); once it returns [true] the run stops cleanly —
          results and journal form an input-order prefix and
          {!summary.interrupted} is set.  The CLI wires SIGINT to
          this.  Default: never stop. *)
  store_find : (Speccc_core.Document.t -> doc_result option) option;
      (** persistent verdict-store lookup consulted {e before} any
          engine runs (the serve mode and CLI wire this to
          [Speccc_store.Store] keyed by content identity).  A hit is
          returned with [attempts = 0] and [fresh = false] — the same
          replay markers a journal replay carries — and no engine
          fuel is burned.  A raising lookup degrades to a miss.
          Default [None]. *)
  store_put : (Speccc_core.Document.t -> doc_result -> unit) option;
      (** called after each {e fresh, definite} verdict
          ([Consistent]/[Inconsistent] — mathematical facts about the
          spec).  [Unknown] and [Failed] indict the budget or the
          environment, not the spec, so they are never persisted.  A
          raising put is swallowed: the verdict in hand wins over
          store I/O.  Default [None]. *)
}

and doc_result = {
  doc : string;                (** document key (file path or name) *)
  verdict : verdict_class;
  engine : string;
  attempts : int;              (** 1 + retries actually used; 0 when
                                   replayed from the journal *)
  wall : float;
  detail : string;
  fresh : bool;                (** false when replayed from the journal *)
  degradation : Speccc_synthesis.Realizability.rung list;
      (** canonical degradation log of the final attempt's report —
          the serve mode's circuit breakers feed on it; [[]] for
          [Failed] results and journal replays (the journal does not
          persist rungs) *)
  progress : Speccc_runtime.Snapshot.t option;
      (** the last anytime frontier the attempts published, attached
          to partial verdicts ([Unknown]/[Failed]) and rendered as the
          journal's [progress] object; [None] for definite verdicts
          and journal replays *)
}

val default_config : unit -> config

type summary = {
  results : doc_result list;   (** one per requested document, in order *)
  exit_code : int;
      (** severity aggregate over the batch: 0 all consistent, 1 some
          inconsistency, 2 some document unknown or failed — the
          single-document CLI convention, taken as a maximum *)
  interrupted : bool;
      (** [config.stop] ended the run early; [results] covers the
          input-order prefix actually processed *)
}

val run : config -> (string * Speccc_core.Document.t) list -> summary
(** Check each [(key, document)] pair in order.  Never raises on
    per-document failures.  The fault checkpoint ["harness.document"]
    is announced before each document {e outside} the confinement
    guard: an injected raise there aborts the whole run, which is how
    the resume tests simulate a crash. *)

val run_files : config -> string list -> summary
(** {!run} over files, keyed by path ({!Speccc_core.Document.of_file}; an
    unreadable file is a [Failed] result, not an exception). *)

val backoff : config -> key:string -> int -> float
(** The seconds slept before retry [i] (0-based) of document [key]:
    [backoff_base * 2^i], stretched by a deterministic jitter factor
    in [1.0, 1.5) derived from [(key, i)], capped at [backoff_cap].
    The jitter keeps a [--jobs N] batch from retrying in lockstep
    after a shared-cause failure while staying bit-reproducible per
    document. *)

val check_one : config -> string -> Speccc_core.Document.t -> doc_result
(** The per-document attempt loop {!run} applies to each document,
    exposed for callers that supervise their own request streams (the
    serve mode): confinement, degraded-budget retries and backoff, one
    [doc_result].  If [config.options.cancel] is tripped externally
    (e.g. by a watchdog), remaining retries are abandoned — the token
    stays tripped, so they could only die at their first poll.  Never
    raises on per-document failures; does not touch the journal. *)

val journal_line : doc_result -> string
(** The JSONL object (no trailing newline) {!run} appends per
    document — also the serve mode's response body. *)

val journal_parse_line : string -> doc_result option
(** Parse one {!journal_line}-format line back into a replayed result
    ([fresh = false], [attempts = 0]); [None] for anything torn or
    corrupt (any line not ending in ['}'] counts as torn even when
    its surviving fields would parse).  The verdict store reuses this
    as its record payload codec. *)

val journal_append : ?fsync:bool -> string -> doc_result -> unit
(** Append {!journal_line} to the file and flush before returning:
    the line must survive the process dying right after this call.
    With [fsync] (default false) the line is also fsynced, surviving
    the machine dying.  If the file does not end with a newline (a
    crash truncated the previous write), one is inserted first so the
    new line never welds onto the corrupt one. *)

val journal_read :
  ?on_corrupt:(int -> string -> unit) ->
  ?repair:bool ->
  string ->
  (string * doc_result) list
(** Parse a journal back into [(doc key, replayed result)] pairs in
    file order, with [fresh = false] and [attempts = 0].  Unparsable
    non-empty lines — typically one truncated trailing line from a
    crash mid-flush — are reported to [on_corrupt] (1-based line
    number, raw line; default: a stderr warning) and skipped.  With
    [repair] (default false; {!run}'s resume path passes [true]) a
    trailing run of torn lines is additionally {e truncated off the
    file}, so the crash artifact is cleaned up once instead of
    re-skipped forever; interior corruption is never rewritten.  A
    missing file is an empty journal. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line per document plus the severity tally — the [speccc batch]
    report. *)
