open Speccc_core
module Runtime = Speccc_runtime.Runtime
module Fault = Speccc_runtime.Fault
module Realizability = Speccc_synthesis.Realizability

type verdict_class =
  | Consistent
  | Inconsistent
  | Unknown
  | Failed of string

type config = {
  options : Pipeline.options;
  retries : int;
  backoff_base : float;
  backoff_cap : float;
  sleep : float -> float;
  journal : string option;
  journal_fsync : bool;
  resume : bool;
  jobs : int;
  stop : unit -> bool;
  store_find : (Document.t -> doc_result option) option;
  store_put : (Document.t -> doc_result -> unit) option;
}

and doc_result = {
  doc : string;
  verdict : verdict_class;
  engine : string;
  attempts : int;
  wall : float;
  detail : string;
  fresh : bool;
  degradation : Realizability.rung list;
  progress : Speccc_runtime.Snapshot.t option;
}

let default_config () = {
  options = Pipeline.default_options ();
  retries = 2;
  backoff_base = 0.05;
  backoff_cap = 1.0;
  sleep = (fun s -> Unix.sleepf s; s);
  journal = None;
  journal_fsync = false;
  resume = false;
  jobs = 1;
  stop = (fun () -> false);
  store_find = None;
  store_put = None;
}

type summary = {
  results : doc_result list;
  exit_code : int;
  interrupted : bool;
}

(* ---------- JSONL journal ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' when i + 1 < n ->
        (match s.[i + 1] with
         | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
         | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
         | 't' -> Buffer.add_char buf '\t'; go (i + 2)
         | 'u' when i + 5 < n ->
           (match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | Some _ | None -> Buffer.add_char buf '?');
           go (i + 6)
         | c -> Buffer.add_char buf c; go (i + 2))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 0;
  Buffer.contents buf

(* Minimal field extraction for the journal's own output format: finds
   ["key":"..."] handling escaped quotes.  Not a general JSON parser
   and not meant to be one — the journal only ever contains lines this
   module wrote. *)
let field_string line key =
  let marker = Printf.sprintf "\"%s\":\"" key in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let rec close i =
      if i >= n then None
      else
        match line.[i] with
        | '\\' -> close (i + 2)
        | '"' -> Some i
        | _ -> close (i + 1)
    in
    (match close start with
     | None -> None
     | Some stop -> Some (json_unescape (String.sub line start (stop - start))))

let field_number line key =
  let marker = Printf.sprintf "\"%s\":" key in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < n
      && (match line.[!stop] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub line start (!stop - start))

let verdict_tag = function
  | Consistent -> "consistent"
  | Inconsistent -> "inconsistent"
  | Unknown -> "unknown"
  | Failed _ -> "failed"

let verdict_of_tag detail = function
  | "consistent" -> Some Consistent
  | "inconsistent" -> Some Inconsistent
  | "unknown" -> Some Unknown
  | "failed" -> Some (Failed detail)
  | _ -> None

(* The anytime progress object appended to partial verdicts: the rung
   that was running plus its frontier fields (bound/round/states
   reached, decided localization subsets).  Verbatim snapshot field
   values — all short integers or index lists — rendered as JSON
   strings. *)
let progress_json snap =
  Printf.sprintf "{\"engine\":\"%s\"%s}"
    (json_escape (Speccc_runtime.Snapshot.engine snap))
    (String.concat ""
       (List.map
          (fun (k, v) ->
             Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
          (Speccc_runtime.Snapshot.fields snap)))

let journal_line result =
  Printf.sprintf
    "{\"doc\":\"%s\",\"verdict\":\"%s\",\"engine\":\"%s\",\"attempts\":%d,\"wall\":%.3f,\"detail\":\"%s\"%s}"
    (json_escape result.doc)
    (verdict_tag result.verdict)
    (json_escape result.engine)
    result.attempts result.wall
    (json_escape result.detail)
    (match result.progress with
     | None -> ""
     | Some snap -> ",\"progress\":" ^ progress_json snap)

(* Append one line and flush before returning: the journal must
   survive the process dying right after this call. *)
(* A crash mid-flush can leave the file without a trailing newline;
   appending straight after it would weld the new line onto the
   truncated one and corrupt both. *)
let ends_with_newline path =
  match open_in_bin path with
  | exception Sys_error _ -> true
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
         let n = in_channel_length ic in
         n = 0
         || begin
           seek_in ic (n - 1);
           input_char ic = '\n'
         end)

let journal_checkpoint =
  Fault.Checkpoint.register "journal.append"
    "batch/serve journal, before a verdict line is appended (a raising \
     trigger models dying between finishing a document and journaling \
     it; --resume re-checks exactly that document)"

let journal_append ?(fsync = false) path result =
  Fault.in_scope journal_checkpoint @@ fun () ->
  Fault.hit journal_checkpoint;
  let repair = Sys.file_exists path && not (ends_with_newline path) in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       Fault.io_event "journal.write";
       if repair then output_char oc '\n';
       output_string oc (journal_line result);
       output_char oc '\n';
       flush oc;
       (* flush hands the line to the kernel (survives a process
          crash); fsync makes it survive the machine dying too — the
          same knob the verdict store exposes *)
       if fsync then
         try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())

(* A journal may end with a truncated or otherwise corrupt line — the
   process died mid-flush.  Resuming must not abort on it: the line is
   reported through [on_corrupt] (by default a stderr warning) and
   skipped, so the document it would have named is simply re-checked. *)
let default_on_corrupt path line_no line =
  Printf.eprintf
    "speccc: warning: %s:%d: unparsable journal line %S (truncated \
     write?); skipping it, the document will be re-checked\n%!"
    path line_no
    (if String.length line <= 40 then line else String.sub line 0 40 ^ "...")

let journal_parse_line line =
  (* every journal line ends with '}'; a line that does not was cut
     mid-flush, even if the fields we need survived *)
  let complete =
    let trimmed = String.trim line in
    String.length trimmed > 0
    && trimmed.[String.length trimmed - 1] = '}'
  in
  match (if complete then field_string line "doc" else None) with
  | None -> None
  | Some doc ->
    let detail =
      Option.value ~default:"" (field_string line "detail")
    in
    let verdict =
      Option.bind (field_string line "verdict") (verdict_of_tag detail)
    in
    (match verdict with
     | None -> None
     | Some verdict ->
       Some
         {
           doc;
           verdict;
           engine = Option.value ~default:"?" (field_string line "engine");
           attempts = 0;
           wall = Option.value ~default:0. (field_number line "wall");
           detail;
           fresh = false;
           degradation = [];
           progress = None;
         })

let journal_read ?on_corrupt ?(repair = false) path =
  if not (Sys.file_exists path) then []
  else begin
    let on_corrupt =
      match on_corrupt with
      | Some f -> f
      | None -> default_on_corrupt path
    in
    let ic = open_in_bin path in
    (* (line number, byte offset of the line start, raw line) *)
    let lines = ref [] in
    let line_no = ref 0 in
    (try
       while true do
         let offset = pos_in ic in
         let line = input_line ic in
         incr line_no;
         if String.trim line <> "" then
           lines := (!line_no, offset, line) :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let entries =
      List.rev_map
        (fun (line_no, offset, line) ->
           (line_no, offset, line, journal_parse_line line))
        !lines
    in
    (* A torn FINAL line is the expected crash-mid-flush artifact.
       With [repair] the file is truncated back to the last good line,
       so the torn tail never has to be re-skipped (or welded onto by
       a foreign appender) again; mid-file corruption is only ever
       warned about and skipped — rewriting interior history is not
       this function's job. *)
    (if repair then
       let tail_start =
         let rec scan acc = function
           | (_, offset, _, None) :: rest -> scan (Some offset) rest
           | _ -> acc
         in
         scan None (List.rev entries)
       in
       match tail_start with
       | Some offset ->
         (try
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () -> Unix.ftruncate fd offset)
          with Unix.Unix_error _ -> ())
       | None -> ());
    List.filter_map
      (fun (line_no, _, line, parsed) ->
         match parsed with
         | None ->
           on_corrupt line_no line;
           None
         | Some result -> Some (result.doc, result))
      entries
  end

(* ---------- per-document supervision ---------- *)

let default_first_fuel = 200_000

let classify (outcome : Pipeline.outcome) =
  match outcome.Pipeline.report.Realizability.verdict with
  | Realizability.Consistent -> Consistent
  | Realizability.Inconsistent -> Inconsistent
  | Realizability.Inconclusive _ -> Unknown

let detail_of outcome =
  let report = outcome.Pipeline.report in
  let base =
    match report.Realizability.verdict with
    | Realizability.Inconclusive why -> why
    | Realizability.Consistent | Realizability.Inconsistent ->
      report.Realizability.detail
  in
  let dropped =
    match outcome.Pipeline.diagnostics with
    | [] -> ""
    | diags -> Printf.sprintf " [%d requirement(s) skipped]" (List.length diags)
  in
  base ^ dropped

(* Attempt [i] (0-based) runs under [first_fuel / 2^i]: a document
   that blew through its budget gets cheaper, ladder-floor-leaning
   retries rather than the same explosion again. *)
let attempt_fuel config i =
  let first =
    match config.options.Pipeline.fuel with
    | Some fuel -> fuel
    | None -> default_first_fuel
  in
  max 1_000 (first / (1 lsl i))

(* Seeded jitter: a parallel batch that hits a shared-cause failure
   (store outage, breaker trip) would otherwise have all its workers
   retrying in lockstep at exactly base*2^i.  The jitter factor
   (1.0 .. 1.5) is derived from the document key and attempt index, so
   it spreads retries across a window while staying bit-reproducible —
   jobs=4 and jobs=1 runs sleep identical schedules per document. *)
let jitter_factor ~key i =
  let digest = Digest.string (Printf.sprintf "%s\x00backoff\x00%d" key i) in
  1.0 +. (0.5 *. float_of_int (Char.code digest.[0]) /. 256.)

let backoff config ~key i =
  Float.min config.backoff_cap
    (config.backoff_base *. (2. ** float_of_int i) *. jitter_factor ~key i)

let check_once config document ~fuel =
  let options = { config.options with Pipeline.fuel = Some fuel } in
  Runtime.guard ~stage:"harness" (fun () ->
      Pipeline.run_document ~options document)

(* Retrying a cancelled run is pointless — the token stays tripped, so
   every further attempt dies at its first budget poll (and a watchdog
   has possibly already answered on our behalf). *)
let externally_cancelled config =
  match config.options.Pipeline.cancel with
  | Some token -> Speccc_runtime.Cancellation.is_cancelled token
  | None -> false

(* The persistent verdict store, when wired in, is the fastest rung of
   all: identical hash-consed specs always yield the same verdict, so
   a stored definite answer is served without burning any engine fuel.
   Only definite verdicts are consulted or persisted — [Unknown] and
   [Failed] indict the budget or the environment, not the spec, so
   they must stay re-checkable.  A store failure is degraded to a
   cache miss (lookups) or a lost write (puts): the verdict in hand
   always wins over store I/O. *)
let store_lookup config document =
  match config.store_find with
  | None -> None
  | Some find -> (try find document with _ -> None)

let store_persist config document result =
  match (config.store_put, result.verdict) with
  | Some put, (Consistent | Inconsistent) when result.fresh ->
    (try put document result with _ -> ())
  | _ -> ()

let supervise_fresh config (key, document) =
  let started = Unix.gettimeofday () in
  (* One anytime slot covers the whole attempt sequence: each attempt
     publishes its frontier into it, and rearming before a retry turns
     the previous attempt's last frontier into the next attempt's
     starting point — a preempted search never cold-starts twice.
     Callers (the serve mode) may hand in their own slot; otherwise
     the document gets a private one. *)
  let slot =
    match config.options.Pipeline.snapshot with
    | Some slot -> slot
    | None -> Speccc_runtime.Snapshot.slot ()
  in
  let config =
    { config with
      options = { config.options with Pipeline.snapshot = Some slot } }
  in
  let partial () = Speccc_runtime.Snapshot.latest slot in
  let failed i error =
    {
      doc = key;
      verdict = Failed (Runtime.to_string error);
      engine = "none";
      attempts = i;
      wall = Unix.gettimeofday () -. started;
      detail = Runtime.to_string error;
      fresh = true;
      degradation = [];
      progress = partial ();
    }
  in
  let rec attempt i last_error =
    if i > config.retries then failed i last_error
    else begin
      if i > 0 then begin
        ignore (config.sleep (backoff config ~key (i - 1)));
        Speccc_runtime.Snapshot.rearm slot
      end;
      match check_once config document ~fuel:(attempt_fuel config i) with
      | Ok outcome ->
        let verdict = classify outcome in
        {
          doc = key;
          verdict;
          engine = outcome.Pipeline.report.Realizability.engine_used;
          attempts = i + 1;
          wall = Unix.gettimeofday () -. started;
          detail = detail_of outcome;
          fresh = true;
          degradation =
            Realizability.canonical_degradation outcome.Pipeline.report;
          progress = (match verdict with Unknown -> partial () | _ -> None);
        }
      | Error error ->
        if externally_cancelled config then failed (i + 1) error
        else attempt (i + 1) error
    end
  in
  attempt 0 (Runtime.Engine_failure ("harness", "not attempted"))

let supervise config (key, document) =
  match store_lookup config document with
  | Some cached ->
    (* replayed from the store: [attempts = 0] is the replay marker
       the journal replays already use *)
    { cached with doc = key; attempts = 0; fresh = false }
  | None ->
    let result = supervise_fresh config (key, document) in
    store_persist config document result;
    result

let check_one config key document = supervise config (key, document)

(* ---------- the batch loop ---------- *)

let severity = function
  | Consistent -> 0
  | Inconsistent -> 1
  | Unknown | Failed _ -> 2

let check_loaded config (key, loaded) =
  match loaded with
  | Ok document -> supervise config (key, document)
  | Error message ->
    {
      doc = key;
      verdict = Failed message;
      engine = "none";
      attempts = 1;
      wall = 0.;
      detail = message;
      fresh = true;
      degradation = [];
      progress = None;
    }

(* [config.stop] is polled before each fresh document (journal
   replays never block, so they pass through): once it reports true,
   the run ends with the results — and the journal — forming a clean
   input-order prefix, exactly what --resume needs to finish the job
   later.  This is how SIGINT drains the batch instead of dying
   mid-write. *)
exception Stop_requested

let run_sequential config journaled documents =
  let results = ref [] in
  let interrupted = ref false in
  (try
     List.iter
       (fun (key, loaded) ->
          match List.assoc_opt key journaled with
          | Some replayed -> results := replayed :: !results
          | None ->
            if config.stop () then begin
              interrupted := true;
              raise Stop_requested
            end;
            (* Announced OUTSIDE the guard on purpose: an injected
               fault here models the whole process dying between
               documents, which is the scenario --resume exists for. *)
            Fault.hit Fault.Checkpoint.harness_document;
            let result = check_loaded config (key, loaded) in
            Option.iter
              (fun path ->
                 journal_append ~fsync:config.journal_fsync path result)
              config.journal;
            results := result :: !results)
       documents
   with Stop_requested -> ());
  (List.rev !results, !interrupted)

(* Parallel mode: a pool of [jobs] domains drains an atomic work
   counter over the non-replayed documents while the spawning domain
   plays coordinator — it waits for each document's slot *in input
   order* and appends journal lines as slots fill, so the journal (and
   the results list) is byte-identical to a sequential run's, minus
   only the timing-dependent [wall] fields.  Each worker domain owns
   private hash-consing and memo tables (they are domain-local), so
   workers share no mutable formula state.

   The [harness.document] checkpoint is announced by the coordinator
   just before it would journal each fresh document, mirroring the
   sequential "process dies between documents" semantics: on an
   injected raise, the journal is a clean input-order prefix.  Workers
   may by then have computed later documents, but un-journaled work is
   simply re-checked on resume. *)
let run_parallel config journaled documents =
  let docs = Array.of_list documents in
  let n = Array.length docs in
  let slots = Array.make n None in
  Array.iteri
    (fun i (key, _) ->
       match List.assoc_opt key journaled with
       | Some replayed -> slots.(i) <- Some replayed
       | None -> ())
    docs;
  (* Decided before any worker starts, so reads below cannot race. *)
  let is_replayed = Array.map Option.is_some slots in
  let pending =
    Array.of_seq
      (Seq.filter (fun i -> not is_replayed.(i)) (Seq.init n Fun.id))
  in
  let next = Atomic.make 0 in
  let lock = Mutex.create () in
  let filled = Condition.create () in
  let worker () =
    let rec loop () =
      let j = Atomic.fetch_and_add next 1 in
      if j < Array.length pending then begin
        let i = pending.(j) in
        let result = check_loaded config docs.(i) in
        Mutex.lock lock;
        slots.(i) <- Some result;
        Condition.broadcast filled;
        Mutex.unlock lock;
        loop ()
      end
    in
    loop ()
  in
  let worker_count = min config.jobs (max 1 (Array.length pending)) in
  let domains = Array.init worker_count (fun _ -> Domain.spawn worker) in
  let interrupted = ref false in
  let collect () =
    let out = ref [] in
    (try
       Array.iteri
         (fun i _ ->
            if is_replayed.(i) then out := Option.get slots.(i) :: !out
            else begin
              if config.stop () then begin
                (* Stop handing out new work; in-flight documents
                   finish in their workers but are not collected, so
                   the journal stays an input-order prefix. *)
                interrupted := true;
                Atomic.set next (Array.length pending);
                raise Stop_requested
              end;
              Fault.hit Fault.Checkpoint.harness_document;
              Mutex.lock lock;
              while slots.(i) = None do
                Condition.wait filled lock
              done;
              let result = Option.get slots.(i) in
              Mutex.unlock lock;
              Option.iter
                (fun path ->
                   journal_append ~fsync:config.journal_fsync path result)
                config.journal;
              out := result :: !out
            end)
         docs
     with Stop_requested -> ());
    List.rev !out
  in
  match collect () with
  | results ->
    Array.iter Domain.join domains;
    (results, !interrupted)
  | exception e ->
    (* Simulated crash (or journal I/O error): stop handing out work,
       let in-flight documents finish, then re-raise. *)
    Atomic.set next (Array.length pending);
    Array.iter Domain.join domains;
    raise e

let run_loaded config documents =
  let journaled =
    match config.journal with
    | Some path when config.resume ->
      (* Replay only definite verdicts.  A journaled [Unknown] or
         [Failed] indicts the budget or the environment of the crashed
         run, not the spec — replaying it would let one transient
         fault poison every subsequent --resume (found by the chaos
         explorer: a corrupted witness degraded a verdict to unknown,
         and the resumed run parroted the degraded answer instead of
         re-checking).  Same policy as the store above. *)
      List.filter
        (fun (_, r) ->
           match r.verdict with
           | Consistent | Inconsistent -> true
           | Unknown | Failed _ -> false)
        (journal_read ~repair:true path)
    | Some _ | None -> []
  in
  let results, interrupted =
    if config.jobs <= 1 then run_sequential config journaled documents
    else run_parallel config journaled documents
  in
  let exit_code =
    List.fold_left (fun acc r -> max acc (severity r.verdict)) 0 results
  in
  { results; exit_code; interrupted }

let run config documents =
  run_loaded config
    (List.map (fun (key, document) -> (key, Ok document)) documents)

let run_files config paths =
  run_loaded config
    (List.map
       (fun path ->
          match Document.of_file path with
          | document -> (path, Ok document)
          | exception Sys_error message -> (path, Error message))
       paths)

let pp_verdict ppf = function
  | Consistent -> Format.pp_print_string ppf "CONSISTENT"
  | Inconsistent -> Format.pp_print_string ppf "INCONSISTENT"
  | Unknown -> Format.pp_print_string ppf "UNKNOWN"
  | Failed why -> Format.fprintf ppf "FAILED (%s)" why

let pp_summary ppf summary =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
       Format.fprintf ppf "%s: %a (engine: %s, attempts: %d, %.3fs)%s@," r.doc
         pp_verdict r.verdict r.engine r.attempts r.wall
         (if r.fresh then "" else " [journaled]"))
    summary.results;
  let count c =
    List.length (List.filter (fun r -> severity r.verdict = c) summary.results)
  in
  Format.fprintf ppf "%d document(s): %d consistent, %d inconsistent, %d unknown/failed"
    (List.length summary.results) (count 0) (count 1) (count 2);
  if summary.interrupted then
    Format.fprintf ppf
      "@,interrupted: remaining documents not checked (the journal \
       holds a clean prefix; rerun with --resume)";
  Format.fprintf ppf "@]"
