(* Sharded front end: consistent-hash routing over a pool of serve
   worker processes, with crash detection, bounded failover, and
   automatic respawn.

   Each shard owns one worker process on one Unix socket and one
   dispatcher thread.  The serve mode accepts one connection at a
   time, so the dispatcher holds a single persistent connection and
   keeps exactly one request outstanding on it: request/response
   correlation is positional, and a worker crash surfaces as EPIPE on
   send or EOF/timeout on receive.  Dispatchers run in parallel across
   shards, FIFO within a shard.

   Failover re-enqueues the request onto the next distinct shard in
   ring order.  Verdicts are deterministic functions of the spec, so a
   failover answer is bit-identical to the home shard's — the router
   trades locality (the home shard's warm verdict store), never
   correctness.  Every request is answered: exhaustion of all shards
   produces a typed [unavailable] error, not silence. *)

module Jsonl = Speccc_server.Jsonl
module Breaker = Speccc_server.Breaker
module Lineio = Speccc_server.Lineio
module Fault = Speccc_runtime.Fault
module Eintr = Speccc_runtime.Eintr

let shard_dispatch =
  Fault.Checkpoint.register "shard.dispatch"
    "router, as a dispatcher hands a check to its shard (a raising \
     trigger fails this attempt and forces a failover to the next \
     ring candidate; a Delay stalls the dispatch)"

let route_write =
  Fault.Checkpoint.register "route.write"
    "router, as a response line is written to the client (a raising \
     trigger is absorbed like a vanished client)"

(* ---------- consistent-hash ring ---------- *)

module Ring = struct
  type t = { points : (int * int) array; shards : int }

  (* 56 bits of an MD5 digest: plenty of spread, always a nonnegative
     OCaml int *)
  let hash_key s =
    let d = Digest.string s in
    let v = ref 0 in
    for i = 0 to 6 do
      v := (!v lsl 8) lor Char.code d.[i]
    done;
    !v

  let create ~shards ~replicas =
    let shards = max 1 shards and replicas = max 1 replicas in
    let points =
      Array.init (shards * replicas) (fun i ->
          let shard = i / replicas and r = i mod replicas in
          (hash_key (Printf.sprintf "shard-%d#%d" shard r), shard))
    in
    Array.sort compare points;
    { points; shards }

  (* index of the first point clockwise of the key's hash *)
  let position t key =
    let h = hash_key key in
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
    done;
    if !lo = n then 0 else !lo

  let shard_of t key = snd t.points.(position t key)

  let failover t key =
    let n = Array.length t.points in
    let start = position t key in
    let seen = Array.make t.shards false in
    let order = ref [] in
    let found = ref 0 in
    let i = ref 0 in
    while !found < t.shards && !i < n do
      let shard = snd t.points.((start + !i) mod n) in
      if not seen.(shard) then begin
        seen.(shard) <- true;
        incr found;
        order := shard :: !order
      end;
      incr i
    done;
    List.rev !order
end

(* ---------- configuration ---------- *)

type config = {
  shards : int;
  replicas : int;
  request_retries : int;
  request_timeout : float;
  connect_timeout : float;
  respawn_wait : float;
  shutdown_wait : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  socket_dir : string;
  worker_argv : shard:int -> socket:string -> string array;
}

let default_config ~socket_dir ~worker_argv =
  {
    shards = 3;
    replicas = 32;
    request_retries = 2;
    request_timeout = 30.0;
    connect_timeout = 10.0;
    respawn_wait = 0.2;
    shutdown_wait = 5.0;
    breaker_threshold = 3;
    breaker_cooldown = 2.0;
    socket_dir;
    worker_argv;
  }

type stats = {
  served : int;
  failovers : int;
  respawns : int;
  unavailable : int;
  bad_requests : int;
  shard_served : int array;
  breakers : (string * string) list;
}

(* ---------- jobs ---------- *)

type check = {
  line : string;          (* forwarded verbatim, options and all *)
  id : Jsonl.t;
  key : string;           (* routing key *)
  mutable tried : int list;
}

type probe = {
  p_id : Jsonl.t;
  p_lock : Mutex.t;
  mutable remaining : int;
  mutable parts : (int * Jsonl.t option) list;
      (* shard index, worker health object ([None] = probe failed) *)
}

type job = Check of check | Probe of probe

type shard_state = {
  index : int;
  socket : string;
  queue : job Queue.t;
  breaker : Breaker.t;
  mutable pid : int option;
  mutable conn : Unix.file_descr option;
  mutable reader : Lineio.t option;
  mutable ever_spawned : bool;
  mutable s_served : int;
  mutable thread : Thread.t option;
}

type t = {
  config : config;
  ring : Ring.t;
  shards : shard_state array;
  lock : Mutex.t;
  wake : Condition.t;
      (* broadcast on enqueue, on drain, and when the last outstanding
         request completes — dispatchers re-check their queue and the
         exit condition on every wake *)
  output : out_channel;
  out_lock : Mutex.t;
  mutable closed : bool;
  mutable shutdown : bool;
  mutable outstanding : int;  (* queued + in-flight jobs, all shards *)
  mutable served : int;
  mutable failovers : int;
  mutable respawns : int;
  mutable unavailable : int;
  mutable bad : int;
}

let locked router f =
  Mutex.lock router.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock router.lock) f

let shutdown_requested router = locked router (fun () -> router.shutdown)

let write_line router line =
  Mutex.lock router.out_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock router.out_lock)
    (fun () ->
      Fault.in_scope route_write @@ fun () ->
      try
        Fault.hit route_write;
        Fault.io_event "route.write";
        output_string router.output line;
        output_char router.output '\n';
        flush router.output
      with
      | Sys_error _ | Unix.Unix_error _
      | Speccc_runtime.Runtime.Interrupt _ -> ())

let finish_one router =
  locked router (fun () ->
      router.outstanding <- router.outstanding - 1;
      if router.outstanding = 0 then Condition.broadcast router.wake)

let enqueue router shard job ~fresh =
  locked router (fun () ->
      if fresh then router.outstanding <- router.outstanding + 1;
      Queue.push job router.shards.(shard).queue;
      Condition.broadcast router.wake)

(* ---------- worker lifecycle (dispatcher-thread only) ---------- *)

let send_line fd line =
  (* worker-facing writes ride under the dispatch checkpoint's scope so
     the strict-I/O lint sees them as guarded *)
  Fault.in_scope shard_dispatch @@ fun () ->
  let data = line ^ "\n" in
  let n = String.length data in
  let off = ref 0 in
  while !off < n do
    match Eintr.write_substring fd data !off (n - !off) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
    | written -> off := !off + written
  done

let kill_worker router shard =
  (match shard.conn with
  | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  shard.conn <- None;
  shard.reader <- None;
  match shard.pid with
  | None -> ()
  | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      locked router (fun () -> shard.pid <- None)

let child_exited pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error _ -> true

let connect_worker router shard pid =
  let give_up = Unix.gettimeofday () +. router.config.connect_timeout in
  let rec attempt () =
    (* cloexec: a later-spawned worker must not inherit (and pin open)
       another shard's connection *)
    let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect sock (Unix.ADDR_UNIX shard.socket) with
    | () -> Some sock
    | exception Unix.Unix_error _ ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if child_exited pid || Unix.gettimeofday () >= give_up then None
        else begin
          Thread.delay 0.05;
          attempt ()
        end
  in
  attempt ()

(* Bring the shard's worker up if it is not already.  A successful
   (re)spawn resets the shard's breaker: the replacement process has
   fresh engines and a freshly replayed store, so it must not inherit
   the phantom failure count its predecessor earned. *)
let ensure_worker router shard =
  match shard.conn with
  | Some _ -> true
  | None -> (
      kill_worker router shard;
      let is_respawn = shard.ever_spawned in
      if is_respawn then Thread.delay router.config.respawn_wait;
      (try Sys.remove shard.socket with Sys_error _ -> ());
      let argv = router.config.worker_argv ~shard:shard.index ~socket:shard.socket in
      match
        let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
        let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close null_in with Unix.Unix_error _ -> ());
            try Unix.close null_out with Unix.Unix_error _ -> ())
          (fun () ->
            (* worker stdout is the serve-CLI's human report channel;
               the client stream is ours alone, so silence it *)
            Unix.create_process argv.(0) argv null_in null_out Unix.stderr)
      with
      | exception _ -> false
      | pid -> (
          locked router (fun () -> shard.pid <- Some pid);
          shard.ever_spawned <- true;
          match connect_worker router shard pid with
          | None ->
              kill_worker router shard;
              false
          | Some fd ->
              shard.conn <- Some fd;
              shard.reader <- Some (Lineio.create fd);
              Breaker.reset shard.breaker;
              if is_respawn then
                locked router (fun () ->
                    router.respawns <- router.respawns + 1);
              true))

(* One request/response exchange on the shard's persistent connection.
   Any failure mode — send error, EOF, timeout — means the worker is
   gone or wedged; the caller kills and respawns it. *)
let exchange router shard line =
  match (shard.conn, shard.reader) with
  | Some fd, Some reader -> (
      match send_line fd line with
      | exception Unix.Unix_error _ -> Error `Send
      | () -> (
          let deadline =
            Unix.gettimeofday () +. router.config.request_timeout
          in
          match Lineio.next_line ~deadline reader ~stop:(fun () -> false) with
          | Some response -> Ok response
          | None -> Error `Receive))
  | _ -> Error `Down

(* ---------- dispatch ---------- *)

let unavailable_response c =
  Jsonl.to_string
    (Jsonl.Obj
       [ ("id", c.id); ("error", Jsonl.Str "unavailable");
         ("detail", Jsonl.Str "no shard could answer the request") ])

(* Re-dispatch a failed request to the next distinct untried shard in
   ring order, within the retry budget; answer [unavailable] when the
   budget or the pool is exhausted. *)
let redispatch router c =
  let allowed =
    min (router.config.request_retries + 1) (Array.length router.shards)
  in
  let next =
    if List.length c.tried >= allowed then None
    else
      List.find_opt
        (fun s -> not (List.mem s c.tried))
        (Ring.failover router.ring c.key)
  in
  match next with
  | Some shard ->
      locked router (fun () -> router.failovers <- router.failovers + 1);
      enqueue router shard (Check c) ~fresh:false
  | None ->
      write_line router (unavailable_response c);
      locked router (fun () -> router.unavailable <- router.unavailable + 1);
      finish_one router

let process_check router shard c =
  c.tried <- shard.index :: c.tried;
  (* Announced after this shard is marked tried: a raising trigger here
     is caught by the dispatcher and redispatches to the next ring
     candidate, the same failover path a dead worker takes. *)
  Fault.hit shard_dispatch;
  let attempt =
    if Breaker.should_skip shard.breaker ~now:(Unix.gettimeofday ()) then
      Error `Skipped
    else if not (ensure_worker router shard) then Error `Spawn
    else exchange router shard c.line
  in
  match attempt with
  | Ok response ->
      Breaker.record_success shard.breaker;
      write_line router response;
      locked router (fun () ->
          router.served <- router.served + 1;
          shard.s_served <- shard.s_served + 1);
      finish_one router
  | Error `Skipped ->
      (* breaker already open: no new evidence to record *)
      redispatch router c
  | Error (`Spawn | `Send | `Receive | `Down) ->
      Breaker.record_failure shard.breaker ~now:(Unix.gettimeofday ());
      kill_worker router shard;
      (* respawn immediately (best-effort) so the shard is back — with
         its store replayed — before its next request, not after *)
      ignore (ensure_worker router shard);
      redispatch router c

let probe_line = "{\"id\":\"__probe__\",\"cmd\":\"health\"}"

let router_health router =
  locked router (fun () ->
      let num n = Jsonl.Num (float_of_int n) in
      let depth =
        Array.fold_left
          (fun acc s -> acc + Queue.length s.queue)
          0 router.shards
      in
      Jsonl.Obj
        [ ("shards", num (Array.length router.shards));
          ("served", num router.served); ("failovers", num router.failovers);
          ("respawns", num router.respawns);
          ("unavailable", num router.unavailable);
          ("queue_depth", num depth) ])

let probe_response router p =
  let num n = Jsonl.Num (float_of_int n) in
  let parts = List.sort (fun (a, _) (b, _) -> compare a b) p.parts in
  (* aggregate the workers' anytime counters so one router probe shows
     the fleet-wide preemption/resume picture without reading every
     per-shard health object *)
  let anytime_totals =
    let count field =
      List.fold_left
        (fun acc (_, health) ->
          match health with
          | None -> acc
          | Some h -> (
              match Jsonl.member "anytime" h with
              | Some anytime ->
                  acc + Option.value (Jsonl.int_member field anytime) ~default:0
              | None -> acc))
        0 parts
    in
    Jsonl.Obj
      [ ("preempted", num (count "preempted"));
        ("resumed", num (count "resumed"));
        ("saved_snapshots", num (count "saved_snapshots")) ]
  in
  (* same fleet-wide aggregation for the BDD backend: total node
     allocations, memo-cache hits and reordering passes across all
     workers *)
  let bdd_totals =
    let count field =
      List.fold_left
        (fun acc (_, health) ->
          match health with
          | None -> acc
          | Some h -> (
              match Jsonl.member "bdd" h with
              | Some bdd ->
                  acc + Option.value (Jsonl.int_member field bdd) ~default:0
              | None -> acc))
        0 parts
    in
    Jsonl.Obj
      [ ("nodes", num (count "nodes"));
        ("op_hits", num (count "op_hits"));
        ("reorders", num (count "reorders")) ]
  in
  let shards_json =
    List.map
      (fun (i, health) ->
        let s = router.shards.(i) in
        let pid, served =
          locked router (fun () -> (s.pid, s.s_served))
        in
        Jsonl.Obj
          [ ("shard", num i);
            ("pid", match pid with Some p -> num p | None -> Jsonl.Null);
            ("breaker", Jsonl.Str (Breaker.state_name s.breaker));
            ("served", num served);
            ("health", Option.value health ~default:Jsonl.Null) ])
      parts
  in
  Jsonl.to_string
    (Jsonl.Obj
       [ ("id", p.p_id);
         ( "health",
           Jsonl.Obj
             [ ("router", router_health router);
               ("anytime", anytime_totals);
               ("bdd", bdd_totals);
               ("shards", Jsonl.Arr shards_json) ] ) ])

let process_probe router shard p =
  let health =
    if not (ensure_worker router shard) then None
    else
      match exchange router shard probe_line with
      | Ok response -> (
          match Jsonl.parse response with
          | Ok json -> Jsonl.member "health" json
          | Error _ -> None)
      | Error _ ->
          (* a dead probe is a dead worker: same recovery as a check *)
          Breaker.record_failure shard.breaker ~now:(Unix.gettimeofday ());
          kill_worker router shard;
          ignore (ensure_worker router shard);
          None
  in
  Mutex.lock p.p_lock;
  p.parts <- (shard.index, health) :: p.parts;
  p.remaining <- p.remaining - 1;
  let completed = p.remaining = 0 in
  Mutex.unlock p.p_lock;
  if completed then write_line router (probe_response router p);
  finish_one router

let next_job router shard =
  Mutex.lock router.lock;
  let rec wait () =
    if not (Queue.is_empty shard.queue) then begin
      let job = Queue.pop shard.queue in
      Mutex.unlock router.lock;
      Some job
    end
    else if router.closed && router.outstanding = 0 then begin
      Mutex.unlock router.lock;
      None
    end
    else begin
      Condition.wait router.wake router.lock;
      wait ()
    end
  in
  wait ()

let rec dispatcher router shard =
  match next_job router shard with
  | None -> ()
  | Some job ->
      (match job with
      | Check c -> (
          try process_check router shard c
          with _ ->
            (* a dispatcher must never die with a request in hand *)
            redispatch router c)
      | Probe p -> ( try process_probe router shard p with _ -> finish_one router));
      dispatcher router shard

(* ---------- request intake (reader thread) ---------- *)

let routing_key json ~id =
  match Jsonl.str_member "doc" json with
  | Some doc -> doc
  | None -> (
      match Jsonl.str_member "path" json with
      | Some path -> path
      | None -> Jsonl.to_string id)

let request_key line =
  match Jsonl.parse (String.trim line) with
  | Error _ -> None
  | Ok json ->
      let id = Option.value (Jsonl.member "id" json) ~default:Jsonl.Null in
      Some (routing_key json ~id)

let error_response router ?(id = Jsonl.Null) kind detail =
  write_line router
    (Jsonl.to_string
       (Jsonl.Obj
          [ ("id", id); ("error", Jsonl.Str kind);
            ("detail", Jsonl.Str detail) ]))

let handle_line router line =
  let line = String.trim line in
  if line = "" then ()
  else
    match Jsonl.parse line with
    | Error message ->
        locked router (fun () -> router.bad <- router.bad + 1);
        error_response router "bad_request" message
    | Ok json -> (
        let id = Option.value (Jsonl.member "id" json) ~default:Jsonl.Null in
        match Option.value (Jsonl.str_member "cmd" json) ~default:"check" with
        | "check" ->
            let key = routing_key json ~id in
            let home = Ring.shard_of router.ring key in
            enqueue router home (Check { line; id; key; tried = [] })
              ~fresh:true
        | "health" ->
            let p =
              {
                p_id = id;
                p_lock = Mutex.create ();
                remaining = Array.length router.shards;
                parts = [];
              }
            in
            Array.iter
              (fun shard -> enqueue router shard.index (Probe p) ~fresh:true)
              router.shards
        | "shutdown" ->
            write_line router
              (Jsonl.to_string
                 (Jsonl.Obj [ ("id", id); ("ok", Jsonl.Str "draining") ]));
            locked router (fun () -> router.shutdown <- true)
        | other ->
            locked router (fun () -> router.bad <- router.bad + 1);
            error_response router ~id "bad_request" ("unknown cmd " ^ other))

(* ---------- lifecycle ---------- *)

let stop_worker router shard =
  (match shard.conn with
  | Some fd ->
      (try send_line fd "{\"cmd\":\"shutdown\"}"
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  shard.conn <- None;
  shard.reader <- None;
  match shard.pid with
  | None -> ()
  | Some pid ->
      let give_up = Unix.gettimeofday () +. router.config.shutdown_wait in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () >= give_up then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
            end
            else begin
              Thread.delay 0.05;
              wait ()
            end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      wait ();
      shard.pid <- None

let make (config : config) output =
  let config : config =
    {
      config with
      shards = max 1 config.shards;
      replicas = max 1 config.replicas;
      request_retries = max 0 config.request_retries;
    }
  in
  (if not (Sys.file_exists config.socket_dir) then
     try Unix.mkdir config.socket_dir 0o755 with Unix.Unix_error _ -> ());
  {
    config;
    ring = Ring.create ~shards:config.shards ~replicas:config.replicas;
    shards =
      Array.init config.shards (fun index ->
          {
            index;
            socket =
              Filename.concat config.socket_dir
                (Printf.sprintf "shard-%d.sock" index);
            queue = Queue.create ();
            breaker =
              Breaker.create
                ~rung:(Printf.sprintf "shard-%d" index)
                ~threshold:config.breaker_threshold
                ~cooldown:config.breaker_cooldown;
            pid = None;
            conn = None;
            reader = None;
            ever_spawned = false;
            s_served = 0;
            thread = None;
          });
    lock = Mutex.create ();
    wake = Condition.create ();
    output;
    out_lock = Mutex.create ();
    closed = false;
    shutdown = false;
    outstanding = 0;
    served = 0;
    failovers = 0;
    respawns = 0;
    unavailable = 0;
    bad = 0;
  }

let finish router =
  {
    served = router.served;
    failovers = router.failovers;
    respawns = router.respawns;
    unavailable = router.unavailable;
    bad_requests = router.bad;
    shard_served = Array.map (fun s -> s.s_served) router.shards;
    breakers =
      Array.to_list
        (Array.map
           (fun s ->
             (Printf.sprintf "shard-%d" s.index, Breaker.state_name s.breaker))
           router.shards);
  }

let run ?(stop = fun () -> false) config ~input ~output =
  (* a worker dying mid-exchange must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let router = make config output in
  Array.iter
    (fun shard ->
      shard.thread <-
        Some
          (Thread.create
             (fun () ->
               (* bring the pool up eagerly, then serve the queue *)
               ignore (ensure_worker router shard);
               dispatcher router shard)
             ()))
    router.shards;
  let reader = Lineio.create input in
  let rec loop () =
    if shutdown_requested router || stop () then ()
    else
      match
        Lineio.next_line reader ~stop:(fun () ->
            stop () || shutdown_requested router)
      with
      | None -> ()
      | Some line ->
          handle_line router line;
          loop ()
  in
  loop ();
  locked router (fun () ->
      router.closed <- true;
      Condition.broadcast router.wake);
  Array.iter
    (fun shard -> Option.iter Thread.join shard.thread)
    router.shards;
  Array.iter (fun shard -> stop_worker router shard) router.shards;
  finish router

let pp_stats ppf (stats : stats) =
  Format.fprintf ppf
    "@[<v>served: %d@,failovers: %d@,respawns: %d@,unavailable: %d@,\
     bad requests: %d@,per shard: %s@,breakers: %s@]"
    stats.served stats.failovers stats.respawns stats.unavailable
    stats.bad_requests
    (String.concat ", "
       (Array.to_list (Array.mapi (fun i n -> Printf.sprintf "%d=%d" i n)
          stats.shard_served)))
    (String.concat ", "
       (List.map (fun (r, s) -> r ^ "=" ^ s) stats.breakers))
