(** Crash-recoverable sharded serving: a front-end router that
    consistently hashes requests across a pool of [speccc serve]
    worker processes ([speccc route]).

    The router speaks the same JSONL protocol as the serve mode
    ({!Speccc_server.Server}): clients cannot tell one worker from a
    routed pool.  Each worker is a separate {e process} listening on
    its own Unix socket, spawned and supervised by the router:

    - {b routing} — a request's key (its document text, or its [path],
      or failing both its [id]) is hashed onto a virtual-node
      consistent ring ({!Ring}), so the same spec always lands on the
      same shard and its persistent verdict store answers repeats
      without burning engine fuel;
    - {b failure detection} — a dead connection (EPIPE on send, EOF on
      receive) or a response timeout marks the worker crashed;
    - {b failover} — the request is re-dispatched to the next distinct
      shard in ring order, at most [request_retries] extra attempts;
      verdicts are deterministic, so an answer from a failover shard is
      bit-identical to the home shard's (the cross-shard oracle the
      tests enforce).  A request that exhausts every live shard gets a
      typed [{"error":"unavailable"}] response — every request is
      answered, none are dropped;
    - {b respawn} — the crashed worker is SIGKILLed (collecting any
      half-dead process), its socket is rebound by a fresh process,
      and its per-shard circuit {!Speccc_server.Breaker} is
      {!Speccc_server.Breaker.reset} — the replacement must not
      inherit phantom open state.  The new worker replays its verdict
      store on startup, so everything its predecessor learned is
      already warm;
    - {b breakers} — repeated spawn/exchange failures open the shard's
      breaker and dispatch skips straight to failover until the
      cooldown expires.

    A [health] request is fanned out to every live worker and the
    per-worker health objects (breakers, cache/hashcons/store
    counters) are aggregated under the router's own counters; the
    workers' anytime counters (preemptions, resumes, saved snapshots)
    are additionally summed into a pool-wide [anytime] object.
    [shutdown] (or EOF / the [stop] flag) drains queued and in-flight
    requests, asks each worker to shut down, and reaps the
    processes. *)

(** Consistent hashing on a virtual-node ring.  Exposed so tests can
    predict a key's home shard (e.g. to SIGKILL exactly the worker
    that holds a request in flight). *)
module Ring : sig
  type t

  val create : shards:int -> replicas:int -> t
  (** [replicas] virtual points per shard (floored at 1); more points
      smooth the load split. *)

  val shard_of : t -> string -> int
  (** Home shard of a key. *)

  val failover : t -> string -> int list
  (** Every shard, deduplicated, in ring order starting from the home
      shard — the order dispatch walks when workers fail. *)
end

type config = {
  shards : int;              (** worker processes (floored at 1) *)
  replicas : int;            (** ring points per shard (default 32) *)
  request_retries : int;
      (** extra shards tried after the home shard fails (default 2,
          clamped to [shards - 1]) *)
  request_timeout : float;
      (** seconds to wait for a worker's response before declaring it
          wedged; set it above the workers' own watchdog ceiling
          (deadline + grace), which answers first in every
          non-crash case *)
  connect_timeout : float;   (** seconds to wait for a spawned worker's
                                 socket to accept *)
  respawn_wait : float;      (** pause between failed spawn attempts *)
  shutdown_wait : float;     (** seconds workers get to exit at drain
                                 before SIGKILL *)
  breaker_threshold : int;   (** consecutive shard failures that open
                                 its breaker *)
  breaker_cooldown : float;  (** seconds an open shard is skipped *)
  socket_dir : string;       (** directory for [shard-<i>.sock] files *)
  worker_argv : shard:int -> socket:string -> string array;
      (** command line that starts shard [i]'s worker serving on
          [socket] — the CLI points this at
          [Sys.executable_name serve --socket ... --store ...];
          tests point it at the built binary *)
}

val default_config :
  socket_dir:string ->
  worker_argv:(shard:int -> socket:string -> string array) ->
  config

type stats = {
  served : int;        (** check responses relayed to the client *)
  failovers : int;     (** re-dispatches after a shard failure *)
  respawns : int;      (** replacement workers spawned *)
  unavailable : int;   (** requests that exhausted every shard *)
  bad_requests : int;
  shard_served : int array;            (** responses per shard *)
  breakers : (string * string) list;   (** [shard-<i>], final state *)
}

val request_key : string -> string option
(** Routing key of a raw JSONL request line: the [doc] text, else the
    [path], else the rendered [id]; [None] when the line does not
    parse (such lines are answered [bad_request], not routed).
    Exposed with {!Ring} so tests can aim faults at a specific
    worker. *)

val run :
  ?stop:(unit -> bool) ->
  config ->
  input:Unix.file_descr ->
  output:out_channel ->
  stats
(** Spawn the workers, route JSONL requests from [input] until EOF, a
    [shutdown] request, or [stop] returns true, then drain in-flight
    work, shut the workers down and reap them.  SIGPIPE is ignored for
    the whole process (a crashed worker must surface as [EPIPE], not
    kill the router). *)

val pp_stats : Format.formatter -> stats -> unit
