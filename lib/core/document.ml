type item = {
  id : string;
  text : string;
  line : int;
}

type t = item list

(* An identifier prefix is a short colon-terminated token without
   spaces: "Req-08:", "R3:", "REQ_17.1:". *)
let split_identifier line =
  match String.index_opt line ':' with
  | Some pos when pos > 0 && pos <= 24 ->
    let candidate = String.sub line 0 pos in
    if String.contains candidate ' ' then None
    else
      let rest = String.sub line (pos + 1) (String.length line - pos - 1) in
      Some (candidate, String.trim rest)
  | Some _ | None -> None

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  List.mapi
    (fun index (line, content) ->
       match split_identifier content with
       | Some (id, text) when text <> "" -> { id; text; line }
       | Some _ | None ->
         { id = Printf.sprintf "R%d" (index + 1); text = content; line })
    lines

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse contents

let of_texts texts =
  List.mapi
    (fun index text ->
       { id = Printf.sprintf "R%d" (index + 1); text; line = index + 1 })
    texts

let texts document = List.map (fun item -> item.text) document

let is_assumption item =
  let lower = String.lowercase_ascii item.id in
  String.length lower >= 6 && String.sub lower 0 6 = "assume"

let split document = List.partition is_assumption document

let id_at document index =
  match List.nth_opt document index with
  | Some item -> item.id
  | None -> Printf.sprintf "R%d" (index + 1)

let pp ppf document =
  List.iter
    (fun item -> Format.fprintf ppf "%s: %s@." item.id item.text)
    document
