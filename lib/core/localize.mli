(** Inconsistency localization (Sec. V-B, first bullet): starting from
    a consistent subset, requirements are added one at a time; the
    first addition that breaks consistency is the culprit.  The other
    requirements are then filtered by relevance (shared propositions
    with the culprit), and a minimal inconsistent partner set inside
    the relevant requirements is extracted by a delta-debugging-style
    shrink, which handles the paper's "not neighbored" case. *)

type result = {
  culprit : int;
      (** index of the requirement that broke consistency *)
  consistent_prefix : int list;
      (** indices accepted before the culprit *)
  relevant : int list;
      (** indices sharing propositions with the culprit *)
  partners : int list;
      (** minimal subset of [relevant] that is inconsistent together
          with the culprit *)
}

val run :
  ?snapshot:Speccc_runtime.Snapshot.slot ->
  check:(Speccc_logic.Ltl.t list -> bool) ->
  Speccc_logic.Ltl.t list ->
  result option
(** [run ~check formulas]: [check] decides consistency of a subset
    (typically realizability under a re-derived partition).  Returns
    [None] when the whole specification is consistent.  A requirement
    that is inconsistent on its own is reported as culprit with an
    empty partner set.

    Within one [run], subset verdicts are memoized by the sorted set
    of formula ids (cache ["localize.verdict"]), so [check] is invoked
    at most once per distinct requirement set; it must therefore be
    deterministic and extensional (order- and duplicate-insensitive),
    which holds for conjunction-based consistency checks.  Verdicts
    never leak between runs.

    [snapshot] makes the run {e anytime}: every decided subset is
    published to the slot (engine ["localize"], decided subsets keyed
    by formula index so they survive domain and process boundaries),
    and an armed resume snapshot over the same formula list pre-seeds
    those verdicts, so a preempted-then-retried localization re-checks
    strictly fewer subsets.  A corrupt or mismatched snapshot (wrong
    formula count, undecodable entry) degrades to a cold start. *)

val pp : Format.formatter -> result -> unit
