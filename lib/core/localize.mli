(** Inconsistency localization (Sec. V-B, first bullet): starting from
    a consistent subset, requirements are added one at a time; the
    first addition that breaks consistency is the culprit.  The other
    requirements are then filtered by relevance (shared propositions
    with the culprit), and a minimal inconsistent partner set inside
    the relevant requirements is extracted by a delta-debugging-style
    shrink, which handles the paper's "not neighbored" case. *)

type result = {
  culprit : int;
      (** index of the requirement that broke consistency *)
  consistent_prefix : int list;
      (** indices accepted before the culprit *)
  relevant : int list;
      (** indices sharing propositions with the culprit *)
  partners : int list;
      (** minimal subset of [relevant] that is inconsistent together
          with the culprit *)
}

type memo
(** Session-scoped subset-verdict store, keyed by the {e sorted
    formula-id set} of each checked conjunction — content-addressed,
    so an edited requirement (fresh hash-cons id) can never be served
    a stale verdict.  Create one per long-lived session (the watch
    mode keeps one per document session) and pass it to every {!run}
    whose [check] closes over the same options; runs without a memo
    share nothing. *)

val memo : unit -> memo

val memo_length : memo -> int
(** Number of stored subset verdicts. *)

val prune_memo : memo -> retain:(int -> bool) -> int
(** Drop every entry mentioning a formula id for which [retain]
    returns [false]; returns how many entries were dropped.  The watch
    session calls this after an edit with the surviving document's
    formula ids, so verdicts about edited-away requirements do not
    accumulate. *)

val run :
  ?snapshot:Speccc_runtime.Snapshot.slot ->
  ?memo:memo ->
  check:(Speccc_logic.Ltl.t list -> bool) ->
  Speccc_logic.Ltl.t list ->
  result option
(** [run ~check formulas]: [check] decides consistency of a subset
    (typically realizability under a re-derived partition).  Returns
    [None] when the whole specification is consistent.  A requirement
    that is inconsistent on its own is reported as culprit with an
    empty partner set.

    Within one [run], subset verdicts are memoized by the sorted set
    of formula indices, so [check] is invoked at most once per
    distinct requirement set; it must therefore be deterministic and
    extensional (order- and duplicate-insensitive), which holds for
    conjunction-based consistency checks.  Verdicts never leak
    between runs unless the caller passes the same [memo] — then a
    subset whose formula-id set was decided by an earlier run (e.g.
    before an unrelated edit) is answered without invoking [check],
    which must therefore also be stable across those runs (same
    engine options; the partition is a function of the subset).

    [snapshot] makes the run {e anytime}: every decided subset is
    published to the slot (engine ["localize"], decided subsets keyed
    by formula index so they survive domain and process boundaries),
    and an armed resume snapshot over the same formula list pre-seeds
    those verdicts, so a preempted-then-retried localization re-checks
    strictly fewer subsets.  A corrupt or mismatched snapshot (wrong
    formula count, undecodable entry) degrades to a cold start. *)

val pp : Format.formatter -> result -> unit
