open Speccc_logic
open Speccc_translate
open Speccc_timeabs
open Speccc_partition
open Speccc_synthesis

type options = {
  translate : Translate.config;
  time_budget : int option;
  use_smt_abstraction : bool;
  engine : Realizability.engine;
  lookahead : int;
  bound : int;
  fuel : int option;
  deadline : float option;
  cancel : Speccc_runtime.Cancellation.token option;
  skip_engines : string list;
  recover : bool;
  certify : bool;
  snapshot : Speccc_runtime.Snapshot.slot option;
}

let default_options () = {
  translate = Translate.default_config ();
  time_budget = Some 5;
  use_smt_abstraction = true;
  engine = Realizability.Auto;
  lookahead = 6;
  bound = 8;
  fuel = None;
  deadline = None;
  cancel = None;
  skip_engines = [];
  recover = false;
  certify = false;
  snapshot = None;
}

type stage_times = {
  translation_s : float;
  abstraction_s : float;
  partition_s : float;
  synthesis_s : float;
}

type outcome = {
  requirements : Translate.requirement list;
  formulas : Ltl.t list;
  time_solution : Timeabs.solution option;
  partition : Partition.analysis;
  report : Realizability.report;
  times : stage_times;
  diagnostics : (string * Speccc_nlp.Parser.diagnostic) list;
  certificate : Speccc_certify.Certify.outcome option;
}

let timed f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let abstract_times options formulas =
  match Timeabs.thetas_of_formulas formulas with
  | [] -> (formulas, None)
  | thetas ->
    let solution =
      match options.time_budget with
      | None -> Timeabs.gcd_solution thetas
      | Some budget ->
        let problem = Timeabs.problem ~budget thetas in
        if options.use_smt_abstraction then Timeabs.solve_smt problem
        else Timeabs.solve_analytic problem
    in
    (List.map (Timeabs.apply solution) formulas, Some solution)

(* The governed ladder also owns the anytime and memory-pressure
   machinery: a snapshot slot is only fed by it, and the hard-watermark
   collapse is a ladder decision, so both route the run through it. *)
let governed options =
  options.fuel <> None || options.deadline <> None || options.cancel <> None
  || options.skip_engines <> [] || options.snapshot <> None
  || Speccc_runtime.Memwatch.level () <> Speccc_runtime.Memwatch.Normal

let make_budget options =
  Speccc_runtime.Budget.create ?fuel:options.fuel
    ?deadline_in:options.deadline ?cancel:options.cancel
    ?snapshot:options.snapshot ()

(* The ladder's floor: when every synthesis engine degraded, a lint
   pass can still return a sound verdict — an unsatisfiable requirement
   or a conflicting pair refutes realizability outright.  The pass runs
   on a small reserved budget of its own, because it is exactly the
   engines' fuel that is gone; a partial verdict beats none. *)
let lint_reserve_fuel = 20_000

(* Fuel reserved for re-checking witnesses when [options.certify]: the
   tableau re-check of an unsat core is the only validator that can
   genuinely blow up. *)
let certify_reserve_fuel = 50_000

let lint_floor formulas (report : Realizability.report) =
  let reserve = Speccc_runtime.Budget.create ~fuel:lint_reserve_fuel () in
  let started = Unix.gettimeofday () in
  let result =
    Speccc_runtime.Runtime.guard ~stage:"lint" (fun () ->
        Speccc_lint.Lint.check ~budget:reserve formulas)
  in
  let wall = Unix.gettimeofday () -. started in
  let rung outcome error =
    {
      Realizability.rung_engine = "lint";
      rung_outcome = outcome;
      rung_error = error;
      rung_wall = wall;
    }
  in
  match result with
  | Ok findings ->
    let conflict =
      List.find_opt
        (function
          | Speccc_lint.Lint.Unsatisfiable _
          | Speccc_lint.Lint.Pair_conflict _ ->
            true
          | Speccc_lint.Lint.Valid _ | Speccc_lint.Lint.Vacuous_guard _ ->
            false)
        findings
    in
    (match conflict with
     | Some finding ->
       let detail =
         Format.asprintf "%a"
           (Speccc_lint.Lint.pp_finding ~requirement_text:(fun _ -> None))
           finding
       in
       let core =
         match finding with
         | Speccc_lint.Lint.Unsatisfiable i -> [ i ]
         | Speccc_lint.Lint.Pair_conflict (i, j, _) -> [ i; j ]
         | Speccc_lint.Lint.Valid _ | Speccc_lint.Lint.Vacuous_guard _ -> []
       in
       {
         report with
         Realizability.verdict = Realizability.Inconsistent;
         engine_used = "lint";
         unsat_core = Some (Realizability.emit_core core);
         wall_time = report.Realizability.wall_time +. wall;
         detail;
       }
     | None ->
       {
         report with
         Realizability.verdict =
           Realizability.Inconclusive
             "all engines degraded under the budget; lint found no conflict";
         wall_time = report.Realizability.wall_time +. wall;
         degradation =
           report.Realizability.degradation
           @ [ rung "completed: no conflicts found" None ];
       })
  | Error error ->
    {
      report with
      Realizability.wall_time = report.Realizability.wall_time +. wall;
      degradation =
        report.Realizability.degradation
        @ [ rung (Speccc_runtime.Runtime.to_string error) (Some error) ];
    }

let synthesize options ?(assumptions = []) ~inputs ~outputs formulas =
  if not (governed options) then
    Realizability.check ~engine:options.engine ~lookahead:options.lookahead
      ~bound:options.bound ~assumptions ~inputs ~outputs formulas
  else
    let budget = make_budget options in
    match
      Realizability.check_governed ~budget ~engine:options.engine
        ~lookahead:options.lookahead ~bound:options.bound
        ~skip:options.skip_engines ~assumptions ~inputs ~outputs formulas
    with
    | Ok
        ({ Realizability.verdict = Realizability.Inconclusive _; _ } as
         report)
      when report.Realizability.degradation <> [] ->
      lint_floor formulas report
    | Ok report -> report
    | Error error ->
      (* the wall-clock deadline passed or the run was cancelled: too
         late even for the lint floor *)
      let why = Speccc_runtime.Runtime.to_string error in
      {
        Realizability.verdict = Realizability.Inconclusive why;
        engine_used = "none";
        controller = None;
        counterstrategy = None;
        unsat_core = None;
        wall_time = 0.;
        detail = why;
        degradation =
          [
            {
              Realizability.rung_engine = "ladder";
              rung_outcome = why;
              rung_error = Some error;
              rung_wall = 0.;
            };
          ];
      }

let check_formulas ?options ?partition formulas =
  let options =
    match options with Some o -> o | None -> default_options ()
  in
  let partition =
    match partition with
    | Some p -> p
    | None -> (Partition.of_requirements formulas).Partition.partition
  in
  let report =
    synthesize options ~inputs:partition.Partition.inputs
      ~outputs:partition.Partition.outputs formulas
  in
  (partition, report)

(* Translation front-end shared by {!run} and {!run_document}.  With
   [options.recover] set, ungrammatical requirements are dropped with a
   located diagnostic and the rest of the document proceeds; the
   returned document lists only the surviving items so downstream
   stages stay aligned with the translation. *)
let translate_document options document =
  if not options.recover then
    ( Translate.specification options.translate (Document.texts document),
      document,
      [] )
  else
    let translation, kept, diagnostics =
      Translate.specification_recover options.translate
        (List.map
           (fun item -> (item.Document.line, item.Document.text))
           document)
    in
    let survivors =
      List.filter_map (fun index -> List.nth_opt document index) kept
    in
    let diagnostics =
      List.map
        (fun (index, diag) -> (Document.id_at document index, diag))
        diagnostics
    in
    (translation, survivors, diagnostics)

let run_document ?options document =
  let options =
    match options with Some o -> o | None -> default_options ()
  in
  let (translation, document, diagnostics), translation_s =
    timed (fun () -> translate_document options document)
  in
  let raw_formulas =
    List.map (fun r -> r.Translate.formula) translation.Translate.requirements
  in
  let (formulas, time_solution), abstraction_s =
    timed (fun () -> abstract_times options raw_formulas)
  in
  let tagged = List.combine document formulas in
  let assumptions =
    List.filter_map
      (fun (item, formula) ->
         if Document.is_assumption item then Some formula else None)
      tagged
  in
  let guarantees =
    List.filter_map
      (fun (item, formula) ->
         if Document.is_assumption item then None else Some formula)
      tagged
  in
  (* The Sec. IV-F heuristic reads requirement shapes, which
     assumptions do not follow — partition over the guarantees, then
     adopt assumption-only propositions as inputs (they describe the
     environment). *)
  let partition, partition_s =
    timed (fun () ->
        let analysis = Partition.of_requirements guarantees in
        let known =
          analysis.Partition.partition.Partition.inputs
          @ analysis.Partition.partition.Partition.outputs
        in
        let extra =
          List.concat_map Ltl.props assumptions
          |> List.sort_uniq compare
          |> List.filter (fun p -> not (List.mem p known))
        in
        {
          analysis with
          Partition.partition = {
            analysis.Partition.partition with
            Partition.inputs =
              List.sort compare
                (analysis.Partition.partition.Partition.inputs @ extra);
          };
        })
  in
  let report, synthesis_s =
    timed (fun () ->
        synthesize options ~assumptions
          ~inputs:partition.Partition.partition.Partition.inputs
          ~outputs:partition.Partition.partition.Partition.outputs guarantees)
  in
  let report, certificate =
    if not options.certify then (report, None)
    else
      (* Certification runs on its own reserved budget: it is the
         engines' fuel that may just have run out, and the validators
         are cheap by comparison. *)
      let reserve =
        Speccc_runtime.Budget.create ~fuel:certify_reserve_fuel ()
      in
      let report, outcome =
        Speccc_certify.Certify.apply ~budget:reserve ~assumptions guarantees
          report
      in
      (report, Some outcome)
  in
  {
    requirements = translation.Translate.requirements;
    formulas;
    time_solution;
    partition;
    report;
    times = { translation_s; abstraction_s; partition_s; synthesis_s };
    diagnostics;
    certificate;
  }

let run ?options texts = run_document ?options (Document.of_texts texts)

let pp_outcome ppf outcome =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "requirements: %d@,"
    (List.length outcome.requirements);
  (match outcome.time_solution with
   | Some solution ->
     Format.fprintf ppf "time abstraction: %a@," Timeabs.pp_solution solution
   | None -> Format.fprintf ppf "time abstraction: none needed@,");
  Format.fprintf ppf "%a@," Partition.pp
    outcome.partition.Partition.partition;
  let verdict =
    match outcome.report.Realizability.verdict with
    | Realizability.Consistent -> "CONSISTENT (realizable)"
    | Realizability.Inconsistent -> "INCONSISTENT (unrealizable)"
    | Realizability.Inconclusive why -> "INCONCLUSIVE: " ^ why
  in
  Format.fprintf ppf "verdict: %s (engine: %s, %.3fs)" verdict
    outcome.report.Realizability.engine_used
    outcome.report.Realizability.wall_time;
  List.iter
    (fun rung ->
       Format.fprintf ppf "@,degraded: %s — %s (%.3fs)"
         rung.Realizability.rung_engine rung.Realizability.rung_outcome
         rung.Realizability.rung_wall)
    (Realizability.canonical_degradation outcome.report);
  List.iter
    (fun (id, diag) ->
       Format.fprintf ppf "@,skipped %s: %a" id
         Speccc_nlp.Parser.pp_diagnostic diag)
    outcome.diagnostics;
  Format.fprintf ppf "@]"
