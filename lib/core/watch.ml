open Speccc_logic
open Speccc_translate
open Speccc_partition
open Speccc_synthesis

module Verdict_lru = Speccc_cache.Cache.Make (Speccc_cache.Cache.String_key)

type reuse = {
  verdict_cached : bool;
  parse_hits : int;
  blocks_reused : int;
  solo_reused : int;
  invalidated : int;
}

type checked = {
  outcome : Pipeline.outcome;
  localization : Localize.result option;
  culprit_id : string option;
  partner_ids : string list;
  wall_s : float;
  reuse : reuse;
  seq : int;
}

type counters = {
  checks : int;
  verdict_hits : int;
  engine : Bounded.session_stats;
  localize_entries : int;
  invalidated_total : int;
}

type session = {
  options : Pipeline.options;
  mutable doc : Document.t;
  parse : Translate.parse_cache;
  engine : Bounded.session;
  loc_memo : Localize.memo;
  verdicts : (Pipeline.outcome * Localize.result option) Verdict_lru.t;
  mutable last_ids : int list;
      (* sorted hash-cons ids of the document's formulas at the last
         incremental check — the invalidation baseline *)
  mutable seq : int;
  mutable checks : int;
  mutable verdict_hits : int;
  mutable invalidated_total : int;
}

let create ?options doc =
  let options =
    match options with Some o -> o | None -> Pipeline.default_options ()
  in
  {
    options;
    doc;
    parse = Translate.parse_cache ();
    engine = Bounded.create_session ();
    loc_memo = Localize.memo ();
    verdicts =
      Verdict_lru.create ~name:"watch.verdict"
        ~capacity:
          (Speccc_cache.Cache.capacity ~name:"watch.verdict" ~default:128)
        ();
    last_ids = [];
    seq = 0;
    checks = 0;
    verdict_hits = 0;
    invalidated_total = 0;
  }

let document session = session.doc
let set_document session doc = session.doc <- doc

let renumber doc =
  List.mapi (fun i item -> { item with Document.line = i + 1 }) doc

let mem_id doc id = List.exists (fun item -> item.Document.id = id) doc

let edit session ~id ~text =
  if mem_id session.doc id then begin
    session.doc <-
      List.map
        (fun item ->
           if item.Document.id = id then { item with Document.text } else item)
        session.doc;
    Ok ()
  end
  else Error (Printf.sprintf "no requirement %S in the document" id)

let insert ?at session ~id ~text =
  if mem_id session.doc id then
    Error (Printf.sprintf "requirement %S already exists" id)
  else begin
    let n = List.length session.doc in
    let at = match at with None -> n | Some i -> max 0 (min i n) in
    let before = List.filteri (fun i _ -> i < at) session.doc in
    let after = List.filteri (fun i _ -> i >= at) session.doc in
    session.doc <-
      renumber (before @ ({ Document.id; text; line = 0 } :: after));
    Ok ()
  end

let delete session ~id =
  if mem_id session.doc id then begin
    session.doc <-
      renumber (List.filter (fun item -> item.Document.id <> id) session.doc);
    Ok ()
  end
  else Error (Printf.sprintf "no requirement %S in the document" id)

(* Content key of the current document: ids, texts and (through the
   ids) the assumption/guarantee split.  Options are fixed per
   session, so they need no salt here. *)
let doc_key doc =
  String.concat "\x1e"
    (List.map
       (fun item -> item.Document.id ^ "\x1f" ^ item.Document.text)
       doc)

let timed f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let cache_hits name =
  match
    List.find_opt
      (fun s -> s.Speccc_cache.Cache.name = name)
      (Speccc_cache.Cache.stats ())
  with
  | Some s -> s.Speccc_cache.Cache.hits
  | None -> 0

let ids_of doc checked =
  match checked with
  | None -> (None, [])
  | Some loc ->
    ( Some (Document.id_at doc loc.Localize.culprit),
      List.map (Document.id_at doc) loc.Localize.partners )

(* Localization mirrors [Pipeline.check_formulas]: re-derive the
   partition for each subset, then an ungoverned consistency check —
   here routed through the session's engine state so subset verdicts
   decided before an unrelated edit are reused. *)
let check_subset session subset =
  let analysis = Partition.of_requirements subset in
  let report =
    Realizability.check ~engine:session.options.Pipeline.engine
      ~lookahead:session.options.Pipeline.lookahead
      ~bound:session.options.Pipeline.bound ~explicit_session:session.engine
      ~inputs:analysis.Partition.partition.Partition.inputs
      ~outputs:analysis.Partition.partition.Partition.outputs subset
  in
  report.Realizability.verdict = Realizability.Consistent

let localize_of session outcome =
  match outcome.Pipeline.report.Realizability.verdict with
  | Realizability.Inconsistent ->
    Localize.run ~memo:session.loc_memo
      ~check:(check_subset session)
      outcome.Pipeline.formulas
  | Realizability.Consistent | Realizability.Inconclusive _ -> None

(* Governed, recovering or certifying sessions fall back to the full
   pipeline per check: those paths own budget slicing, snapshot slots
   and dropped-sentence bookkeeping that the incremental path does not
   replicate.  Still a watch session — just without engine reuse. *)
let fallback session =
  let outcome = Pipeline.run_document ~options:session.options session.doc in
  let localization =
    match outcome.Pipeline.report.Realizability.verdict with
    | Realizability.Inconsistent ->
      Localize.run
        ~check:(fun subset ->
          let _, report =
            Pipeline.check_formulas ~options:session.options subset
          in
          report.Realizability.verdict = Realizability.Consistent)
        outcome.Pipeline.formulas
    | _ -> None
  in
  ( outcome,
    localization,
    {
      verdict_cached = false;
      parse_hits = 0;
      blocks_reused = 0;
      solo_reused = 0;
      invalidated = 0;
    } )

let incremental session =
  let options = session.options in
  let parse_hits0 = cache_hits "nlp.parse" in
  let engine0 = Bounded.session_stats session.engine in
  let translation, translation_s =
    timed (fun () ->
        Translate.specification ~parse_cache:session.parse
          options.Pipeline.translate
          (Document.texts session.doc))
  in
  let raw_formulas =
    List.map
      (fun r -> r.Translate.formula)
      translation.Translate.requirements
  in
  let (formulas, time_solution), abstraction_s =
    timed (fun () -> Pipeline.abstract_times options raw_formulas)
  in
  (* Explicit invalidation: edited-away formulas (their hash-cons ids
     no longer appear in the document) are dropped from the localize
     memo and the engine's block/frontier caches.  Correctness never
     depends on this — both stores are content-addressed — it bounds
     their growth over a long session. *)
  let ids = List.sort_uniq Int.compare (List.map Ltl.id formulas) in
  let invalidated =
    if ids = session.last_ids then 0
    else begin
      let retain id = List.mem id ids in
      let dropped = Localize.prune_memo session.loc_memo ~retain in
      Bounded.prune_session session.engine ~retain;
      session.last_ids <- ids;
      dropped
    end
  in
  session.invalidated_total <- session.invalidated_total + invalidated;
  let tagged = List.combine session.doc formulas in
  let assumptions =
    List.filter_map
      (fun (item, formula) ->
         if Document.is_assumption item then Some formula else None)
      tagged
  in
  let guarantees =
    List.filter_map
      (fun (item, formula) ->
         if Document.is_assumption item then None else Some formula)
      tagged
  in
  (* Same partition construction as [Pipeline.run_document]: the
     shape heuristic over the guarantees, assumption-only propositions
     adopted as inputs. *)
  let partition, partition_s =
    timed (fun () ->
        let analysis = Partition.of_requirements guarantees in
        let known =
          analysis.Partition.partition.Partition.inputs
          @ analysis.Partition.partition.Partition.outputs
        in
        let extra =
          List.concat_map Ltl.props assumptions
          |> List.sort_uniq compare
          |> List.filter (fun p -> not (List.mem p known))
        in
        {
          analysis with
          Partition.partition =
            {
              analysis.Partition.partition with
              Partition.inputs =
                List.sort compare
                  (analysis.Partition.partition.Partition.inputs @ extra);
            };
        })
  in
  let report, synthesis_s =
    timed (fun () ->
        Realizability.check ~engine:options.Pipeline.engine
          ~lookahead:options.Pipeline.lookahead
          ~bound:options.Pipeline.bound ~assumptions
          ~explicit_session:session.engine
          ~inputs:partition.Partition.partition.Partition.inputs
          ~outputs:partition.Partition.partition.Partition.outputs guarantees)
  in
  let outcome =
    {
      Pipeline.requirements = translation.Translate.requirements;
      formulas;
      time_solution;
      partition;
      report;
      times = { translation_s; abstraction_s; partition_s; synthesis_s };
      diagnostics = [];
      certificate = None;
    }
  in
  let localization = localize_of session outcome in
  let engine1 = Bounded.session_stats session.engine in
  ( outcome,
    localization,
    {
      verdict_cached = false;
      parse_hits = cache_hits "nlp.parse" - parse_hits0;
      blocks_reused =
        engine1.Bounded.reused_blocks - engine0.Bounded.reused_blocks;
      solo_reused = engine1.Bounded.reused_solo - engine0.Bounded.reused_solo;
      invalidated;
    } )

let check session =
  let start = Unix.gettimeofday () in
  session.seq <- session.seq + 1;
  session.checks <- session.checks + 1;
  let finish (outcome, localization, reuse) =
    let culprit_id, partner_ids = ids_of session.doc localization in
    {
      outcome;
      localization;
      culprit_id;
      partner_ids;
      wall_s = Unix.gettimeofday () -. start;
      reuse;
      seq = session.seq;
    }
  in
  if
    Pipeline.governed session.options
    || session.options.Pipeline.recover
    || session.options.Pipeline.certify
  then finish (fallback session)
  else
    let key = doc_key session.doc in
    match Verdict_lru.find_opt session.verdicts key with
    | Some (outcome, localization) ->
      session.verdict_hits <- session.verdict_hits + 1;
      finish
        ( outcome,
          localization,
          {
            verdict_cached = true;
            parse_hits = 0;
            blocks_reused = 0;
            solo_reused = 0;
            invalidated = 0;
          } )
    | None ->
      let (outcome, localization, reuse) = incremental session in
      Verdict_lru.add session.verdicts key (outcome, localization);
      finish (outcome, localization, reuse)

let check_cold ?options doc = check (create ?options doc)

let counters session =
  {
    checks = session.checks;
    verdict_hits = session.verdict_hits;
    engine = Bounded.session_stats session.engine;
    localize_entries = Localize.memo_length session.loc_memo;
    invalidated_total = session.invalidated_total;
  }

(* A canonical rendering of everything a verdict claims — verdict
   class, engine, witnesses (controllers and counterstrategies are
   materialized transition-by-transition, since they carry closures)
   and the localization — so tests can assert bit-identity between an
   incremental check and a cold one with plain string equality. *)
let fingerprint checked =
  let b = Buffer.create 256 in
  let add = Buffer.add_string b in
  let report = checked.outcome.Pipeline.report in
  (match report.Realizability.verdict with
   | Realizability.Consistent -> add "consistent"
   | Realizability.Inconsistent -> add "inconsistent"
   | Realizability.Inconclusive why -> add ("inconclusive:" ^ why));
  add ("|engine=" ^ report.Realizability.engine_used);
  (match report.Realizability.controller with
   | None -> add "|controller=-"
   | Some m ->
     add
       (Printf.sprintf "|controller=%d/%d[%s;%s]" m.Mealy.num_states
          m.Mealy.initial
          (String.concat "," m.Mealy.inputs)
          (String.concat "," m.Mealy.outputs));
     let letters = 1 lsl List.length m.Mealy.inputs in
     for state = 0 to m.Mealy.num_states - 1 do
       for input = 0 to letters - 1 do
         let output, next = m.Mealy.step state input in
         add (Printf.sprintf ";%d.%d->%d.%d" state input output next)
       done
     done);
  (match report.Realizability.counterstrategy with
   | None -> add "|cs=-"
   | Some cs ->
     add
       (Printf.sprintf "|cs=%d/%d" cs.Bounded.cs_num_states
          cs.Bounded.cs_initial);
     let answers = 1 lsl List.length cs.Bounded.cs_outputs in
     for state = 0 to cs.Bounded.cs_num_states - 1 do
       add (Printf.sprintf ";%d!%d" state (cs.Bounded.cs_move state));
       for output = 0 to answers - 1 do
         add (Printf.sprintf ",%d" (cs.Bounded.cs_next state output))
       done
     done);
  (match report.Realizability.unsat_core with
   | None -> add "|core=-"
   | Some core ->
     add ("|core=" ^ String.concat "," (List.map string_of_int core)));
  (match checked.localization with
   | None -> add "|localize=-"
   | Some loc ->
     add
       (Printf.sprintf "|localize=%d<-[%s]~[%s]" loc.Localize.culprit
          (String.concat "," (List.map string_of_int loc.Localize.partners))
          (String.concat "," (List.map string_of_int loc.Localize.relevant))));
  Buffer.contents b
