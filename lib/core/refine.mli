(** Heuristic refinement (Sec. V-B, second bullet): when the synthesis
    engine reports inconsistency, the input/output partition itself may
    be the problem.  Candidate adjustments move propositions of the
    located requirements between the classes; the first adjustment that
    makes the specification realizable is returned.

    The third bullet — modifying the requirements themselves — is the
    user's job; {!suggest} surfaces the information needed for it. *)

type adjustment = {
  moved_to_output : string list;
  moved_to_input : string list;
  partition : Speccc_partition.Partition.t;
}

val adjust_partition :
  check:(Speccc_partition.Partition.t -> bool) ->
  partition:Speccc_partition.Partition.t ->
  focus:string list ->
  adjustment option
(** [adjust_partition ~check ~partition ~focus] tries single moves and
    then pairs of moves of the propositions in [focus] (typically the
    propositions of the located requirements), inputs first ("the
    propositions belonging to the intermediate variables ... are
    targets to be adjusted").  [check] re-runs realizability under the
    adjusted partition. *)

type suggestion = {
  localization : Localize.result option;
  adjustment : adjustment option;
  advice : string;
}

val suggest :
  ?snapshot:Speccc_runtime.Snapshot.slot ->
  check_subset:(Speccc_logic.Ltl.t list -> bool) ->
  check_partition:(Speccc_partition.Partition.t -> bool) ->
  partition:Speccc_partition.Partition.t ->
  Speccc_logic.Ltl.t list ->
  suggestion
(** The full stage-3 loop: localize, try partition adjustments focused
    on the located requirements, and produce advice for the remaining
    case (modify the requirements).  [snapshot] is forwarded to
    {!Localize.run} for anytime progress. *)
