(** The SpecCC pipeline (Fig. 1): natural-language requirements are
    translated to LTL (stage 1, with semantic reasoning and time
    abstraction), partitioned into inputs/outputs, and checked for
    consistency by LTL synthesis (stage 2).  Stage 3 — refinement — is
    provided by {!Localize} and {!Refine}. *)

type options = {
  translate : Speccc_translate.Translate.config;
  time_budget : int option;
      (** error budget [B] for the abstraction; [None] = GCD only *)
  use_smt_abstraction : bool;
      (** true: solve the optimization by bit-blasting (the paper's
          route); false: analytic divisor search *)
  engine : Speccc_synthesis.Realizability.engine;
  lookahead : int;
  bound : int;
  fuel : int option;
      (** deterministic step budget for the synthesis stage; [None] =
          ungoverned.  Setting any of [fuel], [deadline] or [cancel]
          routes synthesis through
          {!Speccc_synthesis.Realizability.check_governed} and its
          fallback ladder, with a lint pass as the ladder's floor. *)
  deadline : float option;
      (** wall-clock seconds allowed for the synthesis stage *)
  cancel : Speccc_runtime.Cancellation.token option;
      (** cooperative cancellation, polled at budget checkpoints *)
  skip_engines : string list;
      (** ladder rungs (by name: ["symbolic"], ["explicit"], ["sat"])
          to bypass in this run — the serve mode's circuit breakers
          set this while a rung's breaker is open.  A non-empty list
          routes synthesis through the governed ladder even without a
          budget; ignored when [engine] is forced. *)
  recover : bool;
      (** true: an ungrammatical requirement is dropped with a located
          diagnostic ([outcome.diagnostics]) and checking continues
          over the remaining requirements; false (default): the
          translation stage raises {!Speccc_nlp.Parser.Error} as
          before *)
  certify : bool;
      (** true: validate the verdict's witness with
          {!Speccc_certify.Certify.apply} (on a small reserved budget)
          before reporting; a rejected certificate downgrades the
          verdict to [Inconclusive] *)
  snapshot : Speccc_runtime.Snapshot.slot option;
      (** anytime-progress slot threaded onto the governed budget: the
          engines publish resumable frontiers into it, and an armed
          resume snapshot lets a retried run skip already-completed
          escalation work (see {!Speccc_runtime.Snapshot}) *)
}

val default_options : unit -> options
(** Ungoverned: [fuel], [deadline] and [cancel] are all [None], so
    {!run} behaves exactly as before the resource-governance layer. *)

type stage_times = {
  translation_s : float;
  abstraction_s : float;
  partition_s : float;
  synthesis_s : float;
}

type outcome = {
  requirements : Speccc_translate.Translate.requirement list;
  formulas : Speccc_logic.Ltl.t list;
      (** after time abstraction, in requirement order *)
  time_solution : Speccc_timeabs.Timeabs.solution option;
  partition : Speccc_partition.Partition.analysis;
  report : Speccc_synthesis.Realizability.report;
  times : stage_times;
  diagnostics : (string * Speccc_nlp.Parser.diagnostic) list;
      (** requirements dropped by error recovery, as [(id, where/why)]
          pairs in document order; always empty unless
          [options.recover] *)
  certificate : Speccc_certify.Certify.outcome option;
      (** witness-validation outcome; [None] unless [options.certify] *)
}

val abstract_times :
  options ->
  Speccc_logic.Ltl.t list ->
  Speccc_logic.Ltl.t list * Speccc_timeabs.Timeabs.solution option
(** The time-abstraction stage on its own: collect the θ constants,
    solve for a divisor (per [options.time_budget] /
    [options.use_smt_abstraction]) and rewrite the formulas.  Exposed
    for {!Watch}, which re-runs translation and abstraction per edit
    but owns its own synthesis path. *)

val governed : options -> bool
(** True when the options route synthesis through the governed ladder
    ({!Speccc_synthesis.Realizability.check_governed}): any of [fuel],
    [deadline], [cancel], [skip_engines] or [snapshot] set, or memory
    pressure above normal. *)

val run : ?options:options -> string list -> outcome
(** Full pipeline from requirement sentences (positional identifiers;
    equivalent to {!run_document} over {!Document.of_texts}). *)

val run_document : ?options:options -> Document.t -> outcome
(** Like {!run}, but items whose identifier marks them as environment
    assumptions ({!Document.is_assumption}) become the antecedent of
    the realizability check ([∧A → ∧G]) instead of system obligations.
    Translation, time abstraction and partitioning still treat the
    whole document uniformly, so assumptions share the proposition
    space.  [outcome.formulas] lists every formula in document
    order. *)

val check_formulas :
  ?options:options ->
  ?partition:Speccc_partition.Partition.t ->
  Speccc_logic.Ltl.t list ->
  Speccc_partition.Partition.t * Speccc_synthesis.Realizability.report
(** Stage 2 only: partition (unless given) and synthesis over formulas
    that are already in LTL.  Used by the localization loop and by
    specifications authored directly in LTL. *)

val pp_outcome : Format.formatter -> outcome -> unit
