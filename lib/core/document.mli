(** Requirement documents: the textual format the tool consumes.

    One requirement per line.  A line may start with an identifier
    followed by a colon, as in the CARA document the paper works from:

    {v
    # CARA working modes (comment)
    Req-08: If Air Ok signal remains low, auto control mode is
    Req-17.1: When auto control mode is running, eventually ...
    If the pump is lost, the alarm is triggered.
    v}

    Lines without an identifier get positional ones ([R1], [R2], ...);
    blank lines and [#] comments are skipped. *)

type item = {
  id : string;
  text : string;
  line : int;
      (** 1-based source line in the document file ({!parse} tracks
          blank and comment lines), or the 1-based position for
          documents assembled in memory — the anchor parse-error
          diagnostics report *)
}

type t = item list

val parse : string -> t
(** Parse document text. *)

val of_file : string -> t
(** Raises [Sys_error] when unreadable. *)

val of_texts : string list -> t
(** Positional identifiers. *)

val texts : t -> string list

val is_assumption : item -> bool
(** An item whose identifier starts with [assume] (case-insensitive)
    is an environment assumption: [Assume: the pump is available.]
    Such requirements become the antecedent of the realizability check
    rather than obligations of the system. *)

val split : t -> item list * item list
(** [(assumptions, guarantees)], both in document order. *)

val id_at : t -> int -> string
(** Identifier of the requirement at a 0-based index ([R<n+1>] when
    out of range, so report printers never raise). *)

val pp : Format.formatter -> t -> unit
