open Speccc_logic
open Speccc_partition

type adjustment = {
  moved_to_output : string list;
  moved_to_input : string list;
  partition : Partition.t;
}

let try_moves ~check ~partition moves =
  List.find_map
    (fun (to_output, to_input) ->
       let adjusted = Partition.adjust partition ~to_input ~to_output () in
       if adjusted <> partition && check adjusted then
         Some { moved_to_output = to_output; moved_to_input = to_input;
                partition = adjusted }
       else None)
    moves

let adjust_partition ~check ~partition ~focus =
  let focus = List.sort_uniq compare focus in
  let focus_inputs =
    List.filter (fun p -> List.mem p partition.Partition.inputs) focus
  in
  let focus_outputs =
    List.filter (fun p -> List.mem p partition.Partition.outputs) focus
  in
  (* Single moves first: inputs → output (the common misclassification:
     a variable the system should own was read as an environment
     event), then outputs → input. *)
  let singles =
    List.map (fun p -> ([ p ], [])) focus_inputs
    @ List.map (fun p -> ([], [ p ])) focus_outputs
  in
  let pairs =
    List.concat_map
      (fun p ->
         List.filter_map
           (fun q -> if p < q then Some ([ p; q ], []) else None)
           focus_inputs)
      focus_inputs
  in
  try_moves ~check ~partition (singles @ pairs)

type suggestion = {
  localization : Localize.result option;
  adjustment : adjustment option;
  advice : string;
}

let suggest ?snapshot ~check_subset ~check_partition ~partition formulas =
  match Localize.run ?snapshot ~check:check_subset formulas with
  | None ->
    {
      localization = None;
      adjustment = None;
      advice = "specification is consistent; nothing to refine";
    }
  | Some localization ->
    let located_indices =
      localization.Localize.culprit :: localization.Localize.partners
    in
    let focus =
      List.concat_map
        (fun i -> Ltl.props (List.nth formulas i))
        located_indices
    in
    let adjustment = adjust_partition ~check:check_partition ~partition ~focus in
    let advice =
      match adjustment with
      | Some a ->
        Format.asprintf
          "reclassifying {%s} as outputs and {%s} as inputs restores \
           consistency"
          (String.concat ", " a.moved_to_output)
          (String.concat ", " a.moved_to_input)
      | None ->
        Format.asprintf
          "no partition adjustment restores consistency; modify \
           requirement %d (conflicting with requirements %s)"
          localization.Localize.culprit
          (match localization.Localize.partners with
           | [] -> "(itself)"
           | partners ->
             String.concat ", " (List.map string_of_int partners))
    in
    { localization = Some localization; adjustment; advice }
