(** Incremental re-checking for live documents — the engine behind
    [speccc watch].

    A {!session} pins one {!Pipeline.options} value to one evolving
    {!Document.t} and re-checks only what an edit actually changed:

    - sentence parses are cached per sentence text (the [nlp.parse]
      LRU), so unedited sentences are never re-parsed;
    - the explicit engine's arena blocks and solo winning frontiers
      are cached per hash-consed formula id
      ({!Speccc_synthesis.Bounded.session}), so after a one-sentence
      edit only that sentence's block is rebuilt and the joint game is
      warm-started next to its fixpoint;
    - localization subset verdicts are memoized across checks
      ({!Localize.memo}), so re-localizing after an edit re-checks
      only subsets that mention an edited formula;
    - whole-document verdicts are kept in a content-addressed LRU, so
      reverting an edit is a cache hit.

    Every store is content-addressed (sentence text, hash-consed
    formula ids, canonical document key), so stale reuse is impossible
    by construction; {!check} additionally prunes entries referring to
    edited-away formulas, which bounds growth over a long session.
    The invariant the test-suite pins: a {!check} after any edit
    sequence is {e bit-identical} (verdict, witnesses, localization —
    see {!fingerprint}) to {!check_cold} on the same document.

    Semantic analysis is document-global, so translation beyond the
    parse, time abstraction and partitioning are recomputed per check
    — they are linear-time and far off the critical path.

    Sessions with governed options ([fuel]/[deadline]/[cancel]/
    [skip_engines]/[snapshot], or memory pressure), [recover] or
    [certify] fall back to the full {!Pipeline.run_document} per
    check: correct, but without engine reuse. *)

type session

type reuse = {
  verdict_cached : bool;
      (** the whole check was answered from the document-verdict LRU *)
  parse_hits : int;     (** sentences whose parse was reused *)
  blocks_reused : int;  (** arena blocks reused by the explicit engine *)
  solo_reused : int;    (** solo frontiers reused by the explicit engine *)
  invalidated : int;
      (** stale localization-memo entries dropped after the edit
          (engine blocks for edited-away formulas are pruned
          alongside) *)
}
(** What one {!check} reused from — and invalidated in — the session. *)

type checked = {
  outcome : Pipeline.outcome;
  localization : Localize.result option;
      (** culprit/partner analysis, present when the verdict is
          [Inconsistent]; indices are 0-based into the document *)
  culprit_id : string option;   (** [localization.culprit] as a document id *)
  partner_ids : string list;    (** [localization.partners] as document ids *)
  wall_s : float;               (** wall time of this check *)
  reuse : reuse;
  seq : int;                    (** 1-based check counter within the session *)
}

type counters = {
  checks : int;
  verdict_hits : int;
  engine : Speccc_synthesis.Bounded.session_stats;
  localize_entries : int;   (** live localization-memo entries *)
  invalidated_total : int;  (** memo entries pruned over the session *)
}
(** Cumulative session counters, as printed by [speccc watch --stats]. *)

val create : ?options:Pipeline.options -> Document.t -> session
(** A fresh session over a document.  [options] (default
    {!Pipeline.default_options}) are fixed for the session's lifetime
    — changing them requires a new session, which is what makes the
    cached verdicts sound. *)

val document : session -> Document.t

val set_document : session -> Document.t -> unit
(** Replace the document wholesale (the file-watching CLI uses this on
    re-read); caches carry over and unchanged sentences still hit. *)

val edit : session -> id:string -> text:string -> (unit, string) result
(** Replace the text of the requirement named [id].  [Error] when no
    such requirement exists; the document is unchanged. *)

val insert :
  ?at:int -> session -> id:string -> text:string -> (unit, string) result
(** Insert a new requirement at 0-based position [at] (default:
    append; clamped to the document).  [Error] on a duplicate id. *)

val delete : session -> id:string -> (unit, string) result
(** Remove the requirement named [id]. *)

val check : session -> checked
(** Re-check the current document, reusing session state as described
    above.  Raises {!Speccc_nlp.Parser.Error} when a sentence does not
    parse (like the ungoverned pipeline; session state is untouched,
    so the caller can fix the edit and re-check). *)

val check_cold : ?options:Pipeline.options -> Document.t -> checked
(** One check in a throwaway session: the cold-start oracle the
    incremental identity tests and benchmarks compare against. *)

val counters : session -> counters

val fingerprint : checked -> string
(** Canonical rendering of everything the check claims: verdict class,
    engine, controller (materialized transition-by-transition),
    counterstrategy, unsat core and localization.  Two checks of the
    same document under the same options must produce equal
    fingerprints, whatever session state they started from — the
    incremental-vs-cold identity the tests assert. *)
