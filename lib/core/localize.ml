open Speccc_logic

type result = {
  culprit : int;
  consistent_prefix : int list;
  relevant : int list;
  partners : int list;
}

module String_set = Set.Make (String)

let props_set formula = String_set.of_list (Ltl.props formula)

let shares_props a b =
  not (String_set.is_empty (String_set.inter (props_set a) (props_set b)))

(* Minimal subset of [candidates] (indices into the formula array) that
   is inconsistent together with the culprit: drop candidates one at a
   time, keeping the set inconsistent. *)
let shrink_partners ~check_indices culprit candidates =
  let inconsistent indices = not (check_indices (culprit :: indices)) in
  if not (inconsistent candidates) then
    (* The culprit only conflicts with the full context; keep all. *)
    candidates
  else
    let rec minimize kept = function
      | [] -> List.rev kept
      | index :: rest ->
        if inconsistent (List.rev_append kept rest) then
          (* droppable *)
          minimize kept rest
        else minimize (index :: kept) rest
    in
    minimize [] candidates

(* Subset verdicts are memoized by the sorted set of formula ids, so
   the localization protocol never re-checks a conjunction set it has
   already decided — most prominently, [grow]'s final step re-examines
   the full set that [run] just checked, and the shrink loop revisits
   sets that differ only in member order.  This leans on the checker
   being extensional: its verdict must depend on the *set* of
   requirements, not their order or multiplicity, which holds for the
   realizability checkers used here (conjunction is the spec).

   A fresh run must never see a previous run's verdicts — [check]
   closes over per-document options and partitions — so every run salts
   its keys with a distinct nonce; the shared bounded cache then needs
   no per-run registration. *)

module Verdicts = Speccc_cache.Cache.Make (Speccc_cache.Cache.Int_list_key)

let verdicts = Verdicts.create_dls ~name:"localize.verdict" ~capacity:512 ()

let run_nonce = Atomic.make 0

let run ~check formulas =
  let formulas_array = Array.of_list formulas in
  let n = Array.length formulas_array in
  let ids = Array.map Ltl.id formulas_array in
  let nonce = Atomic.fetch_and_add run_nonce 1 in
  let cache = Domain.DLS.get verdicts in
  let check_indices indices =
    let key =
      nonce :: List.sort_uniq Int.compare (List.map (fun i -> ids.(i)) indices)
    in
    Verdicts.memo cache key
      (fun () -> check (List.map (fun i -> formulas_array.(i)) indices))
  in
  if check_indices (List.init n Fun.id) then None
  else begin
    (* Incremental growth: add requirements in order while the subset
       stays consistent. *)
    let rec grow accepted index =
      if index >= n then None
      else if check_indices (List.rev (index :: accepted)) then
        grow (index :: accepted) (index + 1)
      else Some (List.rev accepted, index)
    in
    match grow [] 0 with
    | None ->
      (* Each prefix was consistent, yet the whole set is not: numeric
         instability cannot happen with a deterministic checker, but a
         non-monotone check (bound effects) can land here; report the
         last requirement as culprit. *)
      let last = n - 1 in
      Some
        {
          culprit = last;
          consistent_prefix = List.init last Fun.id;
          relevant = [];
          partners = [];
        }
    | Some (prefix, culprit) ->
      let culprit_formula = formulas_array.(culprit) in
      let relevant =
        List.filter
          (fun i -> shares_props formulas_array.(i) culprit_formula)
          prefix
      in
      let partners = shrink_partners ~check_indices culprit relevant in
      Some { culprit; consistent_prefix = prefix; relevant; partners }
  end

let pp ppf result =
  let show = function
    | [] -> "(none)"
    | l -> String.concat ", " (List.map string_of_int l)
  in
  Format.fprintf ppf
    "@[<v>culprit: requirement %d@,consistent prefix: %s@,relevant: \
     %s@,minimal partners: %s@]"
    result.culprit
    (show result.consistent_prefix)
    (show result.relevant)
    (show result.partners)
