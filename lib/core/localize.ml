open Speccc_logic

type result = {
  culprit : int;
  consistent_prefix : int list;
  relevant : int list;
  partners : int list;
}

module String_set = Set.Make (String)

let props_set formula = String_set.of_list (Ltl.props formula)

let shares_props a b =
  not (String_set.is_empty (String_set.inter (props_set a) (props_set b)))

(* Minimal subset of [candidates] (indices into the formula array) that
   is inconsistent together with the culprit: drop candidates one at a
   time, keeping the set inconsistent. *)
let shrink_partners ~check_indices culprit candidates =
  let inconsistent indices = not (check_indices (culprit :: indices)) in
  if not (inconsistent candidates) then
    (* The culprit only conflicts with the full context; keep all. *)
    candidates
  else
    let rec minimize kept = function
      | [] -> List.rev kept
      | index :: rest ->
        if inconsistent (List.rev_append kept rest) then
          (* droppable *)
          minimize kept rest
        else minimize (index :: kept) rest
    in
    minimize [] candidates

(* Subset verdicts are memoized by the sorted set of formula ids, so
   the localization protocol never re-checks a conjunction set it has
   already decided — most prominently, [grow]'s final step re-examines
   the full set that [run] just checked, and the shrink loop revisits
   sets that differ only in member order.  This leans on the checker
   being extensional: its verdict must depend on the *set* of
   requirements, not their order or multiplicity, which holds for the
   realizability checkers used here (conjunction is the spec).

   Within one run the memo is the index-keyed [decided] table.  Cross-
   run reuse is opt-in via [memo]: a caller that re-localizes the same
   evolving document (the watch session) passes one memo per session,
   keyed by formula ids — content-addressed, so an edited sentence
   gets a fresh id and can never be served a stale verdict.  Earlier
   revisions salted a *shared* LRU with a per-run nonce instead; every
   entry it deposited was unreachable by construction (the in-run
   table already answered every repeat), pure dead weight that evicted
   live entries.  There is deliberately no shared cache here anymore:
   without a memo, no state survives the run. *)

type memo = (int list, bool) Hashtbl.t

let memo () : memo = Hashtbl.create 64

let memo_length = Hashtbl.length

let prune_memo memo ~retain =
  let stale =
    Hashtbl.fold
      (fun ids _ acc ->
         if List.for_all retain ids then acc else ids :: acc)
      memo []
  in
  List.iter (Hashtbl.remove memo) stale;
  List.length stale

(* ---------- anytime snapshots of the subset lattice ----------

   The hash-cons ids keying the in-run memo are per-domain, so they
   cannot survive a preemption (the retry may land on another domain
   or another process).  Snapshots therefore key decided subsets by
   *formula indices* — stable as long as the requirement list is the
   same, which the resuming supervisor guarantees and a stored
   formula-count field double-checks.  Encoding: "0.2.3:1,1:0"
   (sorted indices dot-joined, ':', verdict bit, comma-separated). *)

let snapshot_engine = "localize"

let encode_decided decided =
  Hashtbl.fold
    (fun indices verdict acc ->
       (String.concat "." (List.map string_of_int indices)
        ^ ":" ^ (if verdict then "1" else "0"))
       :: acc)
    decided []
  |> List.sort compare
  |> String.concat ","

let decode_decided s =
  let table = Hashtbl.create 32 in
  let ok =
    String.split_on_char ',' s
    |> List.for_all (fun entry ->
        if entry = "" then true
        else
          match String.split_on_char ':' entry with
          | [ ixs; bit ] when bit = "0" || bit = "1" ->
            let indices =
              String.split_on_char '.' ixs
              |> List.map int_of_string_opt
            in
            if List.for_all Option.is_some indices then begin
              Hashtbl.replace table
                (List.filter_map Fun.id indices)
                (bit = "1");
              true
            end
            else false
          | _ -> false)
  in
  if ok then Some table else None

let run ?snapshot ?memo ~check formulas =
  let formulas_array = Array.of_list formulas in
  let n = Array.length formulas_array in
  let ids = Array.map Ltl.id formulas_array in
  (* Seed decided subsets from an armed snapshot: each seeded subset
     is one [check] (and its whole engine ladder) a resumed run never
     pays again.  A count mismatch or decode failure degrades to a
     cold start. *)
  let decided =
    match snapshot with
    | None -> Hashtbl.create 32
    | Some slot ->
      (match Speccc_runtime.Snapshot.resume_for slot ~engine:snapshot_engine with
       | Some snap
         when Speccc_runtime.Snapshot.int_field snap "n" = Some n ->
         (match Speccc_runtime.Snapshot.field snap "decided" with
          | Some enc ->
            (match decode_decided enc with
             | Some table
               when Hashtbl.fold
                      (fun ixs _ ok ->
                         ok && List.for_all (fun i -> i >= 0 && i < n) ixs)
                      table true -> table
             | Some _ | None -> Hashtbl.create 32)
          | None -> Hashtbl.create 32)
       | Some _ | None -> Hashtbl.create 32)
  in
  let publish () =
    match snapshot with
    | None -> ()
    | Some slot ->
      Speccc_runtime.Snapshot.publish slot
        (Speccc_runtime.Snapshot.make ~engine:snapshot_engine
           [ ("n", string_of_int n); ("decided", encode_decided decided) ])
  in
  let check_indices indices =
    let sorted = List.sort_uniq Int.compare indices in
    match Hashtbl.find_opt decided sorted with
    | Some verdict -> verdict
    | None ->
      let id_key = List.sort Int.compare (List.map (fun i -> ids.(i)) sorted) in
      let verdict =
        match memo with
        | Some memo when Hashtbl.mem memo id_key -> Hashtbl.find memo id_key
        | _ ->
          let verdict =
            check (List.map (fun i -> formulas_array.(i)) indices)
          in
          (match memo with
           | Some memo -> Hashtbl.replace memo id_key verdict
           | None -> ());
          verdict
      in
      Hashtbl.replace decided sorted verdict;
      publish ();
      verdict
  in
  if check_indices (List.init n Fun.id) then None
  else begin
    (* Incremental growth: add requirements in order while the subset
       stays consistent. *)
    let rec grow accepted index =
      if index >= n then None
      else if check_indices (List.rev (index :: accepted)) then
        grow (index :: accepted) (index + 1)
      else Some (List.rev accepted, index)
    in
    match grow [] 0 with
    | None ->
      (* Each prefix was consistent, yet the whole set is not: numeric
         instability cannot happen with a deterministic checker, but a
         non-monotone check (bound effects) can land here; report the
         last requirement as culprit. *)
      let last = n - 1 in
      Some
        {
          culprit = last;
          consistent_prefix = List.init last Fun.id;
          relevant = [];
          partners = [];
        }
    | Some (prefix, culprit) ->
      let culprit_formula = formulas_array.(culprit) in
      let relevant =
        List.filter
          (fun i -> shares_props formulas_array.(i) culprit_formula)
          prefix
      in
      let partners = shrink_partners ~check_indices culprit relevant in
      Some { culprit; consistent_prefix = prefix; relevant; partners }
  end

let pp ppf result =
  let show = function
    | [] -> "(none)"
    | l -> String.concat ", " (List.map string_of_int l)
  in
  Format.fprintf ppf
    "@[<v>culprit: requirement %d@,consistent prefix: %s@,relevant: \
     %s@,minimal partners: %s@]"
    result.culprit
    (show result.consistent_prefix)
    (show result.relevant)
    (show result.partners)
